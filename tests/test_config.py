"""SimConfig behaviour."""

import numpy as np
import pytest

from repro.config import DEFAULT_CONFIG, ExperimentScale, SimConfig
from repro.errors import ConfigError


def test_default_config_is_valid():
    assert DEFAULT_CONFIG.batch_size == 64
    assert 0 < DEFAULT_CONFIG.scale <= 1


def test_rng_streams_are_deterministic():
    a = SimConfig(seed=7).rng("x").integers(0, 1 << 30, 10)
    b = SimConfig(seed=7).rng("x").integers(0, 1 << 30, 10)
    assert np.array_equal(a, b)


def test_rng_streams_differ_by_name():
    a = SimConfig(seed=7).rng("x").integers(0, 1 << 30, 10)
    b = SimConfig(seed=7).rng("y").integers(0, 1 << 30, 10)
    assert not np.array_equal(a, b)


def test_rng_streams_differ_by_seed():
    a = SimConfig(seed=7).rng("x").integers(0, 1 << 30, 10)
    b = SimConfig(seed=8).rng("x").integers(0, 1 << 30, 10)
    assert not np.array_equal(a, b)


def test_with_returns_modified_copy():
    base = SimConfig(seed=1)
    other = base.with_(batch_size=16)
    assert other.batch_size == 16
    assert base.batch_size == 64
    assert other.seed == base.seed


@pytest.mark.parametrize(
    "kwargs",
    [
        {"batch_size": 0},
        {"num_batches": 0},
        {"scale": 0.0},
        {"scale": 1.5},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(ConfigError):
        SimConfig(**kwargs)


def test_experiment_scale_applies_overrides():
    scale = ExperimentScale(scale=0.1, num_batches=3, batch_size=8)
    applied = scale.apply(SimConfig())
    assert applied.scale == 0.1
    assert applied.num_batches == 3
    assert applied.batch_size == 8


def test_engine_validation_message():
    with pytest.raises(
        ConfigError, match=r"engine must be 'fast' or 'reference', got 'turbo'"
    ):
        SimConfig(engine="turbo")
