"""Integrated-scheme and synergy tests."""

import pytest

from repro.core.integrated import integrated_batch_cycles, synergy_report
from repro.cpu.smt import ThreadProfile
from repro.engine.inference import InferenceTiming, StageTimes
from repro.errors import ConfigError


def make_timing(emb, emb_util, emb_stall, bottom=400.0):
    return InferenceTiming(
        model="test",
        stages=StageTimes(bottom, emb, 50.0, 50.0),
        frequency_hz=2.4e9,
        embedding_profile=ThreadProfile("embedding", emb, emb_util, emb_stall),
        bottom_mlp_profile=ThreadProfile("bottom_mlp", bottom, 0.85, 0.03),
    )


@pytest.fixture
def baseline_timing():
    return make_timing(emb=1000.0, emb_util=0.10, emb_stall=0.80)


@pytest.fixture
def prefetched_timing():
    # SW-PF: embedding faster, busier, far fewer window stalls.
    return make_timing(emb=650.0, emb_util=0.35, emb_stall=0.25)


def test_integrated_beats_both_parts(baseline_timing, prefetched_timing):
    report = synergy_report(baseline_timing, prefetched_timing)
    assert report.integrated_speedup > report.swpf_speedup
    assert report.integrated_speedup > report.mpht_speedup


def test_synergy_report_consistency(baseline_timing, prefetched_timing):
    report = synergy_report(baseline_timing, prefetched_timing)
    assert report.baseline_cycles == pytest.approx(1500.0)
    assert report.swpf_speedup == pytest.approx(1500.0 / 1150.0)
    assert report.multiplicative_expectation == pytest.approx(
        report.swpf_speedup * report.mpht_speedup
    )
    assert report.synergy == pytest.approx(
        report.integrated_speedup / report.multiplicative_expectation
    )


def test_integrated_is_mp_ht_of_prefetched(prefetched_timing):
    from repro.core.hyperthread import mp_ht_batch_cycles

    assert integrated_batch_cycles(prefetched_timing) == pytest.approx(
        mp_ht_batch_cycles(prefetched_timing)
    )


def test_zero_baseline_rejected(prefetched_timing):
    bad = make_timing(emb=0.0, emb_util=0.0, emb_stall=0.0, bottom=0.0)
    object.__setattr__(bad, "stages", StageTimes(0.0, 0.0, 0.0, 0.0))
    with pytest.raises(ConfigError):
        synergy_report(bad, prefetched_timing)
