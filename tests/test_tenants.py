"""Tenant profiles, contention model, and defense-knob tests."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.analysis.cache_model import analyze_trace_reuse
from repro.cpu.platform import get_platform
from repro.errors import ConfigError
from repro.experiments.workloads import build_workload
from repro.mem.dram import MAX_UTILIZATION, DRAMModel
from repro.mem.hierarchy import HierarchyConfig, build_hierarchy, make_cache
from repro.tenants import (
    DEFAULT_DEFENSE_LADDER,
    ContentionModel,
    DefenseConfig,
    TenantMix,
    TenantProfile,
    compute_tenant,
    contended_hierarchy,
    locker_tenant,
    streaming_tenant,
)
from repro.units import kib, mib


@pytest.fixture(scope="module")
def contention():
    cfg = SimConfig(seed=3)
    spec = get_platform("csl")
    wl = build_workload(
        "rm2_1", "low", scale=0.01, batch_size=8, num_batches=1, config=cfg
    )
    reuse = analyze_trace_reuse(
        wl.trace, spec.hierarchy, wl.model.embedding_dim, dataset="low"
    )
    return ContentionModel(wl.model, reuse.reuse, spec, 8)


class TestProfiles:
    def test_validation(self):
        with pytest.raises(ConfigError):
            TenantProfile("", "locker", 0, 0.1)
        with pytest.raises(ConfigError):
            TenantProfile("t", "database", 0, 0.1)
        with pytest.raises(ConfigError):
            TenantProfile("t", "locker", -1, 0.1)
        with pytest.raises(ConfigError):
            TenantProfile("t", "locker", 0, float("nan"))
        with pytest.raises(ConfigError):
            TenantProfile("t", "locker", 0, 0.1, smt_utilization=1.5)
        with pytest.raises(ConfigError):
            TenantProfile("t", "locker", 0, 0.1, duty_cycle=0.0)
        with pytest.raises(ConfigError):
            TenantProfile("t", "locker", 0, 0.1, period_frac=0.0)
        with pytest.raises(ConfigError):
            TenantProfile("t", "locker", 0, 0.1, phase_frac=1.5)

    def test_mix_rejects_duplicate_names(self):
        with pytest.raises(ConfigError):
            TenantMix((locker_tenant("a"), streaming_tenant("a")))

    def test_always_on_window_spans_phase_to_horizon(self):
        mix = TenantMix((streaming_tenant(),), seed=1)
        assert mix.windows(1000.0) == [(0, 0.0, 1000.0)]

    def test_duty_windows_seeded_and_bounded(self):
        mix = TenantMix((locker_tenant(),), seed=5)
        a = mix.windows(10_000.0)
        b = TenantMix((locker_tenant(),), seed=5).windows(10_000.0)
        assert a == b
        assert a != TenantMix((locker_tenant(),), seed=6).windows(10_000.0)
        tenant = locker_tenant()
        for _, start, end in a:
            assert 0.0 <= start < end <= 10_000.0
            assert start >= tenant.phase_frac * 10_000.0
            assert end - start <= tenant.duty_cycle * tenant.period_frac * 10_000.0 + 1e-9

    def test_appending_a_tenant_preserves_earlier_schedules(self):
        solo = TenantMix((locker_tenant(),), seed=9).windows(5000.0)
        both = TenantMix((locker_tenant(), streaming_tenant()), seed=9).windows(5000.0)
        assert [w for w in both if w[0] == 0] == solo

    def test_horizon_must_be_positive(self):
        with pytest.raises(ConfigError):
            TenantMix((locker_tenant(),)).windows(0.0)


class TestDefenseConfig:
    def test_validation(self):
        with pytest.raises(ConfigError):
            DefenseConfig("bad", tenant_ways=0)
        with pytest.raises(ConfigError):
            DefenseConfig("bad", bandwidth_cap=-0.1)
        with pytest.raises(ConfigError):
            DefenseConfig("")

    def test_default_ladder_escalates(self):
        names = [d.name for d in DEFAULT_DEFENSE_LADDER]
        assert names[0] == "none"
        assert DEFAULT_DEFENSE_LADDER[0].tenant_ways is None
        assert DEFAULT_DEFENSE_LADDER[-1].bandwidth_cap is not None


class TestContendedHierarchy:
    GEO = HierarchyConfig(l2_size=mib(1), l3_size=mib(16), l3_ways=16)

    def test_footprint_sizes_the_tenant_allocation(self):
        # 4 MiB footprint at 1 MiB/way -> 4 tenant ways -> 12 of 16 left.
        out = contended_hierarchy(self.GEO, mib(4), DefenseConfig("none"))
        assert out.effective_l3_ways == 12

    def test_cat_partition_caps_the_tenant(self):
        out = contended_hierarchy(
            self.GEO, mib(64), DefenseConfig("partition", tenant_ways=2)
        )
        assert out.effective_l3_ways == 14

    def test_huge_footprint_leaves_a_floor_above_l2(self):
        out = contended_hierarchy(self.GEO, mib(64), DefenseConfig("none"))
        # Never squeezed below one way more than the L2's worth.
        assert out.effective_l3_size > self.GEO.l2_size

    def test_zero_footprint_is_identity(self):
        assert contended_hierarchy(self.GEO, 0, DefenseConfig("none")) is self.GEO


class TestHierarchyCAT:
    def test_allocated_ways_validation(self):
        with pytest.raises(ConfigError):
            HierarchyConfig(l3_allocated_ways=0)
        with pytest.raises(ConfigError):
            HierarchyConfig(l3_ways=16, l3_allocated_ways=17)
        with pytest.raises(ConfigError):
            # One way of a 16-way 32 MiB L3 is 2 MiB: not above a 2 MiB L2.
            HierarchyConfig(
                l2_size=mib(2), l3_size=mib(32), l3_ways=16, l3_allocated_ways=1
            )

    def test_effective_size_math(self):
        cfg = HierarchyConfig(l3_size=mib(16), l3_ways=16, l3_allocated_ways=12)
        assert cfg.effective_l3_ways == 12
        assert cfg.effective_l3_size == mib(12)

    def test_full_allocation_matches_unallocated(self):
        base = HierarchyConfig(l3_size=mib(2), l3_ways=16, l2_size=kib(256))
        full = HierarchyConfig(
            l3_size=mib(2), l3_ways=16, l2_size=kib(256), l3_allocated_ways=16
        )
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 100_000, size=5000)
        h_base, h_full = build_hierarchy(base), build_hierarchy(full)
        lat_a = np.array([h_base.load(int(x)).latency for x in lines])
        lat_b = np.array([h_full.load(int(x)).latency for x in lines])
        assert np.array_equal(lat_a, lat_b)


class TestPartitioningLRUStackProperty:
    def test_partition_beats_sharing_with_a_sweeper(self):
        """Isolated ways win: our hit rate behind a CAT partition is never
        worse than sharing all ways with a tenant that sweeps the LLC."""
        size, ways, ours = kib(64), 8, 6
        way_bytes = size // ways
        rng = np.random.default_rng(42)
        our_lines = rng.integers(0, 1200, size=4000)  # reusable working set
        sweep = iter(np.tile(np.arange(10_000, 14_000), 2))

        shared = make_cache("l3", size, ways, engine="reference")
        hits_shared = 0
        for line in our_lines:
            hits_shared += bool(shared.access(int(line)))
            shared.access(int(next(sweep)))  # tenant interleaves a sweep

        part = make_cache("l3", way_bytes * ours, ours, engine="reference")
        hits_part = sum(bool(part.access(int(line))) for line in our_lines)
        assert hits_part >= hits_shared

    @pytest.mark.parametrize("seed", [0, 7])
    def test_hit_rate_monotone_in_allocated_ways(self, seed):
        """More ways never hurt (same set count -> LRU inclusion)."""
        size, ways = kib(64), 8
        way_bytes = size // ways
        rng = np.random.default_rng(seed)
        lines = rng.integers(0, 2000, size=4000)
        rates = []
        for w in (2, 4, 8):
            cache = make_cache("l3", way_bytes * w, w, engine="reference")
            rates.append(sum(bool(cache.access(int(x))) for x in lines))
        assert rates == sorted(rates)


class TestDRAMTenantPressure:
    def test_zero_tenant_load_is_byte_identical(self):
        a, b = DRAMModel(), DRAMModel()
        b.set_tenant_utilization(0.0)
        a.set_utilization(0.4)
        b.set_utilization(0.4)
        assert b.queueing_factor() == a.queueing_factor()
        lines = np.arange(0, 4096, 7)
        assert np.array_equal(a.access_batch(lines), b.access_batch(lines))

    def test_tenant_load_inflates_latency(self):
        dram = DRAMModel()
        dram.set_utilization(0.35)
        quiet = dram.queueing_factor()
        dram.set_tenant_utilization(0.5)
        assert dram.queueing_factor() > quiet
        assert dram.total_utilization() == pytest.approx(0.85)

    def test_throttle_caps_tenant_contribution(self):
        dram = DRAMModel()
        dram.set_utilization(0.35)
        dram.set_tenant_utilization(0.5)
        dram.set_tenant_throttle(0.1)
        assert dram.effective_tenant_utilization == pytest.approx(0.1)
        capped = dram.queueing_factor()
        other = DRAMModel()
        other.set_utilization(0.35)
        other.set_tenant_utilization(0.1)
        assert capped == other.queueing_factor()
        dram.set_tenant_throttle(None)
        assert dram.effective_tenant_utilization == pytest.approx(0.5)

    def test_combined_load_saturates_at_cap(self):
        dram = DRAMModel()
        dram.set_utilization(0.6)
        dram.set_tenant_utilization(0.9)
        assert dram.total_utilization() == MAX_UTILIZATION
        assert np.isfinite(dram.queueing_factor())

    def test_validation_and_reset(self):
        dram = DRAMModel()
        with pytest.raises(ConfigError):
            dram.set_tenant_utilization(-0.1)
        with pytest.raises(ConfigError):
            dram.set_tenant_throttle(-1.0)
        dram.set_tenant_utilization(0.5)
        dram.set_tenant_throttle(0.2)
        dram.reset()
        assert dram.tenant_utilization == 0.0
        assert dram.effective_tenant_utilization == 0.0


class TestContentionModel:
    def test_quiet_point_is_baseline(self, contention):
        point = contention.design_point((), DefenseConfig("none"))
        assert point.multiplier == pytest.approx(1.0)
        assert 0.0 <= point.mem_stall_share <= 1.0

    def test_multiplier_monotone_in_tenant_bandwidth(self, contention):
        none = DefenseConfig("none")
        mults = [
            contention.design_point(
                (TenantProfile("t", "streaming", mib(8), rho),), none
            ).multiplier
            for rho in (0.1, 0.4, 0.8)
        ]
        assert mults == sorted(mults)
        assert mults[-1] > mults[0]

    def test_defense_never_hurts_under_the_locker(self, contention):
        locker = (locker_tenant(),)
        undefended = contention.design_point(locker, DEFAULT_DEFENSE_LADDER[0])
        defended = contention.design_point(locker, DEFAULT_DEFENSE_LADDER[-1])
        assert defended.multiplier <= undefended.multiplier
        assert defended.multiplier < undefended.multiplier * 0.7

    def test_compute_tenant_barely_touches_memory(self, contention):
        point = contention.design_point(
            (compute_tenant(),), DefenseConfig("none")
        )
        assert point.multiplier < 1.15
        assert point.smt_inflation > 1.0

    def test_points_are_cached(self, contention):
        a = contention.design_point((locker_tenant(),), DEFAULT_DEFENSE_LADDER[0])
        b = contention.design_point((locker_tenant(),), DEFAULT_DEFENSE_LADDER[0])
        assert a is b
