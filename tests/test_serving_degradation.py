"""Degradation controller tests: ladder, hysteresis, recovery."""

import pytest

from repro.errors import ConfigError
from repro.serving.degradation import (
    DegradationController,
    DegradationLevel,
    scheme_ladder,
)

LADDER = (
    DegradationLevel("baseline", 1.0),
    DegradationLevel("integrated", 0.5),
    DegradationLevel("integrated_small_batch", 0.3),
)


def feed(controller, latency_ms, count, start_ms=0.0, step_ms=1.0):
    """Feed `count` identical samples, returning the last change (if any)."""
    change = None
    for i in range(count):
        event = controller.observe(start_ms + i * step_ms, latency_ms)
        if event is not None:
            change = event
    return change


class TestSchemeLadder:
    def test_orders_by_speed_and_appends_batch_rung(self):
        ladder = scheme_ladder(
            {"baseline": 10.0, "sw_pf": 8.0, "integrated": 5.0}, batch_scale=0.6
        )
        assert [lvl.name for lvl in ladder] == [
            "baseline", "sw_pf", "integrated", "integrated_small_batch",
        ]
        assert ladder[0].service_scale == 1.0
        assert ladder[2].service_scale == pytest.approx(0.5)
        assert ladder[3].service_scale == pytest.approx(0.3)

    def test_drops_schemes_that_are_not_faster(self):
        ladder = scheme_ladder({"baseline": 10.0, "sw_pf": 11.0, "integrated": 5.0})
        assert [lvl.name for lvl in ladder] == [
            "baseline", "integrated", "integrated_small_batch",
        ]

    def test_requires_baseline(self):
        with pytest.raises(ConfigError):
            scheme_ladder({"integrated": 5.0})

    def test_batch_scale_validation(self):
        with pytest.raises(ConfigError):
            scheme_ladder({"baseline": 10.0}, batch_scale=0.0)
        with pytest.raises(ConfigError):
            scheme_ladder({"baseline": 10.0}, batch_scale=1.5)


class TestController:
    def make(self, **overrides):
        kwargs = dict(
            ladder=LADDER, sla_ms=100.0, window=32, min_samples=8,
            escalate_margin=1.0, recover_margin=0.5, cooldown=16,
        )
        kwargs.update(overrides)
        return DegradationController(**kwargs)

    def test_validation(self):
        with pytest.raises(ConfigError):
            DegradationController(ladder=(), sla_ms=100.0)
        with pytest.raises(ConfigError):
            # Ladder must not slow down as it escalates.
            DegradationController(
                ladder=(DegradationLevel("a", 0.5), DegradationLevel("b", 1.0)),
                sla_ms=100.0,
            )
        with pytest.raises(ConfigError):
            self.make(sla_ms=0.0)
        with pytest.raises(ConfigError):
            self.make(recover_margin=1.5)
        with pytest.raises(ConfigError):
            self.make(min_samples=0)
        with pytest.raises(ConfigError):
            self.make(min_samples=64, window=32)

    def test_starts_at_baseline_and_holds_when_healthy(self):
        ctl = self.make()
        assert ctl.level_name == "baseline"
        assert ctl.scale() == 1.0
        assert feed(ctl, 50.0, 200) is None
        assert ctl.level_name == "baseline"
        assert not ctl.events

    def test_escalates_on_sustained_violation(self):
        ctl = self.make()
        change = feed(ctl, 150.0, ctl.min_samples)
        assert change is not None
        assert change.escalation
        assert change.from_level == 0
        assert change.to_level == 1
        assert ctl.level_name == "integrated"
        assert ctl.scale() == pytest.approx(0.5)
        assert change.window_p95_ms == pytest.approx(150.0)

    def test_needs_min_samples_before_acting(self):
        ctl = self.make()
        assert feed(ctl, 500.0, ctl.min_samples - 1) is None
        assert ctl.level_name == "baseline"

    def test_escalates_to_bottom_under_persistent_violation(self):
        ctl = self.make()
        feed(ctl, 500.0, 200)
        assert ctl.level_name == "integrated_small_batch"
        # Saturates: no further events once at the last rung.
        n_events = len(ctl.events)
        assert feed(ctl, 500.0, 200) is None or len(ctl.events) == n_events

    def test_hysteresis_band_prevents_flapping(self):
        ctl = self.make()
        feed(ctl, 150.0, ctl.min_samples)  # escalate once
        assert ctl.level_name == "integrated"
        # Latency between recover (50) and escalate (100) thresholds: hold.
        assert feed(ctl, 70.0, 500) is None
        assert ctl.level_name == "integrated"
        assert len(ctl.events) == 1

    def test_recovers_after_cooldown(self):
        ctl = self.make()
        feed(ctl, 150.0, ctl.min_samples)
        assert ctl.level_name == "integrated"
        change = feed(ctl, 20.0, ctl.cooldown + ctl.window)
        assert change is not None
        assert not change.escalation
        assert change.to_level == 0
        assert ctl.level_name == "baseline"
        assert ctl.scale() == 1.0

    def test_no_recovery_before_cooldown(self):
        ctl = self.make(cooldown=1000)
        feed(ctl, 150.0, ctl.min_samples)
        assert feed(ctl, 20.0, 500) is None
        assert ctl.level_name == "integrated"

    def test_deterministic(self):
        def run():
            ctl = self.make()
            pattern = [150.0] * 40 + [20.0] * 200 + [300.0] * 60
            for i, lat in enumerate(pattern):
                ctl.observe(float(i), lat)
            return [(e.time_ms, e.from_level, e.to_level) for e in ctl.events]

        assert run() == run()

    def test_window_p95_reflects_recent_samples(self):
        ctl = self.make()
        feed(ctl, 10.0, ctl.window)
        assert ctl.window_p95() == pytest.approx(10.0)
