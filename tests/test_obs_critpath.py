"""Critical-path extraction: conservation, attribution, profiles."""

import json

import numpy as np
import pytest

from repro.config import SimConfig
from repro.obs import hooks as obs_hooks
from repro.obs.critpath import (
    SEGMENT_KINDS,
    CriticalPath,
    Segment,
    aggregate_profiles,
    bottleneck,
    check_conservation,
    extract_critical_path,
    extract_paths,
    profile_records,
)
from repro.obs.hooks import Observation
from repro.obs.requests import RequestLog
from repro.obs.schema import validate_def
from repro.serving.cluster import ClusterConfig, ClusterSim
from repro.serving.degradation import DegradationController, scheme_ladder
from repro.serving.faults import (
    ArrivalBurst,
    BandwidthDegradation,
    ClusterFaultPlan,
    FaultPlan,
    NodeCrash,
    NodeSlow,
    Stragglers,
)
from repro.serving.router import HedgePolicy
from repro.serving.server import ServingPolicy, simulate_server
from repro.serving.workload import poisson_arrivals

SCHEMA = json.loads(open("tools/trace_schema.json").read())


def _arrivals(n=600, interarrival=0.4, seed=7):
    return poisson_arrivals(interarrival, n, SimConfig(seed=seed).rng("t:arr"))


def _cluster_config(**kwargs):
    horizon = 600 * 0.4
    defaults = dict(
        num_nodes=4, cores_per_node=2, mean_service_ms=1.0, num_shards=8,
        replication=2, gather_width=2, hop_ms=0.05, call_timeout_ms=12.0,
        deadline_ms=50.0, routing="least_loaded",
        hedge=HedgePolicy(quantile=95.0, min_ms=2.0, window=64),
        faults=ClusterFaultPlan(
            [
                NodeCrash(1, 0.25 * horizon, 0.6 * horizon),
                NodeSlow(0, 0.5 * horizon, 0.8 * horizon, factor=4.0),
            ],
            seed=11,
        ),
        seed=11, label="t:critpath",
    )
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


def _cluster_records(**kwargs):
    obs = Observation(requests=RequestLog())
    with obs_hooks.session(obs):
        ClusterSim(_cluster_config(**kwargs)).run(_arrivals())
    return obs.requests.runs[-1].records


def _single_box_records():
    """A stressed single-box run: sheds, times out, retries, completes."""
    rng = np.random.default_rng(5)
    arrivals = poisson_arrivals(1.5, 150, rng)
    horizon = float(arrivals[-1])
    plan = FaultPlan(
        [
            BandwidthDegradation(0.2 * horizon, 0.7 * horizon, 3.0),
            ArrivalBurst(0.4 * horizon, 50, 0.2),
            Stragglers(0.1, 4.0, tail_alpha=1.5),
        ],
        seed=3,
    )
    policy = ServingPolicy(
        deadline_ms=8.0, timeout_ms=6.0, max_retries=1,
        retry_backoff_ms=2.0, max_queue_depth=6,
    )
    controller = DegradationController(
        scheme_ladder({"baseline": 1.0, "sw_pf": 0.8}), sla_ms=8.0
    )
    with obs_hooks.session(Observation(requests=RequestLog())) as obs:
        simulate_server(
            arrivals, 4.0, 2, np.random.default_rng(1),
            policy=policy, fault_plan=plan, controller=controller,
        )
    return obs.requests.records()


class TestConservation:
    def test_exact_on_faulted_hedged_cluster_run(self):
        records = _cluster_records()
        paths = extract_paths(records)
        assert len(paths) == len(records)
        for path in paths:
            assert check_conservation(path) == 0.0  # exact, not approx

    def test_exact_on_stressed_single_box_run(self):
        records = _single_box_records()
        paths = extract_paths(records)
        assert len(paths) == len(records)
        for path in paths:
            assert check_conservation(path) == 0.0

    def test_only_known_segment_kinds(self):
        for path in extract_paths(_cluster_records()):
            for seg in path.segments:
                assert seg.kind in SEGMENT_KINDS
                assert seg.dur_ms >= 0.0 or seg is path.segments[-1]

    def test_total_matches_request_log_latency(self):
        records = _cluster_records()
        for rec, path in zip(records, extract_paths(records)):
            if rec["latency_ms"] is not None:
                assert path.total_ms == pytest.approx(rec["latency_ms"])

    def test_fault_scenario_surfaces_recovery_and_hedge_wait(self):
        kinds = set()
        for path in extract_paths(_cluster_records()):
            kinds.update(seg.kind for seg in path.segments)
        # The node kill forces failovers (recovery) and the slow node
        # triggers hedges; queue and service are always present.
        assert {"queue", "service", "recovery", "hedge_wait"} <= kinds

    def test_extraction_deterministic_across_reruns(self):
        def fingerprint():
            return [
                (p.id, p.outcome, [(s.kind, s.dur_ms, s.node, s.shard)
                                   for s in p.segments])
                for p in extract_paths(_cluster_records())
            ]

        assert fingerprint() == fingerprint()


class TestProfiles:
    def test_profiles_cover_overall_tail_nodes_shards(self):
        profiles = profile_records(_cluster_records(), scenario="t")
        scopes = {p["scope"] for p in profiles}
        assert "overall" in scopes
        assert any(s.startswith("tail_p") for s in scopes)
        assert any(s.startswith("node:") for s in scopes)
        assert any(s.startswith("shard:") for s in scopes)

    def test_profiles_are_schema_valid(self):
        for rec in profile_records(_cluster_records(), scenario="t"):
            assert validate_def(rec, SCHEMA, "critpath_record") == []

    def test_tail_profile_is_subset_of_overall(self):
        profiles = {
            p["scope"]: p
            for p in profile_records(_cluster_records(), tail_quantile=99.0)
        }
        tail = profiles["tail_p99"]
        overall = profiles["overall"]
        assert 0 < tail["requests"] <= overall["requests"]
        assert tail["total_ms"] <= overall["total_ms"]

    def test_segment_sums_reconcile_per_profile(self):
        for rec in profile_records(_cluster_records()):
            assert sum(rec["segments"].values()) == pytest.approx(
                rec["total_ms"]
            )

    def test_bottleneck_prefers_canonical_order_on_ties(self):
        assert bottleneck({"service": 2.0, "queue": 2.0}) == "queue"
        assert bottleneck({"other": 1.0}) == "other"
        assert bottleneck({}) is None
        assert bottleneck({"queue": 0.0}) is None

    def test_aggregate_profiles_empty_input(self):
        profiles = aggregate_profiles([], scenario="empty")
        overall = [p for p in profiles if p["scope"] == "overall"][0]
        assert overall["requests"] == 0
        assert overall["bottleneck"] is None


class TestPathShape:
    def test_completed_cluster_request_leads_with_hop_or_queue(self):
        for path in extract_paths(_cluster_records()):
            if path.outcome == "completed" and path.segments:
                assert path.segments[0].kind in ("network", "queue")
                break
        else:
            pytest.fail("no completed request in the pinned run")

    def test_queued_single_box_request_starts_with_queue(self):
        records = _single_box_records()
        for rec, path in zip(records, extract_paths(records)):
            if rec["outcome"] == "completed" and rec["wait_ms"] > 0:
                assert path.segments[0].kind == "queue"
                assert path.segments[0].dur_ms == pytest.approx(rec["wait_ms"])
                break
        else:
            pytest.fail("no queued completed request in the pinned run")

    def test_by_kind_sums_match_segments(self):
        path = CriticalPath(
            req=0, id="0:0", outcome="completed",
            arrival_ms=0.0, end_ms=5.0,
            segments=[
                Segment("queue", 1.0), Segment("service", 3.0),
                Segment("queue", 1.0),
            ],
        )
        assert path.by_kind() == {"queue": 2.0, "service": 4.0 - 1.0}

    def test_single_record_dispatch_on_shards_field(self):
        cluster = _cluster_records()[0]
        assert cluster.get("shards") is not None
        single = _single_box_records()[0]
        assert single.get("shards") is None
        # Both layers extract without error through the same entry point.
        assert check_conservation(extract_critical_path(cluster)) == 0.0
        assert check_conservation(extract_critical_path(single)) == 0.0
