"""Property-based tests on trace generation."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.config import SimConfig
from repro.trace.production import DATASET_NAMES, make_trace
from repro.trace.stream import AddressMap

SETTINGS = settings(
    max_examples=20, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

shapes = st.tuples(
    st.sampled_from(DATASET_NAMES),
    st.integers(1, 4),      # tables
    st.integers(64, 4000),  # rows
    st.integers(1, 6),      # batch size
    st.integers(1, 3),      # batches
    st.integers(1, 8),      # lookups per sample
    st.integers(0, 2**20),  # seed
)


@SETTINGS
@given(shapes)
def test_generated_traces_are_structurally_valid(shape):
    dataset, tables, rows, bs, nb, lookups, seed = shape
    trace = make_trace(
        dataset, tables, rows, bs, nb, lookups, config=SimConfig(seed=seed)
    )
    assert trace.num_tables == tables
    assert trace.num_batches == nb
    assert trace.batch_size == bs
    for b in range(nb):
        for t in range(tables):
            tb = trace.table_batch(b, t)
            assert tb.offsets[0] == 0
            assert tb.offsets[-1] == tb.indices.size
            assert np.all(np.diff(tb.offsets) >= 0)
            if tb.indices.size:
                assert 0 <= tb.indices.min()
                assert tb.indices.max() < rows


@SETTINGS
@given(shapes)
def test_traces_map_into_address_space(shape):
    dataset, tables, rows, bs, nb, lookups, seed = shape
    trace = make_trace(
        dataset, tables, rows, bs, nb, lookups, config=SimConfig(seed=seed)
    )
    amap = AddressMap([rows] * tables, 64)
    for b in range(nb):
        for t in range(tables):
            lines = amap.batch_first_lines(t, trace.table_batch(b, t))
            if lines.size == 0:
                continue
            # Every line falls inside its own table's extent.
            lo = amap.table_bases[t] // 64
            hi = (amap.table_bases[t] + rows * amap.row_bytes) // 64
            assert lines.min() >= lo
            assert lines.max() < hi


@SETTINGS
@given(shapes)
def test_trace_generation_is_pure(shape):
    dataset, tables, rows, bs, nb, lookups, seed = shape
    a = make_trace(dataset, tables, rows, bs, nb, lookups, config=SimConfig(seed=seed))
    b = make_trace(dataset, tables, rows, bs, nb, lookups, config=SimConfig(seed=seed))
    for t in range(tables):
        assert np.array_equal(a.table_indices(t), b.table_indices(t))


@SETTINGS
@given(st.integers(0, 2**20))
def test_one_item_never_varies(seed):
    trace = make_trace(
        "one-item", 2, 100, 3, 2, 4, config=SimConfig(seed=seed)
    )
    for t in range(2):
        assert np.all(trace.table_indices(t) == 0)
