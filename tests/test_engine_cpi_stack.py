"""CPI-stack reporting tests."""

import pytest

from repro.core.swpf import PAPER_SWPF
from repro.engine.embedding_exec import run_embedding_trace
from repro.mem.hierarchy import build_hierarchy


def test_stack_sums_to_one(tiny_trace, tiny_amap, csl):
    result = run_embedding_trace(
        tiny_trace, tiny_amap, csl.core, build_hierarchy(csl.hierarchy)
    )
    stack = result.cpi_stack()
    assert set(stack) == {"issue", "window_stall", "queue_stall", "drain"}
    assert sum(stack.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in stack.values())


def test_memory_bound_run_is_stall_dominated(tiny_trace, tiny_amap, csl):
    result = run_embedding_trace(
        tiny_trace, tiny_amap, csl.core, build_hierarchy(csl.hierarchy)
    )
    stack = result.cpi_stack()
    assert stack["queue_stall"] + stack["window_stall"] + stack["drain"] > 0.4


def test_prefetching_shifts_cycles_toward_issue(tiny_trace, tiny_amap, csl):
    base = run_embedding_trace(
        tiny_trace, tiny_amap, csl.core, build_hierarchy(csl.hierarchy)
    )
    pf = run_embedding_trace(
        tiny_trace, tiny_amap, csl.core, build_hierarchy(csl.hierarchy),
        plan=PAPER_SWPF.plan(),
    )
    # The paper's resource-freeing story, visible in the top-down view:
    # prefetching converts stall share into useful issue share.
    assert pf.cpi_stack()["issue"] > base.cpi_stack()["issue"]


def test_empty_result_stack_is_zero():
    from repro.engine.embedding_exec import EmbeddingRunResult

    empty = EmbeddingRunResult(
        total_cycles=0.0, batch_cycles=[], loads=0, effective_latency_sum=0.0,
        instr_count=0, utilization=0.0, stall_fraction=0.0,
        window_stall_cycles=0.0, mshr_stall_cycles=0.0, l1_hit_rate=0.0,
        l2_hit_rate=0.0, l3_hit_rate=0.0, dram_fraction=0.0, dram_bytes=0,
        prefetches_issued=0,
    )
    assert sum(empty.cpi_stack().values()) == 0.0
