"""End-to-end inference timing composition tests."""

import pytest

from repro.engine.embedding_exec import run_embedding_trace
from repro.engine.inference import StageTimes, time_inference_sequential
from repro.errors import ConfigError
from repro.mem.hierarchy import build_hierarchy


class TestStageTimes:
    def test_total_and_fraction(self):
        stages = StageTimes(10.0, 80.0, 5.0, 5.0)
        assert stages.total == 100.0
        assert stages.embedding_fraction == pytest.approx(0.8)

    def test_breakdown_sums_to_one(self):
        stages = StageTimes(1.0, 2.0, 3.0, 4.0)
        assert sum(stages.breakdown().values()) == pytest.approx(1.0)

    def test_zero_total_rejected(self):
        with pytest.raises(ConfigError):
            StageTimes(0, 0, 0, 0).breakdown()


@pytest.fixture
def emb_result(tiny_trace, tiny_amap, csl):
    hierarchy = build_hierarchy(csl.hierarchy)
    return run_embedding_trace(tiny_trace, tiny_amap, csl.core, hierarchy)


def test_composition(tiny_model, emb_result, csl, tiny_trace):
    timing = time_inference_sequential(
        tiny_model, emb_result, csl.core, tiny_trace.batch_size
    )
    assert timing.stages.embedding == pytest.approx(emb_result.mean_batch_cycles)
    assert timing.stages.bottom_mlp > 0
    assert timing.batch_cycles == pytest.approx(timing.stages.total)
    assert timing.batch_ms > 0


def test_thread_profiles_capture_stage_characters(tiny_model, emb_result, csl, tiny_trace):
    timing = time_inference_sequential(
        tiny_model, emb_result, csl.core, tiny_trace.batch_size
    )
    emb = timing.embedding_profile
    mlp = timing.bottom_mlp_profile
    # Embedding: memory-bound (low util, high stalls); MLP: the opposite.
    assert emb.stall_fraction > mlp.stall_fraction
    assert emb.utilization < mlp.utilization


def test_batch_size_validated(tiny_model, emb_result, csl):
    with pytest.raises(ConfigError):
        time_inference_sequential(tiny_model, emb_result, csl.core, 0)


def test_batch_ms_uses_frequency(tiny_model, emb_result, csl, tiny_trace):
    timing = time_inference_sequential(
        tiny_model, emb_result, csl.core, tiny_trace.batch_size
    )
    expected_ms = timing.stages.total / csl.frequency_hz * 1e3
    assert timing.batch_ms == pytest.approx(expected_ms)
