"""Shared fixtures: tiny deterministic workloads that run in milliseconds."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.cpu.platform import get_platform
from repro.mem.hierarchy import HierarchyConfig, build_hierarchy
from repro.model.configs import get_model
from repro.trace.production import make_trace
from repro.trace.stream import AddressMap


@pytest.fixture
def sim_config():
    """Deterministic simulation config."""
    return SimConfig(seed=1234)


@pytest.fixture
def csl():
    """The paper's primary platform."""
    return get_platform("csl")


@pytest.fixture
def tiny_model():
    """rm2_1 shrunk hard: 2 tables, small weights when materialized."""
    return get_model("rm2_1").scaled(0.01)


@pytest.fixture
def tiny_trace(tiny_model, sim_config):
    """A Low-hot trace over the tiny model: 4 samples x 2 batches."""
    return make_trace(
        "low",
        num_tables=tiny_model.num_tables,
        rows_per_table=tiny_model.rows,
        batch_size=4,
        num_batches=2,
        lookups_per_sample=tiny_model.lookups_per_sample,
        config=sim_config,
    )


@pytest.fixture
def tiny_amap(tiny_model):
    """Address map matching the tiny model."""
    return AddressMap(
        [tiny_model.rows] * tiny_model.num_tables, tiny_model.embedding_dim
    )


@pytest.fixture
def small_hierarchy():
    """A miniature cache hierarchy (fast to fill and thrash in tests)."""
    config = HierarchyConfig(
        l1_size=1024,
        l1_ways=2,
        l1_latency=5.0,
        l2_size=8192,
        l2_ways=4,
        l2_latency=14.0,
        l3_size=65536,
        l3_ways=4,
        l3_latency=50.0,
    )
    return build_hierarchy(config)


@pytest.fixture
def rng():
    """Deterministic numpy generator for test inputs."""
    return np.random.default_rng(42)
