"""EmbeddingTable and embedding_bag tests (Algorithm 2 semantics)."""

import numpy as np
import pytest

from repro.errors import ConfigError, TraceError
from repro.model.embedding import EmbeddingTable, embedding_bag


@pytest.fixture
def table(rng):
    return EmbeddingTable(rows=50, dim=8, rng=rng)


def test_table_shape(table):
    assert table.weight.shape == (50, 8)
    assert table.weight.dtype == np.float32
    assert table.nbytes == 50 * 8 * 4


def test_lookup_gathers_rows(table):
    out = table.lookup(np.array([3, 3, 7]))
    assert out.shape == (3, 8)
    assert np.array_equal(out[0], out[1])
    assert np.array_equal(out[2], table.weight[7])


def test_lookup_bounds(table):
    with pytest.raises(TraceError):
        table.lookup(np.array([50]))
    with pytest.raises(TraceError):
        table.lookup(np.array([-1]))


def test_bag_sum_pooling(table):
    # Sample 0 pools rows {1, 2}; sample 1 pools row {3}.
    out = embedding_bag(table, np.array([1, 2, 3]), np.array([0, 2, 3]))
    assert out.shape == (2, 8)
    assert np.allclose(out[0], table.weight[1] + table.weight[2])
    assert np.allclose(out[1], table.weight[3])


def test_bag_mean_pooling(table):
    out = embedding_bag(table, np.array([1, 2]), np.array([0, 2]), mode="mean")
    assert np.allclose(out[0], (table.weight[1] + table.weight[2]) / 2)


def test_bag_repeated_index_counts_twice(table):
    out = embedding_bag(table, np.array([4, 4]), np.array([0, 2]))
    assert np.allclose(out[0], 2 * table.weight[4])


def test_bag_empty_sample_pools_to_zero(table):
    out = embedding_bag(table, np.array([5]), np.array([0, 0, 1]))
    assert np.allclose(out[0], 0.0)
    assert np.allclose(out[1], table.weight[5])


def test_bag_rejects_unknown_mode(table):
    with pytest.raises(ConfigError):
        embedding_bag(table, np.array([1]), np.array([0, 1]), mode="max")


def test_bag_rejects_out_of_range_index(table):
    with pytest.raises(TraceError):
        embedding_bag(table, np.array([99]), np.array([0, 1]))


def test_bag_matches_naive_loop(table, rng):
    # Property: the vectorized bag equals a literal Algorithm 2 loop.
    indices = rng.integers(0, 50, size=30)
    pooling = rng.integers(1, 5, size=7)
    pooling[-1] = 30 - pooling[:-1].sum()
    assume_ok = pooling[-1] >= 1
    if not assume_ok:
        pooling[-1] = 1
        indices = indices[: pooling.sum()]
    offsets = np.concatenate([[0], np.cumsum(pooling)])
    out = embedding_bag(table, indices, offsets)
    for k in range(len(pooling)):
        acc = np.zeros(8, dtype=np.float32)
        for idx in indices[offsets[k] : offsets[k + 1]]:
            acc += table.weight[idx]
        assert np.allclose(out[k], acc, atol=1e-5)


def test_table_validation():
    with pytest.raises(ConfigError):
        EmbeddingTable(0, 8)
    with pytest.raises(ConfigError):
        EmbeddingTable(8, 0)
