"""Differential tests: FastCache vs the reference Cache(policy="lru").

Every test drives the same operation stream through both implementations
and asserts identical observable behaviour — hit/miss returns, evicted
lines, statistics, occupancy.  The fast engine's correctness claim is
"bit-exact equivalence", so any divergence here is a bug by definition.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.mem.cache import Cache
from repro.mem.fastcache import FastCache

SIZE = 64 * 64 * 4  # 64 sets x 4 ways x 64B lines
WAYS = 4


def make_pair(size_bytes: int = SIZE, ways: int = WAYS):
    return (
        Cache("ref", size_bytes, ways, policy="lru", seed=3),
        FastCache("fast", size_bytes, ways, policy="lru", seed=3),
    )


def assert_same_state(ref: Cache, fast: FastCache) -> None:
    assert dataclasses.asdict(ref.stats) == dataclasses.asdict(fast.stats)
    assert ref.occupancy() == fast.occupancy()


def replay_demand(ref: Cache, fast: FastCache, lines) -> None:
    """The hierarchy's per-level demand sequence: access, fill on miss."""
    for line in lines:
        line = int(line)
        ref_hit = ref.access(line)
        fast_hit = fast.access(line)
        assert ref_hit == fast_hit
        if not ref_hit:
            assert ref.fill(line) == fast.fill(line)


@pytest.mark.parametrize("seed", [0, 1, 17, 99])
def test_random_demand_stream_identical(seed):
    rng = np.random.default_rng(seed)
    ref, fast = make_pair()
    replay_demand(ref, fast, rng.integers(0, 4096, size=3000))
    assert_same_state(ref, fast)


@pytest.mark.parametrize("seed", [2, 5, 23])
def test_zipf_demand_stream_identical(seed):
    rng = np.random.default_rng(seed)
    lines = rng.zipf(1.3, size=4000) % 8192
    ref, fast = make_pair()
    replay_demand(ref, fast, lines)
    assert_same_state(ref, fast)
    for line in map(int, lines[:200]):
        assert ref.contains(line) == fast.contains(line)


@pytest.mark.parametrize("seed", [4, 11])
def test_mixed_prefetch_demand_stream_identical(seed):
    """Interleaved prefetch fills, prefetch lookups, demand, invalidate."""
    rng = np.random.default_rng(seed)
    ref, fast = make_pair()
    for _ in range(4000):
        line = int(rng.integers(0, 4096))
        op = rng.random()
        if op < 0.15:
            assert ref.fill(line, from_prefetch=True) == fast.fill(
                line, from_prefetch=True
            )
        elif op < 0.25:
            assert ref.access(line, is_prefetch=True) == fast.access(
                line, is_prefetch=True
            )
        elif op < 0.30:
            assert ref.invalidate(line) == fast.invalidate(line)
        else:
            hit = ref.access(line)
            assert hit == fast.access(line)
            if not hit:
                assert ref.fill(line) == fast.fill(line)
    assert_same_state(ref, fast)


def test_flush_matches_reference():
    rng = np.random.default_rng(8)
    ref, fast = make_pair()
    replay_demand(ref, fast, rng.integers(0, 4096, size=1500))
    ref.flush()
    fast.flush()
    assert ref.occupancy() == fast.occupancy() == 0
    replay_demand(ref, fast, rng.integers(0, 4096, size=1500))
    assert_same_state(ref, fast)


def test_demand_wave_matches_scalar_sequence():
    """A conflict-free demand_wave equals scalar access+fill in order."""
    rng = np.random.default_rng(21)
    ref, fast = make_pair()
    for _ in range(60):
        # Distinct sets within each wave (the documented precondition).
        sets = rng.choice(fast.num_sets, size=40, replace=False)
        tags = rng.integers(0, 32, size=40)
        wave = (tags * fast.num_sets + sets).astype(np.int64)
        ref_hits = []
        for line in map(int, wave):
            hit = ref.access(line)
            ref_hits.append(hit)
            if not hit:
                ref.fill(line)
        fast_hits = fast.demand_wave(wave)
        assert fast_hits.tolist() == ref_hits
    assert_same_state(ref, fast)


def test_lookup_and_fill_batch_match_scalar_sequence():
    rng = np.random.default_rng(34)
    ref, fast = make_pair()
    for _ in range(40):
        sets = rng.choice(fast.num_sets, size=32, replace=False)
        tags = rng.integers(0, 16, size=32)
        wave = (tags * fast.num_sets + sets).astype(np.int64)
        as_prefetch = bool(rng.random() < 0.4)
        ref_hits = [ref.access(int(l), is_prefetch=as_prefetch) for l in wave]
        assert fast.lookup_batch(wave, is_prefetch=as_prefetch).tolist() == ref_hits
        for line, hit in zip(map(int, wave), ref_hits):
            if not hit:
                ref.fill(line, from_prefetch=as_prefetch)
        misses = wave[~np.array(ref_hits)]
        fast.fill_batch(misses, from_prefetch=as_prefetch)
    assert_same_state(ref, fast)


def test_fastcache_rejects_non_lru_policies():
    with pytest.raises(ConfigError):
        FastCache("l1", SIZE, WAYS, policy="random")


def test_cache_flush_reseeds_policies():
    """Regression: flush() must rebuild policies with the original seeds.

    A flushed Random-policy cache must evict exactly like a freshly
    constructed one when replaying the same fill sequence.
    """
    rng = np.random.default_rng(55)
    lines = rng.integers(0, 4096, size=2000)
    flushed = Cache("c", SIZE, WAYS, policy="random", seed=7)
    for line in map(int, lines):
        flushed.fill(line)
    flushed.flush()
    fresh = Cache("c", SIZE, WAYS, policy="random", seed=7)
    evictions = [
        (flushed.fill(int(l)), fresh.fill(int(l))) for l in lines
    ]
    assert all(a == b for a, b in evictions)
