"""Out-of-order core model tests."""

import pytest

from repro.cpu.core import CoreModel, CoreSpec
from repro.errors import ConfigError


@pytest.fixture
def spec():
    return CoreSpec(
        rob_entries=64, issue_width=4, l1_mshrs=8, demand_concurrency=4
    )


def test_spec_validation():
    with pytest.raises(ConfigError):
        CoreSpec(rob_entries=0)
    with pytest.raises(ConfigError):
        CoreSpec(issue_width=0)
    with pytest.raises(ConfigError):
        CoreSpec(demand_concurrency=20, l1_mshrs=10)


def test_window_mlp_formula():
    spec = CoreSpec(rob_entries=224, l1_mshrs=12)
    # 50-instruction lookups: window allows 224/50 ≈ 4.5 concurrent misses.
    assert spec.window_mlp(50) == pytest.approx(4.48)
    # Tiny spacing: MSHRs bind.
    assert spec.window_mlp(1) == 12


def test_compute_only_time_is_issue_bound(spec):
    core = CoreModel(spec)
    core.issue_compute(400)
    assert core.drain() == pytest.approx(100.0)
    assert core.utilization == pytest.approx(1.0)


def test_hits_are_pipelined(spec):
    core = CoreModel(spec)
    for _ in range(100):
        core.issue_load(5.0, is_miss=False)
    assert core.drain() == pytest.approx(25.0)  # pure issue cost
    assert core.misses == 0


def test_single_miss_exposed_at_drain(spec):
    core = CoreModel(spec)
    core.issue_load(200.0, is_miss=True)
    assert core.drain() == pytest.approx(200.25)


def test_independent_misses_overlap_up_to_concurrency(spec):
    core = CoreModel(spec)
    for _ in range(4):
        core.issue_load(200.0)
    # 4 misses fit in the demand queue: all overlap.
    assert core.drain() < 210.0


def test_demand_concurrency_throttles_misses(spec):
    core = CoreModel(spec)
    n = 100
    for _ in range(n):
        core.issue_load(200.0)
    total = core.drain()
    # Steady state: one miss retires per 200/4 cycles.
    assert total == pytest.approx(n * 200.0 / 4, rel=0.1)
    assert core.mshr_stall_cycles > 0


def test_window_stall_on_sparse_giant_latency():
    # One miss plus a long tail of compute exceeding the ROB forces a
    # full-window stall.
    spec = CoreSpec(rob_entries=32, issue_width=4, l1_mshrs=8, demand_concurrency=8)
    core = CoreModel(spec)
    core.issue_load(1000.0)
    core.issue_compute(16)
    core.issue_load(1000.0)  # instr distance 17 < 32: no stall yet
    core.issue_compute(64)   # pushes past the window
    core.issue_load(1000.0)
    assert core.window_stall_cycles > 0


def test_prefetches_do_not_trigger_window_stalls(spec):
    core = CoreModel(spec)
    for _ in range(50):
        core.issue_prefetch(200.0)
    assert core.window_stall_cycles == 0.0
    assert core.prefetches == 50


def test_prefetches_bounded_by_mshrs(spec):
    core = CoreModel(spec)
    for _ in range(100):
        core.issue_prefetch(200.0)
    total = core.now
    # 8 MSHRs at 200 cycles each: ~100 * 200/8.
    assert total == pytest.approx(100 * 200 / 8, rel=0.15)


def test_prefetch_stream_faster_than_demand_stream(spec):
    demand = CoreModel(spec)
    for _ in range(100):
        demand.issue_load(200.0)
    demand_time = demand.drain()
    prefetch = CoreModel(spec)
    for _ in range(100):
        prefetch.issue_prefetch(200.0)
    # The asymmetry that makes SW-PF win: 8 MSHRs beat 4 demand slots.
    assert prefetch.now < demand_time


def test_merged_load_waits_for_residual(spec):
    core = CoreModel(spec)
    core.issue_compute(4)
    stall_free = core.issue_merged_load(core.now)  # already complete
    assert stall_free == 0.0
    core.issue_merged_load(core.now + 500.0)
    assert core.drain() >= 500.0


def test_merged_loads_occupy_load_queue(spec):
    core = CoreModel(spec)
    completion = 1000.0
    for _ in range(spec.demand_concurrency + 1):
        core.issue_merged_load(completion)
    # The queue filled: the last merged load waited for the first.
    assert core.mshr_stall_cycles > 0


def test_merged_loads_do_not_hold_mshrs(spec):
    core = CoreModel(spec)
    for _ in range(spec.demand_concurrency - 1):
        core.issue_merged_load(5000.0)
    # MSHRs are free: a prefetch allocates without stall.
    stall = core.issue_prefetch(200.0)
    assert stall == 0.0


def test_hw_prefetch_slot_free_and_drop(spec):
    core = CoreModel(spec)
    for _ in range(spec.l1_mshrs):
        assert core.hw_prefetch_slot_free()
        core.add_hw_prefetch(300.0)
    assert not core.hw_prefetch_slot_free()


def test_wait_until_advances_cursor(spec):
    core = CoreModel(spec)
    waited = core.wait_until(50.0)
    assert waited == 50.0
    assert core.wait_until(10.0) == 0.0


def test_stall_fraction_and_ipc(spec):
    core = CoreModel(spec)
    for _ in range(50):
        core.issue_compute(5)
        core.issue_load(300.0)
    core.drain()
    assert 0.0 < core.stall_fraction < 1.0
    assert core.ipc > 0


def test_reset_restores_initial_state(spec):
    core = CoreModel(spec)
    core.issue_compute(10)
    core.issue_load(100.0)
    core.reset()
    assert core.now == 0.0
    assert core.instr_count == 0
    assert core.drain() == 0.0
