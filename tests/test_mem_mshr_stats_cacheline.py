"""MSHR file, stats containers, and address-math tests."""

import pytest

from repro.errors import ConfigError
from repro.mem.cacheline import (
    PAGE_BYTES,
    iter_lines,
    line_base,
    line_of,
    lines_of_range,
    page_of_line,
)
from repro.mem.mshr import MSHRFile
from repro.mem.stats import CacheStats, HierarchyStats


class TestCacheline:
    def test_line_of_basic(self):
        assert line_of(0) == 0
        assert line_of(63) == 0
        assert line_of(64) == 1

    def test_negative_address_rejected(self):
        with pytest.raises(ValueError):
            line_of(-1)

    def test_line_base_inverts_line_of(self):
        assert line_of(line_base(77)) == 77

    def test_lines_of_range_spanning(self):
        # 512 bytes starting at 32 spans lines 0..8.
        assert lines_of_range(32, 512) == list(range(0, 9))

    def test_lines_of_range_exact(self):
        assert lines_of_range(64, 512) == list(range(1, 9))

    def test_lines_of_range_rejects_empty(self):
        with pytest.raises(ValueError):
            lines_of_range(0, 0)

    def test_iter_lines_matches_list(self):
        assert list(iter_lines(100, 200)) == lines_of_range(100, 200)

    def test_page_of_line(self):
        lines_per_page = PAGE_BYTES // 64
        assert page_of_line(0) == 0
        assert page_of_line(lines_per_page - 1) == 0
        assert page_of_line(lines_per_page) == 1


class TestMSHR:
    def test_allocate_without_contention(self):
        mshr = MSHRFile(4)
        stall = mshr.allocate(line=1, now=0.0, completion=100.0)
        assert stall == 0.0
        assert mshr.outstanding(now=0.0) == 1

    def test_full_file_stalls_until_earliest(self):
        mshr = MSHRFile(2)
        mshr.allocate(1, 0.0, 100.0)
        mshr.allocate(2, 0.0, 150.0)
        stall = mshr.allocate(3, 10.0, 300.0)
        assert stall == pytest.approx(90.0)
        assert mshr.full_stalls == 1

    def test_secondary_miss_merges(self):
        mshr = MSHRFile(2)
        mshr.allocate(1, 0.0, 100.0)
        stall = mshr.allocate(1, 5.0, 130.0)
        assert stall == 0.0
        assert mshr.merges == 1

    def test_retirement_frees_capacity(self):
        mshr = MSHRFile(1)
        mshr.allocate(1, 0.0, 10.0)
        stall = mshr.allocate(2, 20.0, 50.0)
        assert stall == 0.0

    def test_in_flight_probe(self):
        mshr = MSHRFile(2)
        mshr.allocate(5, 0.0, 40.0)
        assert mshr.in_flight(5, now=10.0)
        assert not mshr.in_flight(5, now=50.0)
        assert mshr.completion_of(5) == 40.0

    def test_reset(self):
        mshr = MSHRFile(2)
        mshr.allocate(1, 0.0, 10.0)
        mshr.reset()
        assert mshr.allocations == 0
        assert mshr.outstanding(0.0) == 0

    def test_zero_capacity_rejected(self):
        with pytest.raises(ConfigError):
            MSHRFile(0)


class TestStats:
    def test_hit_rate_zero_when_empty(self):
        assert CacheStats().hit_rate == 0.0

    def test_merge_sums_counters(self):
        a = CacheStats(demand_hits=3, demand_misses=1)
        b = CacheStats(demand_hits=1, demand_misses=1, evictions=2)
        merged = a.merge(b)
        assert merged.demand_hits == 4
        assert merged.demand_misses == 2
        assert merged.evictions == 2

    def test_prefetch_accuracy(self):
        stats = CacheStats(prefetch_fills=10, prefetch_useful=7)
        assert stats.prefetch_accuracy == pytest.approx(0.7)

    def test_reset(self):
        stats = CacheStats(demand_hits=5)
        stats.reset()
        assert stats.demand_hits == 0

    def test_hierarchy_stats_record_and_fractions(self):
        h = HierarchyStats()
        h.record("l1", 5.0)
        h.record("dram", 290.0)
        assert h.demand_accesses == 2
        assert h.hit_fraction("l1") == pytest.approx(0.5)
        assert h.avg_load_latency == pytest.approx(147.5)

    def test_hierarchy_stats_merge(self):
        a = HierarchyStats()
        a.record("l1", 5.0)
        b = HierarchyStats()
        b.record("l1", 5.0)
        b.record("l2", 14.0)
        merged = a.merge(b)
        assert merged.demand_accesses == 3
        assert merged.level_hits["l1"] == 2
