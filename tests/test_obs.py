"""Unit tests for the repro.obs telemetry layer."""

import json
import math

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.obs import hooks as obs_hooks
from repro.obs.cpi import (
    CPI_BUCKETS,
    CpiStack,
    collect_cpi_stacks,
    dense_cpi_stack,
    embedding_cpi_stack,
    format_cpi_table,
    publish_cpi_stack,
)
from repro.obs.hooks import Observation, session
from repro.obs.metrics import LOG2_MAX, LOG2_MIN, Histogram, MetricsRegistry
from repro.obs.schema import validate
from repro.obs.tracer import SIM_PID, WALL_PID, Tracer


# -- tracer ------------------------------------------------------------------


def test_wall_spans_nest_and_record_depth():
    tracer = Tracer()
    with tracer.span("outer", "test"):
        with tracer.span("inner", "test", key="v"):
            pass
    inner, outer = tracer.events  # inner closes (and records) first
    assert inner.name == "inner"
    assert inner.args["depth"] == 2
    assert inner.args["key"] == "v"
    assert outer.name == "outer"
    assert outer.args["depth"] == 1
    assert outer.pid == WALL_PID
    # The outer span brackets the inner one.
    assert outer.ts <= inner.ts
    assert outer.ts + outer.dur >= inner.ts + inner.dur


def test_sim_tracks_get_distinct_tids():
    tracer = Tracer()
    t1 = tracer.new_sim_track("a")
    t2 = tracer.new_sim_track("b")
    assert t1 != t2
    tracer.add_sim_span("work", "sim.test", 100.0, 50.0, tid=t1, args={"n": 1})
    span = tracer.find("work")[0]
    assert span.pid == SIM_PID
    assert span.ts == 100.0
    assert span.dur == 50.0
    assert span.args == {"n": 1}


def test_tracer_bounded_and_reports_drops():
    tracer = Tracer(max_events=2)
    for i in range(5):
        tracer.add_sim_span(f"s{i}", "sim.test", 0.0, 1.0)
    assert len(tracer) == 2
    assert tracer.dropped == 3
    assert tracer.chrome_dict()["otherData"]["dropped_events"] == 3


def test_chrome_export_shape(tmp_path):
    tracer = Tracer()
    with tracer.span("run", "test"):
        pass
    tid = tracer.new_sim_track("core0")
    tracer.add_sim_span("batch", "sim.test", 0.0, 10.0, tid=tid)
    path = tmp_path / "t.json"
    assert tracer.to_chrome(path) == len(tracer.events)
    payload = json.loads(path.read_text())
    events = payload["traceEvents"]
    # Two process_name metadata records lead, then the spans.
    assert [e["ph"] for e in events[:2]] == ["M", "M"]
    assert {e["pid"] for e in events[:2]} == {WALL_PID, SIM_PID}
    assert all(e["ph"] in ("X", "M") for e in events)
    # The tracer_stats metadata event carries the drop accounting in-band.
    stats = next(e for e in events if e["name"] == "tracer_stats")
    assert stats["args"]["recorded_events"] == len(tracer.events)
    assert stats["args"]["dropped_events"] == 0
    jsonl = tmp_path / "t.jsonl"
    assert tracer.to_jsonl(jsonl) == len(tracer.events)
    meta, *lines = [json.loads(line) for line in jsonl.read_text().splitlines()]
    assert meta["kind"] == "trace_meta"
    assert meta["recorded_events"] == len(tracer.events)
    assert meta["dropped_events"] == 0
    assert {rec["track"] for rec in lines} == {"wall", "sim"}


# -- histogram ---------------------------------------------------------------


def test_bucket_index_half_open_log2_intervals():
    # Bucket of value v covers [2**(e-1), 2**e); powers of two start a bucket.
    assert Histogram.bucket_index(8.0) == Histogram.bucket_index(15.9)
    assert Histogram.bucket_index(8.0) != Histogram.bucket_index(7.9)
    idx = Histogram.bucket_index(8.0)
    assert Histogram.bucket_upper_bound(idx) == 16.0
    # Underflow bucket catches tiny, zero, and negative values.
    assert Histogram.bucket_index(2.0**LOG2_MIN / 2) == 0
    assert Histogram.bucket_index(0.0) == 0
    assert Histogram.bucket_index(-5.0) == 0
    # Clamp at the top.
    assert Histogram.bucket_index(2.0 ** (LOG2_MAX + 3)) == Histogram.NUM_BUCKETS - 1


def test_observe_many_matches_scalar_observe(rng):
    values = rng.lognormal(3.0, 2.0, size=500)
    scalar, vector = Histogram(), Histogram()
    for v in values:
        scalar.observe(v)
    vector.observe_many(values)
    np.testing.assert_array_equal(scalar.buckets, vector.buckets)
    assert scalar.count == vector.count
    assert math.isclose(scalar.sum, vector.sum)
    assert scalar.min == vector.min
    assert scalar.max == vector.max


def test_percentile_properties(rng):
    hist = Histogram()
    assert hist.percentile(50.0) == 0.0  # empty => 0.0 convention
    values = rng.uniform(1.0, 1000.0, size=2000)
    hist.observe_many(values)
    p50, p95, p99 = (hist.percentile(q) for q in (50.0, 95.0, 99.0))
    assert p50 <= p95 <= p99
    assert hist.min <= p50 and p99 <= hist.max
    # Log2 buckets bound the relative error of any percentile by 2x.
    exact = float(np.percentile(values, 95.0))
    assert exact / 2.0 <= p95 <= exact * 2.0
    with pytest.raises(ConfigError):
        hist.percentile(101.0)


def test_histogram_merge():
    a, b = Histogram(), Histogram()
    a.observe_many(np.array([1.0, 10.0, 100.0]))
    b.observe_many(np.array([5.0, 50.0]))
    merged = a.merge(b)
    assert merged.count == 5
    assert merged.min == 1.0
    assert merged.max == 100.0
    assert merged.buckets.sum() == 5


def test_histogram_snapshot_sparse():
    hist = Histogram("lat", (("stage", "emb"),))
    hist.observe(3.0)
    snap = hist.snapshot()
    assert snap["type"] == "histogram"
    assert snap["labels"] == {"stage": "emb"}
    assert snap["count"] == 1
    assert list(snap["buckets"].values()) == [1]
    assert snap["p50"] > 0.0


# -- registry ----------------------------------------------------------------


def test_registry_get_or_create_identity():
    reg = MetricsRegistry()
    c1 = reg.counter("mem.hits", level="l1")
    c1.inc(3)
    assert reg.counter("mem.hits", level="l1") is c1
    assert reg.counter("mem.hits", level="l2") is not c1
    assert reg.value("mem.hits", level="l1") == 3.0
    assert reg.value("mem.hits", level="l9") is None
    assert len(reg.find("mem.hits")) == 2


def test_registry_type_conflict_raises():
    reg = MetricsRegistry()
    reg.counter("x")
    with pytest.raises(ConfigError):
        reg.gauge("x")


def test_counter_rejects_negative():
    reg = MetricsRegistry()
    with pytest.raises(ConfigError):
        reg.counter("x").inc(-1.0)


def test_registry_jsonl_roundtrip(tmp_path):
    reg = MetricsRegistry()
    reg.counter("a.b", k="v").inc(2)
    reg.gauge("c").set(1.5)
    reg.histogram("d").observe(4.0)
    path = tmp_path / "m.jsonl"
    assert reg.to_jsonl(path) == 3
    records = [json.loads(line) for line in path.read_text().splitlines()]
    assert [r["name"] for r in records] == ["a.b", "c", "d"]  # sorted
    assert records[0]["value"] == 2.0


# -- CPI stacks --------------------------------------------------------------


def test_embedding_cpi_stack_partitions_exactly():
    stack = embedding_cpi_stack(
        "embedding",
        total_cycles=1_000_000.0,
        issue_cycles=100_000.0,
        level_hits={"l1": 500, "l3": 300, "dram": 200},
        l3_latency=50.0,
        dram_latency=290.0,
    )
    stack.check(rel_tol=1e-6)
    assert math.isclose(sum(stack.buckets.values()), 1_000_000.0, rel_tol=1e-9)
    assert stack.buckets["retire"] == 100_000.0
    assert stack.buckets["l1_bound"] == 0.0  # pipelined hits never stall
    assert stack.buckets["dram_bound"] > stack.buckets["l3_bound"]
    fractions = stack.fractions()
    assert math.isclose(sum(fractions.values()), 1.0, rel_tol=1e-9)


def test_embedding_cpi_stack_edge_cases():
    # Issue time exceeding the total clamps to all-retire.
    clamped = embedding_cpi_stack("e", 100.0, 500.0, {"l1": 1}, 50.0, 290.0)
    assert clamped.buckets["retire"] == 100.0
    clamped.check()
    # No off-chip hits: the stall residual is charged to DRAM.
    no_offchip = embedding_cpi_stack("e", 100.0, 40.0, {"l1": 10}, 50.0, 290.0)
    assert no_offchip.buckets["dram_bound"] == 60.0
    no_offchip.check()
    zero = embedding_cpi_stack("e", 0.0, 0.0, {}, 50.0, 290.0)
    assert zero.total_cycles == 0.0


def test_dense_cpi_stack():
    stack = dense_cpi_stack("top_mlp", 1000.0, 0.3)
    stack.check(rel_tol=1e-6)
    assert stack.buckets["retire"] == 700.0
    assert stack.buckets["l2_bound"] == 150.0
    assert stack.buckets["l3_bound"] == 150.0
    with pytest.raises(ConfigError):
        dense_cpi_stack("x", 100.0, 1.5)


def test_cpi_publish_collect_roundtrip():
    reg = MetricsRegistry()
    publish_cpi_stack(reg, dense_cpi_stack("top_mlp", 1000.0, 0.3))
    publish_cpi_stack(reg, dense_cpi_stack("bottom_mlp", 4000.0, 0.1))
    publish_cpi_stack(reg, dense_cpi_stack("top_mlp", 1000.0, 0.3))  # accumulates
    stacks = collect_cpi_stacks(reg)
    assert [s.stage for s in stacks] == ["bottom_mlp", "top_mlp"]  # largest first
    assert stacks[1].total_cycles == 2000.0
    for stack in stacks:
        stack.check(rel_tol=1e-6)
    table = format_cpi_table(stacks)
    assert "bottom_mlp" in table and "dram_bound" in table
    assert format_cpi_table([]) == "(no CPI data recorded)"


def test_cpi_check_rejects_bad_partition():
    bad = CpiStack("x", 100.0, {name: 0.0 for name in CPI_BUCKETS})
    with pytest.raises(ConfigError):
        bad.check()


# -- hooks -------------------------------------------------------------------


def test_session_installs_and_restores():
    assert obs_hooks.active() is None
    with session() as obs:
        assert obs_hooks.active() is obs
        assert obs_hooks.enabled()
        inner = Observation()
        with session(inner):
            assert obs_hooks.active() is inner
        assert obs_hooks.active() is obs
    assert obs_hooks.active() is None


# -- schema validator --------------------------------------------------------


def test_schema_validates_real_trace(tmp_path):
    tracer = Tracer()
    with tracer.span("run", "test"):
        pass
    tracer.add_sim_span("batch", "sim.test", 0.0, 10.0, tid=tracer.new_sim_track())
    schema = json.loads(
        (__import__("pathlib").Path(__file__).parent.parent / "tools" / "trace_schema.json")
        .read_text()
    )
    assert validate(tracer.chrome_dict(), schema) == []


def test_schema_reports_violations():
    schema = {
        "type": "object",
        "required": ["a"],
        "properties": {
            "a": {"type": "array", "minItems": 1, "items": {"type": "integer"}},
            "b": {"type": "string", "enum": ["x", "y"]},
        },
    }
    assert validate({"a": [1, 2]}, schema) == []
    assert validate({}, schema)  # missing required
    assert validate({"a": []}, schema)  # minItems
    assert validate({"a": [1.5]}, schema)  # items type
    assert validate({"a": [1], "b": "z"}, schema)  # enum
    assert validate({"a": [True]}, schema)  # bool is not an integer
    assert validate("nope", schema)  # root type
