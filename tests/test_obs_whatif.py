"""Counterfactual what-if engine: re-timing accuracy, bounds, records."""

import json
from dataclasses import replace

import numpy as np
import pytest

from repro.config import SimConfig
from repro.obs import hooks as obs_hooks
from repro.obs.hooks import Observation
from repro.obs.requests import RequestLog
from repro.obs.schema import validate_def
from repro.obs.whatif import (
    KNOBS,
    percentile,
    predict,
    whatif_record,
    within_bounds,
)
from repro.serving.cluster import ClusterConfig, ClusterSim
from repro.serving.faults import ClusterFaultPlan, NodeCrash, NodeSlow
from repro.serving.router import HedgePolicy
from repro.serving.workload import poisson_arrivals

SCHEMA = json.loads(open("tools/trace_schema.json").read())

N_REQUESTS = 1200
INTERARRIVAL = 0.9
HORIZON = N_REQUESTS * INTERARRIVAL


def _arrivals():
    rng = SimConfig(seed=7).rng("whatif:arr")
    return poisson_arrivals(INTERARRIVAL, N_REQUESTS, rng)


def _noisy_config():
    """The slow-node scenario: hedges fire, no crash, replication 2."""
    return ClusterConfig(
        num_nodes=4, cores_per_node=4, mean_service_ms=2.0, num_shards=8,
        replication=2, gather_width=2, hop_ms=0.1, call_timeout_ms=50.0,
        deadline_ms=100.0, placement="striped", routing="least_loaded",
        hedge=HedgePolicy(quantile=95.0, min_ms=12.0, window=128),
        faults=ClusterFaultPlan(
            [NodeSlow(0, 0.13 * HORIZON, 0.40 * HORIZON, factor=6.0)],
            seed=78,
        ),
        seed=78, label="t:whatif:noisy",
    )


def _kill_config():
    """The node-kill scenario: replication 1, failovers and misses."""
    return ClusterConfig(
        num_nodes=4, cores_per_node=4, mean_service_ms=2.0, num_shards=8,
        replication=1, gather_width=2, hop_ms=0.1, call_timeout_ms=25.0,
        deadline_ms=100.0, placement="striped", routing="least_loaded",
        faults=ClusterFaultPlan(
            [NodeCrash(1, 0.11 * HORIZON, 0.27 * HORIZON)], seed=77
        ),
        seed=77, label="t:whatif:kill",
    )


def _observed_records(config):
    obs = Observation(requests=RequestLog())
    with obs_hooks.session(obs):
        ClusterSim(config).run(_arrivals())
    return obs.requests.runs[-1].records


def _rerun_p99(config):
    result = ClusterSim(config).run(_arrivals())
    lat = result.request_latency_ms
    return float(np.percentile(lat[np.isfinite(lat)], 99.0))


class TestPercentile:
    def test_matches_numpy_linear_interpolation(self):
        rng = np.random.default_rng(3)
        values = rng.exponential(2.0, size=257).tolist()
        for q in (50.0, 90.0, 99.0):
            assert percentile(values, q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_degenerate_inputs(self):
        assert percentile([], 99.0) == 0.0
        assert percentile([4.2], 99.0) == 4.2


class TestBounds:
    def test_exact_match_is_in_bounds(self):
        assert within_bounds("t", 10.0, 10.0)

    def test_large_miss_is_out_of_bounds(self):
        assert not within_bounds("t", 10.0, 14.0, rel_threshold=0.25)
        assert not within_bounds("t", 14.0, 10.0, rel_threshold=0.25)

    def test_noise_floor_absorbs_small_absolute_misses(self):
        assert not within_bounds("t", 1.0, 1.5, rel_threshold=0.25)
        assert within_bounds(
            "t", 1.0, 1.5, rel_threshold=0.25, noise_floor=0.6
        )


class TestPredict:
    def test_unknown_knob_raises(self):
        with pytest.raises(ValueError, match="unknown what-if knob"):
            predict([], _noisy_config(), "magic", 1.0)
        assert "hedge_min_ms" in KNOBS

    def test_baseline_is_logged_p99(self):
        config = _noisy_config()
        records = _observed_records(config)
        pred = predict(records, config, "hedge_min_ms", 6.0)
        logged = [
            r["latency_ms"] for r in records if r["latency_ms"] is not None
        ]
        assert pred.baseline == pytest.approx(
            float(np.percentile(logged, 99.0))
        )
        assert pred.metric == "p99_ms"
        assert pred.requests == len(logged)

    def test_hedge_floor_prediction_matches_rerun(self):
        config = _noisy_config()
        pred = predict(
            _observed_records(config), config, "hedge_min_ms", 6.0
        )
        actual = _rerun_p99(
            replace(config, hedge=replace(config.hedge, min_ms=6.0))
        )
        assert within_bounds(
            "hedge", actual, pred.predicted,
            rel_threshold=0.25, noise_floor=0.15 * actual,
        )

    def test_replication_delta_prediction_matches_rerun(self):
        config = _kill_config()
        pred = predict(
            _observed_records(config), config, "replication_delta", 1.0
        )
        actual = _rerun_p99(replace(config, replication=2))
        assert within_bounds(
            "repl", actual, pred.predicted,
            rel_threshold=0.25, noise_floor=0.15 * actual,
        )

    def test_gather_width_prediction_matches_rerun(self):
        config = _kill_config()
        pred = predict(
            _observed_records(config), config, "gather_width", 1.0
        )
        actual = _rerun_p99(replace(config, gather_width=1))
        assert within_bounds(
            "gather", actual, pred.predicted,
            rel_threshold=0.25, noise_floor=0.15 * actual,
        )

    def test_extra_cores_is_estimate_only_and_helps(self):
        config = _noisy_config()
        pred = predict(
            _observed_records(config), config, "extra_cores", 4.0
        )
        assert pred.estimated  # never gated: queue-scaling heuristic
        assert pred.predicted <= pred.baseline

    def test_prediction_is_deterministic(self):
        config = _noisy_config()
        records = _observed_records(config)
        a = predict(records, config, "hedge_min_ms", 6.0)
        b = predict(records, config, "hedge_min_ms", 6.0)
        assert a.predicted == b.predicted
        assert a.latencies_ms == b.latencies_ms


class TestRecords:
    def test_whatif_record_is_schema_valid(self):
        config = _noisy_config()
        pred = predict(
            _observed_records(config), config, "hedge_min_ms", 6.0
        )
        rec = whatif_record(
            pred, scenario="noisy", actual=pred.predicted, in_bounds=True
        )
        assert validate_def(rec, SCHEMA, "whatif_record") == []

    def test_record_allows_unvalidated_predictions(self):
        config = _noisy_config()
        pred = predict(
            _observed_records(config), config, "extra_cores", 4.0
        )
        rec = whatif_record(pred, scenario="noisy")
        assert rec["actual"] is None
        assert rec["within_bounds"] is None
        assert validate_def(rec, SCHEMA, "whatif_record") == []
