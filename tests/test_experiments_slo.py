"""SLO observatory experiment tests: the ISSUE acceptance criteria."""

import json

import pytest

from repro.config import SimConfig
from repro.experiments.registry import EXPERIMENT_IDS, run_experiment
from repro.experiments.runner import main
from repro.experiments.slo_observatory import run as run_observatory
from repro.obs.schema import validate_def

SCHEMA = json.loads(open("tools/trace_schema.json").read())

#: Small-but-meaningful smoke configuration (seconds, not minutes).
_SMALL = dict(
    scale=0.01, batch_size=8, num_batches=2, num_requests=1500
)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    path = tmp_path_factory.mktemp("slo") / "slo.jsonl"
    rep = run_observatory(
        config=SimConfig(seed=1234), slo_log=str(path), **_SMALL
    )
    return rep, path


class TestAcceptance:
    """The PR's acceptance bar, locked."""

    def test_registered(self):
        assert "slo_observatory" in EXPERIMENT_IDS

    def test_every_fault_window_detected(self, report):
        rep, _ = report
        summaries = [
            r for r in rep.rows
            if r["kind"] == "summary" and r["scenario"] != "none"
        ]
        assert summaries
        for row in summaries:
            assert row["windows"] > 0
            assert row["detected"] == row["windows"]
            assert row["recall"] == 1.0

    def test_precision_at_least_09_with_finite_mttd(self, report):
        rep, _ = report
        for row in rep.rows:
            if row["kind"] != "detection":
                continue
            assert row["precision"] >= 0.9
            assert row["mttd_ms"] is not None
            assert 0.0 <= row["mttd_ms"] < float("inf")

    def test_all_fault_classes_scored(self, report):
        rep, _ = report
        classes = {
            r["name"] for r in rep.rows if r["kind"] == "detection"
        }
        assert classes == {"node_crash", "node_partition", "node_slow"}

    def test_budget_burns_in_fault_windows_and_recovers(self, report):
        rep, _ = report
        kill = next(
            r for r in rep.rows
            if r["kind"] == "summary" and r["scenario"] == "node_kill"
        )
        assert kill["burn_in"] > 1.0
        assert kill["burn_in"] > 2.0 * kill["burn_out"]

    def test_quiet_scenario_stays_quiet(self, report):
        rep, _ = report
        for row in rep.rows:
            if row["scenario"] != "none":
                continue
            if row["kind"] == "slo":
                assert row["alerts"] == 0
                assert row["budget_final"] == pytest.approx(1.0)
            if row["kind"] == "summary":
                assert row["alerts"] == 0

    def test_headline_note_present(self, report):
        rep, _ = report
        assert any("every injected fault window" in n for n in rep.notes)


class TestSloLog:
    def test_lines_schema_valid(self, report):
        _, path = report
        lines = [
            json.loads(l) for l in path.read_text().splitlines() if l.strip()
        ]
        assert lines[0]["kind"] == "slo_log_meta"
        assert lines[0]["lines"] == len(lines) - 1 > 0
        kinds = {"slo_state": "slo_state", "alert": "alert_event"}
        seen = set()
        for rec in lines[1:]:
            seen.add(rec["kind"])
            assert validate_def(rec, SCHEMA, kinds[rec["kind"]]) == []
        assert seen == {"slo_state", "alert"}

    def test_alerts_cover_both_sources(self, report):
        _, path = report
        sources = {
            json.loads(l)["source"]
            for l in path.read_text().splitlines()
            if l.strip() and json.loads(l).get("kind") == "alert"
        }
        assert sources == {"slo_burn", "detector"}


class TestDeterminism:
    def test_rows_byte_stable(self, report):
        rep, _ = report
        again = run_observatory(config=SimConfig(seed=1234), **_SMALL)
        assert json.dumps(rep.rows, sort_keys=True) == json.dumps(
            again.rows, sort_keys=True
        )

    def test_seed_changes_rows(self):
        a = run_observatory(config=SimConfig(seed=1), **_SMALL)
        b = run_observatory(config=SimConfig(seed=2), **_SMALL)
        assert json.dumps(a.rows) != json.dumps(b.rows)


_CLUSTER_SMALL = [
    "cluster_resilience", "--scale", "0.01", "--batch-size", "8",
    "--num-batches", "1", "--num-nodes", "3", "--replication", "2",
    "--num-requests", "400",
]


class TestRunnerIntegration:
    def test_slo_log_flag_forwarded_and_written(self, tmp_path, capsys):
        log = tmp_path / "slo.jsonl"
        args = [
            "slo_observatory", "--scale", "0.01", "--batch-size", "8",
            "--num-batches", "1", "--num-requests", "400",
            "--slo-log", str(log),
        ]
        assert main(args) == 0
        lines = log.read_text().splitlines()
        assert json.loads(lines[0])["kind"] == "slo_log_meta"
        assert len(lines) > 1

    def test_slo_log_run_bypasses_cache(self, tmp_path, monkeypatch, capsys):
        from repro.experiments.runner import CACHE_DIR

        monkeypatch.chdir(tmp_path)
        args = [
            "slo_observatory", "--scale", "0.01", "--batch-size", "8",
            "--num-batches", "1", "--num-requests", "400",
        ]
        assert main(args + ["--cache"]) == 0
        assert list((tmp_path / CACHE_DIR).glob("*.json"))
        capsys.readouterr()
        log = tmp_path / "slo.jsonl"
        assert main(args + ["--cache", "--slo-log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "cached" not in out
        assert log.exists()

    def test_cluster_request_log_deterministic_across_jobs(
        self, tmp_path, capsys
    ):
        """Merged multi-node request logs are byte-identical at any --jobs."""
        exports = []
        for jobs in ("1", "3"):
            log = tmp_path / f"req{jobs}.jsonl"
            assert main(
                _CLUSTER_SMALL + ["--jobs", jobs, "--request-log", str(log)]
            ) == 0
            exports.append(log.read_bytes())
        assert exports[0] == exports[1]

    def test_deterministic_report_via_registry(self):
        rows = []
        for _ in range(2):
            rep = run_experiment(
                "slo_observatory", config=SimConfig(seed=7), **_SMALL
            )
            rows.append(json.dumps(rep.rows, sort_keys=True))
        assert rows[0] == rows[1]
