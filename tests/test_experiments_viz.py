"""Terminal visualization tests."""

import pytest

from repro.errors import ConfigError
from repro.experiments.base import ExperimentReport
from repro.experiments.viz import (
    bar_chart,
    grouped_bars,
    render_report_plot,
    sparkline,
)


class TestBarChart:
    def test_peak_bar_is_full_width(self):
        chart = bar_chart(["a", "b"], [1.0, 2.0], width=10)
        lines = chart.splitlines()
        assert lines[1].count("█") == 10
        assert lines[0].count("█") == 5

    def test_labels_aligned(self):
        chart = bar_chart(["x", "longer"], [1, 1], width=8)
        starts = [line.index("█") for line in chart.splitlines()]
        assert starts[0] == starts[1]

    def test_baseline_marker_present(self):
        chart = bar_chart(["a"], [2.0], width=20, baseline=1.0)
        assert "|" in chart

    def test_values_printed(self):
        chart = bar_chart(["a"], [1.51], width=8, unit="x")
        assert "1.51x" in chart

    def test_validation(self):
        with pytest.raises(ConfigError):
            bar_chart(["a"], [1, 2])
        with pytest.raises(ConfigError):
            bar_chart(["a"], [1.0], width=2)

    def test_empty(self):
        assert bar_chart([], []) == "(no data)"

    def test_all_zero_values_safe(self):
        chart = bar_chart(["a", "b"], [0.0, 0.0], width=10)
        assert "█" not in chart


class TestGroupedBars:
    def test_groups_rendered(self):
        out = grouped_bars({"g1": {"a": 1.0}, "g2": {"b": 2.0}})
        assert "g1:" in out and "g2:" in out
        assert out.splitlines()[1].startswith("  ")

    def test_empty(self):
        assert grouped_bars({}) == "(no data)"


class TestSparkline:
    def test_monotone_series(self):
        line = sparkline([1, 2, 3, 4])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series(self):
        assert sparkline([5, 5, 5]) == "▄▄▄"

    def test_log_scale_compresses_decades(self):
        linear = sparkline([1, 10, 100, 1000])
        logscale = sparkline([1, 10, 100, 1000], log=True)
        # On a log scale the steps are even; linearly the first three
        # collapse to the bottom glyph.
        assert linear[:2] == "▁▁"
        assert logscale == "▁▃▆█" or logscale[1] != "▁"

    def test_empty(self):
        assert sparkline([]) == ""


class TestRenderReportPlot:
    def make_report(self):
        return ExperimentReport(
            "x", "t",
            rows=[
                {"model": "rm2_1", "dataset": "low", "sw_pf_speedup": 1.7},
                {"model": "rm2_1", "dataset": "high", "sw_pf_speedup": 1.5},
            ],
        )

    def test_prefers_speedup_column_with_baseline(self):
        out = render_report_plot(self.make_report())
        assert "[sw_pf_speedup]" in out
        assert "|" in out  # the 1.0 baseline mark
        assert "rm2_1 low" in out

    def test_explicit_column(self):
        report = ExperimentReport("x", "t", rows=[{"m": "a", "ms": 3.0}])
        out = render_report_plot(report, value_column="ms")
        assert "[ms]" in out

    def test_no_rows(self):
        assert render_report_plot(ExperimentReport("x", "t")) == "(no rows)"

    def test_no_numeric_columns(self):
        report = ExperimentReport("x", "t", rows=[{"m": "a"}])
        assert "no numeric" in render_report_plot(report)


def test_runner_plot_flag(capsys):
    from repro.experiments.runner import main

    assert main(["table2", "--plot"]) == 0
    out = capsys.readouterr().out
    assert "█" in out
