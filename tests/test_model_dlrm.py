"""End-to-end DLRM model tests."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.model.configs import get_model
from repro.model.dlrm import DLRM
from repro.trace.production import make_trace


@pytest.fixture(scope="module")
def small_dlrm():
    return DLRM.from_config(get_model("rm1"), SimConfig(seed=3), scale=0.01)


@pytest.fixture(scope="module")
def small_batches(small_dlrm):
    cfg = small_dlrm.config
    trace = make_trace(
        "low", cfg.num_tables, cfg.rows, batch_size=4, num_batches=1,
        lookups_per_sample=cfg.lookups_per_sample, config=SimConfig(seed=3),
    )
    return trace.batches[0]


def test_from_config_scales_rows(small_dlrm):
    assert small_dlrm.config.rows < get_model("rm1").rows


def test_forward_produces_probabilities(small_dlrm, small_batches):
    dense = small_dlrm.random_dense_batch(4)
    out = small_dlrm(dense, small_batches)
    assert out.shape == (4,)
    assert np.all(out > 0) and np.all(out < 1)


def test_forward_is_deterministic(small_dlrm, small_batches):
    dense = small_dlrm.random_dense_batch(4, rng=np.random.default_rng(7))
    a = small_dlrm(dense, small_batches)
    b = small_dlrm(dense, small_batches)
    assert np.array_equal(a, b)


def test_different_inputs_give_different_outputs(small_dlrm, small_batches):
    a = small_dlrm(small_dlrm.random_dense_batch(4, np.random.default_rng(1)), small_batches)
    b = small_dlrm(small_dlrm.random_dense_batch(4, np.random.default_rng(2)), small_batches)
    assert not np.allclose(a, b)


def test_stage_shapes(small_dlrm, small_batches):
    cfg = small_dlrm.config
    dense = small_dlrm.random_dense_batch(4)
    bottom = small_dlrm.run_bottom_mlp(dense)
    assert bottom.shape == (4, cfg.embedding_dim)
    embs = small_dlrm.run_embedding(small_batches)
    assert len(embs) == cfg.num_tables
    assert all(e.shape == (4, cfg.embedding_dim) for e in embs)
    interacted = small_dlrm.run_interaction(bottom, embs)
    out = small_dlrm.run_top_mlp(interacted)
    assert out.shape == (4,)


def test_dense_width_checked(small_dlrm, small_batches):
    with pytest.raises(ConfigError):
        small_dlrm(np.ones((4, 3), dtype=np.float32), small_batches)


def test_batch_size_consistency_checked(small_dlrm, small_batches):
    dense = small_dlrm.random_dense_batch(5)  # trace has batch 4
    with pytest.raises(ConfigError):
        small_dlrm(dense, small_batches)


def test_table_count_checked(small_dlrm, small_batches):
    dense = small_dlrm.random_dense_batch(4)
    with pytest.raises(ConfigError):
        small_dlrm(dense, small_batches[:1])


def test_same_seed_same_model_weights():
    a = DLRM.from_config(get_model("rm1"), SimConfig(seed=5), scale=0.01)
    b = DLRM.from_config(get_model("rm1"), SimConfig(seed=5), scale=0.01)
    assert np.array_equal(a.tables[0].weight, b.tables[0].weight)
    assert np.array_equal(
        a.bottom_mlp.layers[0].weight, b.bottom_mlp.layers[0].weight
    )
