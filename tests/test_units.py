"""Unit-helper tests."""

import math

import pytest

from repro import units


def test_kib_mib_gib_are_binary_multiples():
    assert units.kib(1) == 1024
    assert units.mib(1) == 1024**2
    assert units.gib(1) == 1024**3
    assert units.mib(35.75) == int(35.75 * 1024 * 1024)


def test_cycles_to_ms_round_trips_with_ms_to_cycles():
    freq = 2.4e9
    ms = 12.5
    cycles = units.ms_to_cycles(ms, freq)
    assert units.cycles_to_ms(cycles, freq) == pytest.approx(ms)


def test_cycles_to_ms_rejects_nonpositive_frequency():
    with pytest.raises(ValueError):
        units.cycles_to_ms(100, 0)
    with pytest.raises(ValueError):
        units.ms_to_cycles(1.0, -1)


def test_ns_to_cycles_at_known_frequency():
    # 100ns at 2.4GHz = 240 cycles.
    assert units.ns_to_cycles(100, 2.4e9) == pytest.approx(240.0)


def test_lines_for_bytes_rounds_up():
    assert units.lines_for_bytes(1) == 1
    assert units.lines_for_bytes(64) == 1
    assert units.lines_for_bytes(65) == 2
    assert units.lines_for_bytes(0) == 0


def test_lines_for_bytes_rejects_negative():
    with pytest.raises(ValueError):
        units.lines_for_bytes(-1)


def test_embedding_row_geometry_matches_paper_example():
    # The paper's running example: dim=128 fp32 = 512 B = 8 lines.
    assert units.embedding_row_bytes(128) == 512
    assert units.embedding_row_lines(128) == 8
    # RM1's dim=64 = 256 B = 4 lines.
    assert units.embedding_row_lines(64) == 4


def test_embedding_row_rejects_bad_dim():
    with pytest.raises(ValueError):
        units.embedding_row_bytes(0)


def test_gb_per_s_is_decimal():
    assert units.gb_per_s(140) == 140e9


def test_pretty_bytes_picks_sensible_suffix():
    assert units.pretty_bytes(512) == "512 B"
    assert units.pretty_bytes(units.kib(32)) == "32.0 KiB"
    assert units.pretty_bytes(units.mib(35.75)).endswith("MiB")
    assert units.pretty_bytes(units.gib(28.6)).endswith("GiB")


def test_paper_l1_capacity_in_vectors():
    # 32 KiB L1D holds 64 dim-128 vectors (Section 4.2's arithmetic).
    assert units.kib(32) // units.embedding_row_bytes(128) == 64
