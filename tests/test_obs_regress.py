"""Benchmark records and the deterministic regression gate."""

import json
from pathlib import Path

import pytest

from repro.errors import ConfigError
from repro.obs.regress import (
    Benchmark,
    append_record,
    compare,
    format_regressions,
    last_record,
    load_history,
    make_record,
    median,
)
from repro.obs.schema import validate_def

SCHEMA_PATH = Path(__file__).parent.parent / "tools" / "trace_schema.json"


def _record(**values):
    benches = [
        Benchmark(name, value, "ms", direction="lower")
        for name, value in values.items()
    ]
    return make_record("test", 3, benches, timestamp="2026-01-01T00:00:00")


# -- building blocks ---------------------------------------------------------


def test_median_odd_even_and_empty():
    assert median([3.0, 1.0, 2.0]) == 2.0
    assert median([4.0, 1.0, 2.0, 3.0]) == 2.5
    assert median([7.0]) == 7.0
    with pytest.raises(ConfigError):
        median([])


def test_benchmark_validation():
    with pytest.raises(ConfigError):
        Benchmark("x", 1.0, "ms", direction="sideways")
    with pytest.raises(ConfigError):
        Benchmark("x", 1.0, "ms", kind="cpu")
    with pytest.raises(ConfigError):
        Benchmark("x", 1.0, "ms", noise_floor=-1.0)


def test_make_record_rejects_duplicates_and_bad_repeats():
    bench = Benchmark("a", 1.0, "ms")
    with pytest.raises(ConfigError):
        make_record("test", 3, [bench, bench])
    with pytest.raises(ConfigError):
        make_record("test", 0, [bench])


def test_record_validates_against_schema():
    record = make_record(
        "smoke",
        3,
        [
            Benchmark("sim.metric", 1.5, "x", direction="higher"),
            Benchmark(
                "wall.metric", 2.0, "s", direction="lower",
                noise_floor=0.3, kind="wall",
            ),
        ],
        host={"python": "3.11"},
    )
    schema = json.loads(SCHEMA_PATH.read_text())
    assert validate_def(record, schema, "bench_record") == []


# -- the gate ----------------------------------------------------------------


def test_identical_records_pass():
    record = _record(p95=30.0, p50=5.0)
    assert compare(record, record) == []


def test_twenty_percent_regression_flagged_by_name():
    base = _record(p95=30.0, p50=5.0)
    cand = _record(p95=37.5, p50=5.0)  # +25% on lower-is-better
    regressions = compare(base, cand, rel_threshold=0.2)
    assert [r.name for r in regressions] == ["p95"]
    text = format_regressions(regressions)
    assert "REGRESSION p95" in text
    assert "+25.0% worse" in text


def test_improvement_never_flags():
    base = _record(p95=30.0)
    cand = _record(p95=10.0)
    assert compare(base, cand) == []
    # higher-is-better: a higher candidate is an improvement too.
    base_h = make_record("t", 1, [Benchmark("speedup", 1.0, "x")])
    cand_h = make_record("t", 1, [Benchmark("speedup", 2.0, "x")])
    assert compare(base_h, cand_h) == []


def test_higher_is_better_direction():
    base = make_record("t", 1, [Benchmark("goodput", 1.0, "frac")])
    cand = make_record("t", 1, [Benchmark("goodput", 0.7, "frac")])
    regressions = compare(base, cand, rel_threshold=0.2)
    assert [r.name for r in regressions] == ["goodput"]
    assert regressions[0].delta_frac == pytest.approx(0.3)


def test_noise_floor_suppresses_tiny_absolute_deltas():
    def rec(value):
        return make_record(
            "t", 1,
            [Benchmark("p50", value, "ms", direction="lower", noise_floor=0.05)],
        )

    # +60% relative but only 0.03 ms absolute: under the floor, no flag.
    assert compare(rec(0.05), rec(0.08)) == []
    # Same relative move with a large absolute delta does flag.
    assert len(compare(rec(50.0), rec(80.0))) == 1


def test_wall_benchmarks_skipped_unless_included():
    def rec(value):
        return make_record(
            "t", 1,
            [Benchmark("tput", value, "l/s", direction="higher", kind="wall")],
        )

    base, cand = rec(100.0), rec(50.0)
    assert compare(base, cand) == []
    regressions = compare(base, cand, include_wall=True)
    assert [r.name for r in regressions] == ["tput"]


def test_added_or_retired_benchmarks_ignored():
    base = _record(p95=30.0, old=1.0)
    cand = _record(p95=30.0, new=99.0)
    assert compare(base, cand) == []


def test_format_regressions_worst_first():
    base = _record(a=10.0, b=10.0)
    cand = _record(a=15.0, b=30.0)
    lines = format_regressions(compare(base, cand)).splitlines()
    assert lines[0].startswith("REGRESSION b")
    assert lines[1].startswith("REGRESSION a")


# -- history file ------------------------------------------------------------


def test_history_roundtrip_and_offsets(tmp_path):
    path = tmp_path / "hist.jsonl"
    assert load_history(path) == []
    first, second = _record(p95=1.0), _record(p95=2.0)
    append_record(path, first)
    append_record(path, second)
    history = load_history(path)
    assert len(history) == 2
    assert last_record(history) == second
    assert last_record(history, offset=1) == first
    assert last_record(history, offset=2) is None


def test_history_skips_malformed_and_foreign_lines(tmp_path):
    path = tmp_path / "hist.jsonl"
    append_record(path, _record(p95=1.0))
    with open(path, "a") as fh:
        fh.write("{torn wri")  # torn tail write
        fh.write('\n{"kind": "something_else"}\n')
    history = load_history(path)
    assert len(history) == 1
    assert history[0]["benchmarks"]["p95"]["value"] == 1.0
