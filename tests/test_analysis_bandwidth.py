"""Bandwidth-boundedness reporting tests."""

import pytest

from repro.analysis.bandwidth import BandwidthReport, bandwidth_report, memory_boundedness
from repro.engine.multicore import run_embedding_multicore
from repro.errors import ConfigError
from repro.trace.production import make_trace


def test_report_arithmetic():
    report = BandwidthReport(
        memory_bound_fraction=0.8, achieved_gb_s=100.0, peak_gb_s=140.0
    )
    assert report.utilization == pytest.approx(100 / 140)
    assert report.headroom_gb_s == pytest.approx(40.0)
    assert report.motivates_prefetching


def test_saturated_channel_does_not_motivate():
    report = BandwidthReport(0.9, achieved_gb_s=135.0, peak_gb_s=140.0)
    assert not report.motivates_prefetching


def test_compute_bound_does_not_motivate():
    report = BandwidthReport(0.2, achieved_gb_s=30.0, peak_gb_s=140.0)
    assert not report.motivates_prefetching


def test_sockets_validated(csl, tiny_trace, tiny_amap):
    mc = run_embedding_multicore(
        tiny_trace, tiny_amap, csl, 2, detailed_cores=2, bandwidth_iterations=1
    )
    with pytest.raises(ConfigError):
        bandwidth_report(mc, csl, sockets_used=0)


def test_section_3_2_observation_reproduces(csl, tiny_model, sim_config, tiny_amap):
    """Low-hot at 24 cores: heavily memory bound, channel not saturated."""
    trace = make_trace(
        "low", tiny_model.num_tables, tiny_model.rows, 4, 4,
        tiny_model.lookups_per_sample, config=sim_config,
    )
    mc = run_embedding_multicore(trace, tiny_amap, csl, 24, detailed_cores=2)
    report = bandwidth_report(mc, csl)
    assert report.memory_bound_fraction > 0.6  # paper: ~80%
    assert report.utilization < 1.0
    assert report.motivates_prefetching or report.utilization > 0.85


def test_memory_boundedness_from_single_core(csl, tiny_trace, tiny_amap):
    from repro.engine.embedding_exec import run_embedding_trace
    from repro.mem.hierarchy import build_hierarchy

    result = run_embedding_trace(
        tiny_trace, tiny_amap, csl.core, build_hierarchy(csl.hierarchy)
    )
    assert 0.0 <= memory_boundedness(result) <= 1.0
    assert memory_boundedness(result) > 0.4  # low-hot is memory bound
