"""Request-scoped tracing: lifecycle records, causes, links, determinism."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.obs import RequestLog, attribute_miss, miss_attribution
from repro.obs.hooks import Observation, session
from repro.obs.requests import MISS_CAUSES
from repro.obs.schema import validate_def
from repro.serving.degradation import DegradationController, scheme_ladder
from repro.serving.faults import (
    ArrivalBurst,
    BandwidthDegradation,
    FaultPlan,
    Stragglers,
)
from repro.serving.server import ServingPolicy, simulate_server
from repro.serving.workload import poisson_arrivals

SCHEMA_PATH = Path(__file__).parent.parent / "tools" / "trace_schema.json"


def _arrivals(n=150, interarrival=1.5, seed=5):
    rng = np.random.default_rng(seed)
    return poisson_arrivals(interarrival, n, rng)


def _stressed_args():
    """A serving setup that sheds, times out, retries, and completes late."""
    arrivals = _arrivals()
    horizon = float(arrivals[-1])
    plan = FaultPlan(
        [
            BandwidthDegradation(0.2 * horizon, 0.7 * horizon, 3.0),
            ArrivalBurst(0.4 * horizon, 50, 0.2),
            Stragglers(0.1, 4.0, tail_alpha=1.5),
        ],
        seed=3,
    )
    policy = ServingPolicy(
        deadline_ms=8.0,
        timeout_ms=6.0,
        max_retries=1,
        retry_backoff_ms=2.0,
        max_queue_depth=6,
    )
    return arrivals, plan, policy


# -- recording ---------------------------------------------------------------


def test_fast_path_records_every_request():
    arrivals = _arrivals()
    baseline = simulate_server(arrivals, 4.0, 2, np.random.default_rng(1))
    with session(Observation(requests=RequestLog())) as obs:
        result = simulate_server(
            arrivals, 4.0, 2, np.random.default_rng(1), label="fast"
        )
    assert np.array_equal(baseline.latencies_ms, result.latencies_ms)
    records = obs.requests.records()
    assert len(records) == arrivals.size
    assert all(r["outcome"] == "completed" for r in records)
    assert all(r["cause"] is None for r in records)
    kinds = [e["kind"] for e in records[0]["events"]]
    assert kinds == ["arrive", "dispatch", "complete"]
    assert records[0]["label"] == "fast"
    # latency == wait + service holds per record.
    for r in records:
        assert r["latency_ms"] == pytest.approx(r["wait_ms"] + r["service_ms"])


def test_resilient_path_results_byte_identical_with_log_on():
    arrivals, plan, policy = _stressed_args()
    controller = DegradationController(
        scheme_ladder({"baseline": 1.0, "sw_pf": 0.8}), sla_ms=8.0
    )
    baseline = simulate_server(
        arrivals, 4.0, 2, np.random.default_rng(2),
        fault_plan=plan, policy=policy,
        controller=DegradationController(
            scheme_ladder({"baseline": 1.0, "sw_pf": 0.8}), sla_ms=8.0
        ),
    )
    with session(Observation(requests=RequestLog())) as obs:
        observed = simulate_server(
            arrivals, 4.0, 2, np.random.default_rng(2),
            fault_plan=plan, policy=policy, controller=controller,
            label="stressed",
        )
    assert baseline.latencies_ms.tobytes() == observed.latencies_ms.tobytes()
    assert baseline.outcomes.tobytes() == observed.outcomes.tobytes()
    assert baseline.retry_counts.tobytes() == observed.retry_counts.tobytes()
    assert obs.requests.num_requests == observed.offered_requests


def test_every_miss_has_cause_and_linked_span():
    """ISSUE acceptance: shed/timed-out => recorded cause + >=1 trace span."""
    arrivals, plan, policy = _stressed_args()
    with session(Observation(requests=RequestLog())) as obs:
        result = simulate_server(
            arrivals, 4.0, 2, np.random.default_rng(2),
            fault_plan=plan, policy=policy, label="stressed",
        )
    assert result.outcome_count("shed") > 0
    assert result.outcome_count("timed_out") > 0
    span_ids = {
        e.args.get("id")
        for e in obs.tracer.events
        if e.category == "serving.request"
    }
    for record in obs.requests.records():
        if record["outcome"] in ("shed", "timed_out"):
            assert record["cause"], record
            assert attribute_miss(record) in MISS_CAUSES
        assert record["id"] in span_ids


def test_dispatch_event_carries_scheme_and_level():
    arrivals, plan, policy = _stressed_args()
    controller = DegradationController(
        scheme_ladder({"baseline": 1.0, "sw_pf": 0.8}), sla_ms=8.0,
        window=16, min_samples=4, escalate_margin=0.5, recover_margin=0.2,
        cooldown=8,
    )
    with session(Observation(requests=RequestLog())) as obs:
        simulate_server(
            arrivals, 4.0, 2, np.random.default_rng(2),
            fault_plan=plan, policy=policy, controller=controller,
            label="ctl",
        )
    assert controller.events, "controller never changed level"
    dispatched = [
        r for r in obs.requests.records()
        if any(e["kind"] == "dispatch" for e in r["events"])
    ]
    schemes = {r["scheme"] for r in dispatched}
    assert "baseline" in schemes
    assert len(schemes) > 1  # some requests ran under a degraded scheme
    for r in dispatched:
        assert r["degradation_level"] is not None


def test_fault_windows_only_overlapping(monkeypatch):
    arrivals = _arrivals()
    horizon = float(arrivals[-1])
    window = (0.5 * horizon, 0.8 * horizon)
    plan = FaultPlan([BandwidthDegradation(*window, 4.0)], seed=1)
    with session(Observation(requests=RequestLog())) as obs:
        simulate_server(
            arrivals, 4.0, 2, np.random.default_rng(2),
            fault_plan=plan, policy=ServingPolicy(deadline_ms=8.0),
        )
    for r in obs.requests.records():
        overlaps = float(r["arrival_ms"]) <= window[1] and float(
            r["end_ms"]
        ) >= window[0]
        assert bool(r["fault_windows"]) == overlaps


# -- exemplar linkage --------------------------------------------------------


def test_latency_histogram_exemplars_reference_logged_requests():
    arrivals = _arrivals()
    with session(Observation(requests=RequestLog())) as obs:
        simulate_server(arrivals, 4.0, 2, np.random.default_rng(1))
    snap = obs.metrics.histogram("serving.latency_ms").snapshot()
    assert snap["count"] == arrivals.size
    exemplars = snap["exemplars"]
    assert exemplars, "no exemplar buckets recorded"
    logged_ids = {r["id"] for r in obs.requests.records()}
    for ids in exemplars.values():
        assert 1 <= len(ids) <= 4  # per-bucket cap
        assert set(ids) <= logged_ids


# -- bounds ------------------------------------------------------------------


def test_request_log_bound_counts_drops():
    arrivals = _arrivals(n=50)
    log = RequestLog(max_requests=30)
    with session(Observation(requests=log)):
        simulate_server(arrivals, 4.0, 2, np.random.default_rng(1))
    assert log.num_requests == 30
    assert log.dropped == 20
    assert log.meta()["dropped"] == 20
    assert len(log.records()) == 30


# -- attribution -------------------------------------------------------------


def _rec(**kwargs):
    base = {
        "outcome": "completed",
        "cause": None,
        "deadline_met": True,
        "fault_windows": [],
        "retries": 0,
        "wait_ms": 1.0,
        "service_ms": 2.0,
    }
    base.update(kwargs)
    return base


@pytest.mark.parametrize(
    "record, expected",
    [
        (_rec(), None),
        (_rec(outcome="shed", cause="queue_full"), "shed_queue_full"),
        (
            _rec(outcome="timed_out", cause="deadline_expired"),
            "expired_on_arrival",
        ),
        (_rec(outcome="timed_out", cause="queue_timeout"), "queue_timeout"),
        (_rec(deadline_met=False, fault_windows=["bw_degradation"]), "fault"),
        (_rec(deadline_met=False, retries=2), "retry_backoff"),
        (_rec(deadline_met=False, wait_ms=5.0, service_ms=2.0), "queueing"),
        (_rec(deadline_met=False, wait_ms=1.0, service_ms=9.0), "slow_service"),
        (_rec(deadline_met=None), None),  # no deadline configured
        # Fleet-level causes (cluster runs), most specific first:
        (_rec(outcome="degraded", cause="node_fault"), "node_fault"),
        (_rec(outcome="degraded", cause="partition"), "partition"),
        (_rec(outcome="failed", cause="node_fault"), "node_fault"),
        (_rec(outcome="failed", cause="partition"), "partition"),
        (_rec(deadline_met=False, cause="partition"), "partition"),
        (_rec(deadline_met=False, cause="node_fault"), "node_fault"),
        (_rec(deadline_met=False, failovers=1), "failover"),
        (_rec(deadline_met=False, hedges_wasted=2), "hedge_wasted"),
        # A late completion with both: the failover outranks the hedge.
        (
            _rec(deadline_met=False, failovers=1, hedges_wasted=1),
            "failover",
        ),
        # ...and a node-fault cause outranks the recovery machinery.
        (
            _rec(deadline_met=False, cause="node_fault", failovers=1),
            "node_fault",
        ),
    ],
)
def test_attribute_miss_cases(record, expected):
    assert attribute_miss(record) == expected


def test_cluster_causes_in_miss_causes_order():
    """The four fleet causes sit between the terminal and single-box
    buckets, keeping most-specific-first attribution."""
    for cause in ("partition", "node_fault", "failover", "hedge_wasted"):
        assert cause in MISS_CAUSES
    assert MISS_CAUSES.index("queue_timeout") < MISS_CAUSES.index("partition")
    assert MISS_CAUSES.index("hedge_wasted") < MISS_CAUSES.index("fault")


def test_miss_attribution_orders_and_counts():
    records = [
        _rec(outcome="shed", cause="queue_full"),
        _rec(deadline_met=False, wait_ms=5.0, service_ms=1.0),
        _rec(outcome="shed", cause="queue_full"),
        _rec(),
    ]
    table = miss_attribution(records)
    assert table == {"shed_queue_full": 2, "queueing": 1}
    assert list(table) == ["shed_queue_full", "queueing"]  # MISS_CAUSES order


# -- export ------------------------------------------------------------------


def test_export_roundtrip_and_schema(tmp_path):
    from repro.obs.requests import load_request_log

    arrivals, plan, policy = _stressed_args()
    log = RequestLog()
    with session(Observation(requests=log)):
        simulate_server(
            arrivals, 4.0, 2, np.random.default_rng(2),
            fault_plan=plan, policy=policy, label="export",
        )
    path = tmp_path / "req.jsonl"
    assert log.to_jsonl(path) == log.num_requests
    meta, records = load_request_log(path)
    assert meta["requests"] == log.num_requests
    assert len(records) == log.num_requests
    schema = json.loads(SCHEMA_PATH.read_text())
    for record in records:
        assert validate_def(record, schema, "request_event") == []


def test_export_is_deterministic_across_sessions(tmp_path):
    """Same seed + same FaultPlan => byte-identical JSONL export."""
    arrivals, _, policy = _stressed_args()
    exports = []
    for trial in range(2):
        plan = FaultPlan(
            [BandwidthDegradation(20.0, 80.0, 3.0), Stragglers(0.1, 4.0)],
            seed=3,
        )
        log = RequestLog()
        with session(Observation(requests=log)):
            simulate_server(
                arrivals, 4.0, 2, np.random.default_rng(2),
                fault_plan=plan, policy=policy, label="det",
            )
        path = tmp_path / f"req{trial}.jsonl"
        log.to_jsonl(path)
        exports.append(path.read_bytes())
    assert exports[0] == exports[1]


def test_unknown_def_name_raises():
    with pytest.raises(KeyError):
        validate_def({}, {"$defs": {"a": {}}}, "missing")
