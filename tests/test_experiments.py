"""Experiment harness tests — cheap configurations of every runner."""

import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.experiments.base import ExperimentReport, format_report, format_table
from repro.experiments.registry import (
    EXPERIMENT_IDS,
    get_experiment,
    list_experiments,
    run_experiment,
)
from repro.experiments.workloads import build_workload

CONFIG = SimConfig(seed=21)

#: Cheap overrides shared by the trace-driven experiment smoke tests.
FAST = dict(scale=0.01, batch_size=4, num_batches=2)


class TestBase:
    def test_columns_in_first_appearance_order(self):
        report = ExperimentReport("x", "t")
        report.rows.append({"a": 1, "b": 2})
        report.rows.append({"c": 3, "a": 4})
        assert report.columns() == ["a", "b", "c"]

    def test_column_extraction(self):
        report = ExperimentReport("x", "t", rows=[{"a": 1}, {"a": 2}])
        assert report.column("a") == [1, 2]
        assert report.column("missing") == [None, None]

    def test_column_requires_rows(self):
        with pytest.raises(ConfigError):
            ExperimentReport("x", "t").column("a")

    def test_filter_rows(self):
        report = ExperimentReport(
            "x", "t", rows=[{"m": "a", "v": 1}, {"m": "b", "v": 2}]
        )
        assert report.filter_rows(m="b") == [{"m": "b", "v": 2}]

    def test_format_table_alignment(self):
        text = format_table([{"col": 1.2345}, {"col": 10_000.5}], ["col"])
        lines = text.splitlines()
        assert lines[0].startswith("col")
        assert "1.234" in text
        assert "10,000.5" in text

    def test_format_report_includes_notes(self):
        report = ExperimentReport("x", "Title", rows=[{"a": 1}], notes=["hello"])
        text = format_report(report)
        assert "Title" in text
        assert "note: hello" in text


class TestRegistry:
    def test_all_experiments_registered(self):
        # 12 figures + 4 tables + seven extensions (synergy, hotness
        # sweep, resilience, cluster_resilience, slo_observatory,
        # noisy_neighbor, critpath_observatory).
        assert len(EXPERIMENT_IDS) == 23
        assert "fig12" in EXPERIMENT_IDS
        assert "table4" in EXPERIMENT_IDS
        assert "synergy" in EXPERIMENT_IDS
        assert "hotness_sweep" in EXPERIMENT_IDS
        assert "resilience" in EXPERIMENT_IDS
        assert "cluster_resilience" in EXPERIMENT_IDS
        assert "slo_observatory" in EXPERIMENT_IDS
        assert "noisy_neighbor" in EXPERIMENT_IDS
        assert "critpath_observatory" in EXPERIMENT_IDS

    def test_titles_listed(self):
        titles = list_experiments()
        assert set(titles) == set(EXPERIMENT_IDS)

    def test_unknown_experiment(self):
        with pytest.raises(ConfigError):
            get_experiment("fig99")


class TestWorkloads:
    def test_build_workload_shape(self):
        wl = build_workload("rm2_1", "low", scale=0.01, batch_size=4, num_batches=1,
                            config=CONFIG)
        assert wl.model.base_name == "rm2_1"
        assert wl.trace.num_tables == wl.model.num_tables
        assert wl.amap.num_tables == wl.model.num_tables
        assert wl.batch_size == 4


class TestStaticExperiments:
    def test_table1(self):
        report = run_experiment("table1", config=CONFIG)
        assert len(report.rows) == 3
        assert {r["model_class"] for r in report.rows} == {"RMC1", "RMC2", "RMC3"}

    def test_table2_matches_paper_sizes(self):
        report = run_experiment("table2", config=CONFIG)
        by_model = {r["model"]: r for r in report.rows}
        assert by_model["rm2_1"]["emb_size_gib"] == pytest.approx(28.6, abs=0.05)
        assert by_model["rm1"]["per_table_mib"] == pytest.approx(122.0, abs=0.1)

    def test_table3(self):
        report = run_experiment("table3", config=CONFIG)
        params = {r["parameter"]: r["value"] for r in report.rows}
        assert params["Frequency"] == "2.4GHz"
        assert params["L1D cache size"] == "32.0 KiB"


class TestAnalyticExperiments:
    def test_fig1_breakdown_shape(self):
        report = run_experiment("fig1", config=CONFIG)
        by_model = {r["model"]: r for r in report.rows}
        # The paper's ordering: every RMC2 model is embedding-dominated,
        # RM1 is mixed.
        for name in ("rm2_1", "rm2_2", "rm2_3"):
            assert by_model[name]["embedding_pct"] > 85
        assert by_model["rm1"]["embedding_pct"] < by_model["rm2_1"]["embedding_pct"]

    def test_fig5_hotness_ordering(self):
        report = run_experiment(
            "fig5", config=CONFIG, scale=0.01, batch_size=16, num_batches=2
        )
        by_ds = {r["dataset"]: r for r in report.rows}
        assert (
            by_ds["high"]["unique_fraction"]
            < by_ds["medium"]["unique_fraction"]
            < by_ds["low"]["unique_fraction"]
        )
        assert by_ds["high"]["top_1pct_share"] > by_ds["low"]["top_1pct_share"]

    def test_fig7_cold_misses_grow_with_irregularity(self):
        report = run_experiment(
            "fig7", config=CONFIG, scale=0.01, batch_size=8, num_batches=2
        )
        by_ds = {r["dataset"]: r for r in report.rows}
        assert by_ds["low"]["cold_miss_fraction"] > by_ds["high"]["cold_miss_fraction"]
        for row in report.rows:
            assert row["l1_hit_rate_model"] <= row["l2_hit_rate_model"]
            assert row["l2_hit_rate_model"] <= row["l3_hit_rate_model"]


class TestTraceDrivenExperiments:
    def test_fig4_dataset_spread(self):
        report = run_experiment("fig4", config=CONFIG, **FAST)
        by_ds = {r["dataset"]: r for r in report.rows}
        assert (
            by_ds["one-item"]["avg_load_latency_cycles"]
            < by_ds["low"]["avg_load_latency_cycles"]
        )
        assert by_ds["one-item"]["l1_hit_rate"] > by_ds["random"]["l1_hit_rate"]

    def test_fig8_bandwidth_grows(self):
        report = run_experiment(
            "fig8", config=CONFIG, core_counts=(1, 8), **FAST
        )
        bw = report.column("bandwidth_gb_s")
        assert bw[-1] > bw[0]

    def test_fig15_swpf_improves_l1(self):
        report = run_experiment(
            "fig15", config=CONFIG, models=("rm2_1",), **FAST
        )
        by_scheme = {r["scheme"]: r for r in report.rows}
        assert by_scheme["sw_pf"]["l1_hit_rate"] > by_scheme["baseline"]["l1_hit_rate"]
        assert (
            by_scheme["sw_pf"]["avg_load_latency_cycles"]
            < by_scheme["baseline"]["avg_load_latency_cycles"]
        )

    def test_fig17_tail_latency_shape(self):
        report = run_experiment(
            "fig17", config=CONFIG, models=("rm1",), num_cores=4,
            num_requests=400, **FAST
        )
        baseline_rows = report.filter_rows(scheme="baseline")
        assert len(baseline_rows) >= 5
        # Tail improves as arrivals slow.
        p95 = [r["p95_ms"] for r in sorted(baseline_rows, key=lambda r: r["arrival_ms"])]
        assert p95[0] >= p95[-1]
