"""Hardware-prefetcher model tests."""

from repro.mem.prefetcher import (
    CompositePrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    StreamerPrefetcher,
    StridePrefetcher,
)


class TestNull:
    def test_never_prefetches(self):
        pf = NullPrefetcher()
        assert pf.observe(10, hit=False) == []
        assert pf.observe(10, hit=True) == []


class TestNextLine:
    def test_fires_on_miss_only(self):
        pf = NextLinePrefetcher(degree=1)
        assert pf.observe(10, hit=True) == []
        assert pf.observe(10, hit=False) == [11]

    def test_degree_controls_count(self):
        pf = NextLinePrefetcher(degree=3)
        assert pf.observe(10, hit=False) == [11, 12, 13]

    def test_issued_counter(self):
        pf = NextLinePrefetcher(degree=2)
        pf.observe(1, hit=False)
        pf.observe(5, hit=False)
        assert pf.issued == 4
        pf.reset()
        assert pf.issued == 0


class TestStride:
    def test_detects_constant_stride(self):
        pf = StridePrefetcher(degree=2, confidence_threshold=2)
        assert pf.observe(0, False) == []
        assert pf.observe(10, False) == []  # stride 10 seen once
        out = pf.observe(20, False)  # stride 10 confirmed
        assert out == [30, 40]

    def test_random_stream_builds_no_confidence(self):
        pf = StridePrefetcher()
        issued = []
        for line in (3, 977, 12, 405, 8800, 42):
            issued.extend(pf.observe(line, False))
        assert issued == []

    def test_stride_change_resets_confidence(self):
        pf = StridePrefetcher(degree=1, confidence_threshold=2)
        pf.observe(0, False)
        pf.observe(10, False)
        pf.observe(20, False)  # confident now
        assert pf.observe(25, False) == []  # stride changed to 5

    def test_separate_streams_tracked_independently(self):
        pf = StridePrefetcher(degree=1, confidence_threshold=2)
        for base in (0, 1000):
            pf.observe_stream(base, base, False)
        pf.observe_stream(0, 4, False)
        pf.observe_stream(1000, 1008, False)
        assert pf.observe_stream(0, 8, False) == [12]
        assert pf.observe_stream(1000, 1016, False) == [1024]

    def test_zero_stride_never_fires(self):
        pf = StridePrefetcher(confidence_threshold=1)
        pf.observe(5, False)
        assert pf.observe(5, False) == []


class TestStreamer:
    def test_ascending_run_in_page(self):
        pf = StreamerPrefetcher(degree=2)
        assert pf.observe(0, False) == []
        assert pf.observe(1, False) == [2, 3]

    def test_descending_run(self):
        pf = StreamerPrefetcher(degree=2)
        pf.observe(20, False)
        assert pf.observe(19, False) == [18, 17]

    def test_never_crosses_page_boundary(self):
        pf = StreamerPrefetcher(degree=4)
        # Lines 62, 63 are at the end of page 0 (64 lines per page).
        pf.observe(62, False)
        out = pf.observe(63, False)
        assert out == []  # all candidates would be in page 1

    def test_page_locality_required(self):
        pf = StreamerPrefetcher(degree=2)
        pf.observe(0, False)
        # A line in a distant page starts a fresh tracker, no prefetch.
        assert pf.observe(6400, False) == []


class TestComposite:
    def test_unions_and_dedups(self):
        pf = CompositePrefetcher(
            NextLinePrefetcher(degree=2), NextLinePrefetcher(degree=1)
        )
        out = pf.observe(10, hit=False)
        assert out == [11, 12]  # 11 deduplicated

    def test_reset_propagates(self):
        inner = NextLinePrefetcher()
        pf = CompositePrefetcher(inner)
        pf.observe(1, False)
        pf.reset()
        assert inner.issued == 0
