"""Serving-stack tests: SLA registry, load generator, M/G/c server."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.model.configs import get_model
from repro.serving.latency import (
    latency_percentile,
    sla_compliant_region,
    sweep_arrival_times,
)
from repro.serving.server import lognormal_services, simulate_server
from repro.serving.sla import SLA_TARGETS, sla_for_model
from repro.serving.workload import poisson_arrivals


class TestSLA:
    def test_table1_contents(self):
        assert SLA_TARGETS["RMC1"].sla_ms == 100.0
        assert SLA_TARGETS["RMC2"].sla_ms == 400.0
        assert SLA_TARGETS["RMC3"].sla_ms == 100.0
        assert SLA_TARGETS["RMC2"].bottleneck == "embedding"
        assert SLA_TARGETS["RMC3"].bottleneck == "mlp"

    def test_sla_for_model(self):
        assert sla_for_model(get_model("rm2_1")).sla_ms == 400.0
        assert sla_for_model(get_model("rm1")).sla_ms == 100.0

    def test_meets(self):
        target = SLA_TARGETS["RMC1"]
        assert target.meets(99.0)
        assert not target.meets(101.0)
        with pytest.raises(ConfigError):
            target.meets(-1.0)

    def test_meets_boundary_is_inclusive(self):
        # Exactly at the target satisfies the SLA (<=, not <).
        for target in SLA_TARGETS.values():
            assert target.meets(target.sla_ms)
        assert SLA_TARGETS["RMC1"].meets(0.0)

    def test_unknown_category_rejected(self):
        import dataclasses

        bogus = dataclasses.replace(get_model("rm1"), category="RMC9")
        with pytest.raises(ConfigError):
            sla_for_model(bogus)


class TestWorkload:
    def test_arrivals_are_sorted_and_positive(self, rng):
        arrivals = poisson_arrivals(10.0, 500, rng)
        assert arrivals.shape == (500,)
        assert np.all(np.diff(arrivals) >= 0)
        assert arrivals[0] > 0

    def test_mean_interarrival(self, rng):
        arrivals = poisson_arrivals(10.0, 20_000, rng)
        assert np.mean(np.diff(arrivals)) == pytest.approx(10.0, rel=0.05)

    def test_validation(self, rng):
        with pytest.raises(ConfigError):
            poisson_arrivals(0.0, 10, rng)
        with pytest.raises(ConfigError):
            poisson_arrivals(1.0, 0, rng)


class TestServer:
    def test_lognormal_services_mean_and_cv(self, rng):
        services = lognormal_services(50.0, 50_000, rng, cv=0.2)
        assert np.mean(services) == pytest.approx(50.0, rel=0.02)
        assert np.std(services) / np.mean(services) == pytest.approx(0.2, rel=0.1)

    def test_zero_cv_is_deterministic(self, rng):
        services = lognormal_services(50.0, 10, rng, cv=0.0)
        assert np.all(services == 50.0)

    def test_unloaded_server_has_no_queueing(self, rng):
        arrivals = poisson_arrivals(1000.0, 200, rng)  # very light load
        result = simulate_server(arrivals, 10.0, num_cores=4, rng=rng)
        assert np.all(result.waits_ms < 1e-9)
        assert result.mean_ms == pytest.approx(10.0, rel=0.1)

    def test_saturated_server_queues(self, rng):
        arrivals = poisson_arrivals(1.0, 500, rng)  # offered >> capacity
        result = simulate_server(arrivals, 10.0, num_cores=2, rng=rng)
        assert result.p95_ms > 50.0
        assert result.utilization > 1.0

    def test_more_cores_cut_tail(self, rng):
        arrivals = poisson_arrivals(5.0, 1000, np.random.default_rng(0))
        few = simulate_server(arrivals, 18.0, 4, np.random.default_rng(1))
        many = simulate_server(arrivals, 18.0, 16, np.random.default_rng(1))
        assert many.p95_ms < few.p95_ms

    def test_latency_decomposition(self, rng):
        arrivals = poisson_arrivals(5.0, 300, rng)
        result = simulate_server(arrivals, 8.0, 2, rng)
        assert np.allclose(result.latencies_ms, result.waits_ms + result.services_ms)

    def test_validation(self, rng):
        with pytest.raises(ConfigError):
            simulate_server(np.array([1.0]), 5.0, 0, rng)
        with pytest.raises(ConfigError):
            simulate_server(np.array([2.0, 1.0]), 5.0, 1, rng)
        with pytest.raises(ConfigError):
            lognormal_services(0.0, 5, rng)


class TestLatencyAnalysis:
    def test_percentile(self):
        assert latency_percentile(range(101), 95) == pytest.approx(95.0)
        with pytest.raises(ConfigError):
            latency_percentile([], 95)
        with pytest.raises(ConfigError):
            latency_percentile([1.0], 150)

    def test_sweep_monotone_in_arrival_time(self):
        sweep = sweep_arrival_times(
            mean_service_ms=20.0,
            arrival_times_ms=[2.0, 5.0, 40.0],
            num_cores=2,
            num_requests=800,
            config=SimConfig(seed=4),
        )
        p95s = [sweep[a].p95_ms for a in (2.0, 5.0, 40.0)]
        assert p95s[0] > p95s[-1]  # faster arrivals -> worse tail

    def test_sla_compliant_region(self):
        sweep = sweep_arrival_times(
            20.0, [2.0, 15.0, 40.0], num_cores=2, num_requests=800,
            config=SimConfig(seed=4),
        )
        fastest, slowest = sla_compliant_region(sweep, sla_ms=100.0)
        assert fastest <= 40.0
        assert slowest == 40.0

    def test_region_empty_when_sla_impossible(self):
        sweep = sweep_arrival_times(
            20.0, [1.0], num_cores=1, num_requests=500, config=SimConfig(seed=4)
        )
        fastest, slowest = sla_compliant_region(sweep, sla_ms=0.001)
        assert fastest == float("inf")

    def test_region_validation(self):
        with pytest.raises(ConfigError):
            sla_compliant_region({}, 0.0)


def test_server_result_empty_latencies():
    from repro.serving.server import ServerResult

    empty = ServerResult(
        latencies_ms=np.array([]),
        waits_ms=np.array([]),
        services_ms=np.array([]),
        num_cores=2,
        offered_interarrival_ms=1.0,
    )
    # Degenerate inputs yield 0.0, matching CacheStats.hit_rate's convention.
    assert empty.percentile(95.0) == 0.0
    assert empty.p50_ms == 0.0
    assert empty.p95_ms == 0.0
    assert empty.p99_ms == 0.0
    assert empty.mean_ms == 0.0
    assert empty.utilization == 0.0


def test_single_arrival_defines_no_rate():
    # n=1 convention: one arrival has no inter-arrival time, so the result
    # reports 0.0 and utilization degrades to 0.0 instead of dividing by a
    # bogus rate (or by zero).
    rng = np.random.default_rng(0)
    result = simulate_server(np.array([5.0]), 10.0, num_cores=2, rng=rng)
    assert result.offered_interarrival_ms == 0.0
    assert result.utilization == 0.0
    assert result.latencies_ms.size == 1


def test_fast_path_outcome_accounting():
    # The fast path never sheds or times out; the outcome API still works.
    rng = np.random.default_rng(1)
    arrivals = poisson_arrivals(10.0, 50, rng)
    result = simulate_server(arrivals, 5.0, num_cores=2, rng=rng)
    assert result.outcomes is None
    assert result.outcome_count("completed") == 50
    assert result.outcome_count("shed") == 0
    assert result.outcome_counts["timed_out"] == 0
    assert result.offered_requests == 50
    assert result.retries_total == 0
    assert result.goodput == 1.0
    with pytest.raises(ConfigError):
        result.outcome_count("vanished")


@pytest.mark.parametrize("seed", range(5))
def test_server_invariants_randomized(seed):
    """Randomized invariant check over the queueing simulation.

    For any seeded workload: latency decomposes exactly into wait +
    service, no request starts before it arrives, and each core serves
    its requests back to back in FIFO order (start >= previous
    completion on the same core).
    """
    rng = np.random.default_rng(seed)
    num_cores = int(rng.integers(1, 6))
    n = int(rng.integers(50, 400))
    arrivals = poisson_arrivals(float(rng.uniform(1.0, 20.0)), n, rng)
    result = simulate_server(
        arrivals, float(rng.uniform(2.0, 30.0)), num_cores, rng
    )
    assert np.allclose(result.latencies_ms, result.waits_ms + result.services_ms)
    assert np.all(result.waits_ms >= -1e-12)
    starts = arrivals + result.waits_ms
    completions = starts + result.services_ms
    assert result.core_ids is not None
    assert set(np.unique(result.core_ids)) <= set(range(num_cores))
    for core in range(num_cores):
        on_core = result.core_ids == core
        # FIFO per core: a request starts only after the previous one on
        # the same core completes (with float tolerance).
        assert np.all(
            starts[on_core][1:] >= completions[on_core][:-1] - 1e-9
        )


def test_server_result_percentile_properties_consistent():
    rng = np.random.default_rng(3)
    arrivals = np.sort(rng.uniform(0.0, 50.0, size=200))
    result = simulate_server(arrivals, mean_service_ms=1.0, num_cores=4, rng=rng)
    assert result.p50_ms == result.percentile(50.0)
    assert result.p99_ms == result.percentile(99.0)
    assert result.latency_hist is not None
    assert result.latency_hist.count == 200
    # The log2-bucket estimate brackets the exact percentile within 2x.
    exact = result.percentile(95.0)
    approx = result.latency_hist.percentile(95.0)
    assert approx <= exact * 2.0
    assert approx >= exact / 2.0
