"""Trace-driven embedding execution tests."""

import pytest

from repro.cpu.core import CoreSpec
from repro.engine.embedding_exec import PrefetchPlan, run_embedding_trace
from repro.errors import ConfigError
from repro.mem.hierarchy import build_hierarchy
from repro.trace.production import make_trace
from repro.trace.stream import AddressMap


@pytest.fixture
def core_spec(csl):
    return csl.core


def run(trace, amap, core_spec, csl, plan=None, hw_prefetch=True, batches=None):
    hierarchy = build_hierarchy(csl.hierarchy, hw_prefetch=hw_prefetch)
    return run_embedding_trace(
        trace, amap, core_spec, hierarchy, plan=plan, batch_indices=batches
    )


def test_result_accounting(tiny_trace, tiny_amap, core_spec, csl):
    result = run(tiny_trace, tiny_amap, core_spec, csl)
    expected_loads = tiny_trace.total_lookups() * tiny_amap.row_lines
    assert result.loads == expected_loads
    assert result.total_cycles > 0
    assert len(result.batch_cycles) == tiny_trace.num_batches
    assert sum(result.batch_cycles) == pytest.approx(result.total_cycles)
    assert 0 <= result.l1_hit_rate <= 1
    assert sum(result.level_fractions.values()) == pytest.approx(1.0)


def test_one_item_is_fast_and_cache_resident(tiny_model, tiny_amap, core_spec, csl, sim_config):
    trace = make_trace(
        "one-item", tiny_model.num_tables, tiny_model.rows, 4, 2,
        tiny_model.lookups_per_sample, config=sim_config,
    )
    result = run(trace, tiny_amap, core_spec, csl)
    assert result.l1_hit_rate > 0.99
    assert result.avg_load_latency < 7


def test_low_hot_misses_more_than_one_item(tiny_trace, tiny_model, tiny_amap, core_spec, csl, sim_config):
    one = make_trace(
        "one-item", tiny_model.num_tables, tiny_model.rows, 4, 2,
        tiny_model.lookups_per_sample, config=sim_config,
    )
    r_one = run(one, tiny_amap, core_spec, csl)
    r_low = run(tiny_trace, tiny_amap, core_spec, csl)
    assert r_low.avg_load_latency > 3 * r_one.avg_load_latency
    assert r_low.total_cycles > r_one.total_cycles


def test_prefetch_plan_improves_memory_bound_run(tiny_model, tiny_amap, core_spec, csl, sim_config):
    trace = make_trace(
        "random", tiny_model.num_tables, tiny_model.rows, 8, 2,
        tiny_model.lookups_per_sample, config=sim_config,
    )
    base = run(trace, tiny_amap, core_spec, csl)
    pf = run(trace, tiny_amap, core_spec, csl, plan=PrefetchPlan(4, 8))
    assert pf.total_cycles < base.total_cycles
    assert pf.l1_hit_rate > base.l1_hit_rate
    assert pf.avg_load_latency < base.avg_load_latency
    assert pf.prefetches_issued > 0


def test_prefetch_amount_clamped_to_row(tiny_trace, tiny_amap, core_spec, csl):
    result = run(tiny_trace, tiny_amap, core_spec, csl, plan=PrefetchPlan(4, 100))
    assert result.total_cycles > 0  # clamped silently, no error


def test_batch_subset_execution(tiny_trace, tiny_amap, core_spec, csl):
    result = run(tiny_trace, tiny_amap, core_spec, csl, batches=[0])
    assert len(result.batch_cycles) == 1


def test_table_count_mismatch_rejected(tiny_trace, core_spec, csl, tiny_model):
    bad_amap = AddressMap([tiny_model.rows], tiny_model.embedding_dim)
    hierarchy = build_hierarchy(csl.hierarchy)
    with pytest.raises(ConfigError):
        run_embedding_trace(tiny_trace, bad_amap, core_spec, hierarchy)


def test_plan_validation():
    with pytest.raises(ConfigError):
        PrefetchPlan(distance=0)
    with pytest.raises(ConfigError):
        PrefetchPlan(amount_lines=0)
    with pytest.raises(ConfigError):
        PrefetchPlan(target_level="dram")


def test_deterministic_given_same_inputs(tiny_trace, tiny_amap, core_spec, csl):
    a = run(tiny_trace, tiny_amap, core_spec, csl)
    b = run(tiny_trace, tiny_amap, core_spec, csl)
    assert a.total_cycles == b.total_cycles
    assert a.l1_hit_rate == b.l1_hit_rate


def test_hw_prefetch_off_changes_behaviour(tiny_trace, tiny_amap, core_spec, csl):
    on = run(tiny_trace, tiny_amap, core_spec, csl, hw_prefetch=True)
    off = run(tiny_trace, tiny_amap, core_spec, csl, hw_prefetch=False)
    assert on.total_cycles != off.total_cycles


def test_stall_fraction_high_for_irregular(tiny_trace, tiny_amap, core_spec, csl):
    result = run(tiny_trace, tiny_amap, core_spec, csl)
    # Low-hot embedding is memory-bound: most cycles are stalls.
    assert result.stall_fraction > 0.4
    assert result.utilization < 0.6
