"""Analytic (Che) hit-rate model vs the simulated stack-distance pipeline.

The analytic mode replaces trace synthesis + exact reuse counting with a
closed-form fixed point, so it cannot be bit-identical — these tests pin
the agreement with noise-floored absolute bounds instead (the synthesized
stream is one random draw from the law the model describes; the bound
covers both the model error and that sampling noise), plus structural
properties (monotonicity, limits, validity of the report surface).
"""

import numpy as np
import pytest

from repro.analysis.analytic import (
    AnalyticReport,
    analytic_hit_rate,
    analytic_hit_report,
    characteristic_time,
)
from repro.analysis.cache_model import analyze_trace_reuse
from repro.config import SimConfig
from repro.cpu.platform import get_platform
from repro.errors import ConfigError
from repro.trace.hotness import zipf_probabilities
from repro.trace.production import make_trace

#: Absolute tolerance on per-level hit rates and cold fractions.  The
#: worst case measured across datasets/models is ~0.05 (High-hot L1,
#: where per-table alpha jitter is unmodeled); everything else sits well
#: below.  0.08 leaves noise headroom without letting the model drift.
HIT_RATE_ATOL = 0.08

ROWS = 20_000
TABLES = 4
BATCH = 32
NUM_BATCHES = 4
LOOKUPS = 20
BLOCK = BATCH * LOOKUPS
TOTAL = TABLES * NUM_BATCHES * BLOCK


def _sim_report(dataset):
    spec = get_platform("csl")
    trace = make_trace(
        dataset, num_tables=TABLES, rows_per_table=ROWS,
        batch_size=BATCH, num_batches=NUM_BATCHES,
        lookups_per_sample=LOOKUPS, config=SimConfig(seed=7),
        calibration_samples=TOTAL // TABLES,
    )
    return analyze_trace_reuse(trace, spec.hierarchy, 128, dataset=dataset)


def _analytic_report(dataset):
    spec = get_platform("csl")
    return analytic_hit_report(
        dataset, num_tables=TABLES, rows_per_table=ROWS,
        total_accesses=TOTAL, hierarchy=spec.hierarchy, embedding_dim=128,
        calibration_samples=TOTAL // TABLES, block_accesses=BLOCK,
    )


class TestAgreementWithSimulation:
    @pytest.mark.parametrize("dataset", ["high", "medium", "low", "random"])
    def test_hit_rates_within_bounds(self, dataset):
        sim = _sim_report(dataset)
        ana = _analytic_report(dataset)
        for level in ("l1", "l2", "l3"):
            assert ana.hit_rates[level] == pytest.approx(
                sim.hit_rates[level], abs=HIT_RATE_ATOL
            ), f"{dataset}/{level}"
        assert ana.cold_fraction == pytest.approx(
            sim.cold_fraction, abs=HIT_RATE_ATOL
        )

    @pytest.mark.parametrize("dataset", ["high", "medium", "low"])
    def test_level_fractions_within_bounds(self, dataset):
        sim = _sim_report(dataset)
        ana = _analytic_report(dataset)
        for level in ("l1", "l2", "l3", "dram"):
            assert ana.level_fractions[level] == pytest.approx(
                sim.level_fractions[level], abs=HIT_RATE_ATOL
            ), f"{dataset}/{level}"

    def test_one_item_nearly_exact(self):
        # Only the T cold first-touches miss; the residual difference is
        # the Poisson pooling jitter on the realized access count.
        sim = _sim_report("one-item")
        ana = _analytic_report("one-item")
        for level in ("l1", "l2", "l3"):
            assert ana.hit_rates[level] == pytest.approx(
                sim.hit_rates[level], abs=1e-4
            )


class TestModelProperties:
    def test_hit_rate_monotone_in_capacity(self):
        probs = zipf_probabilities(ROWS, 1.0)
        rates = [
            analytic_hit_rate(probs, TABLES, TOTAL, cap, BLOCK)
            for cap in (8, 64, 512, 4096, 32768)
        ]
        assert rates == sorted(rates)
        assert all(0.0 <= r <= 1.0 for r in rates)

    def test_huge_capacity_leaves_only_cold_misses(self):
        probs = zipf_probabilities(ROWS, 1.0)
        rate = analytic_hit_rate(
            probs, TABLES, TOTAL, 10 * TABLES * ROWS, BLOCK
        )
        spec = get_platform("csl")
        report = analytic_hit_report(
            "high", num_tables=TABLES, rows_per_table=ROWS,
            total_accesses=TOTAL, hierarchy=spec.hierarchy,
            embedding_dim=128, block_accesses=BLOCK,
        )
        # Warm accesses all hit; only the first touch of each row misses.
        assert rate < 1.0
        assert report.cold_fraction + report.hit_rates["l3"] <= 1.0 + 1e-9

    def test_characteristic_time_monotone_in_capacity(self):
        probs = zipf_probabilities(ROWS, 1.0)
        times = [
            characteristic_time(probs, TABLES, cap, BLOCK)
            for cap in (8, 64, 512, 4096)
        ]
        assert times == sorted(times)
        assert characteristic_time(probs, TABLES, 10 * TABLES * ROWS) >= 1e18

    def test_block_structure_raises_short_reuse(self):
        # Contiguous per-table blocks concentrate short-distance reuse;
        # an L1-sized cache must hit more than under full interleaving.
        probs = zipf_probabilities(ROWS, 1.2)
        blocked = analytic_hit_rate(probs, TABLES, TOTAL, 64, BLOCK)
        interleaved = analytic_hit_rate(probs, TABLES, TOTAL, 64, None)
        assert blocked > interleaved

    def test_validation(self):
        probs = zipf_probabilities(ROWS, 1.0)
        with pytest.raises(ConfigError):
            analytic_hit_rate(probs, TABLES, 0, 64)
        with pytest.raises(ConfigError):
            characteristic_time(probs, TABLES, 0)
        with pytest.raises(ConfigError):
            characteristic_time(probs, 0, 64)
        spec = get_platform("csl")
        with pytest.raises(ConfigError):
            analytic_hit_report(
                "nope", num_tables=1, rows_per_table=10,
                total_accesses=100, hierarchy=spec.hierarchy,
                embedding_dim=128,
            )


class TestModePlumbing:
    def test_simconfig_mode_validation(self):
        assert SimConfig().mode == "sim"
        assert SimConfig(mode="analytic").mode == "analytic"
        with pytest.raises(ConfigError):
            SimConfig(mode="magic")

    def test_breakdown_analytic_close_to_sim(self):
        from repro.analysis.breakdown import estimate_stage_breakdown
        from repro.model.configs import get_model

        spec = get_platform("csl")
        model = get_model("rm2_1")
        sim = estimate_stage_breakdown(
            model, "medium", spec, config=SimConfig(seed=3)
        )
        ana = estimate_stage_breakdown(
            model, "medium", spec, config=SimConfig(seed=3, mode="analytic")
        )
        # Dense stages are closed-form and shared: exactly equal.
        assert ana.bottom_mlp == sim.bottom_mlp
        assert ana.interaction == sim.interaction
        assert ana.top_mlp == sim.top_mlp
        # Embedding comes from the modeled level fractions: close, not equal.
        assert ana.embedding == pytest.approx(sim.embedding, rel=0.10)

    def test_report_surface(self):
        report = _analytic_report("medium")
        assert isinstance(report, AnalyticReport)
        fractions = report.level_fractions
        assert set(fractions) == {"l1", "l2", "l3", "dram"}
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert all(f >= 0.0 for f in fractions.values())
        assert report.alpha > 0.0
        assert report.total_accesses == TOTAL
