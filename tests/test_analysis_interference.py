"""Inter-core sharing study tests (Section 3.1's inter-core class)."""

import pytest

from repro.analysis.interference import intercore_sharing_study
from repro.errors import ConfigError
from repro.trace.production import make_trace


@pytest.fixture(scope="module")
def report():
    from repro.config import SimConfig
    from repro.cpu.platform import get_platform
    from repro.model.configs import get_model
    from repro.trace.stream import AddressMap

    config = SimConfig(seed=31)
    model = get_model("rm2_1").scaled(0.01)
    trace = make_trace(
        "medium", model.num_tables, model.rows, 4, 2,
        model.lookups_per_sample, config=config,
    )
    amap = AddressMap([model.rows] * model.num_tables, model.embedding_dim)
    return intercore_sharing_study(trace, amap, get_platform("csl"), config)


def test_sharing_regimes_ordered(report):
    """Constructive sharing beats destructive (the paper's claim)."""
    assert report.sharing_benefit >= 1.0
    assert report.constructive_cycles <= report.destructive_cycles


def test_constructive_sharing_raises_l3_hits(report):
    # A sibling core warming the same tables can only help the shared L3.
    assert report.constructive_l3_hit_rate >= report.destructive_l3_hit_rate


def test_slowdowns_relative_to_solo(report):
    # Sharing an LLC never helps more than ~2x nor hurts catastrophically
    # at this scale.
    assert 0.5 < report.constructive_slowdown < 3.0
    assert 0.5 < report.destructive_slowdown < 4.0


def test_requires_two_batches(tiny_model, tiny_amap, csl, sim_config):
    trace = make_trace(
        "low", tiny_model.num_tables, tiny_model.rows, 4, 1,
        tiny_model.lookups_per_sample, config=sim_config,
    )
    with pytest.raises(ConfigError):
        intercore_sharing_study(trace, tiny_amap, csl, sim_config)
