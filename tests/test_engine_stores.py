"""Output-store modeling tests (the vec.st side of Algorithm 1)."""

import numpy as np

from repro.engine.embedding_exec import run_embedding_trace
from repro.mem.hierarchy import build_hierarchy
from repro.trace.dataset import EmbeddingTrace, TableBatch
from repro.trace.stream import AddressMap


def one_table_trace(rows, indices, pooling, batches=1):
    trace = EmbeddingTrace(rows_per_table=[rows])
    offsets = np.concatenate([[0], np.cumsum(pooling)]).astype(np.int64)
    for _ in range(batches):
        trace.append_batch(
            [TableBatch(offsets=offsets, indices=np.asarray(indices, dtype=np.int64))]
        )
    return trace


def test_stores_add_work(csl):
    trace = one_table_trace(1000, list(range(40)), [10, 10, 10, 10])
    amap = AddressMap([1000], 128)
    base = run_embedding_trace(
        trace, amap, csl.core, build_hierarchy(csl.hierarchy)
    )
    with_stores = run_embedding_trace(
        trace, amap, csl.core, build_hierarchy(csl.hierarchy), model_stores=True
    )
    assert with_stores.total_cycles > base.total_cycles
    assert with_stores.instr_count > base.instr_count


def test_store_traffic_reaches_dram(csl):
    trace = one_table_trace(1000, list(range(40)), [10, 10, 10, 10])
    amap = AddressMap([1000], 128)
    hierarchy = build_hierarchy(csl.hierarchy)
    run_embedding_trace(trace, amap, csl.core, hierarchy, model_stores=True)
    # Row lines (40 rows x 8) + output lines (4 samples x 8) all cold.
    assert hierarchy.dram.accesses >= 40 * 8 + 4 * 8


def test_output_region_does_not_alias_tables(csl):
    trace = one_table_trace(1000, [5], [1])
    amap = AddressMap([1000], 128)
    hierarchy = build_hierarchy(csl.hierarchy)
    run_embedding_trace(trace, amap, csl.core, hierarchy, model_stores=True)
    # Row 5 must still be resident: the output writes went elsewhere.
    assert hierarchy.resident_level(amap.row_first_line(0, 5)) == "l1"


def test_output_buffers_reused_across_batches(csl):
    # Same (batch index is part of the address) — different batches write
    # different regions, but within one batch the second table writes its
    # own region; totals stay proportional to samples x tables.
    trace = one_table_trace(1000, list(range(8)), [4, 4], batches=2)
    amap = AddressMap([1000], 128)
    hierarchy = build_hierarchy(csl.hierarchy)
    result = run_embedding_trace(
        trace, amap, csl.core, hierarchy, model_stores=True
    )
    # Demand loads metric still counts only embedding-row loads.
    assert result.loads == trace.total_lookups() * amap.row_lines
