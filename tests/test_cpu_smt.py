"""SMT contention model tests."""

import pytest

from repro.cpu.smt import SMTContention, SMTModel, ThreadProfile
from repro.errors import ConfigError


def emb_thread(time=1000.0, util=0.10, stall=0.80):
    return ThreadProfile("embedding", time, util, stall)


def mlp_thread(time=300.0, util=0.85, stall=0.03):
    return ThreadProfile("bottom_mlp", time, util, stall)


def test_profile_validation():
    with pytest.raises(ConfigError):
        ThreadProfile("x", -1.0, 0.5, 0.5)
    with pytest.raises(ConfigError):
        ThreadProfile("x", 1.0, 1.5, 0.5)
    with pytest.raises(ConfigError):
        ThreadProfile("x", 1.0, 0.5, -0.1)


def test_contention_validation():
    with pytest.raises(ConfigError):
        SMTContention(window_pressure=-1)
    with pytest.raises(ConfigError):
        SMTContention(port_overlap=1.5)


def test_profile_rejects_non_finite_time():
    # Regression: NaN/inf time used to flow straight into inflation math.
    with pytest.raises(ConfigError):
        ThreadProfile("x", float("nan"), 0.5, 0.5)
    with pytest.raises(ConfigError):
        ThreadProfile("x", float("inf"), 0.5, 0.5)


def test_contention_rejects_non_finite_knobs():
    with pytest.raises(ConfigError):
        SMTContention(window_pressure=float("nan"))
    with pytest.raises(ConfigError):
        SMTContention(cache_share_penalty=float("inf"))


def test_heterogeneous_pair_barely_inflates_memory_thread():
    model = SMTModel()
    inflation = model.inflation(emb_thread(), mlp_thread())
    # A memory-bound thread next to a GEMM loses almost nothing.
    assert 1.0 <= inflation < 1.10


def test_compute_thread_pays_for_sibling_stalls():
    model = SMTModel()
    lazy_sibling = emb_thread(stall=0.80)
    busy_sibling = emb_thread(stall=0.10)
    assert model.inflation(mlp_thread(), lazy_sibling) > model.inflation(
        mlp_thread(), busy_sibling
    )


def test_identical_pair_inflates_more_than_heterogeneous():
    model = SMTModel()
    a, b = mlp_thread(), mlp_thread()
    assert model.inflation(a, b, identical=True) > model.inflation(a, b)


def test_two_gemms_oversubscribe_issue():
    model = SMTModel()
    inflation = model.inflation(mlp_thread(), mlp_thread(), identical=True)
    # 0.85 + 0.85 demand on one core's ports.
    assert inflation >= 1.7


def test_overlapped_time_bounded_by_solo_and_inflated():
    model = SMTModel()
    a, b = emb_thread(time=1000.0), mlp_thread(time=300.0)
    overlapped = model.overlapped_time(a, b)
    time_a, time_b = model.colocated_times(a, b)
    # Phased co-run: never worse than full-duration inflation, never
    # better than the longer thread running alone.
    assert overlapped <= max(time_a, time_b) + 1e-9
    assert overlapped >= max(a.time_cycles, b.time_cycles)


def test_overlap_contention_stops_when_sibling_retires():
    model = SMTModel()
    long_thread = mlp_thread(time=1_000_000.0)
    blip = emb_thread(time=10.0, stall=0.9)
    overlapped = model.overlapped_time(long_thread, blip)
    # A sibling that lives 10 cycles cannot meaningfully slow a
    # million-cycle thread.
    assert overlapped < long_thread.time_cycles * 1.001


def test_mp_ht_beats_sequential_when_threads_comparable():
    model = SMTModel()
    a = emb_thread(time=1000.0)
    b = mlp_thread(time=800.0)
    assert model.overlapped_time(a, b) < model.serialized_time(a, b)


def test_overlap_cannot_beat_longer_thread():
    model = SMTModel()
    a, b = emb_thread(time=1000.0), mlp_thread(time=10.0)
    assert model.overlapped_time(a, b) >= 1000.0


def test_prefetch_synergy_mechanism():
    # Lowering the embedding thread's stall fraction (what SW-PF does)
    # lowers the MLP sibling's inflation — the Section 4.4 coupling.
    model = SMTModel()
    before = model.inflation(mlp_thread(), emb_thread(stall=0.80))
    after = model.inflation(mlp_thread(), emb_thread(stall=0.20))
    assert after < before


def test_port_overlap_zero_removes_issue_contention():
    model = SMTModel(SMTContention(port_overlap=0.0, window_pressure=0.0))
    assert model.inflation(mlp_thread(), mlp_thread()) == pytest.approx(1.0)
