"""The observatory CLIs: bench_all, bench_gate, obs_dashboard, trace_report."""

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.obs.regress import Benchmark, append_record, make_record

REPO_ROOT = Path(__file__).resolve().parent.parent


def _load_tool(name):
    spec = importlib.util.spec_from_file_location(
        name, REPO_ROOT / "tools" / f"{name}.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules[name] = module
    spec.loader.exec_module(module)
    return module


@pytest.fixture(scope="module")
def bench_gate():
    return _load_tool("bench_gate")


@pytest.fixture(scope="module")
def obs_dashboard():
    return _load_tool("obs_dashboard")


def _record(p95, tput=100.0, timestamp="2026-01-01T00:00:00"):
    return make_record(
        "smoke",
        1,
        [
            Benchmark("serving.p95_ms", p95, "ms", direction="lower"),
            Benchmark(
                "engine.tput", tput, "l/s", direction="higher",
                noise_floor=0.15 * tput, kind="wall",
            ),
        ],
        timestamp=timestamp,
    )


# -- bench_gate --------------------------------------------------------------


def test_gate_passes_with_short_history(bench_gate, tmp_path, capsys):
    path = tmp_path / "hist.jsonl"
    assert bench_gate.main(["--history", str(path)]) == 0
    append_record(path, _record(30.0))
    assert bench_gate.main(["--history", str(path)]) == 0
    assert "nothing to compare" in capsys.readouterr().out


def test_gate_passes_on_identical_rerun(bench_gate, tmp_path, capsys):
    path = tmp_path / "hist.jsonl"
    append_record(path, _record(30.0))
    append_record(path, _record(30.0))
    assert bench_gate.main(["--history", str(path)]) == 0
    assert "bench gate OK" in capsys.readouterr().out


def test_gate_fails_naming_benchmark_and_delta(bench_gate, tmp_path, capsys):
    """ISSUE acceptance: >=20% synthetic regression => nonzero exit + name."""
    path = tmp_path / "hist.jsonl"
    append_record(path, _record(30.0))
    append_record(path, _record(39.0))  # +30% on lower-is-better
    assert bench_gate.main(["--history", str(path)]) == 1
    err = capsys.readouterr().err
    assert "REGRESSION serving.p95_ms" in err
    assert "+30.0% worse" in err


def test_gate_skips_wall_by_default_includes_on_flag(
    bench_gate, tmp_path, capsys
):
    path = tmp_path / "hist.jsonl"
    append_record(path, _record(30.0, tput=100.0))
    append_record(path, _record(30.0, tput=40.0))  # -60% wall throughput
    assert bench_gate.main(["--history", str(path)]) == 0
    assert bench_gate.main(["--history", str(path), "--include-wall"]) == 1
    assert "REGRESSION engine.tput" in capsys.readouterr().err


# -- obs_dashboard -----------------------------------------------------------


def test_dashboard_renders_all_sections(obs_dashboard, tmp_path, capsys):
    hist = tmp_path / "hist.jsonl"
    append_record(hist, _record(30.0, timestamp="2026-01-01T00:00:00"))
    append_record(hist, _record(33.0, timestamp="2026-01-02T00:00:00"))
    metrics = tmp_path / "metrics.jsonl"
    metrics.write_text(
        json.dumps(
            {
                "name": "core.cycles", "type": "counter", "value": 1000.0,
                "labels": {"stage": "embedding"},
            }
        )
        + "\n"
        + json.dumps(
            {
                "name": "core.cpi.dram_bound", "type": "counter",
                "value": 600.0, "labels": {"stage": "embedding"},
            }
        )
        + "\n"
    )
    reqlog = tmp_path / "req.jsonl"
    reqlog.write_text(
        json.dumps(
            {
                "kind": "request_log_meta", "schema_version": 1,
                "runs": 1, "requests": 1, "dropped": 0,
            }
        )
        + "\n"
        + json.dumps(
            {
                "kind": "request", "outcome": "shed", "cause": "queue_full",
                "deadline_met": None, "fault_windows": [], "retries": 0,
            }
        )
        + "\n"
    )
    out = tmp_path / "dash.html"
    assert obs_dashboard.main(
        [
            "--history", str(hist), "--metrics", str(metrics),
            "--request-log", str(reqlog), "--out", str(out),
        ]
    ) == 0
    page = out.read_text()
    assert "benchmark trajectories (2 record(s))" in page
    assert "serving.p95_ms" in page
    assert "<svg" in page  # sparkline rendered
    assert "CPI stacks" in page
    assert "dram_bound" in page
    assert "SLA-miss attribution" in page
    assert "shed_queue_full" in page
    # +10% move on a lower-is-better benchmark renders as worse.
    assert 'class="worse"' in page


def test_dashboard_handles_missing_inputs(obs_dashboard, tmp_path):
    out = tmp_path / "dash.html"
    assert obs_dashboard.main(
        ["--history", str(tmp_path / "absent.jsonl"), "--out", str(out)]
    ) == 0
    assert "no artifacts" in out.read_text()


# -- bench_all (tiny run) ----------------------------------------------------


@pytest.mark.slow
def test_bench_all_smoke_appends_schema_valid_record(tmp_path):
    from repro.obs.schema import validate_def

    bench_all = _load_tool("bench_all")
    hist = tmp_path / "hist.jsonl"
    assert bench_all.main(
        ["--mode", "smoke", "--repeats", "1", "--history", str(hist)]
    ) == 0
    lines = [json.loads(l) for l in hist.read_text().splitlines()]
    assert len(lines) == 1
    record = lines[0]
    schema = json.loads((REPO_ROOT / "tools" / "trace_schema.json").read_text())
    assert validate_def(record, schema, "bench_record") == []
    kinds = {b["kind"] for b in record["benchmarks"].values()}
    assert kinds == {"sim", "wall"}
    assert "serving.resilient.p95_ms" in record["benchmarks"]
    assert "scheme.mp_ht.speedup" in record["benchmarks"]


# -- trace_report --requests -------------------------------------------------


def test_trace_report_requests_mode(tmp_path, capsys):
    import numpy as np

    from repro.obs import RequestLog
    from repro.obs.hooks import Observation, session
    from repro.serving.faults import BandwidthDegradation, FaultPlan
    from repro.serving.server import ServingPolicy, simulate_server
    from repro.serving.workload import poisson_arrivals

    trace_report = _load_tool("trace_report")
    arrivals = poisson_arrivals(1.2, 120, np.random.default_rng(4))
    log = RequestLog()
    with session(Observation(requests=log)):
        simulate_server(
            arrivals, 4.0, 2, np.random.default_rng(2),
            fault_plan=FaultPlan(
                [BandwidthDegradation(20.0, 90.0, 3.0)], seed=1
            ),
            policy=ServingPolicy(
                deadline_ms=8.0, timeout_ms=6.0, max_queue_depth=6
            ),
            label="report-test",
        )
    path = tmp_path / "req.jsonl"
    log.to_jsonl(path)
    assert trace_report.main(
        ["--requests", str(path), "--validate", "--top", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "schema OK" in out
    assert "SLA-miss attribution" in out
    assert "slowest 3 requests" in out
    assert "report-test" in out


def test_trace_report_requires_some_input(capsys):
    trace_report = _load_tool("trace_report")
    with pytest.raises(SystemExit):
        trace_report.main([])


# -- fleet view + SLO log (PR 8) ---------------------------------------------


def _cluster_artifacts(tmp_path):
    """One small traced+logged cluster run -> (trace.json, req.jsonl)."""
    from repro.config import SimConfig
    from repro.obs import RequestLog
    from repro.obs.hooks import Observation, session
    from repro.serving.cluster import ClusterConfig, ClusterSim
    from repro.serving.faults import ClusterFaultPlan, NodeCrash
    from repro.serving.router import HedgePolicy
    from repro.serving.workload import poisson_arrivals

    config = SimConfig(seed=3)
    arrivals = poisson_arrivals(0.5, 400, config.rng("t:arr"))
    obs = Observation(requests=RequestLog())
    with session(obs):
        ClusterSim(
            ClusterConfig(
                num_nodes=3, cores_per_node=2, mean_service_ms=1.0,
                num_shards=6, replication=2, gather_width=2, hop_ms=0.05,
                call_timeout_ms=12.0, deadline_ms=50.0,
                routing="least_loaded",
                hedge=HedgePolicy(quantile=95.0, min_ms=2.0, window=64),
                faults=ClusterFaultPlan([NodeCrash(1, 50.0, 120.0)], seed=3),
                seed=3, label="tools-fleet",
            )
        ).run(arrivals)
    trace_path = tmp_path / "t.json"
    req_path = tmp_path / "req.jsonl"
    obs.tracer.to_chrome(trace_path)
    obs.requests.to_jsonl(req_path)
    return trace_path, req_path


def test_trace_report_fleet_view_and_node_column(tmp_path, capsys):
    trace_report = _load_tool("trace_report")
    trace_path, req_path = _cluster_artifacts(tmp_path)
    assert trace_report.main(
        [str(trace_path), "--fleet", "--requests", str(req_path),
         "--validate", "--top", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "schema OK" in out
    assert "per-node attempts" in out
    assert "router decisions" in out
    assert "request outcomes" in out
    # Satellite fix: the slowest-N head line names the serving node(s).
    assert "node=" in out


def test_trace_report_slo_mode(tmp_path, capsys):
    trace_report = _load_tool("trace_report")
    path = tmp_path / "slo.jsonl"
    lines = [
        {"kind": "slo_log_meta", "schema_version": 1, "window_ms": 10.0,
         "scenarios": ["none"], "lines": 2},
        {"kind": "slo_state", "schema_version": 1, "slo": "avail",
         "slo_kind": "availability", "objective": 0.99, "t_ms": 10.0,
         "window_ms": 10.0, "good": 5, "total": 5, "compliance": 1.0,
         "burn_rate": 0.0, "budget_remaining": 1.0, "scenario": "none"},
        {"kind": "alert", "schema_version": 1, "source": "detector",
         "name": "node0.error_rate", "state": "firing", "t_ms": 20.0,
         "node": 0, "score": 9.0, "scenario": "none"},
    ]
    path.write_text("".join(json.dumps(l) + "\n" for l in lines))
    assert trace_report.main(["--slo", str(path), "--validate"]) == 0
    out = capsys.readouterr().out
    assert "schema OK" in out
    assert "SLO error budgets" in out
    assert "alerts fired (1)" in out


# -- critical path + what-if (PR 10) -----------------------------------------


def test_trace_report_critpath_from_requests(tmp_path, capsys):
    trace_report = _load_tool("trace_report")
    _, req_path = _cluster_artifacts(tmp_path)
    assert trace_report.main(
        ["--requests", str(req_path), "--critpath", "--validate", "--top", "3"]
    ) == 0
    out = capsys.readouterr().out
    assert "schema OK" in out
    assert "conservation: 400 request(s), 0 violation(s)" in out
    assert "critical-path profiles" in out
    assert "bottleneck" in out


def test_trace_report_critpath_needs_requests(capsys):
    trace_report = _load_tool("trace_report")
    with pytest.raises(SystemExit):
        trace_report.main(["--critpath"])


def test_trace_report_critpath_log_mode(tmp_path, capsys):
    trace_report = _load_tool("trace_report")
    path = tmp_path / "critpath.jsonl"
    lines = [
        {"kind": "critpath_log_meta", "schema_version": 1,
         "scenarios": ["noisy"], "lines": 2},
        {"kind": "critpath_profile", "schema_version": 1,
         "scenario": "noisy", "scope": "overall", "requests": 10,
         "total_ms": 40.0, "segments": {"queue": 25.0, "service": 15.0},
         "bottleneck": "queue"},
        {"kind": "whatif", "schema_version": 1, "scenario": "noisy",
         "knob": "hedge_min_ms", "value": 6.0, "metric": "p99_ms",
         "baseline": 15.0, "predicted": 12.0, "actual": 12.5,
         "within_bounds": True, "requests": 10, "estimated": False},
    ]
    path.write_text("".join(json.dumps(l) + "\n" for l in lines))
    assert trace_report.main(["--critpath-log", str(path), "--validate"]) == 0
    out = capsys.readouterr().out
    assert "schema OK" in out
    assert "critical-path profiles" in out
    assert "what-if predictions" in out
    assert "noisy/hedge_min_ms" in out


def test_trace_report_critpath_log_rejects_bad_record(tmp_path, capsys):
    trace_report = _load_tool("trace_report")
    path = tmp_path / "critpath.jsonl"
    bad = {"kind": "whatif", "schema_version": 1, "scenario": "x",
           "knob": "warp_drive", "value": 1.0, "metric": "p99_ms",
           "baseline": 1.0, "predicted": 1.0, "actual": None,
           "within_bounds": None, "requests": 1, "estimated": False}
    path.write_text(json.dumps(bad) + "\n")
    assert trace_report.main(["--critpath-log", str(path), "--validate"]) == 1
    err = capsys.readouterr().err
    assert "schema violation" in err


def test_trace_report_json_format(tmp_path, capsys):
    trace_report = _load_tool("trace_report")
    _, req_path = _cluster_artifacts(tmp_path)
    assert trace_report.main(
        ["--requests", str(req_path), "--critpath", "--validate",
         "--format", "json"]
    ) == 0
    captured = capsys.readouterr()
    document = json.loads(captured.out)  # stdout is one JSON document
    assert "schema OK" not in captured.out  # diagnostics go to stderr
    assert "schema OK" in captured.err
    assert document["requests"]["slowest"]  # top-N rows present as data
    critpath = document["critpath"]
    assert critpath["conservation"][0]["requests"] == 400
    assert critpath["conservation"][0]["violations"] == 0
    scopes = {r["scope"] for r in critpath["profiles"]}
    assert "overall" in scopes


def test_miss_attribution_sorted_by_count_then_cause(tmp_path, capsys):
    """Satellite fix: attribution rows render most-frequent first."""
    from repro.obs import RequestLog

    trace_report = _load_tool("trace_report")
    log = RequestLog()
    run = log.start_run(label="sorted", num_requests=6, deadline_ms=1.0)
    for i in range(6):
        run.add_record(
            req=i, arrival_ms=float(i), outcome="failed" if i < 4 else "shed",
            end_ms=float(i) + 5.0,
            cause=None if i < 4 else "queue_full",
        )
    run.finish_custom()
    path = tmp_path / "req.jsonl"
    log.to_jsonl(path)
    assert trace_report.main(["--requests", str(path), "--top", "1"]) == 0
    out = capsys.readouterr().out
    lines = [l for l in out.splitlines() if l and l.split()[0] in
             ("node_fault", "shed_queue_full")]
    assert len(lines) == 2
    assert lines[0].startswith("node_fault")  # 4 > 2: biggest cause first


def test_dashboard_fleet_and_slo_sections(obs_dashboard, tmp_path):
    trace_path, req_path = _cluster_artifacts(tmp_path)
    slo_path = tmp_path / "slo.jsonl"
    slo_path.write_text(
        json.dumps(
            {"kind": "slo_state", "schema_version": 1, "slo": "avail",
             "slo_kind": "availability", "objective": 0.99, "t_ms": 10.0,
             "window_ms": 10.0, "good": 5, "total": 5, "compliance": 1.0,
             "burn_rate": 0.0, "budget_remaining": 1.0, "scenario": "none"}
        )
        + "\n"
    )
    out = tmp_path / "dash.html"
    assert obs_dashboard.main(
        ["--history", str(tmp_path / "absent.jsonl"),
         "--request-log", str(req_path), "--slo-log", str(slo_path),
         "--out", str(out)]
    ) == 0
    page = out.read_text()
    assert "fleet view" in page
    assert "node health" in page
    assert "shard calls (node x shard)" in page
    assert "error budget" in page
    assert "completed latency" in page


def test_dashboard_zero_completed_requests_blank_not_nan(
    obs_dashboard, tmp_path
):
    """Satellite fix: a cluster log where nothing completed renders blank
    percentile cells, never NaN, and never crashes."""
    reqlog = tmp_path / "req.jsonl"
    meta = {"kind": "request_log_meta", "schema_version": 1, "runs": 1,
            "requests": 2, "dropped": 0}
    shed = {
        "kind": "request", "outcome": "shed", "cause": "queue_full",
        "latency_ms": None, "deadline_met": None, "fault_windows": [],
        "retries": 0, "end_ms": 1.0,
        "events": [{"kind": "shard_call", "t_ms": 0.5, "node": 0, "shard": 0},
                   {"kind": "call_failed", "t_ms": 1.0, "node": 0,
                    "shard": 0, "cause": "crash"}],
    }
    reqlog.write_text(
        json.dumps(meta) + "\n" + json.dumps(shed) + "\n"
        + json.dumps(shed) + "\n"
    )
    out = tmp_path / "dash.html"
    assert obs_dashboard.main(
        ["--history", str(tmp_path / "absent.jsonl"),
         "--request-log", str(reqlog), "--out", str(out)]
    ) == 0
    page = out.read_text()
    assert "no completed requests" in page
    assert "nan" not in page.lower()
