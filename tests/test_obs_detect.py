"""Drift-detector tests: mean shifts, composition drift, state machines."""

import pytest

from repro.errors import ConfigError
from repro.obs.detect import (
    CompositionDriftDetector,
    DetectionEvent,
    MeanShiftDetector,
)


def _feed(detector, values, t0=0.0, dt=1.0):
    events = []
    for j, v in enumerate(values):
        event = detector.update(t0 + (j + 1) * dt, v)
        if event is not None:
            events.append(event)
    return events


class TestMeanShiftDetector:
    def test_quiet_signal_never_fires(self):
        det = MeanShiftDetector("sig", warmup=8)
        values = [1.0 + 0.01 * ((j % 5) - 2) for j in range(200)]
        assert _feed(det, values) == []
        assert not det.firing

    def test_step_change_fires_and_resolves(self):
        det = MeanShiftDetector("sig", warmup=8, threshold=4.0)
        events = _feed(det, [1.0] * 30 + [10.0] * 20 + [1.0] * 30)
        states = [e.state for e in events]
        assert states == ["firing", "resolved"]
        assert events[0].t_ms < events[1].t_ms
        assert not det.firing

    def test_warmup_swallows_early_samples(self):
        # The shift lands inside the warmup window: it becomes the
        # baseline instead of an anomaly.
        det = MeanShiftDetector("sig", warmup=16)
        assert _feed(det, [5.0] * 10) == []

    def test_direction_up_ignores_improvements(self):
        det = MeanShiftDetector("sig", warmup=8, direction="up")
        events = _feed(det, [10.0] * 20 + [0.1] * 20)
        assert events == []

    def test_direction_down_ignores_degradations(self):
        det = MeanShiftDetector("sig", warmup=8, direction="down")
        assert _feed(det, [1.0] * 20 + [50.0] * 20) == []

    def test_direction_down_fires_on_drop(self):
        det = MeanShiftDetector("sig", warmup=8, direction="down")
        events = _feed(det, [1.0] * 20 + [0.0] * 20)
        assert events and events[0].state == "firing"

    def test_reference_frozen_while_firing(self):
        # A long-lived fault must not teach the detector that broken is
        # normal: the reference only adapts while healthy.
        det = MeanShiftDetector("sig", warmup=8, threshold=4.0)
        _feed(det, [1.0] * 30 + [10.0] * 200)
        assert det.firing

    def test_event_shape(self):
        det = MeanShiftDetector("sig", node=3, warmup=4)
        events = _feed(det, [1.0] * 10 + [99.0] * 5)
        assert events and isinstance(events[0], DetectionEvent)
        assert events[0].signal == "sig"
        assert events[0].node == 3
        assert events[0].firing
        assert events[0].score >= 4.0

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            MeanShiftDetector("sig", warmup=0)
        with pytest.raises(ConfigError):
            MeanShiftDetector("sig", threshold=0.0)
        with pytest.raises(ConfigError):
            MeanShiftDetector("sig", direction="sideways")

    def test_deterministic(self):
        values = [1.0] * 20 + [7.0] * 10 + [1.0] * 20
        runs = []
        for _ in range(2):
            det = MeanShiftDetector("sig", warmup=8)
            runs.append([(e.t_ms, e.state, e.score) for e in _feed(det, values)])
        assert runs[0] == runs[1]


class TestCompositionDriftDetector:
    def test_stable_mix_never_fires(self):
        det = CompositionDriftDetector("mix", warmup=4)
        mix = {"a": 0.5, "b": 0.3, "c": 0.2}
        assert _feed(det, [dict(mix) for _ in range(50)]) == []

    def test_mix_flip_fires(self):
        det = CompositionDriftDetector("mix", warmup=4, threshold=0.25)
        before = {"a": 0.8, "b": 0.2}
        after = {"a": 0.1, "b": 0.9}
        events = _feed(det, [dict(before)] * 20 + [dict(after)] * 10)
        assert events and events[0].state == "firing"

    def test_empty_mix_is_skipped(self):
        det = CompositionDriftDetector("mix", warmup=4)
        events = _feed(det, [{"a": 1.0}] * 10 + [{}] * 5 + [{"a": 1.0}] * 5)
        assert events == []

    def test_unnormalized_input_ok(self):
        # Raw counts and normalized fractions describe the same mix.
        det_counts = CompositionDriftDetector("mix", warmup=4)
        det_fracs = CompositionDriftDetector("mix", warmup=4)
        counts = [{"a": 80.0, "b": 20.0}] * 15 + [{"a": 5.0, "b": 95.0}] * 10
        fracs = [{"a": 0.8, "b": 0.2}] * 15 + [{"a": 0.05, "b": 0.95}] * 10
        ev_counts = _feed(det_counts, counts)
        ev_fracs = _feed(det_fracs, fracs)
        assert [e.state for e in ev_counts] == [e.state for e in ev_fracs]
