"""Set-associative cache tests."""

import pytest

from repro.errors import ConfigError
from repro.mem.cache import Cache


@pytest.fixture
def cache():
    # 64 lines total, 2-way, 32 sets.
    return Cache("l1", 64 * 64, 2)


def test_geometry(cache):
    assert cache.capacity_lines == 64
    assert cache.num_sets == 32
    assert cache.ways == 2


def test_size_must_divide_into_sets():
    with pytest.raises(ConfigError):
        Cache("bad", 64 * 3, 2)  # 3 lines into 2 ways


def test_miss_then_fill_then_hit(cache):
    assert not cache.access(5)
    cache.fill(5)
    assert cache.access(5)
    assert cache.stats.demand_misses == 1
    assert cache.stats.demand_hits == 1


def test_set_conflict_eviction(cache):
    # Lines mapping to the same set: line, line+32, line+64 (32 sets).
    base = 7
    conflicts = [base, base + 32, base + 64]
    for line in conflicts:
        cache.access(line)
        cache.fill(line)
    # 2 ways: the first conflicting line must have been evicted.
    assert not cache.contains(conflicts[0])
    assert cache.contains(conflicts[1])
    assert cache.contains(conflicts[2])
    assert cache.stats.evictions == 1


def test_fill_returns_evicted_line_number(cache):
    cache.fill(7)
    cache.fill(7 + 32)
    evicted = cache.fill(7 + 64)
    assert evicted == 7


def test_contains_has_no_side_effects(cache):
    cache.fill(1)
    cache.fill(1 + 32)
    assert cache.contains(1)
    # contains() must not refresh recency: 1 is still LRU.
    evicted = cache.fill(1 + 64)
    assert evicted == 1


def test_prefetch_accounting(cache):
    cache.fill(9, from_prefetch=True)
    assert cache.stats.prefetch_fills == 1
    assert cache.access(9)  # demand touch makes it useful
    assert cache.stats.prefetch_useful == 1


def test_unused_prefetch_eviction_counted(cache):
    cache.fill(7, from_prefetch=True)
    cache.fill(7 + 32)
    cache.fill(7 + 64)  # evicts the prefetched 7, never used
    assert cache.stats.prefetch_evicted_unused == 1


def test_prefetch_access_does_not_count_as_demand(cache):
    cache.access(3, is_prefetch=True)
    assert cache.stats.demand_accesses == 0


def test_invalidate(cache):
    cache.fill(4)
    assert cache.invalidate(4)
    assert not cache.contains(4)
    assert not cache.invalidate(4)


def test_flush_empties_but_keeps_stats(cache):
    cache.access(1)
    cache.fill(1)
    cache.flush()
    assert not cache.contains(1)
    assert cache.stats.demand_misses == 1


def test_reset_stats_keeps_contents(cache):
    cache.fill(1)
    cache.access(1)
    cache.reset_stats()
    assert cache.stats.demand_hits == 0
    assert cache.contains(1)


def test_occupancy_never_exceeds_capacity(cache):
    for line in range(500):
        cache.access(line)
        cache.fill(line)
    assert cache.occupancy() <= cache.capacity_lines


def test_hit_rate_property(cache):
    for line in range(4):
        cache.access(line)
        cache.fill(line)
    for line in range(4):
        cache.access(line)
    assert cache.stats.hit_rate == pytest.approx(0.5)
    assert cache.stats.miss_rate == pytest.approx(0.5)


def test_line_to_set_round_trip(cache):
    line = 12345
    set_idx = cache.set_index(line)
    tag = cache.tag_of(line)
    assert tag * cache.num_sets + set_idx == line
