"""Hyperthreading scheduler tests."""

import pytest

from repro.core.hyperthread import (
    dp_ht_batch_cycles,
    halved_smt_hierarchy_config,
    mp_ht_batch_cycles,
    mp_ht_thread_slowdowns,
    sequential_batch_cycles,
)
from repro.cpu.smt import SMTModel, ThreadProfile
from repro.engine.inference import InferenceTiming, StageTimes
from repro.errors import ConfigError
from repro.mem.hierarchy import HierarchyConfig


def make_timing(emb=1000.0, bottom=400.0, interaction=50.0, top=50.0,
                emb_util=0.10, emb_stall=0.8):
    stages = StageTimes(bottom, emb, interaction, top)
    return InferenceTiming(
        model="test",
        stages=stages,
        frequency_hz=2.4e9,
        embedding_profile=ThreadProfile("embedding", emb, emb_util, emb_stall),
        bottom_mlp_profile=ThreadProfile("bottom_mlp", bottom, 0.85, 0.03),
    )


def test_sequential_is_stage_sum():
    timing = make_timing()
    assert sequential_batch_cycles(timing) == pytest.approx(1500.0)


def test_mp_ht_overlaps_bottom_mlp():
    timing = make_timing(emb=1000.0, bottom=400.0)
    mp = mp_ht_batch_cycles(timing)
    seq = sequential_batch_cycles(timing)
    assert mp < seq
    # Cannot be faster than the embedding critical path + tail stages.
    assert mp >= 1000.0 + 100.0


def test_mp_ht_gain_grows_with_bottom_share():
    small_bottom = make_timing(emb=1000.0, bottom=100.0)
    large_bottom = make_timing(emb=1000.0, bottom=900.0)
    gain_small = sequential_batch_cycles(small_bottom) / mp_ht_batch_cycles(small_bottom)
    gain_large = sequential_batch_cycles(large_bottom) / mp_ht_batch_cycles(large_bottom)
    assert gain_large > gain_small


def test_mp_ht_slowdowns_are_asymmetric():
    timing = make_timing()
    emb_inflation, mlp_inflation = mp_ht_thread_slowdowns(timing)
    # The memory thread barely notices the GEMM; the GEMM pays for the
    # memory thread's window pressure.
    assert emb_inflation < mlp_inflation
    assert emb_inflation < 1.1


def test_prefetched_profile_reduces_mlp_penalty():
    stalled = make_timing(emb_stall=0.8)
    prefetched = make_timing(emb_stall=0.2)
    _, mlp_with_stalls = mp_ht_thread_slowdowns(stalled)
    _, mlp_with_pf = mp_ht_thread_slowdowns(prefetched)
    assert mlp_with_pf < mlp_with_stalls


def test_dp_ht_slower_than_sequential():
    timing = make_timing()
    dp = dp_ht_batch_cycles(timing)
    assert dp > sequential_batch_cycles(timing)


def test_dp_ht_compute_phases_pay_full_port_conflict():
    timing = make_timing(emb=10.0, bottom=1000.0, emb_util=0.1)
    dp = dp_ht_batch_cycles(timing)
    # Two colocated GEMMs at 0.85 utilization each: ≥1.7x on the dense part.
    assert dp > 1000.0 * 1.6


def test_halved_config_geometry():
    config = HierarchyConfig()
    halved = halved_smt_hierarchy_config(config)
    assert halved.l1_size == config.l1_size // 2
    assert halved.l1_ways == config.l1_ways // 2
    assert halved.l2_size == config.l2_size // 2
    assert halved.l3_size == config.l3_size  # L3 shared either way
    # Set counts preserved (competitive sharing halves ways, not sets).
    assert halved.l1_size // 64 // halved.l1_ways == config.l1_size // 64 // config.l1_ways


def test_halved_config_rejects_direct_mapped():
    config = HierarchyConfig(l1_ways=1, l1_size=32 * 1024)
    with pytest.raises(ConfigError):
        halved_smt_hierarchy_config(config)


def test_custom_smt_model_threads_through():
    from repro.cpu.smt import SMTContention

    timing = make_timing()
    lenient = SMTModel(SMTContention(window_pressure=0.0, port_overlap=0.0))
    harsh = SMTModel(SMTContention(window_pressure=1.0, port_overlap=1.0))
    assert mp_ht_batch_cycles(timing, smt=lenient) < mp_ht_batch_cycles(
        timing, smt=harsh
    )
