"""Integration tests: telemetry is observable when on, invisible when off.

The zero-cost-when-disabled contract of :mod:`repro.obs.hooks`: with an
observation installed, every instrumented subsystem publishes spans and
metrics; with none installed, simulation results are *byte-identical* to an
unobserved run (the hooks only read state, never perturb it).
"""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.config import SimConfig
from repro.engine.embedding_exec import run_embedding_trace
from repro.experiments import run_experiment
from repro.experiments.base import report_to_dict
from repro.experiments.runner import main
from repro.mem.hierarchy import build_hierarchy, set_default_engine
from repro.obs.hooks import session
from repro.obs.schema import validate
from repro.serving.server import simulate_server
from repro.serving.workload import poisson_arrivals

SCHEMA_PATH = Path(__file__).parent.parent / "tools" / "trace_schema.json"


def _report_bytes(report) -> bytes:
    return json.dumps(report_to_dict(report), sort_keys=True).encode()


def test_fast_engine_report_identical_with_tracing(sim_config):
    """ISSUE acceptance: tracing on vs off => byte-identical reports."""
    baseline = run_experiment(
        "fig1", config=SimConfig(seed=sim_config.seed, engine="fast"),
        models=("rm2_1",),
    )
    with session() as obs:
        observed = run_experiment(
            "fig1", config=SimConfig(seed=sim_config.seed, engine="fast"),
            models=("rm2_1",),
        )
    assert _report_bytes(baseline) == _report_bytes(observed)
    # ...and the observed run actually recorded telemetry.
    assert obs.tracer.find("experiment:fig1")
    assert obs.metrics.value("core.cycles", stage="embedding") > 0


def test_embedding_run_results_identical_under_observation(
    tiny_trace, tiny_amap, csl
):
    set_default_engine("fast")
    try:
        plain = run_embedding_trace(
            tiny_trace, tiny_amap, csl.core, build_hierarchy(csl.hierarchy)
        )
        with session() as obs:
            observed = run_embedding_trace(
                tiny_trace, tiny_amap, csl.core, build_hierarchy(csl.hierarchy)
            )
    finally:
        set_default_engine("fast")
    assert plain.total_cycles == observed.total_cycles
    assert plain.batch_cycles == observed.batch_cycles
    assert plain.level_fractions == observed.level_fractions
    # The observed run published per-batch sim spans and mem counters.
    assert len(obs.tracer.find("batch[0]")) == 1
    assert obs.metrics.value("mem.demand_accesses") == plain.loads
    hist = obs.metrics.histogram("mem.load_latency_cycles")
    assert hist.count == plain.loads


def test_embedding_cpi_stack_sums_to_core_cycles(tiny_trace, tiny_amap, csl):
    from repro.obs.cpi import collect_cpi_stacks

    with session() as obs:
        result = run_embedding_trace(
            tiny_trace, tiny_amap, csl.core, build_hierarchy(csl.hierarchy)
        )
    stacks = [s for s in collect_cpi_stacks(obs.metrics) if s.stage == "embedding"]
    assert len(stacks) == 1
    stacks[0].check(rel_tol=1e-6)  # ISSUE acceptance: partition within 1e-6
    assert stacks[0].total_cycles == pytest.approx(result.total_cycles)


def test_serving_publishes_latency_metrics(rng):
    arrivals = poisson_arrivals(mean_interarrival_ms=1.0, num_requests=100, rng=rng)
    with session() as obs:
        result = simulate_server(arrivals, 1.0, 4, rng)
    assert obs.metrics.value("serving.requests") == arrivals.size
    hist = obs.metrics.histogram("serving.latency_ms")
    assert hist.count == arrivals.size
    assert result.latency_hist.count == arrivals.size


def test_hyperthread_schedulers_emit_smt_telemetry(
    tiny_trace, tiny_amap, tiny_model, csl
):
    from repro.core.hyperthread import mp_ht_batch_cycles
    from repro.engine.inference import time_inference_sequential

    with session() as obs:
        emb = run_embedding_trace(
            tiny_trace, tiny_amap, csl.core, build_hierarchy(csl.hierarchy)
        )
        timing = time_inference_sequential(tiny_model, emb, csl.core, 4)
        mp_ht_batch_cycles(timing)
    assert obs.tracer.find("embedding || bottom_mlp")
    assert obs.metrics.value("smt.mp_ht.overlap_saved_cycles") is not None
    # Dense stages of the inference published CPI stacks alongside.
    assert obs.metrics.value("core.cycles", stage="bottom_mlp") > 0


# -- runner CLI --------------------------------------------------------------


def test_runner_trace_metrics_cpi_flags(tmp_path, capsys):
    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.jsonl"
    assert main([
        "--experiment", "fig5", "--scale", "0.01", "--batch-size", "8",
        "--num-batches", "1",
        "--trace", str(trace_path), "--metrics", str(metrics_path), "--cpi-stack",
    ]) == 0
    out = capsys.readouterr().out
    assert "[trace:" in out and "[metrics:" in out
    trace = json.loads(trace_path.read_text())
    schema = json.loads(SCHEMA_PATH.read_text())
    assert validate(trace, schema) == []
    names = [e["name"] for e in trace["traceEvents"]]
    assert "experiment:fig5" in names
    for line in metrics_path.read_text().splitlines():
        json.loads(line)


def test_runner_experiment_flag_is_positional_alias(capsys):
    assert main(["--experiment", "table1"]) == 0
    assert "RMC2" in capsys.readouterr().out


def test_runner_rejects_conflicting_or_missing_experiment(capsys):
    with pytest.raises(SystemExit):
        main(["table1", "--experiment", "table2"])
    capsys.readouterr()
    with pytest.raises(SystemExit):
        main([])
    capsys.readouterr()


def test_trace_report_tool(tmp_path, capsys):
    trace_path = tmp_path / "t.json"
    metrics_path = tmp_path / "m.jsonl"
    assert main([
        "--experiment", "fig5", "--scale", "0.01", "--batch-size", "8",
        "--num-batches", "1",
        "--trace", str(trace_path), "--metrics", str(metrics_path),
    ]) == 0
    capsys.readouterr()
    import importlib.util

    spec = importlib.util.spec_from_file_location(
        "trace_report", Path(__file__).parent.parent / "tools" / "trace_report.py"
    )
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    assert mod.main([
        str(trace_path), "--metrics", str(metrics_path), "--validate"
    ]) == 0
    out = capsys.readouterr().out
    assert "schema OK" in out
    assert "wall spans" in out
