"""Tests for the beyond-the-paper extensions: RMC3 model, two-core MP."""

import pytest

from repro.core.hyperthread import (
    mp_ht_batch_cycles,
    mp_two_core_batch_cycles,
    sequential_batch_cycles,
)
from repro.cpu.smt import ThreadProfile
from repro.engine.inference import InferenceTiming, StageTimes
from repro.errors import ConfigError
from repro.model.configs import EXTENDED_MODEL_NAMES, MODEL_NAMES, get_model
from repro.serving.sla import sla_for_model


class TestRM3:
    def test_rm3_not_in_table2_but_in_extended(self):
        assert "rm3" not in MODEL_NAMES
        assert "rm3" in EXTENDED_MODEL_NAMES
        assert EXTENDED_MODEL_NAMES[:4] == MODEL_NAMES

    def test_rm3_is_mlp_heavy(self):
        rm3 = get_model("rm3")
        assert rm3.category == "RMC3"
        assert rm3.reference_emb_pct < 50
        # Its MLP stacks dwarf every Table 2 model's.
        rm1 = get_model("rm1")
        rm3_flops = sum(a * b for a, b in zip((rm3.dense_features,) + rm3.bottom_mlp, rm3.bottom_mlp))
        rm1_flops = sum(a * b for a, b in zip((rm1.dense_features,) + rm1.bottom_mlp, rm1.bottom_mlp))
        assert rm3_flops > rm1_flops

    def test_rm3_sla_matches_table1(self):
        assert sla_for_model(get_model("rm3")).sla_ms == 100.0
        assert sla_for_model(get_model("rm3")).bottleneck == "mlp"

    def test_rm3_breakdown_is_mlp_dominated(self):
        from repro.analysis.breakdown import estimate_stage_breakdown
        from repro.config import SimConfig
        from repro.cpu.platform import get_platform

        stages = estimate_stage_breakdown(
            get_model("rm3"), "low", get_platform("csl"), batch_size=64,
            sample_tables=2, sample_batches=2, config=SimConfig(seed=3),
        )
        # Table 1: RMC3 is ~80% MLP.
        assert stages.embedding_fraction < 0.5
        mlp_share = (
            stages.bottom_mlp + stages.top_mlp
        ) / stages.total
        assert mlp_share > 0.5

    def test_rm3_schemes_run_end_to_end(self):
        from repro import quick_eval
        from repro.config import SimConfig

        panel = quick_eval(
            model="rm3", dataset="low", scale=0.05, batch_size=8,
            num_batches=1, schemes=("baseline", "mp_ht", "integrated"),
            config=SimConfig(seed=5),
        )
        base = panel["baseline"]
        # MLP-heavy: hyperthreading is the (modest) lever — the giant top
        # MLP cannot be overlapped, capping the gain.
        assert panel["mp_ht"].speedup_over(base) > 1.0
        assert panel["integrated"].speedup_over(base) >= panel[
            "mp_ht"
        ].speedup_over(base) * 0.98


class TestTwoCoreMP:
    def make_timing(self, emb=1_000_000.0, bottom=800_000.0):
        # Realistic batch magnitudes (~1e6 cycles) so the fixed sync cost
        # plays its proper, small role.
        return InferenceTiming(
            model="t",
            stages=StageTimes(bottom, emb, 50_000.0, 50_000.0),
            frequency_hz=2.4e9,
            embedding_profile=ThreadProfile("embedding", emb, 0.1, 0.8),
            bottom_mlp_profile=ThreadProfile("bottom_mlp", bottom, 0.85, 0.03),
        )

    def test_two_core_beats_sequential_when_overlap_is_big(self):
        timing = self.make_timing()
        assert mp_two_core_batch_cycles(timing) < sequential_batch_cycles(timing)

    def test_two_core_has_no_smt_interference(self):
        # With zero sync cost, two cores achieve the ideal overlap, which
        # MP-HT can only approach.
        timing = self.make_timing()
        ideal = mp_two_core_batch_cycles(timing, sync_cycles=0.0)
        assert ideal <= mp_ht_batch_cycles(timing)

    def test_sync_overhead_erodes_the_win(self):
        # The paper's argument: for small overlap the sync cost makes the
        # two-core split not worth double the cores.
        timing = self.make_timing(emb=1_000_000.0, bottom=1_000.0)
        two_core = mp_two_core_batch_cycles(timing)
        assert two_core > sequential_batch_cycles(timing)

    def test_negative_sync_rejected(self):
        with pytest.raises(ConfigError):
            mp_two_core_batch_cycles(self.make_timing(), sync_cycles=-1.0)
