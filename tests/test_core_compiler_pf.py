"""Compiler-prefetch baseline tests."""

import pytest

from repro.core.compiler_pf import (
    COMPILER_STYLES,
    compiler_cost_model,
    compiler_prefetch_plan,
)
from repro.engine.embedding_exec import run_embedding_trace
from repro.errors import ConfigError
from repro.mem.hierarchy import build_hierarchy


def test_gcc_covers_no_indirect_accesses():
    assert compiler_prefetch_plan("gcc") is None


def test_icc_prefetches_single_line_at_generic_distance():
    plan = compiler_prefetch_plan("icc")
    assert plan is not None
    assert plan.amount_lines == 1  # no amount control — the paper's critique
    assert plan.distance > 4  # generic, not workload-tuned


def test_cost_models_add_overhead():
    base_instr = compiler_cost_model("gcc").uops_per_lookup_base
    from repro.engine.kernels import KernelCostModel

    assert base_instr > KernelCostModel().uops_per_lookup_base


def test_unknown_style_rejected():
    with pytest.raises(ConfigError):
        compiler_prefetch_plan("clang")
    with pytest.raises(ConfigError):
        compiler_cost_model("clang")


def test_compiler_pf_limited_benefit(tiny_trace, tiny_amap, csl):
    """Fig 10a: compiler prefetching gives limited or negative benefit."""
    baseline = run_embedding_trace(
        tiny_trace, tiny_amap, csl.core, build_hierarchy(csl.hierarchy)
    )
    for style in COMPILER_STYLES:
        result = run_embedding_trace(
            tiny_trace,
            tiny_amap,
            csl.core,
            build_hierarchy(csl.hierarchy),
            plan=compiler_prefetch_plan(style),
            cost=compiler_cost_model(style),
        )
        speedup = baseline.total_cycles / result.total_cycles
        assert 0.7 < speedup < 1.25  # never close to the tuned SW-PF gains
