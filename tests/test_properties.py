"""Property-based tests (hypothesis) on the core data structures."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.analysis.reuse import reuse_distances
from repro.cpu.core import CoreModel, CoreSpec
from repro.mem.cache import Cache
from repro.mem.policies import LRUPolicy
from repro.model.embedding import EmbeddingTable, embedding_bag
from repro.trace.dataset import TableBatch
from repro.units import lines_for_bytes

SETTINGS = settings(
    max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

keys = st.integers(min_value=0, max_value=30)
streams = st.lists(keys, min_size=0, max_size=200)


def naive_stack_distances(stream):
    distances, cold = [], 0
    last_seen = {}
    for t, key in enumerate(stream):
        if key not in last_seen:
            cold += 1
        else:
            distances.append(len(set(stream[last_seen[key] + 1 : t])))
        last_seen[key] = t
    return distances, cold


@SETTINGS
@given(streams)
def test_reuse_distance_matches_naive(stream):
    """Olken/Fenwick stack distances equal the quadratic reference."""
    fast = reuse_distances(stream)
    slow, cold = naive_stack_distances(stream)
    assert list(fast.distances) == slow
    assert fast.cold_accesses == cold


@SETTINGS
@given(streams)
def test_reuse_hit_rate_monotone_in_capacity(stream):
    result = reuse_distances(stream)
    if result.total_accesses == 0:
        return
    rates = [result.hit_rate_at_capacity(c) for c in (1, 2, 4, 8, 16, 64)]
    assert all(a <= b + 1e-12 for a, b in zip(rates, rates[1:]))


@SETTINGS
@given(streams)
def test_fully_associative_lru_cache_agrees_with_stack_distance(stream):
    """The simulator's LRU set and the analytic model predict identical hits.

    A fully-associative LRU cache of capacity C hits exactly the accesses
    whose stack distance is < C — the equivalence Fig 6's model rests on.
    """
    capacity = 4
    lru = LRUPolicy(capacity)
    simulated_hits = 0
    for key in stream:
        if lru.lookup(key):
            simulated_hits += 1
        else:
            lru.insert(key)
    result = reuse_distances(stream)
    predicted = int(np.count_nonzero(result.distances < capacity))
    assert simulated_hits == predicted


@SETTINGS
@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
def test_cache_occupancy_invariant(lines):
    cache = Cache("t", 64 * 32, 4)  # 32 lines, 4-way
    for line in lines:
        if not cache.access(line):
            cache.fill(line)
    assert cache.occupancy() <= cache.capacity_lines
    stats = cache.stats
    assert stats.demand_hits + stats.demand_misses == len(lines)


@SETTINGS
@given(st.lists(st.integers(min_value=0, max_value=500), min_size=1, max_size=300))
def test_cache_second_access_is_always_hit_within_capacity(lines):
    """Immediately re-accessing a just-filled line must hit."""
    cache = Cache("t", 64 * 32, 4)
    for line in lines:
        if not cache.access(line):
            cache.fill(line)
        assert cache.access(line)  # the line was just touched/filled


@SETTINGS
@given(
    st.lists(
        st.tuples(st.floats(min_value=1.0, max_value=500.0), st.booleans()),
        min_size=1,
        max_size=100,
    )
)
def test_core_time_is_monotone_and_bounded(events):
    """Core time only advances; total >= issue-bound and >= any single miss."""
    spec = CoreSpec(rob_entries=64, issue_width=4, l1_mshrs=8, demand_concurrency=4)
    core = CoreModel(spec)
    previous = 0.0
    for latency, is_miss in events:
        core.issue_compute(3)
        core.issue_load(latency, is_miss=is_miss)
        assert core.now >= previous
        previous = core.now
    total = core.drain()
    issue_bound = core.instr_count / spec.issue_width
    assert total >= issue_bound - 1e-9
    miss_latencies = [lat for lat, miss in events if miss and lat > 16.0]
    if miss_latencies:
        assert total >= max(miss_latencies)


@SETTINGS
@given(
    st.lists(st.floats(min_value=20.0, max_value=400.0), min_size=1, max_size=60)
)
def test_prefetch_stream_never_slower_than_demand_stream(latencies):
    spec = CoreSpec(rob_entries=64, issue_width=4, l1_mshrs=8, demand_concurrency=4)
    demand = CoreModel(spec)
    for latency in latencies:
        demand.issue_load(latency)
    demand_total = demand.drain()
    prefetch = CoreModel(spec)
    for latency in latencies:
        prefetch.issue_prefetch(latency)
    # Prefetches never retire later than equivalent demand loads would.
    assert prefetch.now <= demand_total + 1e-6


@SETTINGS
@given(
    st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=10),
    st.integers(min_value=0, max_value=10**6),
)
def test_embedding_bag_linearity(pooling, seed):
    """bag(sum) over a batch equals per-sample manual accumulation."""
    rng = np.random.default_rng(seed)
    table = EmbeddingTable(rows=40, dim=8, rng=rng)
    offsets = np.concatenate([[0], np.cumsum(pooling)]).astype(np.int64)
    indices = rng.integers(0, 40, size=int(offsets[-1]))
    out = embedding_bag(table, indices, offsets)
    tb = TableBatch(offsets=offsets, indices=indices)
    for k in range(tb.batch_size):
        expected = table.weight[tb.sample_indices(k)].sum(axis=0)
        assert np.allclose(out[k], expected, atol=1e-4)


@SETTINGS
@given(st.integers(min_value=0, max_value=10**6))
def test_lines_for_bytes_covers_range(n_bytes):
    lines = lines_for_bytes(n_bytes)
    assert lines * 64 >= n_bytes
    assert (lines - 1) * 64 < n_bytes or lines == 0
