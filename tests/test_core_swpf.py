"""Software-prefetch policy tests."""

import pytest

from repro.core.swpf import (
    PAPER_SWPF,
    SWPrefetchConfig,
    l1_occupancy_fraction,
    prefetch_injection_bytes,
)
from repro.errors import ConfigError
from repro.units import kib


def test_paper_default():
    assert PAPER_SWPF.distance == 4
    assert PAPER_SWPF.amount_lines == 8
    assert PAPER_SWPF.target_level == "l1"


def test_plan_round_trip():
    plan = PAPER_SWPF.plan()
    assert plan.distance == 4
    assert plan.amount_lines == 8
    assert plan.target_level == "l1"


def test_with_distance_and_amount():
    assert PAPER_SWPF.with_distance(8).distance == 8
    assert PAPER_SWPF.with_distance(8).amount_lines == 8
    assert PAPER_SWPF.with_amount(2).amount_lines == 2
    assert PAPER_SWPF.with_amount(2).distance == 4


def test_injection_bytes_matches_paper_arithmetic():
    # "a distance of four means 4x512B = 2KB amount of prefetch injections"
    assert prefetch_injection_bytes(PAPER_SWPF) == 2048


def test_l1_occupancy_low_for_paper_config():
    frac = l1_occupancy_fraction(PAPER_SWPF, kib(32))
    assert frac == pytest.approx(2048 / 32768)
    assert frac < 0.1  # "reasonably low"


def test_l1_occupancy_flags_pollution_regime():
    big = SWPrefetchConfig(distance=32, amount_lines=8)
    assert l1_occupancy_fraction(big, kib(32)) >= 0.5


def test_validation():
    with pytest.raises(ConfigError):
        SWPrefetchConfig(distance=0)
    with pytest.raises(ConfigError):
        SWPrefetchConfig(amount_lines=0)
    with pytest.raises(ConfigError):
        SWPrefetchConfig(target_level="l4")
    with pytest.raises(ConfigError):
        l1_occupancy_fraction(PAPER_SWPF, 0)
