"""Fig 1 analytic breakdown tests."""

import pytest

from repro.analysis.breakdown import estimate_embedding_cycles, estimate_stage_breakdown
from repro.config import SimConfig
from repro.cpu.platform import get_platform
from repro.errors import ConfigError
from repro.model.configs import get_model


@pytest.fixture(scope="module")
def csl_spec():
    return get_platform("csl")


def test_embedding_cycles_from_level_fractions(csl_spec):
    model = get_model("rm2_1")
    all_l1 = estimate_embedding_cycles(
        model, {"l1": 1.0, "l2": 0.0, "l3": 0.0, "dram": 0.0}, csl_spec, 64
    )
    all_dram = estimate_embedding_cycles(
        model, {"l1": 0.0, "l2": 0.0, "l3": 0.0, "dram": 1.0}, csl_spec, 64
    )
    assert all_dram > 5 * all_l1


def test_embedding_cycles_scale_with_batch(csl_spec):
    model = get_model("rm2_1")
    fractions = {"l1": 0.5, "l2": 0.1, "l3": 0.1, "dram": 0.3}
    c16 = estimate_embedding_cycles(model, fractions, csl_spec, 16)
    c64 = estimate_embedding_cycles(model, fractions, csl_spec, 64)
    assert c64 == pytest.approx(4 * c16)


def test_batch_validation(csl_spec):
    with pytest.raises(ConfigError):
        estimate_embedding_cycles(get_model("rm1"), {"l1": 1.0}, csl_spec, 0)


def test_rm2_models_are_embedding_dominated(csl_spec):
    """The Fig 1 headline at paper scale."""
    config = SimConfig(seed=9)
    for name, floor in (("rm2_1", 0.90), ("rm2_2", 0.90), ("rm2_3", 0.88)):
        stages = estimate_stage_breakdown(
            get_model(name), "low", csl_spec, batch_size=64,
            sample_tables=2, sample_batches=2, config=config,
        )
        assert stages.embedding_fraction > floor, name


def test_rm1_is_mixed(csl_spec):
    config = SimConfig(seed=9)
    stages = estimate_stage_breakdown(
        get_model("rm1"), "low", csl_spec, batch_size=64,
        sample_tables=2, sample_batches=2, config=config,
    )
    # Mixed model: embedding matters but far from the RMC2 dominance.
    assert 0.25 < stages.embedding_fraction < 0.85
    assert stages.bottom_mlp > stages.top_mlp


def test_hotter_dataset_shrinks_embedding_share(csl_spec):
    config = SimConfig(seed=9)
    model = get_model("rm2_1")
    low = estimate_stage_breakdown(
        model, "low", csl_spec, 64, sample_tables=2, sample_batches=2, config=config
    )
    one = estimate_stage_breakdown(
        model, "one-item", csl_spec, 64, sample_tables=2, sample_batches=2,
        config=config,
    )
    assert one.embedding < low.embedding
    assert one.embedding_fraction < low.embedding_fraction
