"""Platform registry tests."""

import pytest

from repro.cpu.platform import (
    CPUSpec,
    PLATFORM_NAMES,
    get_platform,
    list_platforms,
    register_platform,
)
from repro.errors import ConfigError, UnknownPlatformError


def test_all_paper_platforms_present():
    assert set(PLATFORM_NAMES) == {"skl", "csl", "icl", "spr", "zen3"}
    for name in PLATFORM_NAMES:
        assert get_platform(name).name == name


def test_lookup_is_case_insensitive():
    assert get_platform("CSL").name == "csl"


def test_unknown_platform():
    with pytest.raises(UnknownPlatformError):
        get_platform("m1max")


def test_csl_matches_table3():
    csl = get_platform("csl")
    assert csl.frequency_hz == pytest.approx(2.4e9)
    assert csl.cores_per_socket == 24
    assert csl.sockets == 2
    assert csl.smt_per_core == 2
    assert csl.hierarchy.l1_size == 32 * 1024
    assert csl.hierarchy.l1_latency == 5.0
    assert csl.hierarchy.l2_size == 1024**2
    assert csl.hierarchy.l3_size == int(35.75 * 1024**2)
    assert csl.peak_dram_bw_bytes_s == pytest.approx(140e9)


def test_window_growth_matches_section_6_4():
    # ICL and SPR windows are +58% / +129% over CSL.
    csl = get_platform("csl").core.rob_entries
    icl = get_platform("icl").core.rob_entries
    spr = get_platform("spr").core.rob_entries
    assert icl / csl == pytest.approx(1.57, abs=0.03)
    assert spr / csl == pytest.approx(2.29, abs=0.03)


def test_zen3_has_ccx_llc():
    zen3 = get_platform("zen3")
    assert zen3.llc_shared_cores == 8
    assert zen3.llc_group_size() == 8
    assert get_platform("csl").llc_group_size() == 24


def test_total_cores():
    assert get_platform("csl").total_cores == 48
    assert get_platform("zen3").total_cores == 128  # the paper's 128 threads


def test_bandwidth_per_cycle():
    csl = get_platform("csl")
    assert csl.peak_dram_bw_bytes_per_cycle == pytest.approx(140e9 / 2.4e9)


def test_all_hierarchies_are_constructible():
    from repro.mem.hierarchy import build_hierarchy

    for name in PLATFORM_NAMES:
        spec = get_platform(name)
        hierarchy = build_hierarchy(spec.hierarchy)
        result = hierarchy.load(12345)
        assert result.level == "dram"


def test_register_custom_platform():
    base = get_platform("csl")
    custom = CPUSpec(
        name="custom_test",
        display_name="Custom",
        frequency_hz=base.frequency_hz,
        cores_per_socket=8,
        sockets=1,
        smt_per_core=2,
        core=base.core,
        hierarchy=base.hierarchy,
        peak_dram_bw_bytes_s=base.peak_dram_bw_bytes_s,
    )
    register_platform(custom)
    assert get_platform("custom_test").cores_per_socket == 8
    with pytest.raises(ConfigError):
        register_platform(custom)
    register_platform(custom, overwrite=True)


def test_list_platforms_is_a_copy():
    snapshot = list_platforms()
    snapshot["bogus"] = None
    with pytest.raises(UnknownPlatformError):
        get_platform("bogus")


def test_spec_validation():
    base = get_platform("csl")
    with pytest.raises(ConfigError):
        CPUSpec(
            name="bad",
            display_name="bad",
            frequency_hz=-1,
            cores_per_socket=1,
            sockets=1,
            smt_per_core=2,
            core=base.core,
            hierarchy=base.hierarchy,
            peak_dram_bw_bytes_s=1e9,
        )
    with pytest.raises(ConfigError):
        CPUSpec(
            name="bad",
            display_name="bad",
            frequency_hz=1e9,
            cores_per_socket=1,
            sockets=1,
            smt_per_core=4,
            core=base.core,
            hierarchy=base.hierarchy,
            peak_dram_bw_bytes_s=1e9,
        )
