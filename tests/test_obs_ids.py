"""The shared "run:req" id scheme: construction, parsing, round-trips."""

import pytest

from repro.obs.ids import (
    attempt_id,
    parse_request_id,
    parse_span_id,
    request_id,
    request_of_span,
    route_id,
    slot_id,
)


class TestRequestIds:
    def test_round_trip(self):
        for run, req in [(0, 0), (3, 17), (12, 99999)]:
            assert parse_request_id(request_id(run, req)) == (run, req)

    def test_format_is_run_colon_req(self):
        assert request_id(2, 41) == "2:41"

    @pytest.mark.parametrize("bad", ["", "7", "7:", ":", "abc", "1:2:3x"])
    def test_malformed_ids_raise(self, bad):
        with pytest.raises(ValueError):
            parse_request_id(bad)


class TestSpanIds:
    def test_slot_route_attempt_construction(self):
        root = request_id(1, 5)
        assert slot_id(root, 2) == "1:5/g2"
        assert route_id("1:5/g2", 0) == "1:5/g2/r0"
        assert attempt_id("1:5/g2", 3) == "1:5/g2/a3"

    def test_request_of_span_any_depth(self):
        assert request_of_span("0:17") == "0:17"
        assert request_of_span("0:17/g1") == "0:17"
        assert request_of_span("0:17/g1/a0") == "0:17"

    def test_parse_span_id_round_trips(self):
        root = request_id(4, 8)
        assert parse_span_id(root) == (4, 8, None, None, None)
        assert parse_span_id(slot_id(root, 1)) == (4, 8, 1, "g", None)
        assert parse_span_id(route_id(slot_id(root, 1), 2)) == (4, 8, 1, "r", 2)
        assert parse_span_id(attempt_id(slot_id(root, 0), 5)) == (4, 8, 0, "a", 5)

    @pytest.mark.parametrize(
        "bad",
        [
            "1:2/x3",          # unknown child prefix
            "1:2/g1/z0",       # unknown grandchild prefix
            "1:2/g1/a0/r0",    # too deep
            "1:2/g1/",         # empty tail
            "1:2/gx",          # non-numeric slot
            "nope/g0",         # malformed root
        ],
    )
    def test_malformed_span_ids_raise(self, bad):
        with pytest.raises(ValueError):
            parse_span_id(bad)
