"""SLO engine tests: specs, windowed evaluation, burn alerts, scoring."""

import json

import pytest

from repro.errors import ConfigError
from repro.obs.detect import DetectionEvent
from repro.obs.schema import validate_def
from repro.obs.slo import (
    DEFAULT_BURN_RULES,
    BurnRule,
    FleetMonitor,
    SLOSpec,
    alert_record,
    burn_alerts,
    burn_summary,
    evaluate_slo,
    node_window_stats,
    score_detections,
    slo_state_records,
)

SCHEMA = json.loads(open("tools/trace_schema.json").read())


def _rec(end_ms, outcome="completed", latency_ms=None, events=None):
    return {
        "arrival_ms": max(0.0, end_ms - (latency_ms or 1.0)),
        "end_ms": end_ms,
        "outcome": outcome,
        "latency_ms": latency_ms,
        "events": events or [],
    }


class TestSLOSpec:
    def test_budget_fraction(self):
        assert SLOSpec("a", "availability", 0.99).budget_fraction == pytest.approx(0.01)

    def test_rejects_bad_config(self):
        with pytest.raises(ConfigError):
            SLOSpec("a", "nonsense", 0.99)
        with pytest.raises(ConfigError):
            SLOSpec("a", "availability", 1.5)
        with pytest.raises(ConfigError):
            SLOSpec("a", "latency", 0.99)  # latency needs threshold_ms

    def test_is_good_latency(self):
        spec = SLOSpec("lat", "latency", 0.99, threshold_ms=10.0)
        assert spec.is_good(_rec(5.0, latency_ms=5.0))
        assert not spec.is_good(_rec(20.0, latency_ms=20.0))
        assert not spec.is_good(_rec(5.0, outcome="shed"))

    def test_is_good_availability(self):
        spec = SLOSpec("avail", "availability", 0.999)
        assert spec.is_good(_rec(1.0))
        assert spec.is_good(_rec(1.0, outcome="degraded"))
        assert not spec.is_good(_rec(1.0, outcome="failed"))

    def test_is_good_quality(self):
        spec = SLOSpec("q", "quality", 0.95, threshold_ms=10.0)
        assert spec.is_good(_rec(5.0, latency_ms=5.0))
        assert not spec.is_good(_rec(5.0, outcome="degraded", latency_ms=5.0))
        assert not spec.is_good(_rec(20.0, latency_ms=20.0))


class TestEvaluateSlo:
    def test_window_bucketing_and_budget(self):
        spec = SLOSpec("avail", "availability", 0.9)
        records = [_rec(t + 0.5) for t in range(10)]
        records += [_rec(t + 10.5, outcome="failed") for t in range(10)]
        timeline = evaluate_slo(spec, records, window_ms=10.0, horizon_ms=20.0)
        assert len(timeline.points) == 2
        assert timeline.points[0].compliance == 1.0
        assert timeline.points[0].burn_rate == 0.0
        assert timeline.points[1].compliance == 0.0
        # Second window burns 1.0/0.1 = 10x budget per unit served.
        assert timeline.points[1].burn_rate == pytest.approx(10.0)
        assert timeline.final_budget_remaining < 0

    def test_empty_window_is_fully_compliant(self):
        spec = SLOSpec("avail", "availability", 0.99)
        timeline = evaluate_slo(spec, [_rec(1.0)], window_ms=10.0, horizon_ms=50.0)
        assert len(timeline.points) == 5
        assert all(p.compliance == 1.0 for p in timeline.points[1:])

    def test_late_record_lands_in_last_window(self):
        spec = SLOSpec("avail", "availability", 0.99)
        timeline = evaluate_slo(spec, [_rec(99.0)], window_ms=10.0, horizon_ms=20.0)
        assert len(timeline.points) == 2
        assert timeline.points[-1].total == 1


class TestBurnAlerts:
    def _timeline(self, bad_windows):
        spec = SLOSpec("avail", "availability", 0.9)
        records = []
        for j in range(40):
            outcome = "failed" if j in bad_windows else "completed"
            records.extend(_rec(j * 10.0 + k + 0.5, outcome=outcome) for k in range(5))
        return evaluate_slo(spec, records, window_ms=10.0, horizon_ms=400.0)

    def test_quiet_timeline_no_alerts(self):
        assert burn_alerts(self._timeline(set())) == []

    def test_sustained_burn_fires_then_resolves(self):
        alerts = burn_alerts(self._timeline(set(range(10, 20))))
        names = [(a.name, a.state) for a in alerts]
        assert ("avail:fast_burn", "firing") in names
        assert ("avail:fast_burn", "resolved") in names
        fired = [a.t_ms for a in alerts if a.state == "firing"]
        resolved = [a.t_ms for a in alerts if a.state == "resolved"]
        assert min(fired) < min(resolved)

    def test_custom_rules(self):
        rules = (BurnRule("instant", 1, 1, 0.5),)
        alerts = burn_alerts(self._timeline({15}), rules)
        assert any(a.rule == "instant" and a.state == "firing" for a in alerts)

    def test_default_rules_are_multi_window(self):
        assert {r.name for r in DEFAULT_BURN_RULES} == {"fast_burn", "slow_burn"}
        for rule in DEFAULT_BURN_RULES:
            assert rule.long >= rule.short

    def test_burn_summary_attribution(self):
        timeline = self._timeline(set(range(10, 20)))
        summary = burn_summary(timeline, [("f", 100.0, 200.0, {})], grace_ms=0.0)
        assert summary["burn_in"] > 0
        assert summary["burn_out"] == pytest.approx(0.0)
        assert summary["budget_final"] < 1.0


def _call_events(t, node, ok=True, latency=2.0):
    events = [{"kind": "shard_call", "t_ms": t, "node": node, "shard": 0}]
    if ok:
        events.append(
            {"kind": "call_ok", "t_ms": t + latency, "node": node,
             "shard": 0, "latency_ms": latency}
        )
    else:
        events.append(
            {"kind": "call_failed", "t_ms": t + latency, "node": node,
             "shard": 0, "cause": "crash"}
        )
    return events


class TestNodeWindowStats:
    def test_aggregates_per_node_per_window(self):
        records = [
            _rec(3.0, events=_call_events(1.0, 0)),
            _rec(3.5, events=_call_events(1.5, 0)),
            _rec(14.0, events=_call_events(12.0, 1, ok=False)),
        ]
        windows = node_window_stats(records, window_ms=10.0, horizon_ms=20.0)
        assert len(windows) == 2
        assert windows[0][0]["ok"] == 2
        assert windows[0][0]["failed"] == 0
        assert windows[1][1]["failed"] == 1


class TestFleetMonitorScoring:
    def _windows(self, num_windows, bad_node=None, bad_from=None):
        # Synthetic windowed telemetry: every node serves 20 calls at
        # 2 ms; the bad node flips to all-failed from window bad_from.
        out = []
        for j in range(num_windows):
            cells = {}
            for n in range(3):
                failing = bad_node == n and bad_from is not None and j >= bad_from
                cells[n] = {
                    "calls": 20.0,
                    "ok": 0.0 if failing else 20.0,
                    "failed": 20.0 if failing else 0.0,
                    "lat_sum": 0.0 if failing else 40.0,
                }
            out.append(cells)
        return out

    def test_healthy_fleet_stays_quiet(self):
        monitor = FleetMonitor(3)
        events = monitor.run(self._windows(40), window_ms=10.0)
        assert events == []
        assert all(set(states) == {"ok"} for states in monitor.node_states)

    def test_node_failure_detected_and_scored(self):
        monitor = FleetMonitor(3)
        events = monitor.run(self._windows(40, bad_node=1, bad_from=20), 10.0)
        assert any(e.node == 1 and e.firing for e in events)
        faults = [("node_crash:1", 200.0, 400.0, {"node": 1})]
        score = score_detections(events, faults, grace_ms=20.0)
        assert score["recall"] == 1.0
        assert score["precision"] == 1.0
        assert score["mttd_ms"] is not None and score["mttd_ms"] >= 0
        assert score["classes"]["node_crash"]["detected"] == 1

    def test_missed_fault_scores_zero_recall(self):
        score = score_detections([], [("node_crash:1", 0.0, 10.0, {"node": 1})])
        assert score["recall"] == 0.0
        assert score["mttd_ms"] is None
        assert score["precision"] == 1.0  # no alerts -> no false positives

    def test_wrong_node_alert_is_false_positive_outside_faults(self):
        alert = DetectionEvent(
            t_ms=900.0, signal="node2.error_rate", state="firing",
            value=1.0, score=10.0, node=2,
        )
        score = score_detections(
            [alert], [("node_crash:1", 0.0, 100.0, {"node": 1})], grace_ms=0.0
        )
        # Fired long after every fault window closed: a false positive.
        assert score["precision"] == 0.0
        assert score["recall"] == 0.0


class TestLogRecords:
    def test_slo_state_records_schema_valid(self):
        spec = SLOSpec("avail", "availability", 0.99)
        timeline = evaluate_slo(
            spec, [_rec(t + 0.5) for t in range(20)], 10.0, 20.0
        )
        for rec in slo_state_records(timeline, scenario="none"):
            assert validate_def(rec, SCHEMA, "slo_state") == []

    def test_alert_records_schema_valid(self):
        spec = SLOSpec("avail", "availability", 0.9)
        records = [
            _rec(j + 0.5, outcome="failed" if j >= 100 else "completed")
            for j in range(200)
        ]
        timeline = evaluate_slo(spec, records, 10.0, 200.0)
        alerts = burn_alerts(timeline)
        assert alerts
        for alert in alerts:
            rec = alert_record(alert, scenario="s")
            assert rec["source"] == "slo_burn"
            assert validate_def(rec, SCHEMA, "alert_event") == []
        det = DetectionEvent(
            t_ms=5.0, signal="node0.error_rate", state="firing",
            value=1.0, score=9.0, node=0,
        )
        rec = alert_record(det)
        assert rec["source"] == "detector"
        assert validate_def(rec, SCHEMA, "alert_event") == []
