"""AddressMap tests."""

import numpy as np
import pytest

from repro.errors import ConfigError, TraceError
from repro.trace.dataset import TableBatch
from repro.trace.stream import TABLE_ALIGN_BYTES, AddressMap
from repro.units import CACHE_LINE_BYTES


@pytest.fixture
def amap():
    return AddressMap([1000, 2000], embedding_dim=128)


def test_row_bytes_and_lines(amap):
    assert amap.row_bytes == 512
    assert amap.row_lines == 8


def test_tables_are_aligned_and_disjoint(amap):
    for base in amap.table_bases:
        assert base % TABLE_ALIGN_BYTES == 0
    end_t0 = amap.table_bases[0] + 1000 * amap.row_bytes
    assert amap.table_bases[1] >= end_t0


def test_row_address_arithmetic(amap):
    assert amap.row_address(0, 0) == amap.table_bases[0]
    assert amap.row_address(0, 5) == amap.table_bases[0] + 5 * 512


def test_row_bounds_checked(amap):
    with pytest.raises(TraceError):
        amap.row_address(0, 1000)
    with pytest.raises(TraceError):
        amap.row_address(2, 0)


def test_row_line_run_covers_full_row(amap):
    run = amap.row_line_run(1, 7)
    assert len(run) == 8
    first_byte = amap.row_address(1, 7)
    assert run[0] == first_byte // CACHE_LINE_BYTES


def test_adjacent_rows_have_adjacent_lines(amap):
    run_a = amap.row_line_run(0, 0)
    run_b = amap.row_line_run(0, 1)
    assert run_b[0] == run_a[-1] + 1


def test_batch_first_lines_vectorized(amap):
    tb = TableBatch(np.array([0, 3]), np.array([0, 5, 999]))
    lines = amap.batch_first_lines(0, tb)
    expected = [amap.row_first_line(0, r) for r in (0, 5, 999)]
    assert list(lines) == expected


def test_batch_first_lines_validates_range(amap):
    tb = TableBatch(np.array([0, 1]), np.array([5000]))
    with pytest.raises(TraceError):
        amap.batch_first_lines(0, tb)


def test_row_id_of_line_round_trip(amap):
    line = amap.row_first_line(1, 123)
    assert amap.row_id_of_line(line) == (1, 123)
    assert amap.row_id_of_line(0) is None  # below table 0's base


def test_total_bytes(amap):
    assert amap.total_bytes >= (1000 + 2000) * 512


def test_dim64_uses_four_lines():
    amap = AddressMap([10], embedding_dim=64)
    assert amap.row_lines == 4  # RM1's geometry


def test_unaligned_row_sizes_supported():
    # dim=20 -> 80 bytes -> rows straddle cache lines.
    amap = AddressMap([100], embedding_dim=20)
    assert amap.row_bytes == 80
    assert amap.row_lines == 2
    assert len(amap.row_line_run(0, 3)) in (2, 3)


def test_validation():
    with pytest.raises(ConfigError):
        AddressMap([], 128)
    with pytest.raises(ConfigError):
        AddressMap([10], 0)
    with pytest.raises(ConfigError):
        AddressMap([0], 128)
