"""Query-batcher tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.batcher import chunk_queries


def test_full_batches_dispatch_immediately():
    arrivals = np.array([0.0, 1.0, 2.0, 3.0])
    batches = chunk_queries(arrivals, batch_size=2, timeout_ms=100.0)
    assert len(batches) == 2
    assert batches[0].dispatch_ms == 1.0  # completed by the 2nd arrival
    assert batches[0].size == 2
    assert batches[1].dispatch_ms == 3.0


def test_timeout_dispatches_partial_batch():
    arrivals = np.array([0.0, 1.0, 50.0])
    batches = chunk_queries(arrivals, batch_size=4, timeout_ms=10.0)
    # First batch times out at 0+10 with 2 queries; 50.0 starts fresh.
    assert batches[0].dispatch_ms == 10.0
    assert batches[0].size == 2
    assert batches[1].size == 1
    assert batches[1].dispatch_ms == 60.0


def test_every_query_batched_exactly_once(rng):
    arrivals = np.sort(rng.uniform(0, 1000, size=200))
    batches = chunk_queries(arrivals, batch_size=8, timeout_ms=20.0)
    total = sum(b.size for b in batches)
    assert total == 200
    assert all(b.size <= 8 for b in batches)


def test_queueing_delay_bounded_by_timeout(rng):
    arrivals = np.sort(rng.uniform(0, 500, size=100))
    timeout = 15.0
    for batch in chunk_queries(arrivals, batch_size=16, timeout_ms=timeout):
        assert batch.max_queueing_delay_ms <= timeout + 1e-9
        assert batch.mean_queueing_delay_ms <= batch.max_queueing_delay_ms


def test_batch_size_one_is_pass_through():
    arrivals = np.array([1.0, 2.0, 3.0])
    batches = chunk_queries(arrivals, batch_size=1, timeout_ms=5.0)
    assert [b.dispatch_ms for b in batches] == [1.0, 2.0, 3.0]


def test_dispatch_times_non_decreasing(rng):
    arrivals = np.sort(rng.exponential(3.0, size=300).cumsum())
    batches = chunk_queries(arrivals, batch_size=4, timeout_ms=10.0)
    times = [b.dispatch_ms for b in batches]
    assert times == sorted(times)


def test_validation():
    with pytest.raises(ConfigError):
        chunk_queries(np.array([1.0]), 0, 10.0)
    with pytest.raises(ConfigError):
        chunk_queries(np.array([1.0]), 2, 0.0)
    with pytest.raises(ConfigError):
        chunk_queries(np.array([]), 2, 10.0)
    with pytest.raises(ConfigError):
        chunk_queries(np.array([2.0, 1.0]), 2, 10.0)
