"""Batcher + server pipeline tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.pipeline import serve_query_stream
from repro.serving.workload import poisson_arrivals


def run_pipeline(rng, interarrival=2.0, n=400, batch_size=8, timeout=20.0,
                 service=10.0, cores=4):
    arrivals = poisson_arrivals(interarrival, n, rng)
    return serve_query_stream(
        arrivals, batch_size, timeout, service, cores, rng
    )


def test_every_query_accounted(rng):
    result = run_pipeline(rng, n=300)
    assert result.query_latencies_ms.size == 300
    assert result.batching_delays_ms.size == 300


def test_query_latency_includes_batching_delay(rng):
    result = run_pipeline(rng)
    assert np.all(
        result.query_latencies_ms >= result.batching_delays_ms - 1e-9
    )
    assert np.all(result.batching_delays_ms >= -1e-9)


def test_partial_batches_cost_less_service(rng):
    # Sparse arrivals: batches time out nearly empty, so service per batch
    # is well below the full-batch cost.
    result = run_pipeline(rng, interarrival=100.0, n=50, batch_size=16,
                          timeout=5.0)
    assert result.mean_batch_size < 4
    assert float(np.mean(result.server.services_ms)) < 10.0


def test_bigger_timeout_bigger_batches(rng):
    small = run_pipeline(np.random.default_rng(1), timeout=2.0)
    large = run_pipeline(np.random.default_rng(1), timeout=50.0)
    assert large.mean_batch_size > small.mean_batch_size


def test_batching_tradeoff_visible_in_tail(rng):
    # At light load, a long collection timeout inflates per-query latency.
    fast = run_pipeline(np.random.default_rng(2), interarrival=20.0,
                        timeout=1.0, batch_size=16)
    slow = run_pipeline(np.random.default_rng(2), interarrival=20.0,
                        timeout=200.0, batch_size=16)
    assert slow.p95_ms > fast.p95_ms


def test_p95_definition(rng):
    result = run_pipeline(rng)
    assert result.p95_ms == pytest.approx(
        float(np.percentile(result.query_latencies_ms, 95))
    )


def test_validation(rng):
    arrivals = poisson_arrivals(1.0, 10, rng)
    with pytest.raises(ConfigError):
        serve_query_stream(arrivals, 4, 10.0, 0.0, 2, rng)


def test_empty_result_summaries_are_zero_not_nan():
    """Degenerate results share the serving-wide 0.0 convention instead
    of raising or returning NaN (the shared stats helpers)."""
    from repro.serving.pipeline import PipelineResult
    from repro.serving.server import ServerResult

    server = ServerResult(
        latencies_ms=np.empty(0),
        waits_ms=np.empty(0),
        services_ms=np.empty(0),
        num_cores=2,
        offered_interarrival_ms=1.0,
    )
    empty = PipelineResult(
        query_latencies_ms=np.empty(0),
        batching_delays_ms=np.empty(0),
        server=server,
        batch_sizes=np.empty(0, dtype=np.int64),
    )
    assert empty.percentile(95.0) == 0.0
    assert empty.p95_ms == 0.0
    assert empty.mean_batch_size == 0.0
    assert server.p95_ms == 0.0
    assert server.mean_ms == 0.0
    assert server.utilization == 0.0
    assert server.goodput == 0.0
