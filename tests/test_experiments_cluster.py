"""Cluster resilience experiment: acceptance — replication + hedging
hold the Table 1 SLA through node kills that break the unreplicated
cluster."""

import pytest

from repro.config import SimConfig
from repro.experiments import cluster_resilience
from repro.experiments.registry import EXPERIMENT_IDS

CHEAP = dict(
    scale=0.01, batch_size=8, num_batches=2, num_nodes=4,
    cores_per_node=4, num_requests=1500, detailed_cores=1,
)


@pytest.fixture(scope="module")
def report():
    return cluster_resilience.run(config=SimConfig(seed=33), **CHEAP)


def rows_for(report, scenario, replication=None, policy=None):
    rows = [r for r in report.rows if r["scenario"] == scenario]
    if replication is not None:
        rows = [r for r in rows if r["replication"] == replication]
    if policy is not None:
        rows = [r for r in rows if r["policy"] == policy]
    return rows


class TestClusterResilience:
    def test_registered(self):
        assert "cluster_resilience" in EXPERIMENT_IDS

    def test_shape(self, report):
        assert {r["scenario"] for r in report.rows} == {
            "none", "node_kill", "chaos",
        }
        assert {r["replication"] for r in report.rows} == {1, 2}
        assert {r["policy"] for r in report.rows} == {
            "round_robin", "least_loaded", "least_loaded_hedge",
        }
        assert len(report.rows) == 18

    def test_no_fault_meets_sla_everywhere(self, report):
        for row in rows_for(report, "none"):
            assert row["meets_sla"], row
            assert row["goodput"] == pytest.approx(1.0, abs=0.02)

    def test_headline_node_kill_property(self, report):
        """The acceptance property: replication>=2 + hedging rides out the
        node kill (SLA met, goodput >= 0.95x no-fault) while the
        unreplicated cluster fatally violates the SLA."""
        for row in rows_for(report, "node_kill", replication=1):
            assert not row["meets_sla"], row
            assert row["quality_p95_ms"] == float("inf")
            assert row["degraded"] + row["failed"] > 0
        strong = rows_for(
            report, "node_kill", replication=2, policy="least_loaded_hedge"
        )[0]
        assert strong["meets_sla"], strong
        assert strong["goodput_vs_nofault"] >= 0.95
        assert strong["failovers"] > 0
        assert report.notes, "headline note missing"
        assert any("headline" in note for note in report.notes)

    def test_replication_strictly_helps_under_faults(self, report):
        for scenario in ("node_kill", "chaos"):
            for policy in ("round_robin", "least_loaded"):
                weak = rows_for(report, scenario, 1, policy)[0]
                strong = rows_for(report, scenario, 2, policy)[0]
                assert strong["goodput"] >= weak["goodput"]

    def test_conservation_in_every_cell(self, report):
        total = CHEAP["num_requests"]
        for row in report.rows:
            assert (
                row["completed"] + row["degraded"] + row["shed"]
                + row["failed"] == total
            ), row

    def test_deterministic_rows(self):
        a = cluster_resilience.run(config=SimConfig(seed=33), **CHEAP)
        b = cluster_resilience.run(config=SimConfig(seed=33), **CHEAP)
        assert a.rows == b.rows
