"""Resilience experiment: acceptance — degradation recovers the SLA."""

import pytest

from repro.config import SimConfig
from repro.experiments import resilience
from repro.experiments.registry import EXPERIMENT_IDS, run_experiment

CHEAP = dict(
    scale=0.01, batch_size=8, num_batches=2, num_cores=4,
    num_requests=700, detailed_cores=1,
)


@pytest.fixture(scope="module")
def report():
    return resilience.run(config=SimConfig(seed=21), **CHEAP)


def rows_for(report, scenario, mode=None):
    rows = [r for r in report.rows if r["scenario"] == scenario]
    if mode is not None:
        rows = [r for r in rows if r["mode"] == mode]
    return rows


class TestResilience:
    def test_registered(self):
        assert "resilience" in EXPERIMENT_IDS

    def test_shape(self, report):
        scenarios = {r["scenario"] for r in report.rows}
        assert {"none", "bw_x2", "bw_x4", "core_fail", "burst", "straggler"} \
            <= scenarios
        for scenario in scenarios:
            assert {r["mode"] for r in rows_for(report, scenario)} == {
                "static", "degraded", "degraded_shed",
            }

    def test_no_fault_meets_sla_everywhere(self, report):
        for row in rows_for(report, "none"):
            assert row["meets_sla"], row

    def test_degradation_recovers_sla_where_static_violates(self, report):
        """The headline acceptance property: some fault scenario breaks the
        static server's p95 SLA, and the closed-loop controller fixes it."""
        recovered = [
            scenario
            for scenario in ("bw_x2", "bw_x4", "core_fail", "burst", "straggler")
            if not rows_for(report, scenario, "static")[0]["meets_sla"]
            and rows_for(report, scenario, "degraded")[0]["meets_sla"]
        ]
        assert recovered, [
            (r["scenario"], r["mode"], r["p95_ms"]) for r in report.rows
        ]
        for scenario in recovered:
            degraded = rows_for(report, scenario, "degraded")[0]
            assert degraded["level_changes"] > 0

    def test_goodput_not_worse_under_degradation(self, report):
        for scenario in ("bw_x4", "straggler"):
            static = rows_for(report, scenario, "static")[0]
            degraded = rows_for(report, scenario, "degraded")[0]
            assert degraded["goodput"] >= static["goodput"]

    def test_shedding_mode_bounds_tail(self, report):
        """Admission control sacrifices some requests to bound the tail."""
        for scenario in ("bw_x4", "burst"):
            shed = rows_for(report, scenario, "degraded_shed")[0]
            assert shed["p95_ms"] <= shed["sla_ms"]
            assert shed["completed"] + shed["shed"] + shed["timed_out"] > 0

    def test_deterministic_across_runs(self):
        a = resilience.run(config=SimConfig(seed=21), **CHEAP)
        b = resilience.run(config=SimConfig(seed=21), **CHEAP)
        assert a.rows == b.rows

    def test_runs_via_registry(self):
        report = run_experiment(
            "resilience", config=SimConfig(seed=5), **CHEAP
        )
        assert report.experiment_id == "resilience"
        assert report.rows
