"""Opt-in performance benchmark (``REPRO_BENCH=1 pytest -m perf``).

Runs the quick mode of ``tools/bench_sim.py`` and asserts the fast engine
actually beats the reference on the hot paths.  Skipped by default: wall
time depends on the machine and CI boxes are noisy, so this only runs when
explicitly requested via ``REPRO_BENCH=1``.
"""

from __future__ import annotations

import importlib.util
import os
import sys
from pathlib import Path

import pytest

pytestmark = pytest.mark.perf

REPO_ROOT = Path(__file__).resolve().parent.parent

if os.environ.get("REPRO_BENCH") != "1":
    pytest.skip("set REPRO_BENCH=1 to run perf benchmarks", allow_module_level=True)


def _load_bench_module():
    spec = importlib.util.spec_from_file_location(
        "bench_sim", REPO_ROOT / "tools" / "bench_sim.py"
    )
    module = importlib.util.module_from_spec(spec)
    sys.modules["bench_sim"] = module
    spec.loader.exec_module(module)
    return module


def test_quick_bench_fast_engine_wins(tmp_path):
    bench = _load_bench_module()
    out = tmp_path / "BENCH_sim.json"
    assert bench.main(["--quick", "--skip-fig12", "--out", str(out)]) == 0
    assert out.exists()
    import json

    records = json.loads(out.read_text())
    assert len(records) == 1
    benches = records[0]["benchmarks"]
    assert benches["hierarchy"]["speedup"]["fast_over_reference"] > 1.0
    assert benches["embedding"]["speedup"]["fast_over_reference"] > 1.0
    assert benches["serving"]["speedup"]["fast_over_reference"] > 1.0
    # ISSUE acceptance floor: the serving engine must sustain at least
    # 10M simulated requests per minute of wall time.
    assert benches["serving"]["fast"]["requests_per_min"] >= 10_000_000


def test_quick_fig12_pipeline_fast_wins():
    bench = _load_bench_module()
    fast = bench.bench_fig12("fast", quick=True)
    ref = bench.bench_fig12("reference", quick=True)
    for result in (fast, ref):
        assert set(result["stages"]) == {
            "embedding_s", "dense_s", "dram_s", "event_loop_s"
        }
        assert result["seconds"] == pytest.approx(
            sum(result["stages"].values())
        )
    assert ref["seconds"] > fast["seconds"]
    assert fast["serving_requests_per_min"] >= 10_000_000
