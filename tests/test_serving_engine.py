"""Differential tests: fast serving engine vs the reference event loop.

The batched engine (:mod:`repro.serving.fastserve`) must be **byte
identical** to the per-request reference loop on every path — plain
dispatch, fault injection, retries/backoff, load shedding, and the
degradation controller — across core counts on both sides of the wave
-speculation gate.  These tests run every scenario under both engines and
compare raw float bits, outcome codes, retry counts, core assignments,
and controller event streams.
"""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.serving.degradation import DegradationController, scheme_ladder
from repro.serving.faults import (
    ArrivalBurst,
    BandwidthDegradation,
    CoreFailure,
    CoreSlowdown,
    FaultPlan,
    Stragglers,
)
from repro.serving.server import ServingPolicy, simulate_server
from repro.serving.workload import poisson_arrivals

CORE_COUNTS = (1, 4, 24)


def _arrivals(config, num_requests, num_cores, utilization=0.85):
    interarrival = 5.0 / (num_cores * utilization)
    return poisson_arrivals(
        interarrival, num_requests, config.rng("diff:arrivals")
    )


def _run(engine, arrivals, num_cores, config, **kwargs):
    # Fresh rng per engine: both draws must be identical streams.
    return simulate_server(
        arrivals, 5.0, num_cores, config.rng("diff:service"),
        engine=engine, **kwargs
    )


def _plan(horizon_ms, num_cores, seed=42):
    return FaultPlan(
        [
            CoreSlowdown(0, 0.2 * horizon_ms, 0.5 * horizon_ms, 3.0),
            CoreFailure(num_cores - 1, 0.3 * horizon_ms, 0.6 * horizon_ms),
            BandwidthDegradation(0.4 * horizon_ms, 0.7 * horizon_ms, 2.0),
            ArrivalBurst(0.5 * horizon_ms, 60, 0.2),
            Stragglers(0.1, 4.0, tail_alpha=1.5),
        ],
        seed=seed,
    )


def _policy():
    return ServingPolicy(
        deadline_ms=25.0,
        timeout_ms=20.0,
        max_retries=2,
        retry_backoff_ms=2.0,
        max_queue_depth=64,
    )


def _controller():
    ladder = scheme_ladder(
        {"baseline": 1.0, "sw_pf": 0.8, "integrated": 0.65}, batch_scale=0.6
    )
    return DegradationController(
        ladder, sla_ms=25.0, window=32, min_samples=8,
        escalate_margin=0.8, recover_margin=0.4, cooldown=64,
    )


def assert_identical(fast, ref):
    """Byte-level equality of everything the simulation computes."""
    for attr in ("latencies_ms", "waits_ms", "services_ms", "core_ids"):
        a, b = getattr(fast, attr), getattr(ref, attr)
        assert a.tobytes() == b.tobytes(), f"{attr} diverged"
    for attr in ("outcomes", "retry_counts", "injected"):
        a, b = getattr(fast, attr), getattr(ref, attr)
        if a is None or b is None:
            assert a is None and b is None
        else:
            assert np.array_equal(a, b), f"{attr} diverged"
    assert fast.degradation_events == ref.degradation_events
    assert fast.final_degradation_level == ref.final_degradation_level


class TestPlainPath:
    @pytest.mark.parametrize("num_cores", CORE_COUNTS)
    def test_plain_byte_identical(self, num_cores):
        config = SimConfig(seed=11)
        arrivals = _arrivals(config, 600, num_cores)
        fast = _run("fast", arrivals, num_cores, config)
        ref = _run("reference", arrivals, num_cores, config)
        assert_identical(fast, ref)

    def test_wave_gate_cores_byte_identical(self):
        # 64 cores sits well above the wave-speculation gate; the wave
        # path (not the heap fallback) must still be exact.
        config = SimConfig(seed=12)
        num_cores = 64
        arrivals = _arrivals(config, 4000, num_cores, utilization=0.95)
        fast = _run("fast", arrivals, num_cores, config)
        ref = _run("reference", arrivals, num_cores, config)
        assert_identical(fast, ref)

    def test_heavy_tail_services_byte_identical(self):
        # High service variance defeats the speculation often, exercising
        # the probation fallback to the python heap loop.
        config = SimConfig(seed=13)
        num_cores = 32
        arrivals = _arrivals(config, 2000, num_cores)
        fast = _run("fast", arrivals, num_cores, config, service_cv=2.0)
        ref = _run("reference", arrivals, num_cores, config, service_cv=2.0)
        assert_identical(fast, ref)


class TestResilientPath:
    @pytest.mark.parametrize("num_cores", CORE_COUNTS)
    def test_faults_retries_shedding_byte_identical(self, num_cores):
        config = SimConfig(seed=21)
        arrivals = _arrivals(config, 500, num_cores)
        horizon = float(arrivals[-1])
        plan = _plan(horizon, num_cores)
        fast = _run(
            "fast", arrivals, num_cores, config, fault_plan=plan,
            policy=_policy(),
        )
        ref = _run(
            "reference", arrivals, num_cores, config, fault_plan=plan,
            policy=_policy(),
        )
        assert_identical(fast, ref)
        # The scenario must actually exercise the interesting paths.
        assert ref.retries_total > 0
        assert ref.outcome_count("timed_out") + ref.outcome_count("shed") > 0

    @pytest.mark.parametrize("num_cores", CORE_COUNTS)
    def test_degradation_controller_byte_identical(self, num_cores):
        config = SimConfig(seed=22)
        arrivals = _arrivals(config, 500, num_cores, utilization=1.1)
        horizon = float(arrivals[-1])
        plan = _plan(horizon, num_cores)
        fast = _run(
            "fast", arrivals, num_cores, config, fault_plan=plan,
            policy=_policy(), controller=_controller(),
        )
        ref = _run(
            "reference", arrivals, num_cores, config, fault_plan=plan,
            policy=_policy(), controller=_controller(),
        )
        assert_identical(fast, ref)
        assert len(ref.degradation_events) > 0

    def test_policy_only_byte_identical(self):
        config = SimConfig(seed=23)
        num_cores = 8
        arrivals = _arrivals(config, 400, num_cores, utilization=1.3)
        fast = _run("fast", arrivals, num_cores, config, policy=_policy())
        ref = _run("reference", arrivals, num_cores, config, policy=_policy())
        assert_identical(fast, ref)


class TestEngineSelection:
    def test_default_engine_resolution(self):
        from repro.mem.hierarchy import set_default_engine

        config = SimConfig(seed=31)
        arrivals = _arrivals(config, 100, 4)
        previous = None
        try:
            from repro.mem.hierarchy import get_default_engine

            previous = get_default_engine()
            set_default_engine("reference")
            implicit = simulate_server(
                arrivals, 5.0, 4, config.rng("diff:service")
            )
            explicit = simulate_server(
                arrivals, 5.0, 4, config.rng("diff:service"),
                engine="reference",
            )
            assert (
                implicit.latencies_ms.tobytes()
                == explicit.latencies_ms.tobytes()
            )
        finally:
            if previous is not None:
                set_default_engine(previous)

    def test_unknown_engine_rejected(self):
        from repro.errors import ConfigError

        config = SimConfig(seed=32)
        arrivals = _arrivals(config, 10, 2)
        with pytest.raises(ConfigError):
            simulate_server(
                arrivals, 5.0, 2, config.rng("diff:service"), engine="turbo"
            )


class TestWindowP95:
    def test_bitwise_equal_to_numpy_percentile(self):
        # The controller's pure-python p95 replaced np.percentile for
        # speed; it must stay bit-equal on every window size.
        from repro.serving.degradation import DegradationLevel

        rng = np.random.default_rng(5)
        for n in list(range(1, 65)) + [97, 128]:
            window = rng.exponential(10.0, size=n)
            controller = DegradationController(
                [DegradationLevel("baseline", 1.0)],
                sla_ms=10.0, window=256, min_samples=1,
            )
            for value in window:
                controller._latencies.append(float(value))
            got = controller.window_p95()
            want = float(np.percentile(np.array(controller._latencies), 95.0))
            assert got == want, f"n={n}: {got!r} != {want!r}"
