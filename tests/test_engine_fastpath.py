"""Cross-engine equivalence: the fast engine must be bit-exact.

Three levels of checking, from unit to end-to-end:

1. wave partitioning invariants (the algorithm the vectorized walk rests on),
2. ``MemoryHierarchy.access_lines`` vs a sequential ``load()`` loop,
3. full experiment reports under ``engine="fast"`` vs ``engine="reference"``.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest

from repro.config import SimConfig
from repro.cpu.platform import get_platform
from repro.engine.embedding_exec import run_embedding_trace
from repro.errors import ConfigError
from repro.experiments.base import report_to_dict
from repro.experiments.registry import run_experiment
from repro.experiments.workloads import build_workload
from repro.mem.hierarchy import _wave_partition, build_hierarchy


def _streams():
    rng = np.random.default_rng(42)
    zipf = (rng.zipf(1.3, 4000) % 50_000).astype(np.int64)
    uniform = rng.integers(0, 200_000, size=4000).astype(np.int64)
    # Pathologically hot: one row repeated (exercises the scalar fallback).
    hot = np.tile(np.arange(8, dtype=np.int64), 500)
    return {"zipf": zipf, "uniform": uniform, "hot": hot}


# -- 1. wave partition ------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 7, 19])
def test_wave_partition_invariants(seed):
    rng = np.random.default_rng(seed)
    sets = rng.integers(0, 37, size=rng.integers(1, 500)).astype(np.int64)
    order, bounds = _wave_partition(sets)
    assert sorted(order.tolist()) == list(range(sets.size))
    assert bounds[-1] == sets.size
    start = 0
    for end in bounds.tolist():
        wave = sets[order[start:end]]
        assert np.unique(wave).size == wave.size  # conflict-free
        start = end
    # Per set value, indices appear in original (ascending) order across
    # waves — the property that makes wave replay order-equivalent.
    per_set = {}
    for idx in order.tolist():
        per_set.setdefault(int(sets[idx]), []).append(idx)
    for idxs in per_set.values():
        assert idxs == sorted(idxs)


# -- 2. hierarchy walk ------------------------------------------------------


@pytest.mark.parametrize("name", ["zipf", "uniform", "hot"])
def test_access_lines_matches_sequential_loads(name):
    lines = _streams()[name]
    spec = get_platform("csl")
    batched = build_hierarchy(spec.hierarchy, hw_prefetch=False, engine="fast")
    serial = build_hierarchy(spec.hierarchy, hw_prefetch=False, engine="fast")
    got = batched.access_lines(lines)
    want = np.array([serial.load(int(l)).latency for l in lines])
    assert np.array_equal(got, want)
    for fast_level, ref_level in (
        (batched.l1, serial.l1), (batched.l2, serial.l2), (batched.l3, serial.l3)
    ):
        assert dataclasses.asdict(fast_level.stats) == dataclasses.asdict(
            ref_level.stats
        )
    assert batched.stats.level_hits == serial.stats.level_hits
    assert batched.stats.total_latency_cycles == serial.stats.total_latency_cycles
    assert batched.dram.row_hits == serial.dram.row_hits


@pytest.mark.parametrize("name", ["zipf", "uniform"])
def test_fast_engine_matches_reference_walk(name):
    lines = _streams()[name]
    spec = get_platform("csl")
    fast = build_hierarchy(spec.hierarchy, hw_prefetch=False, engine="fast")
    ref = build_hierarchy(spec.hierarchy, hw_prefetch=False, engine="reference")
    got = fast.access_lines(lines)
    want = np.array([ref.load(int(l)).latency for l in lines])
    assert np.array_equal(got, want)
    assert fast.stats.level_hits == ref.stats.level_hits


# -- 3. end to end ----------------------------------------------------------


def _embedding_result(engine: str):
    config = SimConfig(seed=99, engine=engine)
    wl = build_workload(
        "rm2_1", "low", scale=0.01, batch_size=8, num_batches=2, config=config
    )
    spec = get_platform("csl")
    hierarchy = build_hierarchy(spec.hierarchy, hw_prefetch=False, engine=engine)
    return run_embedding_trace(wl.trace, wl.amap, spec.core, hierarchy)


def test_embedding_trace_identical_across_engines():
    fast = _embedding_result("fast")
    ref = _embedding_result("reference")
    assert dataclasses.asdict(fast) == dataclasses.asdict(ref)


@pytest.mark.parametrize(
    "exp_id, overrides",
    [
        ("fig4", {"scale": 0.01, "num_batches": 1}),
        (
            "fig12",
            {"scale": 0.01, "num_batches": 1, "models": ("rm2_1",),
             "core_counts": (1,)},
        ),
    ],
)
def test_reports_identical_across_engines(exp_id, overrides):
    fast = run_experiment(exp_id, config=SimConfig(engine="fast"), **overrides)
    ref = run_experiment(exp_id, config=SimConfig(engine="reference"), **overrides)
    assert report_to_dict(fast) == report_to_dict(ref)


def test_simconfig_rejects_unknown_engine():
    with pytest.raises(ConfigError):
        SimConfig(engine="warp")
