"""Fleet tracing tests: span trees, node attribution, zero-cost contract."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.obs import hooks as obs_hooks
from repro.obs.fleet import (
    FleetSpan,
    FleetTrace,
    check_span_tree,
    merge_spans,
)
from repro.obs.hooks import Observation
from repro.obs.requests import RequestLog
from repro.serving.cluster import ClusterConfig, ClusterSim
from repro.serving.faults import ClusterFaultPlan, NodeCrash, NodeSlow
from repro.serving.router import HedgePolicy
from repro.serving.workload import poisson_arrivals


def _arrivals(n=600, interarrival=0.4, seed=7):
    return poisson_arrivals(interarrival, n, SimConfig(seed=seed).rng("t:arr"))


def _config(**kwargs):
    horizon = 600 * 0.4
    defaults = dict(
        num_nodes=4, cores_per_node=2, mean_service_ms=1.0, num_shards=8,
        replication=2, gather_width=2, hop_ms=0.05, call_timeout_ms=12.0,
        deadline_ms=50.0, routing="least_loaded",
        hedge=HedgePolicy(quantile=95.0, min_ms=2.0, window=64),
        faults=ClusterFaultPlan(
            [
                NodeCrash(1, 0.25 * horizon, 0.6 * horizon),
                NodeSlow(0, 0.5 * horizon, 0.8 * horizon, factor=4.0),
            ],
            seed=11,
        ),
        seed=11, label="t:fleet",
    )
    defaults.update(kwargs)
    return ClusterConfig(**defaults)


def _observed_run(**kwargs):
    obs = Observation(requests=RequestLog())
    with obs_hooks.session(obs):
        result = ClusterSim(_config(**kwargs)).run(_arrivals())
    return result, obs


class TestSpanTree:
    def test_faulted_hedged_run_has_clean_span_forest(self):
        _, obs = _observed_run()
        spans = [
            e for e in obs.tracer.events
            if e.category.startswith("fleet.")
        ]
        assert spans, "traced cluster run emitted no fleet spans"
        forest = [
            FleetSpan(
                span_id=str(e.args["span_id"]),
                parent_id=e.args["parent_id"],
                name=e.name,
                kind=str(e.args["kind"]),
                node=e.args["node"],
                start_ms=e.ts,
                end_ms=e.ts + e.dur,
                attrs=dict(e.args),
            )
            for e in spans
        ]
        assert check_span_tree(forest) == []

    def test_root_ids_join_request_log_exemplars(self):
        _, obs = _observed_run()
        run = obs.requests.runs[-1]
        record_ids = {rec["id"] for rec in run.records}
        roots = {
            str(e.args["span_id"])
            for e in obs.tracer.events
            if e.category == "fleet.request"
        }
        assert roots == record_ids

    def test_attempts_land_on_node_tracks(self):
        _, obs = _observed_run()
        meta = {
            e.tid: e.name[len("track:"):]
            for e in obs.tracer.events
            if e.category == "sim.meta"
        }
        for e in obs.tracer.events:
            if e.category != "fleet.attempt":
                continue
            label = meta[e.tid]
            assert f"node{e.args['node']}" in label

    def test_hedge_and_failover_reasons_recorded(self):
        _, obs = _observed_run()
        reasons = {
            e.args["reason"]
            for e in obs.tracer.events
            if e.category == "fleet.route"
        }
        assert "primary" in reasons
        assert "failover" in reasons  # the node kill forces failovers
        assert "hedge" in reasons

    def test_exemplars_join_latency_histogram(self):
        result, obs = _observed_run()
        run = obs.requests.runs[-1]
        hist = obs.metrics.histogram("cluster.latency_ms")
        exemplar_ids = {
            ex for ids in hist.exemplars.values() for ex in ids
        }
        assert exemplar_ids <= {rec["id"] for rec in run.records}
        assert len(exemplar_ids) > 0


class TestZeroCost:
    def test_hooks_off_byte_identical_to_hooks_on(self):
        plain = ClusterSim(_config()).run(_arrivals())
        observed, _ = _observed_run()
        assert np.array_equal(plain.outcomes, observed.outcomes)
        assert plain.latencies_ms.tobytes() == observed.latencies_ms.tobytes()
        assert (
            plain.request_latency_ms.tobytes()
            == observed.request_latency_ms.tobytes()
        )
        assert plain.failovers == observed.failovers
        assert plain.hedges_issued == observed.hedges_issued
        assert plain.hedges_wasted == observed.hedges_wasted

    def test_trace_export_deterministic(self):
        exports = []
        for _ in range(2):
            _, obs = _observed_run()
            exports.append(
                [
                    (e.name, e.category, e.ts, e.dur, e.tid, sorted(e.args.items()))
                    for e in obs.tracer.events
                    if e.category.startswith("fleet.")
                ]
            )
        assert exports[0] == exports[1]


class TestMergeSpans:
    def _span(self, sid, parent, kind, node, start, end):
        return FleetSpan(sid, parent, sid, kind, node, start, end)

    def test_parent_widened_to_envelope_children(self):
        root = self._span("0:0", None, "request", None, 10.0, 11.0)
        slot = self._span("0:0/g0", "0:0", "gather", None, 10.0, 10.5)
        late = self._span("0:0/g0/a0", "0:0/g0", "attempt", 2, 10.0, 25.0)
        merged = merge_spans([root, slot], {2: [late]})
        by_id = {s.span_id: s for s in merged}
        assert by_id["0:0/g0"].end_ms == 25.0
        assert by_id["0:0"].end_ms == 25.0
        assert check_span_tree(merged) == []

    def test_merge_order_is_start_then_id(self):
        a = self._span("0:1", None, "request", None, 5.0, 6.0)
        b = self._span("0:0", None, "request", None, 5.0, 6.0)
        c = self._span("0:2", None, "request", None, 1.0, 2.0)
        merged = merge_spans([a, b, c], {})
        assert [s.span_id for s in merged] == ["0:2", "0:0", "0:1"]

    def test_check_span_tree_flags_violations(self):
        orphan = self._span("0:0/g9", "0:missing", "gather", None, 0.0, 1.0)
        negative = self._span("0:1", None, "request", None, 5.0, 4.0)
        nodeless = FleetSpan("0:2/a0", "0:2", "a", "attempt", None, 0.0, 1.0)
        root2 = self._span("0:2", None, "request", None, 0.0, 1.0)
        problems = check_span_tree([orphan, negative, nodeless, root2])
        text = "\n".join(problems)
        assert "orphan" in text
        assert "negative duration" in text
        assert "attempt without a node" in text


class TestMalformedTrees:
    """check_span_tree on the broken shapes a buggy recorder could emit."""

    def _span(self, sid, parent, kind, node, start, end, **attrs):
        return FleetSpan(sid, parent, sid, kind, node, start, end, dict(attrs))

    def test_orphaned_hedge_attempt_is_flagged(self):
        # A hedge attempt whose gather span was never recorded: the
        # parent id resolves to nothing, which must surface as an
        # orphan, not silently pass.
        root = self._span("0:0", None, "request", None, 0.0, 5.0)
        hedge = self._span(
            "0:0/g1/a1", "0:0/g1", "attempt", 2, 1.0, 3.0, hedge=True
        )
        problems = check_span_tree([root, hedge])
        assert len(problems) == 1
        assert "orphan" in problems[0]
        assert "0:0/g1/a1" in problems[0]

    def test_zero_duration_spans_are_legal(self):
        # Route decisions are zero-duration by design; a zero-duration
        # attempt (instantaneous delivery) is degenerate but not a
        # structural violation.
        root = self._span("0:0", None, "request", None, 0.0, 2.0)
        slot = self._span("0:0/g0", "0:0", "gather", None, 1.0, 1.0)
        route = self._span("0:0/g0/r0", "0:0/g0", "route", 1, 1.0, 1.0)
        attempt = self._span("0:0/g0/a0", "0:0/g0", "attempt", 1, 1.0, 1.0)
        assert check_span_tree([root, slot, route, attempt]) == []

    def test_out_of_order_siblings_fixed_by_merge(self):
        # Siblings recorded out of chronological order (the hedge landed
        # in the log before the primary): merge_spans must restore the
        # deterministic (start, id) order and the result must verify.
        root = self._span("0:0", None, "request", None, 0.0, 6.0)
        slot = self._span("0:0/g0", "0:0", "gather", None, 0.0, 6.0)
        hedge = self._span("0:0/g0/a1", "0:0/g0", "attempt", 2, 3.0, 5.0)
        primary = self._span("0:0/g0/a0", "0:0/g0", "attempt", 1, 1.0, 6.0)
        merged = merge_spans([root, slot], {2: [hedge], 1: [primary]})
        attempts = [s.span_id for s in merged if s.kind == "attempt"]
        assert attempts == ["0:0/g0/a0", "0:0/g0/a1"]
        assert check_span_tree(merged) == []

    def test_child_outside_unwidened_parent_is_flagged(self):
        # Without envelope widening a late child sticks out of its
        # parent's interval — exactly what check_span_tree exists to
        # catch when someone skips finalize().
        root = self._span("0:0", None, "request", None, 0.0, 2.0)
        slot = self._span("0:0/g0", "0:0", "gather", None, 0.0, 2.0)
        late = self._span("0:0/g0/a0", "0:0/g0", "attempt", 1, 1.0, 9.0)
        problems = check_span_tree([root, slot, late])
        assert any("outside parent interval" in p for p in problems)

    def test_crash_mid_gather_still_produces_clean_forest(self):
        # A request whose gather never closed (the recorder "crashed"
        # after the attempt failed): end_slot/end_request were never
        # called, so the raw parents are zero-width — finalize's
        # envelope widening must still yield a verifiable forest.
        trace = FleetTrace("t", run_index=0)
        trace.begin_request(0, 0.0)
        sid = trace.begin_slot(0, 0, 4, 0.0)
        trace.route(sid, 0.0, 2, "round_robin", 1, "primary")
        aid = trace.begin_attempt(sid, 2, 0.0, False)
        trace.end_attempt(aid, 3.0, "crash")
        # no end_slot, no end_request
        merged = trace.finalize()
        assert check_span_tree(merged) == []
        by_id = {s.span_id: s for s in merged}
        assert by_id[sid].end_ms == 3.0
        assert by_id["0:0"].end_ms == 3.0


class TestFleetTraceApi:
    def test_emit_requires_finalize_only_once(self):
        trace = FleetTrace("t", run_index=0)
        trace.begin_request(0, 0.0)
        sid = trace.begin_slot(0, 0, 3, 0.0)
        trace.route(sid, 0.0, 1, "round_robin", 2, "primary")
        aid = trace.begin_attempt(sid, 1, 0.0, False)
        trace.end_attempt(aid, 2.0, "ok", winner=True)
        trace.end_slot(sid, 2.0, "ok")
        trace.end_request(0, 2.1, "completed")
        first = trace.finalize()
        assert trace.finalize() is first
        assert check_span_tree(first) == []
        # Same start time: span-id lexicographic order breaks the tie
        # ("…/a0" sorts before "…/r0").
        assert [s.kind for s in first] == ["request", "gather", "attempt", "route"]

    def test_end_of_unknown_span_is_ignored(self):
        trace = FleetTrace("t")
        trace.end_request(99, 1.0, "completed")
        trace.end_slot("nope", 1.0, "ok")
        trace.end_attempt("nope", 1.0, "ok")
        assert trace.finalize() == []
