"""Stack-distance computation tests."""

import numpy as np
import pytest

from repro.analysis.reuse import ReuseDistanceCounter, reuse_distances
from repro.errors import ConfigError


def naive_stack_distances(stream):
    """Literal O(n^2) LRU stack-distance reference."""
    distances, cold = [], 0
    last_seen = {}
    for t, key in enumerate(stream):
        if key not in last_seen:
            cold += 1
        else:
            since = stream[last_seen[key] + 1 : t]
            distances.append(len(set(since)))
        last_seen[key] = t
    return distances, cold


def test_simple_stream():
    # a b c a : 'a' reused after {b, c} -> distance 2.
    result = reuse_distances([1, 2, 3, 1])
    assert list(result.distances) == [2]
    assert result.cold_accesses == 3


def test_immediate_reuse_is_distance_zero():
    result = reuse_distances([5, 5, 5])
    assert list(result.distances) == [0, 0]
    assert result.cold_fraction == pytest.approx(1 / 3)


def test_matches_naive_reference(rng):
    stream = rng.integers(0, 30, size=300).tolist()
    fast = reuse_distances(stream)
    slow_distances, slow_cold = naive_stack_distances(stream)
    assert list(fast.distances) == slow_distances
    assert fast.cold_accesses == slow_cold


def test_repeated_reuse_does_not_double_count():
    # a b a b a: each reuse skips exactly one distinct key.
    result = reuse_distances([1, 2, 1, 2, 1])
    assert list(result.distances) == [1, 1, 1]


def test_hit_rate_at_capacity():
    # Distances: [2]. Cache of 3 entries catches it; cache of 2 does not.
    result = reuse_distances([1, 2, 3, 1])
    assert result.hit_rate_at_capacity(3) == pytest.approx(0.25)
    assert result.hit_rate_at_capacity(2) == 0.0


def test_hit_rate_monotone_in_capacity(rng):
    stream = rng.integers(0, 100, size=1000).tolist()
    result = reuse_distances(stream)
    rates = [result.hit_rate_at_capacity(c) for c in (1, 4, 16, 64, 256)]
    assert rates == sorted(rates)


def test_hit_rate_asymptote_is_one_minus_cold(rng):
    stream = rng.integers(0, 50, size=500).tolist()
    result = reuse_distances(stream)
    assert result.hit_rate_at_capacity(10**6) == pytest.approx(
        1.0 - result.cold_fraction
    )


def test_all_unique_stream_is_all_cold():
    result = reuse_distances(list(range(100)))
    assert result.cold_fraction == 1.0
    assert result.distances.size == 0


def test_histogram_bins(rng):
    stream = rng.integers(0, 20, size=200).tolist()
    result = reuse_distances(stream)
    edges, counts = result.histogram(log2_bins=8)
    assert counts.sum() == result.distances.size


def test_percentile(rng):
    result = reuse_distances(rng.integers(0, 20, size=200).tolist())
    median = result.percentile(50)
    assert result.distances.min() <= median <= result.distances.max()


def test_percentile_requires_reuses():
    with pytest.raises(ConfigError):
        reuse_distances([1, 2, 3]).percentile(50)


def test_counter_streaming_interface():
    counter = ReuseDistanceCounter(4)
    assert counter.access(7) == -1
    assert counter.access(8) == -1
    assert counter.access(7) == 1
    result = counter.result()
    assert result.total_accesses == 3


def test_counter_rejects_overflow():
    counter = ReuseDistanceCounter(1)
    counter.access(1)
    with pytest.raises(ConfigError):
        counter.access(2)


def test_capacity_validation():
    with pytest.raises(ConfigError):
        reuse_distances([1, 1]).hit_rate_at_capacity(0)


def test_empty_stream():
    result = reuse_distances([])
    assert result.total_accesses == 0
    assert result.cold_fraction == 0.0
