"""Cross-module integration tests: the paper's claims end to end."""

import pytest

from repro import quick_eval
from repro.config import SimConfig

CONFIG = SimConfig(seed=99)


@pytest.fixture(scope="module")
def rm2_low():
    return quick_eval(
        model="rm2_1", dataset="low", scale=0.015, batch_size=8,
        num_batches=2, config=CONFIG,
    )


@pytest.fixture(scope="module")
def rm1_low():
    return quick_eval(
        model="rm1", dataset="low", scale=0.02, batch_size=8,
        num_batches=2, config=CONFIG,
    )


def test_headline_claim_swpf(rm2_low):
    """SW-PF speeds up embedding-heavy inference substantially (Fig 13)."""
    speedup = rm2_low["sw_pf"].speedup_over(rm2_low["baseline"])
    assert 1.2 < speedup < 2.2


def test_headline_claim_integrated_synergy(rm2_low):
    """Integrated is the best scheme (the paper's 1.40-1.59x headline)."""
    base = rm2_low["baseline"]
    integrated = rm2_low["integrated"].speedup_over(base)
    for other in ("hw_pf_off", "sw_pf", "dp_ht", "mp_ht"):
        assert integrated >= rm2_low[other].speedup_over(base) * 0.99
    assert integrated > 1.3


def test_headline_claim_dp_ht_harmful(rm2_low, rm1_low):
    """Naive hyperthreading degrades latency on both model families."""
    for panel in (rm2_low, rm1_low):
        assert panel["dp_ht"].speedup_over(panel["baseline"]) < 0.9


def test_mixed_model_prefers_mp_ht(rm1_low, rm2_low):
    """RM1's larger bottom MLP rewards MP-HT more than RM2 (Fig 14)."""
    gain_rm1 = rm1_low["mp_ht"].speedup_over(rm1_low["baseline"])
    gain_rm2 = rm2_low["mp_ht"].speedup_over(rm2_low["baseline"])
    assert gain_rm1 > gain_rm2
    assert gain_rm1 > 1.1


def test_embedding_fraction_matches_model_class(rm2_low, rm1_low):
    emb_rm2 = rm2_low["baseline"].stages.embedding_fraction
    emb_rm1 = rm1_low["baseline"].stages.embedding_fraction
    assert emb_rm2 > 0.9  # Table 2: 98%
    assert emb_rm1 < emb_rm2  # Table 2: 65%


def test_swpf_gain_grows_with_irregularity():
    """Fig 12: SW-PF helps Low hot more than High hot."""
    gains = {}
    for dataset in ("high", "low"):
        panel = quick_eval(
            model="rm2_1", dataset=dataset, scale=0.015, batch_size=8,
            num_batches=2, schemes=("baseline", "sw_pf"), config=CONFIG,
        )
        gains[dataset] = panel["sw_pf"].embedding_speedup_over(panel["baseline"])
    assert gains["low"] > gains["high"]


def test_multicore_retains_swpf_benefit():
    """Fig 12(b): software prefetching is scalable to multi-core."""
    panel = quick_eval(
        model="rm2_1", dataset="low", num_cores=24, scale=0.015,
        batch_size=8, num_batches=4, schemes=("baseline", "sw_pf"),
        config=CONFIG,
    )
    assert panel["sw_pf"].embedding_speedup_over(panel["baseline"]) > 1.15


def test_numeric_model_and_timing_model_share_configs():
    """The numeric DLRM and the timing path accept the same trace shapes."""
    import numpy as np

    from repro.model.configs import get_model
    from repro.model.dlrm import DLRM
    from repro.trace.production import make_trace

    dlrm = DLRM.from_config(get_model("rm1"), CONFIG, scale=0.01)
    trace = make_trace(
        "medium", dlrm.config.num_tables, dlrm.config.rows, 4, 1,
        dlrm.config.lookups_per_sample, config=CONFIG,
    )
    out = dlrm(dlrm.random_dense_batch(4), trace.batches[0])
    assert out.shape == (4,)
    assert np.all((out > 0) & (out < 1))
