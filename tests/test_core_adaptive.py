"""Adaptive prefetch-controller tests."""

import pytest

from repro.core.adaptive import AdaptiveController, run_adaptive_prefetch
from repro.core.swpf import SWPrefetchConfig
from repro.errors import ConfigError
from repro.trace.production import make_trace


class TestController:
    def test_waste_halves_distance(self):
        ctl = AdaptiveController(distance=16)
        assert ctl.update(late_ratio=0.0, waste_ratio=0.5) == 8

    def test_lateness_doubles_distance(self):
        ctl = AdaptiveController(distance=2)
        assert ctl.update(late_ratio=0.5, waste_ratio=0.0) == 4

    def test_waste_wins_over_lateness(self):
        # Pollution is the sharper cliff: shrink first.
        ctl = AdaptiveController(distance=8)
        assert ctl.update(late_ratio=0.5, waste_ratio=0.5) == 4

    def test_stable_when_both_low(self):
        ctl = AdaptiveController(distance=4)
        assert ctl.update(0.01, 0.01) == 4

    def test_bounds_respected(self):
        ctl = AdaptiveController(distance=1, min_distance=1, max_distance=4)
        assert ctl.update(0.9, 0.0) == 2
        assert ctl.update(0.9, 0.0) == 4
        assert ctl.update(0.9, 0.0) == 4  # clamped at max
        ctl2 = AdaptiveController(distance=1, min_distance=1)
        assert ctl2.update(0.0, 0.9) == 1  # clamped at min

    def test_history_recorded(self):
        ctl = AdaptiveController(distance=4)
        ctl.update(0.5, 0.0)
        ctl.update(0.5, 0.0)
        assert ctl.history == [4, 8]

    def test_validation(self):
        with pytest.raises(ConfigError):
            AdaptiveController(distance=64, max_distance=32)
        with pytest.raises(ConfigError):
            AdaptiveController().update(-0.1, 0.0)


class TestAdaptiveRun:
    @pytest.fixture(scope="class")
    def run(self):
        from repro.config import SimConfig
        from repro.cpu.platform import get_platform
        from repro.model.configs import get_model
        from repro.trace.stream import AddressMap

        config = SimConfig(seed=41)
        model = get_model("rm2_1").scaled(0.01)
        trace = make_trace(
            "low", model.num_tables, model.rows, 4, 4,
            model.lookups_per_sample, config=config,
        )
        amap = AddressMap([model.rows] * model.num_tables, model.embedding_dim)
        return run_adaptive_prefetch(
            trace, amap, get_platform("csl"), base=SWPrefetchConfig(distance=1)
        )

    def test_trajectory_covers_all_batches(self, run):
        assert len(run.distance_trajectory) == 4
        assert len(run.per_batch_cycles) == 4
        assert run.total_cycles == pytest.approx(sum(run.per_batch_cycles))

    def test_controller_moves_away_from_degenerate_start(self, run):
        # Starting at distance 1 on a memory-bound trace, the controller
        # should not stay pinned at 1.
        assert run.final_distance >= 1
        assert max(run.distance_trajectory) >= run.distance_trajectory[0]

    def test_final_distance_in_bounds(self, run):
        assert 1 <= run.final_distance <= 32
