"""Property-based tests on the serving stack (batcher, server, pipeline)."""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.serving.batcher import chunk_queries
from repro.serving.server import simulate_server
from repro.serving.workload import poisson_arrivals

SETTINGS = settings(
    max_examples=30, deadline=None, suppress_health_check=[HealthCheck.too_slow]
)

arrival_lists = st.lists(
    st.floats(min_value=0.0, max_value=1000.0), min_size=1, max_size=150
).map(sorted)


@SETTINGS
@given(arrival_lists, st.integers(1, 10), st.floats(0.5, 100.0))
def test_batcher_partitions_queries(arrivals, batch_size, timeout):
    """Every query lands in exactly one batch, in order, within limits."""
    arrivals = np.asarray(arrivals)
    batches = chunk_queries(arrivals, batch_size, timeout)
    flattened = np.concatenate([b.query_arrivals_ms for b in batches])
    assert np.array_equal(flattened, arrivals)
    for batch in batches:
        assert 1 <= batch.size <= batch_size
        assert batch.dispatch_ms >= batch.query_arrivals_ms.max() - 1e-9
        assert batch.max_queueing_delay_ms <= timeout + 1e-9


@SETTINGS
@given(arrival_lists, st.integers(1, 10), st.floats(0.5, 100.0))
def test_batcher_dispatches_monotone(arrivals, batch_size, timeout):
    batches = chunk_queries(np.asarray(arrivals), batch_size, timeout)
    dispatches = [b.dispatch_ms for b in batches]
    assert dispatches == sorted(dispatches)


@SETTINGS
@given(
    st.integers(0, 2**31 - 1),
    st.floats(1.0, 50.0),
    st.integers(1, 16),
)
def test_server_conservation_laws(seed, service_ms, cores):
    """No request served before arrival; cores never exceed capacity."""
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(5.0, 200, rng)
    result = simulate_server(arrivals, service_ms, cores, rng)
    assert np.all(result.waits_ms >= -1e-9)
    assert np.all(result.latencies_ms >= result.services_ms - 1e-9)
    # Work conservation: total busy time fits in cores x makespan.
    makespan = float((arrivals + result.latencies_ms).max())
    assert result.services_ms.sum() <= cores * makespan + 1e-6


@SETTINGS
@given(st.integers(0, 2**31 - 1), st.integers(1, 8))
def test_server_fifo_order_of_starts(seed, cores):
    """FIFO dispatch: start times are non-decreasing in arrival order."""
    rng = np.random.default_rng(seed)
    arrivals = poisson_arrivals(3.0, 100, rng)
    result = simulate_server(arrivals, 10.0, cores, rng)
    starts = arrivals + result.waits_ms
    assert np.all(np.diff(starts) >= -1e-9)


@SETTINGS
@given(st.integers(0, 2**31 - 1))
def test_more_cores_never_hurt(seed):
    rng_arr = np.random.default_rng(seed)
    arrivals = poisson_arrivals(4.0, 150, rng_arr)
    few = simulate_server(arrivals, 12.0, 2, np.random.default_rng(seed + 1))
    many = simulate_server(arrivals, 12.0, 8, np.random.default_rng(seed + 1))
    # With identical service draws, adding cores cannot raise the mean wait.
    assert many.waits_ms.mean() <= few.waits_ms.mean() + 1e-9
