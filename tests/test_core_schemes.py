"""Design-point evaluation tests — the paper's Section 6 panel in miniature."""

import pytest

from repro.core.schemes import SCHEME_NAMES, evaluate_all_schemes, evaluate_scheme
from repro.errors import UnknownSchemeError


@pytest.fixture(scope="module")
def panel(request):
    """All six schemes on one small Low-hot rm2_1 workload, single core."""
    from repro.config import SimConfig
    from repro.cpu.platform import get_platform
    from repro.model.configs import get_model
    from repro.trace.production import make_trace
    from repro.trace.stream import AddressMap

    config = SimConfig(seed=77)
    model = get_model("rm2_1").scaled(0.01)
    trace = make_trace(
        "low", model.num_tables, model.rows, 8, 2,
        model.lookups_per_sample, config=config,
    )
    amap = AddressMap([model.rows] * model.num_tables, model.embedding_dim)
    csl = get_platform("csl")
    return evaluate_all_schemes(model, trace, amap, csl, num_cores=1)


def test_all_schemes_evaluated(panel):
    assert set(panel) == set(SCHEME_NAMES)
    for result in panel.values():
        assert result.batch_cycles > 0
        assert result.embedding_cycles > 0
        assert result.batch_ms > 0


def test_sw_pf_beats_baseline(panel):
    assert panel["sw_pf"].speedup_over(panel["baseline"]) > 1.1
    assert panel["sw_pf"].embedding_speedup_over(panel["baseline"]) > 1.1


def test_sw_pf_improves_l1_and_latency(panel):
    assert panel["sw_pf"].l1_hit_rate > panel["baseline"].l1_hit_rate
    assert panel["sw_pf"].avg_load_latency < panel["baseline"].avg_load_latency


def test_dp_ht_hurts_latency(panel):
    # The paper's Fig 13: DP-HT down to 0.62x.
    assert panel["dp_ht"].speedup_over(panel["baseline"]) < 0.95


def test_mp_ht_never_catastrophic(panel):
    assert panel["mp_ht"].speedup_over(panel["baseline"]) > 0.9


def test_integrated_is_best_or_tied(panel):
    base = panel["baseline"]
    integrated = panel["integrated"].speedup_over(base)
    assert integrated >= panel["sw_pf"].speedup_over(base) * 0.98
    assert integrated >= panel["mp_ht"].speedup_over(base)
    assert integrated > 1.2


def test_hw_pf_off_hurts_end_to_end(panel):
    # Fig 13: "turning off hardware prefetching hurts performance in all
    # cases" end-to-end (dense stages lose their prefetchers).
    assert panel["hw_pf_off"].speedup_over(panel["baseline"]) < 1.0


def test_embedding_projection_applied(panel):
    # Scaled rm2_1 projects to paper-scale lookups: embedding dominates.
    assert panel["baseline"].stages is not None
    assert panel["baseline"].stages.embedding_fraction > 0.9


def test_unknown_scheme_rejected(panel):
    from repro.config import SimConfig
    from repro.cpu.platform import get_platform
    from repro.model.configs import get_model
    from repro.trace.production import make_trace
    from repro.trace.stream import AddressMap

    model = get_model("rm2_1").scaled(0.01)
    trace = make_trace(
        "low", model.num_tables, model.rows, 4, 1,
        model.lookups_per_sample, config=SimConfig(),
    )
    amap = AddressMap([model.rows] * model.num_tables, model.embedding_dim)
    with pytest.raises(UnknownSchemeError):
        evaluate_scheme("turbo", model, trace, amap, get_platform("csl"))


def test_scheme_result_metadata(panel):
    result = panel["baseline"]
    assert result.model.startswith("rm2_1")
    assert result.num_cores == 1
    assert result.scheme == "baseline"
