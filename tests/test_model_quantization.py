"""Quantized-embedding tests."""

import pytest

from repro.errors import ConfigError
from repro.model.configs import get_model


def test_quantized_shrinks_footprint():
    fp32 = get_model("rm2_1")
    fp16 = fp32.quantized(2)
    int8 = fp32.quantized(1)
    assert fp16.table_bytes == fp32.table_bytes // 2
    assert int8.table_bytes == fp32.table_bytes // 4
    assert fp16.name == "rm2_1-fp16"


def test_quantized_identity():
    model = get_model("rm2_1")
    assert model.quantized(4) is model


def test_quantized_address_map_uses_fewer_lines():
    fp32 = get_model("rm2_1").scaled(0.01)
    assert fp32.address_map().row_lines == 8
    assert fp32.quantized(2).address_map().row_lines == 4
    assert fp32.quantized(1).address_map().row_lines == 2


def test_invalid_dtype_rejected():
    with pytest.raises(ConfigError):
        get_model("rm2_1").quantized(3)


def test_quantized_scaled_keeps_projection():
    scaled = get_model("rm2_1").scaled(0.02).quantized(2)
    assert scaled.base_name == "rm2_1"
    assert scaled.paper_scale_ratio() > 1.0


def test_quantization_speeds_up_embedding(csl, sim_config):
    """Half the lines per row -> substantially fewer memory cycles."""
    from repro.engine.embedding_exec import run_embedding_trace
    from repro.mem.hierarchy import build_hierarchy
    from repro.trace.production import make_trace

    results = {}
    for dtype in (4, 2):
        model = get_model("rm2_1").scaled(0.01).quantized(dtype)
        trace = make_trace(
            "low", model.num_tables, model.rows, 4, 1,
            model.lookups_per_sample, config=sim_config,
        )
        run = run_embedding_trace(
            trace, model.address_map(), csl.core,
            build_hierarchy(csl.hierarchy),
        )
        results[dtype] = run
    assert results[2].loads == results[4].loads // 2
    assert results[2].total_cycles < results[4].total_cycles * 0.75
