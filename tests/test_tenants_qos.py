"""QoS closed-loop tests: detection, hysteresis, release probing, protocol."""

import pytest

from repro.errors import ConfigError
from repro.serving.faults import CoreSlowdown, FaultPlan
from repro.tenants import (
    DEFAULT_DEFENSE_LADDER,
    QoSController,
    TenantFaultPlan,
    TenantMix,
    TenantWorld,
)
from repro.tenants.plan import DefenseChange


class FakeWorld:
    """A scriptable world: mem-share series indexed by probe window.

    The controller probes at window midpoints, so sample ``i`` of the
    series is what window ``i`` (ending at ``(i+1)*window_ms``) reads.
    """

    def __init__(self, series, window_ms, max_step=2, mix=None, defended=None):
        self.series = list(series)
        self.window_ms = window_ms
        self.horizon_ms = len(self.series) * window_ms
        self._max_step = max_step
        self.defense_step = 0
        self.changes = []
        self.mix_series = mix
        self.defended = defended  # value read while any defense is engaged

    @property
    def max_step(self):
        return self._max_step

    def probe_at(self, t_ms):
        idx = min(int(t_ms / self.window_ms), len(self.series) - 1)
        mix = (
            self.mix_series[idx]
            if self.mix_series is not None
            else {"l1": 0.3, "dram": 0.7}
        )
        value = self.series[idx]
        if self.defense_step > 0 and self.defended is not None:
            value = min(value, self.defended)
        return value, mix

    def set_defense(self, t_ms, step, reason):
        if step != self.defense_step:
            self.changes.append(DefenseChange(t_ms, self.defense_step, step, reason))
            self.defense_step = step


def drive(controller, windows, window_ms=10.0):
    """Feed one completion per window edge so every window closes."""
    for i in range(1, windows + 1):
        controller.observe(i * window_ms, 1.0)


def make(series, **kwargs):
    world = FakeWorld(series, 10.0)
    kwargs.setdefault("probe_noise", 0.0)
    return world, QoSController(world, 10.0, **kwargs)


class TestValidation:
    def test_rejects_bad_parameters(self):
        world = FakeWorld([0.5] * 4, 10.0)
        with pytest.raises(ConfigError):
            QoSController(world, 0.0)
        with pytest.raises(ConfigError):
            QoSController(world, 10.0, release_windows=0)
        with pytest.raises(ConfigError):
            QoSController(world, 10.0, probe_noise=1.0)


class TestDetectionLoop:
    def test_quiet_series_never_moves(self):
        world, ctrl = make([0.5] * 40)
        drive(ctrl, 40)
        assert world.changes == []
        assert ctrl.actions == []
        assert not ctrl.mem_detector.firing

    def test_constant_high_is_baseline_not_an_event(self):
        # A neighbor present since before warmup is what the detector
        # calibrates against -- it cannot and should not fire.
        world, ctrl = make([0.9] * 40)
        drive(ctrl, 40)
        assert ctrl.actions == []

    def test_shift_fires_and_jumps_to_max_defense(self):
        series = [0.5] * 12 + [0.9] * 20
        world, ctrl = make(series)
        drive(ctrl, 32)
        fired = [a for a in ctrl.actions if a.reason == "detector_fired"]
        assert fired and fired[0].to_step == world.max_step
        assert fired[0].score > 0.0
        assert world.defense_step in (0, world.max_step)

    def test_release_after_calm_windows(self):
        # Shift, then back to baseline: defense must come off after
        # release_windows calm windows, with probation armed.
        series = [0.5] * 12 + [0.9] * 4 + [0.5] * 30
        world, ctrl = make(series, release_windows=4)
        drive(ctrl, len(series))
        reasons = [a.reason for a in ctrl.actions]
        assert "detector_fired" in reasons
        assert "release_probe" in reasons
        assert world.defense_step == 0

    def test_refire_during_probation_doubles_backoff(self):
        # A persistent neighbor under an effective defense: fire, the
        # defended signal calms, release probes re-expose the neighbor,
        # each re-fire doubles the calm requirement -- so gaps between
        # successive release probes never shrink.
        series = [0.5] * 12 + [0.9] * 120
        world = FakeWorld(series, 10.0, defended=0.5)
        ctrl = QoSController(world, 10.0, probe_noise=0.0, release_windows=4)
        drive(ctrl, len(series))
        releases = [a.t_ms for a in ctrl.actions if a.reason == "release_probe"]
        refires = [a for a in ctrl.actions if a.reason == "detector_fired"]
        assert len(releases) >= 2
        assert len(refires) >= 2
        gaps = [b - a for a, b in zip(releases, releases[1:])]
        assert all(b >= a - 1e-9 for a, b in zip(gaps, gaps[1:]))
        assert gaps[-1] > gaps[0]

    def test_windows_stop_at_world_horizon(self):
        world, ctrl = make([0.5] * 10)  # horizon = 100 ms
        drive(ctrl, 40)  # drain continues long past the horizon
        assert ctrl._window_index <= 10

    def test_deterministic_under_seeded_noise(self):
        series = [0.5] * 12 + [0.9] * 20
        _, a = make(series, probe_noise=0.02, seed=5)
        _, b = make(series, probe_noise=0.02, seed=5)
        drive(a, 32)
        drive(b, 32)
        assert [x.t_ms for x in a.actions] == [x.t_ms for x in b.actions]
        assert [e.t_ms for e in a.detections] == [e.t_ms for e in b.detections]

    def test_mix_drift_alone_can_fire(self):
        flat = [0.5] * 40
        shifted = [{"l1": 0.3, "dram": 0.7}] * 12 + [{"l1": 0.05, "dram": 0.95}] * 28
        world = FakeWorld(flat, 10.0, mix=shifted)
        ctrl = QoSController(world, 10.0, probe_noise=0.0)
        drive(ctrl, 40)
        assert any(a.reason == "detector_fired" for a in ctrl.actions)
        assert any(e.signal == "tenants.level_mix" for e in ctrl.detections)


class FakeInner:
    def __init__(self):
        self.seen = []
        self.level = 3
        self.ladder = ("a", "b")
        self.events = ["evt"]

    def scale(self):
        return 0.25

    def observe(self, now_ms, latency_ms):
        self.seen.append((now_ms, latency_ms))


class TestProtocolDelegation:
    def test_null_inner_defaults(self):
        _, ctrl = make([0.5] * 4)
        assert ctrl.scale() == 1.0
        assert ctrl.level == 0
        assert ctrl.ladder[0].name == "baseline"
        assert ctrl.events == []

    def test_inner_is_forwarded(self):
        inner = FakeInner()
        world = FakeWorld([0.5] * 4, 10.0)
        ctrl = QoSController(world, 10.0, inner=inner, probe_noise=0.0)
        ctrl.observe(10.0, 2.5)
        assert inner.seen == [(10.0, 2.5)]
        assert ctrl.scale() == 0.25
        assert ctrl.level == 3
        assert ctrl.ladder == ("a", "b")
        assert ctrl.events == ["evt"]


class TestTenantFaultPlan:
    @pytest.fixture()
    def world(self, request):
        # A real-world stand-in is heavier than needed: the plan only
        # calls is_empty / multiplier_at / tenant_windows.
        class W:
            is_empty = True

            def multiplier_at(self, t_ms):
                return 3.0 if 10.0 <= t_ms < 20.0 else 1.0

            def tenant_windows(self):
                return [("tenant_locker:x", 10.0, 20.0, {"kind": "locker"})]

        return W()

    def test_empty_world_empty_faults_is_empty(self, world):
        assert TenantFaultPlan(world).is_empty
        world.is_empty = False
        assert not TenantFaultPlan(world).is_empty
        world.is_empty = True
        assert not TenantFaultPlan(world, faults=[CoreSlowdown(0, 0.0, 5.0, 2.0)]).is_empty

    def test_multipliers_stack(self, world):
        plan = TenantFaultPlan(world, faults=[CoreSlowdown(0, 5.0, 30.0, 2.0)])
        assert plan.service_multiplier(0, 12.0) == pytest.approx(6.0)
        assert plan.service_multiplier(0, 25.0) == pytest.approx(2.0)
        assert plan.service_multiplier(1, 12.0) == pytest.approx(3.0)

    def test_windows_concatenate(self, world):
        plan = TenantFaultPlan(world, faults=[CoreSlowdown(0, 5.0, 30.0, 2.0)])
        names = {w[0] for w in plan.windows()}
        assert names == {"core_slowdown:0", "tenant_locker:x"}

    def test_plain_faultplan_interface_unchanged(self):
        assert FaultPlan().is_empty
        assert FaultPlan().service_multiplier(0, 1.0) == 1.0
