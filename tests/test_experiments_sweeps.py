"""Parametric sweep tests."""

import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.experiments.sweeps import sweep_batch_size, sweep_lookups, sweep_tables

CONFIG = SimConfig(seed=91)
FAST = dict(scale=0.01, num_batches=1, config=CONFIG)


class TestBatchSweep:
    @pytest.fixture(scope="class")
    def report(self):
        return sweep_batch_size(batch_sizes=(4, 16), **FAST)

    def test_latency_grows_with_batch(self, report):
        ms = report.column("baseline_emb_ms")
        assert ms[1] > ms[0]

    def test_roughly_linear_in_batch(self, report):
        per_sample = report.column("per_sample_ms")
        # Per-sample cost roughly constant (within 2x across a 4x batch).
        assert max(per_sample) < 2 * min(per_sample)

    def test_swpf_gain_scale_free(self, report):
        gains = report.column("sw_pf_speedup")
        assert all(g > 1.0 for g in gains)
        assert max(gains) / min(gains) < 1.5

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sweep_batch_size(batch_sizes=())


class TestLookupSweep:
    @pytest.fixture(scope="class")
    def report(self):
        return sweep_lookups(lookup_counts=(6, 24), batch_size=4, **FAST)

    def test_cost_grows_with_lookups(self, report):
        ms = report.column("baseline_emb_ms")
        assert ms[1] > ms[0]

    def test_swpf_always_helps(self, report):
        assert all(g > 1.0 for g in report.column("sw_pf_speedup"))


class TestTableSweep:
    @pytest.fixture(scope="class")
    def report(self):
        return sweep_tables(
            table_counts=(2, 6), batch_size=4, num_batches=1,
            lookups_per_sample=8, config=CONFIG,
        )

    def test_cost_grows_with_tables(self, report):
        ms = report.column("baseline_emb_ms")
        assert ms[1] > 2 * ms[0]

    def test_rows_cover_requested_counts(self, report):
        assert report.column("tables") == [2, 6]
