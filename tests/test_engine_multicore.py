"""Multi-core engine tests."""

import pytest

from repro.engine.multicore import (
    run_embedding_multicore,
    scaled_shared_l3_config,
)
from repro.errors import ConfigError
from repro.mem.hierarchy import HierarchyConfig
from repro.trace.production import make_trace


@pytest.fixture
def mc_trace(tiny_model, sim_config):
    # 4 batches so 2 detailed cores get 2 rounds each.
    return make_trace(
        "low", tiny_model.num_tables, tiny_model.rows, 4, 4,
        tiny_model.lookups_per_sample, config=sim_config,
    )


class TestScaledL3:
    def test_identity_when_detailed_covers_all(self):
        config = HierarchyConfig()
        assert scaled_shared_l3_config(config, 4, 4) is config

    def test_fair_share_scaling(self):
        config = HierarchyConfig()
        scaled = scaled_shared_l3_config(config, 2, 24)
        assert scaled.l3_size < config.l3_size
        assert scaled.l3_size >= 2 * config.l2_size  # floor keeps hierarchy legal
        # Still divisible into ways.
        assert (scaled.l3_size // 64) % scaled.l3_ways == 0

    def test_validation(self):
        with pytest.raises(ConfigError):
            scaled_shared_l3_config(HierarchyConfig(), 0, 4)


def test_single_core_multicore_agree_on_accounting(mc_trace, tiny_amap, csl):
    mc = run_embedding_multicore(
        mc_trace, tiny_amap, csl, num_cores=1, detailed_cores=1,
        bandwidth_iterations=1,
    )
    assert mc.num_cores == 1
    assert mc.detailed_cores == 1
    assert mc.mean_batch_cycles > 0


def test_bandwidth_grows_with_cores(mc_trace, tiny_amap, csl):
    one = run_embedding_multicore(
        mc_trace, tiny_amap, csl, num_cores=1, detailed_cores=1,
        bandwidth_iterations=1,
    )
    many = run_embedding_multicore(
        mc_trace, tiny_amap, csl, num_cores=24, detailed_cores=2,
        bandwidth_iterations=2,
    )
    assert many.achieved_bandwidth_bytes_per_cycle > one.achieved_bandwidth_bytes_per_cycle
    assert many.utilization > one.utilization


def test_contention_slows_batches(mc_trace, tiny_amap, csl):
    one = run_embedding_multicore(
        mc_trace, tiny_amap, csl, num_cores=1, detailed_cores=1,
        bandwidth_iterations=1,
    )
    many = run_embedding_multicore(
        mc_trace, tiny_amap, csl, num_cores=24, detailed_cores=2,
        bandwidth_iterations=2,
    )
    # Fig 8's shape: per-batch time rises with core count, but mildly
    # relative to the 24x concurrency.
    assert many.mean_batch_cycles >= one.mean_batch_cycles * 0.9
    assert many.mean_batch_cycles <= one.mean_batch_cycles * 3.0


def test_bandwidth_capped_at_peak(mc_trace, tiny_amap, csl):
    result = run_embedding_multicore(
        mc_trace, tiny_amap, csl, num_cores=48, detailed_cores=2,
    )
    # 48 cores = both sockets: peak doubles.
    peak = csl.peak_dram_bw_bytes_per_cycle * 2
    assert result.achieved_bandwidth_bytes_per_cycle <= peak + 1e-9


def test_gb_s_conversion(mc_trace, tiny_amap, csl):
    result = run_embedding_multicore(
        mc_trace, tiny_amap, csl, num_cores=4, detailed_cores=2,
        bandwidth_iterations=1,
    )
    expected = result.achieved_bandwidth_bytes_per_cycle * csl.frequency_hz / 1e9
    assert result.bandwidth_gb_s(csl.frequency_hz) == pytest.approx(expected)


def test_hier_override_respected(mc_trace, tiny_amap, csl):
    from repro.core.hyperthread import halved_smt_hierarchy_config

    halved = halved_smt_hierarchy_config(csl.hierarchy)
    base = run_embedding_multicore(
        mc_trace, tiny_amap, csl, num_cores=2, detailed_cores=2,
        bandwidth_iterations=1,
    )
    small = run_embedding_multicore(
        mc_trace, tiny_amap, csl, num_cores=2, detailed_cores=2,
        bandwidth_iterations=1, hier_override=halved,
    )
    # Halved private caches cannot be faster.
    assert small.mean_batch_cycles >= base.mean_batch_cycles * 0.98


def test_validation(mc_trace, tiny_amap, csl):
    with pytest.raises(ConfigError):
        run_embedding_multicore(mc_trace, tiny_amap, csl, num_cores=0)
    with pytest.raises(ConfigError):
        run_embedding_multicore(
            mc_trace, tiny_amap, csl, num_cores=2, bandwidth_iterations=0
        )
