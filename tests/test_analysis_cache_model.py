"""Fig 6 pipeline tests: reuse distances -> hit rates."""

import pytest

from repro.analysis.cache_model import CacheHitModel, analyze_trace_reuse
from repro.analysis.reuse import reuse_distances
from repro.errors import ConfigError
from repro.mem.hierarchy import HierarchyConfig


def test_capacities_match_paper_arithmetic():
    # "a 32KiB D$ ... can store 64 embedding vectors" (dim 128 fp32).
    model = CacheHitModel.from_hierarchy(HierarchyConfig(), embedding_dim=128)
    assert model.vectors_l1 == 64
    assert model.vectors_l2 == 2048
    assert model.vectors_l3 == int(35.75 * 1024 * 1024) // 512


def test_dim64_doubles_capacity():
    big = CacheHitModel.from_hierarchy(HierarchyConfig(), embedding_dim=64)
    small = CacheHitModel.from_hierarchy(HierarchyConfig(), embedding_dim=128)
    assert big.vectors_l1 == 2 * small.vectors_l1


def test_hit_rates_ordered_by_level(rng):
    reuse = reuse_distances(rng.integers(0, 500, size=5000).tolist())
    model = CacheHitModel.from_hierarchy(HierarchyConfig(), 128)
    rates = model.hit_rates(reuse)
    assert rates["l1"] <= rates["l2"] <= rates["l3"]


def test_level_fractions_sum_to_one(rng):
    reuse = reuse_distances(rng.integers(0, 500, size=5000).tolist())
    model = CacheHitModel.from_hierarchy(HierarchyConfig(), 128)
    fractions = model.level_fractions(reuse)
    assert sum(fractions.values()) == pytest.approx(1.0)
    assert all(v >= 0 for v in fractions.values())


def test_analyze_trace_reuse(tiny_trace, csl, tiny_model):
    report = analyze_trace_reuse(
        tiny_trace, csl.hierarchy, tiny_model.embedding_dim, dataset="low"
    )
    assert report.dataset == "low"
    assert 0 < report.cold_fraction <= 1.0
    assert report.hit_rates["l3"] <= 1.0
    assert sum(report.level_fractions.values()) == pytest.approx(1.0)


def test_cold_fraction_tracks_hotness(tiny_model, sim_config, csl):
    from repro.trace.production import make_trace

    fractions = {}
    for dataset in ("high", "low"):
        trace = make_trace(
            dataset, tiny_model.num_tables, tiny_model.rows, 8, 2,
            tiny_model.lookups_per_sample, config=sim_config,
        )
        report = analyze_trace_reuse(trace, csl.hierarchy, 128, dataset=dataset)
        fractions[dataset] = report.cold_fraction
    # Section 3.3: cold misses grow as hotness falls (72% low vs 22% high).
    assert fractions["low"] > fractions["high"]


def test_table_subset(tiny_trace, csl):
    report = analyze_trace_reuse(tiny_trace, csl.hierarchy, 128, tables=[0])
    assert report.reuse.total_accesses == tiny_trace.table_indices(0).size


def test_tables_never_share_reuse(csl):
    """Inter-table accesses must not alias (Section 3.1's inter-table class)."""
    import numpy as np

    from repro.trace.dataset import EmbeddingTrace, TableBatch

    trace = EmbeddingTrace(rows_per_table=[10, 10])
    tb = TableBatch(np.array([0, 2]), np.array([3, 4]))
    trace.append_batch([tb, tb])  # same indices in both tables
    report = analyze_trace_reuse(trace, csl.hierarchy, 128)
    # All four accesses are cold: table 1's row 3 is NOT table 0's row 3.
    assert report.cold_fraction == 1.0


def test_distance_cdf_monotone(tiny_trace, csl):
    report = analyze_trace_reuse(tiny_trace, csl.hierarchy, 128)
    cdf = report.distance_cdf(points=[2, 8, 64, 1024])
    values = [v for _, v in cdf]
    assert values == sorted(values)


def test_validation(tiny_trace, csl):
    with pytest.raises(ConfigError):
        analyze_trace_reuse(tiny_trace, csl.hierarchy, 128, tables=[])
    with pytest.raises(ConfigError):
        analyze_trace_reuse(tiny_trace, csl.hierarchy, 128, tables=[99])
    with pytest.raises(ConfigError):
        CacheHitModel.from_hierarchy(HierarchyConfig(), 0)
