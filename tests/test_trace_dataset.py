"""EmbeddingTrace container tests."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.dataset import EmbeddingTrace, TableBatch


def make_tb(pooling, base=0):
    offsets = np.concatenate([[0], np.cumsum(pooling)]).astype(np.int64)
    indices = (np.arange(offsets[-1]) + base).astype(np.int64)
    return TableBatch(offsets=offsets, indices=indices)


class TestTableBatch:
    def test_basic_shape(self):
        tb = make_tb([2, 3, 1])
        assert tb.batch_size == 3
        assert tb.total_lookups == 6

    def test_sample_indices_slicing(self):
        tb = make_tb([2, 3, 1])
        assert list(tb.sample_indices(1)) == [2, 3, 4]

    def test_sample_bounds_checked(self):
        tb = make_tb([2])
        with pytest.raises(TraceError):
            tb.sample_indices(1)

    def test_lookups_per_sample(self):
        tb = make_tb([2, 3, 1])
        assert list(tb.lookups_per_sample()) == [2, 3, 1]

    def test_zero_lookup_sample_allowed(self):
        tb = make_tb([2, 0, 1])
        assert tb.sample_indices(1).size == 0

    def test_offsets_must_start_at_zero(self):
        with pytest.raises(TraceError):
            TableBatch(np.array([1, 3]), np.arange(3))

    def test_offsets_must_be_monotone(self):
        with pytest.raises(TraceError):
            TableBatch(np.array([0, 3, 2]), np.arange(3))

    def test_offsets_must_end_at_index_count(self):
        with pytest.raises(TraceError):
            TableBatch(np.array([0, 2]), np.arange(5))

    def test_negative_indices_rejected(self):
        with pytest.raises(TraceError):
            TableBatch(np.array([0, 2]), np.array([-1, 3]))


class TestEmbeddingTrace:
    def build(self, num_tables=2, rows=100, batches=2):
        trace = EmbeddingTrace(rows_per_table=[rows] * num_tables, name="t")
        for b in range(batches):
            trace.append_batch(
                [make_tb([2, 2], base=b * 10 + t) for t in range(num_tables)]
            )
        return trace

    def test_shape_properties(self):
        trace = self.build()
        assert trace.num_tables == 2
        assert trace.num_batches == 2
        assert trace.batch_size == 2
        assert trace.total_lookups() == 16

    def test_index_range_validated_per_table(self):
        trace = EmbeddingTrace(rows_per_table=[4])
        with pytest.raises(TraceError):
            trace.append_batch([make_tb([3], base=5)])  # index 7 > 3

    def test_batch_must_cover_all_tables(self):
        trace = self.build()
        with pytest.raises(TraceError):
            trace.append_batch([make_tb([2, 2])])

    def test_needs_a_table(self):
        with pytest.raises(TraceError):
            EmbeddingTrace(rows_per_table=[])

    def test_table_indices_concatenates_batches(self):
        trace = self.build(num_tables=1, batches=3)
        assert trace.table_indices(0).size == 12

    def test_iter_order_is_batch_major(self):
        trace = self.build()
        order = [(b, t) for b, t, _ in trace.iter_table_batches()]
        assert order == [(0, 0), (0, 1), (1, 0), (1, 1)]

    def test_unique_fraction(self):
        trace = EmbeddingTrace(rows_per_table=[100])
        tb = TableBatch(np.array([0, 4]), np.array([7, 7, 7, 9]))
        trace.append_batch([tb])
        assert trace.unique_fraction(0) == pytest.approx(0.5)

    def test_access_counts_sorted_descending(self):
        trace = EmbeddingTrace(rows_per_table=[100])
        tb = TableBatch(np.array([0, 5]), np.array([1, 1, 1, 2, 3]))
        trace.append_batch([tb])
        assert list(trace.access_counts(0)) == [3, 1, 1]

    def test_summary_keys(self):
        summary = self.build().summary()
        assert summary["tables"] == 2
        assert summary["total_lookups"] == 16
        assert 0 < summary["mean_unique_fraction"] <= 1

    def test_empty_trace_has_no_batch_size(self):
        trace = EmbeddingTrace(rows_per_table=[10])
        with pytest.raises(TraceError):
            _ = trace.batch_size
