"""Kernel cost-model tests."""

import pytest

from repro.engine.kernels import KernelCostModel
from repro.errors import ConfigError


def test_default_instruction_count_matches_paper_anchor():
    cost = KernelCostModel()
    # dim=128 -> 8 lines; the paper: distance 4 ≈ 200 instructions.
    per_lookup = cost.instructions_per_lookup(8)
    assert 40 <= per_lookup <= 60
    assert 150 <= cost.prefetch_distance_instructions(4, 8) <= 250


def test_instructions_scale_with_row_lines():
    cost = KernelCostModel()
    assert cost.instructions_per_lookup(4) < cost.instructions_per_lookup(8)


def test_distance_zero_is_zero_instructions():
    assert KernelCostModel().prefetch_distance_instructions(0, 8) == 0


def test_validation():
    with pytest.raises(ConfigError):
        KernelCostModel(uops_per_line=-1)
    with pytest.raises(ConfigError):
        KernelCostModel().instructions_per_lookup(0)
    with pytest.raises(ConfigError):
        KernelCostModel().prefetch_distance_instructions(-1, 8)
