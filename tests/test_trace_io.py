"""Trace serialization tests."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace.io import load_trace, save_trace


def test_round_trip(tiny_trace, tmp_path):
    path = save_trace(tiny_trace, tmp_path / "trace")
    assert path.suffix == ".npz"
    loaded = load_trace(path)
    assert loaded.name == tiny_trace.name
    assert loaded.num_batches == tiny_trace.num_batches
    assert loaded.num_tables == tiny_trace.num_tables
    assert loaded.rows_per_table == list(tiny_trace.rows_per_table)
    for b in range(tiny_trace.num_batches):
        for t in range(tiny_trace.num_tables):
            original = tiny_trace.table_batch(b, t)
            restored = loaded.table_batch(b, t)
            assert np.array_equal(original.offsets, restored.offsets)
            assert np.array_equal(original.indices, restored.indices)


def test_round_trip_preserves_statistics(tiny_trace, tmp_path):
    loaded = load_trace(save_trace(tiny_trace, tmp_path / "t.npz"))
    assert loaded.mean_unique_fraction() == tiny_trace.mean_unique_fraction()
    assert loaded.total_lookups() == tiny_trace.total_lookups()


def test_missing_file(tmp_path):
    with pytest.raises(TraceError):
        load_trace(tmp_path / "nope.npz")


def test_rejects_foreign_npz(tmp_path):
    path = tmp_path / "foreign.npz"
    np.savez(path, something=np.arange(3))
    with pytest.raises(TraceError):
        load_trace(path)


def test_loaded_trace_is_validated(tiny_trace, tmp_path):
    # Loading goes through the normal constructors, so corrupt content
    # cannot slip in silently: truncate the file's arrays.
    path = save_trace(tiny_trace, tmp_path / "t.npz")
    with np.load(path) as data:
        arrays = {k: data[k] for k in data.files if not k.startswith("offsets_1")}
    np.savez(tmp_path / "broken.npz", **arrays)
    with pytest.raises(TraceError):
        load_trace(tmp_path / "broken.npz")
