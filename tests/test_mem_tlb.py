"""TLB model tests."""

import pytest

from repro.errors import ConfigError
from repro.mem.tlb import TLBConfig, TLBModel


def small_tlb(l1=2, stlb=4, **kw):
    return TLBModel(TLBConfig(l1_entries=l1, stlb_entries=stlb, **kw))


def test_first_access_walks():
    tlb = small_tlb()
    cost = tlb.translate(7)
    assert cost == tlb.config.walk_cycles
    assert tlb.walks == 1


def test_repeat_hits_l1_for_free():
    tlb = small_tlb()
    tlb.translate(7)
    assert tlb.translate(7) == tlb.config.l1_hit_cycles
    assert tlb.l1_hits == 1


def test_l1_eviction_falls_to_stlb():
    tlb = small_tlb(l1=2, stlb=8)
    for page in (1, 2, 3):  # 1 evicted from the 2-entry L1
        tlb.translate(page)
    cost = tlb.translate(1)
    assert cost == tlb.config.stlb_hit_cycles
    assert tlb.stlb_hits == 1


def test_stlb_eviction_forces_rewalk():
    tlb = small_tlb(l1=2, stlb=4)
    for page in range(6):  # exceed the STLB
        tlb.translate(page)
    assert tlb.translate(0) == tlb.config.walk_cycles


def test_stlb_hit_promotes_to_l1():
    tlb = small_tlb(l1=2, stlb=8)
    for page in (1, 2, 3):
        tlb.translate(page)
    tlb.translate(1)  # STLB hit, promoted
    assert tlb.translate(1) == tlb.config.l1_hit_cycles


def test_walk_rate_and_reach():
    tlb = small_tlb()
    for page in range(10):
        tlb.translate(page)
    assert tlb.walk_rate == pytest.approx(1.0)
    assert tlb.reach_bytes() == 4 * 2 * 1024 * 1024


def test_page_of_line():
    tlb = TLBModel()
    lines_per_page = 2 * 1024 * 1024 // 64
    assert tlb.page_of_line(0) == 0
    assert tlb.page_of_line(lines_per_page) == 1


def test_translate_line_uses_page_granularity():
    tlb = TLBModel()
    tlb.translate_line(0)
    # Every line of the same 2 MiB page hits.
    assert tlb.translate_line(100) == tlb.config.l1_hit_cycles


def test_reset():
    tlb = small_tlb()
    tlb.translate(3)
    tlb.reset()
    assert tlb.accesses == 0
    assert tlb.translate(3) == tlb.config.walk_cycles


def test_config_validation():
    with pytest.raises(ConfigError):
        TLBConfig(page_bytes=3000)
    with pytest.raises(ConfigError):
        TLBConfig(l1_entries=0)
    with pytest.raises(ConfigError):
        TLBConfig(l1_entries=100, stlb_entries=10)
    with pytest.raises(ConfigError):
        TLBConfig(walk_cycles=-1)


def test_paper_scale_tables_exceed_stlb_reach():
    """The motivation: a 28.6 GiB model cannot be mapped by the STLB."""
    from repro.model.configs import get_model

    tlb = TLBModel()
    assert get_model("rm2_1").embedding_bytes > tlb.reach_bytes()


def test_engine_integration_adds_latency(tiny_trace, tiny_amap, csl):
    from repro.engine.embedding_exec import run_embedding_trace
    from repro.mem.hierarchy import build_hierarchy

    base = run_embedding_trace(
        tiny_trace, tiny_amap, csl.core, build_hierarchy(csl.hierarchy)
    )
    tlb = TLBModel(TLBConfig(l1_entries=4, stlb_entries=16))  # tiny reach
    with_tlb = run_embedding_trace(
        tiny_trace, tiny_amap, csl.core, build_hierarchy(csl.hierarchy), tlb=tlb
    )
    assert with_tlb.total_cycles > base.total_cycles
    assert tlb.accesses == tiny_trace.total_lookups()
    assert tlb.walk_rate > 0
