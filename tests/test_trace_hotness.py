"""Hotness profile and Zipf calibration tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.trace.hotness import (
    HOTNESS_PROFILES,
    HotnessProfile,
    expected_unique_fraction,
    fit_zipf_alpha,
    measured_unique_fraction,
    zipf_probabilities,
)


def test_published_targets():
    assert HOTNESS_PROFILES["high"].unique_fraction == 0.03
    assert HOTNESS_PROFILES["medium"].unique_fraction == 0.24
    assert HOTNESS_PROFILES["low"].unique_fraction == 0.60


def test_profile_validation():
    with pytest.raises(ConfigError):
        HotnessProfile("bad", unique_fraction=0.0)


def test_zipf_probabilities_normalized_and_sorted():
    p = zipf_probabilities(1000, 1.0)
    assert p.sum() == pytest.approx(1.0)
    assert np.all(np.diff(p) <= 0)  # rank 0 hottest


def test_zipf_alpha_zero_is_uniform():
    p = zipf_probabilities(100, 0.0)
    assert np.allclose(p, 0.01)


def test_zipf_rejects_bad_args():
    with pytest.raises(ConfigError):
        zipf_probabilities(0, 1.0)
    with pytest.raises(ConfigError):
        zipf_probabilities(10, -1.0)


def test_expected_unique_uniform_matches_coupon_collector():
    # N = R uniform draws leave 1 - 1/e ≈ 63.2% unique.
    rows = 5000
    frac = expected_unique_fraction(rows, rows, 0.0)
    assert frac == pytest.approx(1 - np.exp(-1), abs=0.01)


def test_expected_unique_decreases_with_alpha():
    rows, samples = 10000, 10000
    fractions = [expected_unique_fraction(rows, samples, a) for a in (0.0, 0.5, 1.0, 2.0)]
    assert fractions == sorted(fractions, reverse=True)


def test_fit_alpha_hits_targets():
    rows, samples = 100_000, 100_000
    for target in (0.03, 0.24, 0.60):
        alpha = fit_zipf_alpha(rows, samples, target)
        got = expected_unique_fraction(rows, samples, alpha)
        assert got == pytest.approx(target, abs=0.01)


def test_fit_alpha_orders_hotness():
    rows, samples = 50_000, 50_000
    alpha_high = fit_zipf_alpha(rows, samples, 0.03)
    alpha_med = fit_zipf_alpha(rows, samples, 0.24)
    alpha_low = fit_zipf_alpha(rows, samples, 0.60)
    assert alpha_high > alpha_med > alpha_low


def test_fit_alpha_returns_zero_when_target_unreachable():
    # With N >> R even uniform sampling leaves few uniques; asking for
    # MORE uniques than uniform gives is answered with alpha=0.
    assert fit_zipf_alpha(100, 100_000, 0.9) == 0.0


def test_fit_alpha_validates_target():
    with pytest.raises(ConfigError):
        fit_zipf_alpha(100, 100, 0.0)


def test_measured_unique_fraction():
    assert measured_unique_fraction(np.array([1, 1, 1, 2])) == pytest.approx(0.5)
    with pytest.raises(ConfigError):
        measured_unique_fraction(np.array([], dtype=np.int64))


def test_empirical_sample_matches_expectation():
    rng = np.random.default_rng(0)
    rows, samples = 20_000, 20_000
    alpha = fit_zipf_alpha(rows, samples, 0.24)
    p = zipf_probabilities(rows, alpha)
    draws = rng.choice(rows, size=samples, p=p)
    assert measured_unique_fraction(draws) == pytest.approx(0.24, abs=0.03)
