"""Fault-injection tests: plan construction, determinism, serving behavior."""

import heapq

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.serving.faults import (
    ArrivalBurst,
    BandwidthDegradation,
    CoreFailure,
    CoreSlowdown,
    FaultPlan,
    Stragglers,
)
from repro.serving.server import (
    OUTCOME_COMPLETED,
    ServingPolicy,
    lognormal_services,
    simulate_server,
)
from repro.serving.workload import poisson_arrivals


def legacy_simulate(arrivals_ms, mean_service_ms, num_cores, rng, service_cv=0.10):
    """The pre-resilience serving loop, replicated verbatim as the oracle."""
    n = arrivals_ms.size
    services = lognormal_services(mean_service_ms, n, rng, cv=service_cv)
    cores = [0.0] * num_cores
    heapq.heapify(cores)
    starts = np.empty(n)
    for i in range(n):
        free_at = heapq.heappop(cores)
        start = max(arrivals_ms[i], free_at)
        starts[i] = start
        heapq.heappush(cores, start + services[i])
    completions = starts + services
    return completions - arrivals_ms, starts - arrivals_ms, services


class TestFaultModels:
    def test_window_validation(self):
        with pytest.raises(ConfigError):
            CoreSlowdown(0, 10.0, 5.0, 2.0)
        with pytest.raises(ConfigError):
            CoreFailure(0, -1.0, 5.0)
        with pytest.raises(ConfigError):
            BandwidthDegradation(0.0, 10.0, 0.5)
        with pytest.raises(ConfigError):
            CoreSlowdown(-1, 0.0, 5.0, 2.0)

    def test_burst_validation_and_arrivals(self):
        with pytest.raises(ConfigError):
            ArrivalBurst(0.0, 0, 1.0)
        with pytest.raises(ConfigError):
            ArrivalBurst(0.0, 5, 0.0)
        burst = ArrivalBurst(100.0, 4, 2.0)
        assert np.array_equal(burst.arrivals(), [100.0, 102.0, 104.0, 106.0])

    def test_straggler_validation(self):
        with pytest.raises(ConfigError):
            Stragglers(1.5, 2.0)
        with pytest.raises(ConfigError):
            Stragglers(0.1, 0.5)
        with pytest.raises(ConfigError):
            Stragglers(0.1, 2.0, tail_alpha=-1.0)

    def test_unknown_fault_rejected(self):
        with pytest.raises(ConfigError):
            FaultPlan([object()])


class TestFaultPlan:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.is_empty
        assert plan.service_multiplier(0, 5.0) == 1.0
        assert not plan.core_down(0, 5.0)
        assert plan.next_available(0, 5.0) == 5.0

    def test_service_multiplier_composes(self):
        plan = FaultPlan(
            [
                CoreSlowdown(1, 10.0, 20.0, 2.0),
                BandwidthDegradation(15.0, 30.0, 3.0),
            ]
        )
        assert plan.service_multiplier(1, 12.0) == 2.0
        assert plan.service_multiplier(1, 16.0) == 6.0  # both windows active
        assert plan.service_multiplier(0, 16.0) == 3.0  # bandwidth hits all
        assert plan.service_multiplier(1, 25.0) == 3.0
        assert plan.service_multiplier(1, 30.0) == 1.0  # window end exclusive

    def test_failure_windows(self):
        plan = FaultPlan([CoreFailure(2, 10.0, 20.0), CoreFailure(2, 20.0, 25.0)])
        assert plan.core_down(2, 15.0)
        assert not plan.core_down(2, 25.0)
        assert not plan.core_down(0, 15.0)
        # Adjacent windows are skipped in one pass.
        assert plan.next_available(2, 12.0) == 25.0
        assert plan.next_available(2, 30.0) == 30.0

    def test_burst_injection_sorted_and_masked(self):
        plan = FaultPlan([ArrivalBurst(5.0, 3, 1.0)])
        arrivals = np.array([1.0, 4.0, 9.0])
        merged, mask = plan.inject_arrivals(arrivals)
        assert np.all(np.diff(merged) >= 0)
        assert merged.size == 6
        assert mask.sum() == 3
        assert np.array_equal(merged[mask], [5.0, 6.0, 7.0])

    def test_straggler_multipliers_deterministic(self):
        plan = FaultPlan([Stragglers(0.3, 4.0, tail_alpha=1.5)], seed=9)
        a = plan.straggler_multipliers(500)
        b = FaultPlan([Stragglers(0.3, 4.0, tail_alpha=1.5)], seed=9).straggler_multipliers(500)
        assert np.array_equal(a, b)
        assert np.all(a >= 1.0)
        hit = a > 1.0
        assert 0.1 < hit.mean() < 0.5
        assert np.all(a[hit] >= 4.0)  # pareto tail only adds
        other = FaultPlan([Stragglers(0.3, 4.0, tail_alpha=1.5)], seed=10)
        assert not np.array_equal(a, other.straggler_multipliers(500))

    def test_windows_reported(self):
        plan = FaultPlan(
            [
                CoreFailure(1, 5.0, 10.0),
                BandwidthDegradation(0.0, 4.0, 2.0),
                ArrivalBurst(2.0, 10, 0.5),
            ]
        )
        names = {w[0] for w in plan.windows()}
        assert names == {"core_failure:1", "bandwidth_degradation", "arrival_burst"}


class TestNoFaultByteIdentity:
    """Acceptance: fault_plan=None reproduces the pre-PR result exactly."""

    @pytest.mark.parametrize("seed", [0, 7, 123])
    def test_differential_against_legacy(self, seed):
        arrivals = poisson_arrivals(3.0, 800, np.random.default_rng(seed))
        lat, wait, svc = legacy_simulate(
            arrivals, 10.0, 4, np.random.default_rng(seed + 1)
        )
        result = simulate_server(arrivals, 10.0, 4, np.random.default_rng(seed + 1))
        assert np.array_equal(result.latencies_ms, lat)
        assert np.array_equal(result.waits_ms, wait)
        assert np.array_equal(result.services_ms, svc)

    def test_empty_plan_and_null_policy_stay_on_fast_path(self, rng):
        arrivals = poisson_arrivals(3.0, 300, np.random.default_rng(0))
        a = simulate_server(arrivals, 10.0, 4, np.random.default_rng(1))
        b = simulate_server(
            arrivals, 10.0, 4, np.random.default_rng(1),
            fault_plan=FaultPlan(), policy=ServingPolicy(),
        )
        assert np.array_equal(a.latencies_ms, b.latencies_ms)
        assert np.array_equal(a.services_ms, b.services_ms)

    def test_neutral_event_loop_matches_fast_path(self):
        """A deadline policy forces the event loop; with a huge deadline it
        must reproduce the fast path's schedule."""
        arrivals = poisson_arrivals(3.0, 500, np.random.default_rng(2))
        fast = simulate_server(arrivals, 10.0, 4, np.random.default_rng(3))
        loop = simulate_server(
            arrivals, 10.0, 4, np.random.default_rng(3),
            policy=ServingPolicy(deadline_ms=1e12),
        )
        assert np.allclose(loop.latencies_ms, fast.latencies_ms)
        assert np.allclose(loop.waits_ms, fast.waits_ms)
        assert np.array_equal(loop.core_ids, fast.core_ids)
        assert np.all(loop.outcomes == OUTCOME_COMPLETED)


class TestFaultedServing:
    def test_bandwidth_degradation_raises_tail(self):
        arrivals = poisson_arrivals(3.0, 1000, np.random.default_rng(0))
        clean = simulate_server(arrivals, 10.0, 4, np.random.default_rng(1))
        plan = FaultPlan([BandwidthDegradation(500.0, 1500.0, 4.0)], seed=1)
        faulted = simulate_server(
            arrivals, 10.0, 4, np.random.default_rng(1), fault_plan=plan
        )
        assert faulted.p95_ms > clean.p95_ms * 2

    def test_core_failure_raises_tail(self):
        arrivals = poisson_arrivals(3.5, 800, np.random.default_rng(0))
        clean = simulate_server(arrivals, 10.0, 4, np.random.default_rng(1))
        plan = FaultPlan(
            [CoreFailure(0, 300.0, 1500.0), CoreFailure(1, 300.0, 1500.0)], seed=1
        )
        faulted = simulate_server(
            arrivals, 10.0, 4, np.random.default_rng(1), fault_plan=plan
        )
        assert faulted.p95_ms > clean.p95_ms
        # Everything still completes (failed cores repair).
        assert faulted.outcome_count("completed") == 800

    def test_no_request_starts_on_downed_core(self):
        plan = FaultPlan([CoreFailure(0, 0.0, 10_000.0)], seed=1)
        arrivals = poisson_arrivals(5.0, 200, np.random.default_rng(0))
        result = simulate_server(
            arrivals, 8.0, 2, np.random.default_rng(1), fault_plan=plan
        )
        starts = arrivals[result.outcomes == OUTCOME_COMPLETED] + result.waits_ms
        on_failed_core = result.core_ids == 0
        assert np.all(starts[on_failed_core] >= 10_000.0)

    def test_burst_injects_extra_requests(self):
        arrivals = poisson_arrivals(5.0, 300, np.random.default_rng(0))
        plan = FaultPlan([ArrivalBurst(200.0, 100, 0.5)], seed=1)
        result = simulate_server(
            arrivals, 8.0, 4, np.random.default_rng(1), fault_plan=plan
        )
        assert result.offered_requests == 400
        assert result.injected.sum() == 100

    def test_faulted_run_is_deterministic(self):
        arrivals = poisson_arrivals(3.0, 600, np.random.default_rng(0))
        plan = FaultPlan(
            [
                BandwidthDegradation(200.0, 900.0, 3.0),
                Stragglers(0.1, 5.0, tail_alpha=1.2),
                ArrivalBurst(400.0, 50, 1.0),
            ],
            seed=42,
        )
        policy = ServingPolicy(
            deadline_ms=80.0, timeout_ms=40.0, max_retries=2, max_queue_depth=30
        )
        runs = [
            simulate_server(
                arrivals, 10.0, 4, np.random.default_rng(1),
                fault_plan=FaultPlan(
                    [
                        BandwidthDegradation(200.0, 900.0, 3.0),
                        Stragglers(0.1, 5.0, tail_alpha=1.2),
                        ArrivalBurst(400.0, 50, 1.0),
                    ],
                    seed=42,
                ),
                policy=policy,
            )
            for _ in range(2)
        ]
        assert np.array_equal(runs[0].outcomes, runs[1].outcomes)
        assert np.array_equal(runs[0].latencies_ms, runs[1].latencies_ms)
        assert np.array_equal(runs[0].retry_counts, runs[1].retry_counts)
        del plan


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ServingPolicy(deadline_ms=0.0)
        with pytest.raises(ConfigError):
            ServingPolicy(timeout_ms=-1.0)
        with pytest.raises(ConfigError):
            ServingPolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            ServingPolicy(max_queue_depth=0)
        with pytest.raises(ConfigError):
            # Retries without a timeout can never trigger.
            ServingPolicy(max_retries=2)

    def test_for_sla(self):
        from repro.serving.sla import SLA_TARGETS

        policy = ServingPolicy.for_sla(SLA_TARGETS["RMC1"], max_retries=1,
                                       timeout_ms=50.0)
        assert policy.deadline_ms == 100.0
        assert policy.timeout_ms == 50.0
        assert policy.max_retries == 1

    def test_queue_depth_sheds(self):
        arrivals = poisson_arrivals(1.0, 400, np.random.default_rng(0))
        policy = ServingPolicy(max_queue_depth=5)
        result = simulate_server(
            arrivals, 20.0, 2, np.random.default_rng(1), policy=policy
        )
        assert result.outcome_count("shed") > 0
        # The queue bound caps waiting: completed requests never waited
        # longer than the backlog the bound admits (plus one service).
        assert result.outcome_count("completed") + result.outcome_count("shed") == 400

    def test_timeout_without_retries(self):
        arrivals = poisson_arrivals(1.0, 300, np.random.default_rng(0))
        policy = ServingPolicy(timeout_ms=15.0)
        result = simulate_server(
            arrivals, 20.0, 2, np.random.default_rng(1), policy=policy
        )
        assert result.outcome_count("timed_out") > 0
        # No completed request waited past the timeout.
        assert np.all(result.waits_ms <= 15.0 + 1e-9)

    def test_retries_recover_some_requests(self):
        arrivals = poisson_arrivals(2.0, 300, np.random.default_rng(0))
        base = ServingPolicy(timeout_ms=25.0)
        retrying = ServingPolicy(
            timeout_ms=25.0, max_retries=3, retry_backoff_ms=30.0
        )
        plain = simulate_server(
            arrivals, 12.0, 3, np.random.default_rng(1), policy=base
        )
        retried = simulate_server(
            arrivals, 12.0, 3, np.random.default_rng(1), policy=retrying
        )
        assert retried.retries_total > 0
        assert (
            retried.outcome_count("completed") >= plain.outcome_count("completed")
        )

    def test_goodput_counts_deadline(self):
        arrivals = poisson_arrivals(1.5, 400, np.random.default_rng(0))
        policy = ServingPolicy(deadline_ms=40.0, shed_expired=False)
        result = simulate_server(
            arrivals, 15.0, 2, np.random.default_rng(1), policy=policy
        )
        expected = np.count_nonzero(result.latencies_ms <= 40.0) / 400
        assert result.goodput == pytest.approx(expected)
        assert 0.0 < result.goodput < 1.0

    def test_latency_decomposition_holds_under_faults(self):
        arrivals = poisson_arrivals(2.0, 500, np.random.default_rng(0))
        plan = FaultPlan(
            [BandwidthDegradation(100.0, 600.0, 2.5), Stragglers(0.05, 4.0)],
            seed=3,
        )
        policy = ServingPolicy(timeout_ms=60.0, max_retries=1)
        result = simulate_server(
            arrivals, 10.0, 4, np.random.default_rng(1),
            fault_plan=plan, policy=policy,
        )
        assert np.allclose(
            result.latencies_ms, result.waits_ms + result.services_ms
        )
        assert np.all(result.waits_ms >= -1e-9)
