"""Loop-order (table-major vs sample-major) tests."""

import pytest

from repro.engine.embedding_exec import run_embedding_trace
from repro.errors import ConfigError
from repro.mem.hierarchy import build_hierarchy
from repro.trace.production import make_trace


@pytest.fixture(scope="module")
def workload():
    from repro.config import SimConfig
    from repro.model.configs import get_model
    from repro.trace.stream import AddressMap

    config = SimConfig(seed=101)
    model = get_model("rm2_1").scaled(0.01)
    trace = make_trace(
        "medium", model.num_tables, model.rows, 8, 2,
        model.lookups_per_sample, config=config,
    )
    amap = AddressMap([model.rows] * model.num_tables, model.embedding_dim)
    return trace, amap


def run(workload, csl, order, **kw):
    trace, amap = workload
    hierarchy = build_hierarchy(csl.hierarchy)
    return run_embedding_trace(
        trace, amap, csl.core, hierarchy, loop_order=order, **kw
    )


def test_both_orders_issue_same_work(workload, csl):
    table = run(workload, csl, "table_major")
    sample = run(workload, csl, "sample_major")
    assert table.loads == sample.loads
    assert table.instr_count == sample.instr_count


def test_orders_produce_different_timings(workload, csl):
    table = run(workload, csl, "table_major")
    sample = run(workload, csl, "sample_major")
    # Different interleavings = different cache behaviour.
    assert table.total_cycles != sample.total_cycles


def test_table_major_has_better_intra_table_locality(workload, csl):
    # Table-major keeps one table's hot rows live across the whole batch;
    # sample-major cycles through every table per sample, re-evicting them.
    table = run(workload, csl, "table_major")
    sample = run(workload, csl, "sample_major")
    assert table.l1_hit_rate >= sample.l1_hit_rate * 0.95


def test_bad_order_rejected(workload, csl):
    with pytest.raises(ConfigError):
        run(workload, csl, "diagonal")


def test_orders_deterministic(workload, csl):
    a = run(workload, csl, "sample_major")
    b = run(workload, csl, "sample_major")
    assert a.total_cycles == b.total_cycles


def test_prefetching_works_in_both_orders(workload, csl):
    from repro.engine.embedding_exec import PrefetchPlan

    for order in ("table_major", "sample_major"):
        base = run(workload, csl, order)
        pf = run(workload, csl, order, plan=PrefetchPlan(4, 8))
        assert pf.total_cycles < base.total_cycles, order
