"""Cross-validation: the analytic model vs the trace-driven simulator.

The Fig 6 reuse model and the closed-form embedding-cycles estimator exist
so paper-scale quantities can be computed without simulation.  These tests
pin them to the detailed engine: on the same workload, the two paths must
agree on hit-rate *structure* and land within a calibration band on time.
"""

import pytest

from repro.analysis.breakdown import estimate_embedding_cycles
from repro.analysis.cache_model import analyze_trace_reuse
from repro.engine.embedding_exec import run_embedding_trace
from repro.mem.hierarchy import build_hierarchy
from repro.trace.production import make_trace
from repro.trace.stream import AddressMap


@pytest.fixture(scope="module", params=["medium", "low"])
def pair(request):
    """(analytic report, measured run) on an identical workload."""
    from repro.config import SimConfig
    from repro.cpu.platform import get_platform
    from repro.model.configs import get_model

    config = SimConfig(seed=71)
    spec = get_platform("csl")
    model = get_model("rm2_1").scaled(0.015)
    trace = make_trace(
        request.param, model.num_tables, model.rows, 8, 2,
        model.lookups_per_sample, config=config,
    )
    amap = AddressMap([model.rows] * model.num_tables, model.embedding_dim)
    analytic = analyze_trace_reuse(
        trace, spec.hierarchy, model.embedding_dim, dataset=request.param
    )
    hierarchy = build_hierarchy(spec.hierarchy, hw_prefetch=False)
    measured = run_embedding_trace(trace, amap, spec.core, hierarchy)
    return model, spec, trace, analytic, measured


def test_dram_fractions_correlate(pair):
    model, spec, trace, analytic, measured = pair
    predicted_offchip = analytic.level_fractions["dram"]
    # Row-granularity prediction vs line-granularity measurement (without
    # HW prefetch): same regime, within a factor of ~2.
    assert predicted_offchip == pytest.approx(measured.dram_fraction, rel=0.9)
    assert (predicted_offchip > 0.3) == (measured.dram_fraction > 0.3)


def test_analytic_time_within_band_of_simulated(pair):
    model, spec, trace, analytic, measured = pair
    per_batch = estimate_embedding_cycles(
        model, analytic.level_fractions, spec, trace.batch_size
    )
    analytic_total = per_batch * trace.num_batches
    # The closed form must land within ~2.5x of the cycle-accurate run —
    # tight enough that Fig 1's shares are trustworthy, loose enough to
    # tolerate the fully-associative and no-prefetch simplifications.
    ratio = analytic_total / measured.total_cycles
    assert 0.4 < ratio < 2.5


def test_hotter_is_faster_in_both_paths():
    """Both paths order datasets identically."""
    from repro.config import SimConfig
    from repro.cpu.platform import get_platform
    from repro.model.configs import get_model

    config = SimConfig(seed=72)
    spec = get_platform("csl")
    model = get_model("rm2_1").scaled(0.01)
    amap = AddressMap([model.rows] * model.num_tables, model.embedding_dim)
    analytic_cycles = {}
    measured_cycles = {}
    for dataset in ("high", "low"):
        trace = make_trace(
            dataset, model.num_tables, model.rows, 8, 1,
            model.lookups_per_sample, config=config,
        )
        report = analyze_trace_reuse(trace, spec.hierarchy, model.embedding_dim)
        analytic_cycles[dataset] = estimate_embedding_cycles(
            model, report.level_fractions, spec, 8
        )
        measured_cycles[dataset] = run_embedding_trace(
            trace, amap, spec.core, build_hierarchy(spec.hierarchy)
        ).total_cycles
    assert analytic_cycles["high"] < analytic_cycles["low"]
    assert measured_cycles["high"] < measured_cycles["low"]
