"""Engine edge cases: odd shapes, degenerate samples, policy overrides."""

import dataclasses

import numpy as np
import pytest

from repro.engine.embedding_exec import PrefetchPlan, run_embedding_trace
from repro.mem.hierarchy import build_hierarchy
from repro.trace.dataset import EmbeddingTrace, TableBatch
from repro.trace.stream import AddressMap


def trace_from_indices(rows, per_batch_indices, pooling):
    """Build a 1-table trace from explicit index lists."""
    trace = EmbeddingTrace(rows_per_table=[rows])
    for indices in per_batch_indices:
        offsets = np.concatenate([[0], np.cumsum(pooling)]).astype(np.int64)
        trace.append_batch(
            [TableBatch(offsets=offsets, indices=np.asarray(indices, dtype=np.int64))]
        )
    return trace


def test_zero_lookup_samples_run_cleanly(csl):
    # Sample 1 pools zero rows — the engine must not stumble.
    trace = trace_from_indices(100, [[5, 6, 7]], pooling=[2, 0, 1])
    amap = AddressMap([100], 128)
    hierarchy = build_hierarchy(csl.hierarchy)
    result = run_embedding_trace(trace, amap, csl.core, hierarchy)
    assert result.loads == 3 * amap.row_lines


def test_dim64_rows_load_four_lines(csl):
    trace = trace_from_indices(100, [[1, 2]], pooling=[2])
    amap = AddressMap([100], 64)
    hierarchy = build_hierarchy(csl.hierarchy)
    result = run_embedding_trace(trace, amap, csl.core, hierarchy)
    assert result.loads == 2 * 4


def test_single_lookup_batch(csl):
    trace = trace_from_indices(100, [[42]], pooling=[1])
    amap = AddressMap([100], 128)
    hierarchy = build_hierarchy(csl.hierarchy)
    result = run_embedding_trace(trace, amap, csl.core, hierarchy)
    assert result.loads == 8
    assert result.total_cycles > 0


def test_prefetch_distance_beyond_batch_is_noop(csl):
    # 3 lookups with distance 50: no prefetch ever fires, run still works.
    trace = trace_from_indices(100, [[1, 2, 3]], pooling=[3])
    amap = AddressMap([100], 128)
    hierarchy = build_hierarchy(csl.hierarchy)
    result = run_embedding_trace(
        trace, amap, csl.core, hierarchy, plan=PrefetchPlan(50, 8)
    )
    assert result.prefetches_issued == 0


def test_repeated_row_within_sample_hits_after_first(csl):
    trace = trace_from_indices(1000, [[7, 7, 7, 7]], pooling=[4])
    amap = AddressMap([1000], 128)
    hierarchy = build_hierarchy(csl.hierarchy)
    result = run_embedding_trace(trace, amap, csl.core, hierarchy)
    # First visit misses 8 lines; the other 3 visits hit.
    assert result.l1_hit_rate >= 0.7


def test_l3_policy_override_builds(csl):
    config = dataclasses.replace(csl.hierarchy, policy="plru", l3_policy="lru")
    hierarchy = build_hierarchy(config)
    assert hierarchy.l1.policy_name == "plru"
    assert hierarchy.l3.policy_name == "lru"
    hierarchy.load(5)
    assert hierarchy.resident_level(5) == "l1"


def test_engine_with_random_policy_is_deterministic(csl):
    config = dataclasses.replace(csl.hierarchy, policy="random")
    trace = trace_from_indices(5000, [list(range(0, 4000, 7))], pooling=[572])
    amap = AddressMap([5000], 128)
    a = run_embedding_trace(trace, amap, csl.core, build_hierarchy(config))
    b = run_embedding_trace(trace, amap, csl.core, build_hierarchy(config))
    assert a.total_cycles == b.total_cycles


def test_multiple_tables_interleave_in_execution_order(csl):
    trace = EmbeddingTrace(rows_per_table=[50, 50])
    tb0 = TableBatch(np.array([0, 1]), np.array([3]))
    tb1 = TableBatch(np.array([0, 1]), np.array([3]))
    trace.append_batch([tb0, tb1])
    amap = AddressMap([50, 50], 128)
    hierarchy = build_hierarchy(csl.hierarchy)
    result = run_embedding_trace(trace, amap, csl.core, hierarchy)
    # Same row id in different tables = different addresses: all 16 lines
    # are cold and must come from DRAM (demand or HW-prefetch fetched).
    assert result.loads == 16
    assert hierarchy.dram.accesses >= 16
