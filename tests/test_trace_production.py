"""Production trace synthesis tests."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.trace.production import DATASET_NAMES, make_production_trace, make_trace


def small_trace(dataset, **kwargs):
    defaults = dict(
        num_tables=3,
        rows_per_table=5000,
        batch_size=8,
        num_batches=2,
        lookups_per_sample=10,
        config=SimConfig(seed=5),
    )
    defaults.update(kwargs)
    return make_trace(dataset, **defaults)


def test_all_dataset_names_buildable():
    for dataset in DATASET_NAMES:
        trace = small_trace(dataset)
        assert trace.num_tables == 3
        assert trace.num_batches == 2


def test_unknown_dataset_rejected():
    with pytest.raises(ConfigError):
        small_trace("lukewarm")


def test_one_item_touches_single_row():
    trace = small_trace("one-item")
    for t in range(trace.num_tables):
        assert np.unique(trace.table_indices(t)).size == 1


def test_random_is_nearly_all_unique():
    # 160 draws from 5000 rows: collisions rare.
    trace = small_trace("random")
    assert trace.mean_unique_fraction() > 0.9


def test_hotness_ordering():
    fracs = {
        ds: small_trace(ds, calibration_samples=5000).mean_unique_fraction()
        for ds in ("high", "medium", "low")
    }
    assert fracs["high"] < fracs["medium"] < fracs["low"]


def test_calibration_at_matching_scale_hits_target():
    trace = make_trace(
        "medium",
        num_tables=2,
        rows_per_table=30_000,
        batch_size=32,
        num_batches=10,
        lookups_per_sample=50,
        config=SimConfig(seed=1),
        calibration_samples=32 * 10 * 50,
    )
    assert trace.mean_unique_fraction() == pytest.approx(0.24, abs=0.05)


def test_determinism_for_fixed_seed():
    a = small_trace("low")
    b = small_trace("low")
    assert np.array_equal(a.table_indices(0), b.table_indices(0))


def test_different_seeds_differ():
    a = small_trace("low", config=SimConfig(seed=1))
    b = small_trace("low", config=SimConfig(seed=2))
    assert not np.array_equal(a.table_indices(0), b.table_indices(0))


def test_variable_pooling_varies_lookups():
    trace = small_trace("low", variable_pooling=True, lookups_per_sample=10)
    pooling = trace.table_batch(0, 0).lookups_per_sample()
    assert pooling.min() >= 1
    assert len(set(pooling.tolist() + [10])) > 1  # not all exactly 10


def test_fixed_pooling_when_disabled():
    trace = small_trace("low", variable_pooling=False)
    pooling = trace.table_batch(0, 0).lookups_per_sample()
    assert np.all(pooling == 10)


def test_tables_have_distinct_hot_sets():
    trace = small_trace("high", calibration_samples=2000)
    hot0 = int(np.argmax(np.bincount(trace.table_indices(0))))
    hot1 = int(np.argmax(np.bincount(trace.table_indices(1))))
    # Rank permutations are per-table, so hottest physical rows differ.
    assert hot0 != hot1


def test_make_production_trace_uses_config_geometry():
    config = SimConfig(seed=2, batch_size=4, num_batches=3)
    trace = make_production_trace("low", 2, 1000, config=config, lookups_per_sample=5)
    assert trace.batch_size == 4
    assert trace.num_batches == 3


def test_invalid_shapes_rejected():
    with pytest.raises(ConfigError):
        small_trace("low", num_tables=0)
    with pytest.raises(ConfigError):
        small_trace("low", lookups_per_sample=0)
    with pytest.raises(ConfigError):
        small_trace("low", calibration_samples=0)
