"""CLI runner tests."""

import json
import time

import pytest

from repro.experiments import registry
from repro.experiments.base import ExperimentReport
from repro.experiments.runner import (
    CACHE_DIR,
    _load_cache_entry,
    _write_cache_entry,
    build_parser,
    main,
)


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig12" in out
    assert "table4" in out


def test_run_static_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "RMC2" in out
    assert "finished in" in out


def test_out_directory_written(tmp_path, capsys):
    assert main(["table2", "--out", str(tmp_path)]) == 0
    report = (tmp_path / "table2.txt").read_text()
    assert "rm2_1" in report


def test_overrides_forwarded(capsys):
    # fig5 accepts scale/batch_size/num_batches; tiny values keep it fast.
    assert main(["fig5", "--scale", "0.01", "--batch-size", "8",
                 "--num-batches", "1"]) == 0
    out = capsys.readouterr().out
    assert "unique_fraction" in out


def test_seed_flag(capsys):
    assert main(["table1", "--seed", "5"]) == 0


def test_unknown_experiment_raises():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        main(["fig99"])


def test_parser_flags_exist():
    parser = build_parser()
    args = parser.parse_args(["fig4", "--scale", "0.5", "--num-cores", "8"])
    assert args.experiment == "fig4"
    assert args.scale == 0.5
    assert args.num_cores == 8


def test_irrelevant_overrides_not_forwarded(capsys):
    # table1's runner takes no scale; passing one must not crash.
    assert main(["table1", "--scale", "0.5"]) == 0


def test_new_parser_flags():
    args = build_parser().parse_args(
        ["fig4", "--timeout", "30", "--retries", "2", "--num-requests", "500"]
    )
    assert args.timeout == 30.0
    assert args.retries == 2
    assert args.num_requests == 500


def test_engine_and_mode_flags():
    args = build_parser().parse_args(
        ["fig12", "--engine", "reference", "--mode", "analytic"]
    )
    assert args.engine == "reference"
    assert args.model_mode == "analytic"


class TestResultCache:
    def test_write_is_atomic_and_readable(self, tmp_path):
        path = tmp_path / "entry.json"
        _write_cache_entry(path, "table1", 1.5, {"experiment_id": "table1"})
        # No temp droppings left behind.
        assert list(tmp_path.iterdir()) == [path]
        elapsed, report = _load_cache_entry(path)
        assert elapsed == 1.5
        assert report == {"experiment_id": "table1"}

    @pytest.mark.parametrize(
        "payload",
        [
            "",  # truncated
            "{not json",  # garbage
            '{"elapsed": 1.0}',  # missing report
            '{"report": "not-a-dict"}',  # wrong type
        ],
    )
    def test_corrupt_entry_is_miss_and_removed(self, tmp_path, payload):
        path = tmp_path / "entry.json"
        path.write_text(payload)
        assert _load_cache_entry(path) is None
        assert not path.exists()

    def test_corrupt_cache_regenerated_end_to_end(
        self, tmp_path, monkeypatch, capsys
    ):
        monkeypatch.chdir(tmp_path)
        assert main(["table1", "--cache"]) == 0
        entries = list((tmp_path / CACHE_DIR).glob("*.json"))
        assert len(entries) == 1
        # A cached re-run serves the memo.
        assert main(["table1", "--cache"]) == 0
        assert "[table1 cached]" in capsys.readouterr().out
        # Corrupt the entry: the next run treats it as a miss and rebuilds.
        entries[0].write_text("{truncated")
        assert main(["table1", "--cache"]) == 0
        out = capsys.readouterr().out
        assert "cached" not in out
        rebuilt = list((tmp_path / CACHE_DIR).glob("*.json"))
        assert len(rebuilt) == 1
        assert isinstance(json.loads(rebuilt[0].read_text())["report"], dict)

    def test_key_distinguishes_engine_and_mode(self):
        # Engine/mode switches must never serve each other's memos: the
        # key hashes every SimConfig field, so each combination is its
        # own cache slot.
        from repro.config import SimConfig
        from repro.experiments.runner import _cache_key

        keys = {
            _cache_key("fig12", SimConfig(engine=eng, mode=mode), {})
            for eng in ("fast", "reference")
            for mode in ("sim", "analytic")
        }
        assert len(keys) == 4
        # Overrides (the forwarded batching knobs) are part of the key too.
        base = _cache_key("fig12", SimConfig(), {})
        assert _cache_key("fig12", SimConfig(), {"batch_size": 8}) != base


_RESILIENCE_SMALL = [
    "resilience", "--scale", "0.01", "--num-requests", "150",
    "--batch-size", "8", "--num-batches", "1", "--num-cores", "4",
]


class TestRequestLogFlag:
    def test_request_log_written_and_nonempty(self, tmp_path, capsys):
        log = tmp_path / "req.jsonl"
        assert main(_RESILIENCE_SMALL + ["--request-log", str(log)]) == 0
        out = capsys.readouterr().out
        assert "[request-log:" in out
        lines = [json.loads(l) for l in log.read_text().splitlines()]
        assert lines[0]["kind"] == "request_log_meta"
        assert lines[0]["requests"] == len(lines) - 1 > 0
        labels = {rec["label"] for rec in lines[1:]}
        assert "none:static" in labels  # scenario:mode labels from resilience

    def test_request_logged_run_bypasses_cache(
        self, tmp_path, monkeypatch, capsys
    ):
        """ISSUE acceptance: a cached result is never served with a stale
        or empty request log."""
        monkeypatch.chdir(tmp_path)
        assert main(_RESILIENCE_SMALL + ["--cache"]) == 0
        assert list((tmp_path / CACHE_DIR).glob("*.json"))
        capsys.readouterr()
        log = tmp_path / "req.jsonl"
        assert main(
            _RESILIENCE_SMALL + ["--cache", "--request-log", str(log)]
        ) == 0
        out = capsys.readouterr().out
        assert "cached" not in out  # ran fresh despite a warm cache
        assert json.loads(log.read_text().splitlines()[0])["requests"] > 0

    def test_request_log_deterministic_across_jobs(self, tmp_path, capsys):
        """Same seed + fault plan => byte-identical export at any --jobs."""
        exports = []
        for jobs in ("1", "3"):
            log = tmp_path / f"req{jobs}.jsonl"
            assert main(
                _RESILIENCE_SMALL
                + ["--jobs", jobs, "--request-log", str(log)]
            ) == 0
            exports.append(log.read_bytes())
        assert exports[0] == exports[1]


def test_bench_record_flag_appends_wall_records(tmp_path, capsys):
    from repro.obs.regress import load_history

    history = tmp_path / "hist.jsonl"
    assert main(["table1", "--bench-record", str(history)]) == 0
    assert "[bench-record: 1 experiment(s)" in capsys.readouterr().out
    records = load_history(history)
    assert len(records) == 1
    bench = records[0]["benchmarks"]["experiment.table1.wall_s"]
    assert bench["kind"] == "wall"
    assert bench["direction"] == "lower"
    assert bench["value"] >= 0.0


def _flaky_factory(fail_times):
    calls = {"n": 0}

    def run(config=None, **overrides):
        calls["n"] += 1
        if calls["n"] <= fail_times:
            raise RuntimeError(f"transient failure {calls['n']}")
        return ExperimentReport(experiment_id="flaky", title="flaky test stub")

    return run, calls


class TestRetriesAndTimeout:
    def test_retries_recover_transient_failure(self, monkeypatch, capsys):
        run, calls = _flaky_factory(fail_times=1)
        monkeypatch.setitem(registry._REGISTRY, "flaky", run)
        assert main(["flaky", "--retries", "2"]) == 0
        assert calls["n"] == 2
        assert "retrying 1 failed experiment(s)" in capsys.readouterr().err

    def test_retries_exhausted_reports_failure(self, monkeypatch, capsys):
        run, calls = _flaky_factory(fail_times=10)
        monkeypatch.setitem(registry._REGISTRY, "flaky", run)
        assert main(["flaky", "--retries", "1"]) == 1
        assert calls["n"] == 2
        assert "RuntimeError" in capsys.readouterr().err

    def test_single_target_without_retries_raises_inline(self, monkeypatch):
        run, _ = _flaky_factory(fail_times=10)
        monkeypatch.setitem(registry._REGISTRY, "flaky", run)
        with pytest.raises(RuntimeError):
            main(["flaky"])

    def test_timeout_abandons_stuck_experiment(self, monkeypatch, capsys):
        def stuck(config=None, **overrides):
            time.sleep(60.0)
            return ExperimentReport(experiment_id="stuck", title="never")

        monkeypatch.setitem(registry._REGISTRY, "stuck", stuck)
        start = time.time()
        # The fork pool inherits the monkeypatched registry.
        assert main(["stuck", "--timeout", "1"]) == 1
        assert time.time() - start < 30.0
        assert "exceeded --timeout" in capsys.readouterr().err
