"""CLI runner tests."""

import pytest

from repro.experiments.runner import build_parser, main


def test_list_command(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "fig12" in out
    assert "table4" in out


def test_run_static_experiment(capsys):
    assert main(["table1"]) == 0
    out = capsys.readouterr().out
    assert "RMC2" in out
    assert "finished in" in out


def test_out_directory_written(tmp_path, capsys):
    assert main(["table2", "--out", str(tmp_path)]) == 0
    report = (tmp_path / "table2.txt").read_text()
    assert "rm2_1" in report


def test_overrides_forwarded(capsys):
    # fig5 accepts scale/batch_size/num_batches; tiny values keep it fast.
    assert main(["fig5", "--scale", "0.01", "--batch-size", "8",
                 "--num-batches", "1"]) == 0
    out = capsys.readouterr().out
    assert "unique_fraction" in out


def test_seed_flag(capsys):
    assert main(["table1", "--seed", "5"]) == 0


def test_unknown_experiment_raises():
    from repro.errors import ConfigError

    with pytest.raises(ConfigError):
        main(["fig99"])


def test_parser_flags_exist():
    parser = build_parser()
    args = parser.parse_args(["fig4", "--scale", "0.5", "--num-cores", "8"])
    assert args.experiment == "fig4"
    assert args.scale == 0.5
    assert args.num_cores == 8


def test_irrelevant_overrides_not_forwarded(capsys):
    # table1's runner takes no scale; passing one must not crash.
    assert main(["table1", "--scale", "0.5"]) == 0
