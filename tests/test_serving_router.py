"""Router unit tests plus cluster-level conservation properties."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.serving.cluster import (
    CLUSTER_OUTCOME_NAMES,
    ClusterConfig,
    ClusterSim,
)
from repro.serving.faults import ClusterFaultPlan, NodeCrash, NodeSlow
from repro.serving.router import (
    HealthPolicy,
    HealthTracker,
    HedgePolicy,
    LatencyWindow,
    Router,
)
from repro.serving.workload import poisson_arrivals


class TestLatencyWindow:
    def test_matches_numpy_percentile(self):
        window = LatencyWindow(64)
        values = [3.0, 1.0, 4.0, 1.5, 9.0, 2.6, 5.3]
        for v in values:
            window.observe(v)
        for q in (50.0, 90.0, 95.0, 99.0):
            assert window.quantile(q) == pytest.approx(
                float(np.percentile(values, q))
            )

    def test_empty_window_returns_none(self):
        assert LatencyWindow(8).quantile(95.0) is None

    def test_ring_overwrites_oldest(self):
        window = LatencyWindow(3)
        for v in (100.0, 1.0, 2.0, 3.0):  # 100.0 must be evicted
            window.observe(v)
        assert window.quantile(100.0) == pytest.approx(3.0)

    def test_validation(self):
        with pytest.raises(ConfigError):
            LatencyWindow(0)
        with pytest.raises(ConfigError):
            HedgePolicy(quantile=0.0)
        with pytest.raises(ConfigError):
            HedgePolicy(min_ms=0.0)
        with pytest.raises(ConfigError):
            HealthPolicy(eject_after=0)


class TestHealthTracker:
    def test_eject_after_consecutive_failures(self):
        health = HealthTracker(2, HealthPolicy(eject_after=3))
        assert not health.record_failure(0)
        assert not health.record_failure(0)
        assert health.record_failure(0)  # third strike ejects
        assert health.is_ejected(0)
        assert health.ejections == 1
        assert not health.record_failure(0)  # already out, no double-count

    def test_success_resets_the_count(self):
        health = HealthTracker(1, HealthPolicy(eject_after=2))
        health.record_failure(0)
        health.record_success(0)
        assert not health.record_failure(0)  # count restarted
        assert not health.is_ejected(0)

    def test_probe_readmits(self):
        health = HealthTracker(1, HealthPolicy(eject_after=1))
        health.record_failure(0)
        assert health.is_ejected(0)
        assert not health.record_probe(0, reachable=False)
        assert health.record_probe(0, reachable=True)
        assert not health.is_ejected(0)
        assert health.probes == 2


class TestRouter:
    def test_round_robin_rotates(self):
        health = HealthTracker(3, HealthPolicy())
        router = Router("round_robin", health)
        picks = [router.choose(0, [0, 1, 2], set(), 0.0) for _ in range(4)]
        assert picks == [0, 1, 2, 0]

    def test_never_returns_tried_or_ejected(self):
        health = HealthTracker(3, HealthPolicy(eject_after=1))
        health.record_failure(2)
        router = Router("round_robin", health)
        assert router.choose(0, [0, 1, 2], {0}, 0.0) == 1
        assert router.choose(0, [1, 2], {1}, 0.0) is None  # 2 is ejected
        assert router.choose(0, [2], set(), 0.0) is None

    def test_least_loaded_picks_minimum_with_id_tiebreak(self):
        health = HealthTracker(3, HealthPolicy())
        loads = {0: 5.0, 1: 2.0, 2: 2.0}
        router = Router(
            "least_loaded", health, load_of=lambda n, now: loads[n]
        )
        assert router.choose(0, [0, 1, 2], set(), 0.0) == 1  # tie -> lower id
        assert router.choose(0, [0, 1, 2], {1}, 0.0) == 2

    def test_validation(self):
        health = HealthTracker(2, HealthPolicy())
        with pytest.raises(ConfigError):
            Router("magic", health)
        with pytest.raises(ConfigError):
            Router("least_loaded", health)  # needs a load estimator


def _run(arrivals, **kwargs):
    defaults = dict(
        num_nodes=4, cores_per_node=2, mean_service_ms=1.0, num_shards=8,
        replication=2, gather_width=2, hop_ms=0.05, call_timeout_ms=12.0,
        deadline_ms=50.0, seed=13,
    )
    defaults.update(kwargs)
    return ClusterSim(ClusterConfig(**defaults)).run(arrivals)


class TestRequestConservation:
    """Every request resolves to exactly one outcome; hedges deduplicate."""

    def _chaos_plan(self, horizon):
        return ClusterFaultPlan(
            [
                NodeCrash(1, 0.25 * horizon, 0.6 * horizon),
                NodeSlow(0, 0.3 * horizon, 0.8 * horizon, factor=6.0),
            ],
            seed=13,
        )

    def test_every_request_has_exactly_one_outcome(self):
        arrivals = poisson_arrivals(
            0.4, 900, SimConfig(seed=3).rng("t:cons")
        )
        res = _run(
            arrivals,
            faults=self._chaos_plan(float(arrivals[-1])),
            hedge=HedgePolicy(quantile=90.0, min_ms=2.0, window=64),
            max_outstanding=60,
        )
        # outcomes has one entry per offered request and every entry is a
        # valid terminal state (the -1 sentinel never survives the run).
        assert res.outcomes.size == arrivals.size
        assert np.all(res.outcomes >= 0)
        assert np.all(res.outcomes < len(CLUSTER_OUTCOME_NAMES))
        counts = res.outcome_counts
        assert sum(counts.values()) == arrivals.size
        # Completed requests (and only they) have finite quality latency.
        finite = np.isfinite(res.request_latency_ms)
        served = counts["completed"] + counts["degraded"]
        assert int(finite.sum()) == served

    def test_hedges_resolve_exactly_once(self):
        arrivals = poisson_arrivals(
            0.4, 900, SimConfig(seed=3).rng("t:cons")
        )
        res = _run(
            arrivals,
            faults=self._chaos_plan(float(arrivals[-1])),
            hedge=HedgePolicy(quantile=90.0, min_ms=2.0, window=64),
        )
        assert res.hedges_issued > 0
        # First completion wins; every other hedge attempt terminates as
        # wasted or failed — never delivered twice, never leaked.
        assert (
            res.hedges_won + res.hedges_wasted + res.hedges_failed
            == res.hedges_issued
        )

    def test_shed_requests_never_reach_nodes(self):
        arrivals = poisson_arrivals(
            0.05, 400, SimConfig(seed=3).rng("t:shed")
        )
        res = _run(arrivals, max_outstanding=8)
        counts = res.outcome_counts
        assert counts["shed"] > 0
        assert np.all(np.isinf(res.request_latency_ms[res.outcomes == 2]))


class TestJobsDeterminism:
    def test_cluster_rows_identical_across_jobs(self, tmp_path, capsys):
        """The cluster experiment exports byte-identical request logs
        whether it runs in-process or in a forked worker pool."""
        from repro.experiments.runner import main

        argv = [
            "cluster_resilience", "--scale", "0.01", "--num-requests", "200",
            "--batch-size", "8", "--num-batches", "1", "--num-nodes", "3",
            "--replication", "2",
        ]
        exports = []
        for jobs in ("1", "3"):
            log = tmp_path / f"req{jobs}.jsonl"
            assert main(
                argv + ["--jobs", jobs, "--request-log", str(log)]
            ) == 0
            exports.append(log.read_bytes())
        assert exports[0] == exports[1]
