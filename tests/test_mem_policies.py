"""Replacement-policy tests."""

import pytest

from repro.errors import ConfigError
from repro.mem.policies import (
    FIFOPolicy,
    LRUPolicy,
    PLRUTreePolicy,
    POLICY_NAMES,
    RandomPolicy,
    make_policy,
)


class TestLRU:
    def test_fills_before_evicting(self):
        lru = LRUPolicy(2)
        assert lru.insert(1) is None
        assert lru.insert(2) is None
        assert lru.insert(3) == 1  # 1 was least recent

    def test_hit_refreshes_recency(self):
        lru = LRUPolicy(2)
        lru.insert(1)
        lru.insert(2)
        assert lru.lookup(1)
        assert lru.insert(3) == 2  # 2 became LRU after 1's hit

    def test_miss_returns_false(self):
        lru = LRUPolicy(2)
        assert not lru.lookup(99)

    def test_reinsert_resident_tag_evicts_nothing(self):
        lru = LRUPolicy(2)
        lru.insert(1)
        lru.insert(2)
        assert lru.insert(1) is None
        assert sorted(lru.resident_tags()) == [1, 2]

    def test_invalidate(self):
        lru = LRUPolicy(2)
        lru.insert(1)
        assert lru.invalidate(1)
        assert not lru.invalidate(1)
        assert not lru.peek(1)

    def test_peek_does_not_change_order(self):
        lru = LRUPolicy(2)
        lru.insert(1)
        lru.insert(2)
        assert lru.peek(1)
        assert lru.insert(3) == 1  # peek did not refresh 1


class TestFIFO:
    def test_evicts_in_insertion_order_despite_hits(self):
        fifo = FIFOPolicy(2)
        fifo.insert(1)
        fifo.insert(2)
        assert fifo.lookup(1)  # would save 1 under LRU
        assert fifo.insert(3) == 1  # FIFO still evicts 1

    def test_len_tracks_occupancy(self):
        fifo = FIFOPolicy(4)
        for t in range(3):
            fifo.insert(t)
        assert len(fifo) == 3


class TestRandom:
    def test_deterministic_for_fixed_seed(self):
        a = RandomPolicy(2, seed=9)
        b = RandomPolicy(2, seed=9)
        evictions_a = [a.insert(t) for t in range(10)]
        evictions_b = [b.insert(t) for t in range(10)]
        assert evictions_a == evictions_b

    def test_never_exceeds_ways(self):
        pol = RandomPolicy(4, seed=0)
        for t in range(100):
            pol.insert(t)
        assert len(pol.resident_tags()) == 4


class TestPLRU:
    def test_requires_power_of_two_ways(self):
        with pytest.raises(ConfigError):
            PLRUTreePolicy(3)

    def test_tracks_residency(self):
        plru = PLRUTreePolicy(4)
        for t in range(4):
            assert plru.insert(t) is None
        assert all(plru.lookup(t) for t in range(4))

    def test_never_evicts_most_recent_way(self):
        # Tree-PLRU only approximates LRU: the victim is whatever the tree
        # bits point away from, but it is never the most recently used way.
        plru = PLRUTreePolicy(4)
        for t in range(4):
            plru.insert(t)
        plru.lookup(0)
        plru.lookup(1)
        plru.lookup(3)
        evicted = plru.insert(4)
        assert evicted is not None
        assert evicted != 3  # 3 was touched last

    def test_plru_approximation_differs_from_true_lru(self):
        # The classical PLRU artifact: after touching 0, 1, 3 the root bit
        # points left (3 was last), so the victim comes from {0, 1} even
        # though 2 is the globally least-recent way.
        plru = PLRUTreePolicy(4)
        for t in range(4):
            plru.insert(t)
        plru.lookup(0)
        plru.lookup(1)
        plru.lookup(3)
        assert plru.insert(4) == 0

    def test_occupancy_bounded(self):
        plru = PLRUTreePolicy(8)
        for t in range(50):
            plru.insert(t)
        assert len(plru.resident_tags()) == 8

    def test_invalidate_frees_slot(self):
        plru = PLRUTreePolicy(2)
        plru.insert(1)
        plru.insert(2)
        assert plru.invalidate(1)
        assert plru.insert(3) is None  # reused the freed way


def test_make_policy_covers_all_names():
    for name in POLICY_NAMES:
        policy = make_policy(name, 4)
        policy.insert(1)
        assert policy.peek(1)


def test_make_policy_rejects_unknown():
    with pytest.raises(ConfigError):
        make_policy("mru", 4)


def test_zero_ways_rejected():
    with pytest.raises(ConfigError):
        LRUPolicy(0)
