"""DRAM model tests."""

import pytest

from repro.errors import ConfigError
from repro.mem.dram import DRAMConfig, DRAMModel, MAX_UTILIZATION


def test_default_config_valid():
    model = DRAMModel()
    assert model.config.base_latency_cycles > 0


def test_row_buffer_hit_is_cheaper():
    model = DRAMModel()
    first = model.access(0)
    second = model.access(1)  # adjacent line, same 8KiB row
    assert second < first
    assert model.row_hits == 1


def test_row_buffer_miss_after_conflict():
    config = DRAMConfig(banks=1)
    model = DRAMModel(config)
    model.access(0)
    far = 8192 // 64  # next row in the single bank
    cost = model.access(far)
    assert cost == pytest.approx(config.base_latency_cycles)


def test_bytes_and_access_counters():
    model = DRAMModel()
    for line in range(10):
        model.access(line * 1000)
    assert model.accesses == 10
    assert model.bytes_transferred == 640


def test_queueing_factor_monotone_in_utilization():
    model = DRAMModel()
    factors = []
    for rho in (0.0, 0.3, 0.6, 0.9):
        model.set_utilization(rho)
        factors.append(model.queueing_factor())
    assert factors == sorted(factors)
    assert factors[0] == pytest.approx(1.0)


def test_queueing_mild_at_half_load():
    # Fig 8: 24 cores at ~47% channel load cost only ~14-20% extra time.
    model = DRAMModel()
    model.set_utilization(0.47)
    assert model.queueing_factor() < 1.35


def test_queueing_sharp_near_saturation():
    model = DRAMModel()
    model.set_utilization(0.95)
    assert model.queueing_factor() > 3.0


def test_utilization_capped():
    model = DRAMModel()
    model.set_utilization(2.0)
    assert model.utilization == MAX_UTILIZATION


def test_negative_utilization_rejected():
    with pytest.raises(ConfigError):
        DRAMModel().set_utilization(-0.1)


def test_loaded_latency_scales_access_cost():
    model = DRAMModel()
    base = model.access(0)
    model.reset()
    model.set_utilization(0.9)
    loaded = model.access(0)
    assert loaded > base


def test_bandwidth_report():
    model = DRAMModel()
    for line in range(100):
        model.access(line * 1000)
    gb_s = model.bandwidth_gb_s(elapsed_cycles=2.4e6, frequency_hz=2.4e9)
    # 6400 bytes over 1 ms = 6.4 MB/s.
    assert gb_s == pytest.approx(6.4e-3, rel=1e-6)


def test_reset_clears_state():
    model = DRAMModel()
    model.access(0)
    model.set_utilization(0.5)
    model.reset()
    assert model.accesses == 0
    assert model.utilization == 0.0


def test_invalid_configs():
    with pytest.raises(ConfigError):
        DRAMConfig(base_latency_cycles=0)
    with pytest.raises(ConfigError):
        DRAMConfig(row_hit_latency_cycles=500.0, base_latency_cycles=100.0)
