"""Memory-hierarchy walk tests."""

import pytest

from repro.errors import ConfigError
from repro.mem.cache import Cache
from repro.mem.dram import DRAMModel
from repro.mem.hierarchy import HierarchyConfig, build_hierarchy


def test_default_config_matches_table3():
    config = HierarchyConfig()
    assert config.l1_size == 32 * 1024
    assert config.l2_size == 1024 * 1024
    assert config.l3_size == int(35.75 * 1024 * 1024)
    assert config.l1_latency == 5.0  # Table 3's L1D latency


def test_config_requires_increasing_sizes():
    with pytest.raises(ConfigError):
        HierarchyConfig(l1_size=2 * 1024 * 1024)


def test_first_load_goes_to_dram(small_hierarchy):
    result = small_hierarchy.load(123)
    assert result.level == "dram"
    assert result.was_off_chip
    assert result.latency > small_hierarchy.config.l3_latency


def test_second_load_hits_l1(small_hierarchy):
    small_hierarchy.load(123)
    result = small_hierarchy.load(123)
    assert result.level == "l1"
    assert result.latency == small_hierarchy.config.l1_latency


def test_l2_hit_after_l1_eviction(small_hierarchy):
    h = small_hierarchy
    h.load(0)
    # Thrash L1 (16 lines) without exceeding L2 (128 lines).
    sets = h.l1.num_sets
    for k in range(1, h.l1.ways + 2):
        h.load(0 + k * sets)
    result = h.load(0)
    assert result.level == "l2"
    h_stats = h.stats
    assert h_stats.level_hits["l2"] >= 1


def test_fills_propagate_to_all_levels(small_hierarchy):
    small_hierarchy.load(77)
    assert small_hierarchy.l1.contains(77)
    assert small_hierarchy.l2.contains(77)
    assert small_hierarchy.l3.contains(77)
    assert small_hierarchy.resident_level(77) == "l1"


def test_prefetch_to_l1_makes_demand_hit(small_hierarchy):
    result = small_hierarchy.prefetch(55, target_level="l1")
    assert result.prefetch
    assert small_hierarchy.load(55).level == "l1"


def test_prefetch_to_l2_does_not_fill_l1(small_hierarchy):
    small_hierarchy.prefetch(55, target_level="l2")
    assert not small_hierarchy.l1.contains(55)
    assert small_hierarchy.l2.contains(55)


def test_prefetch_to_l3_only(small_hierarchy):
    small_hierarchy.prefetch(55, target_level="l3")
    assert small_hierarchy.resident_level(55) == "l3"


def test_prefetch_rejects_bad_level(small_hierarchy):
    with pytest.raises(ConfigError):
        small_hierarchy.prefetch(1, target_level="dram")


def test_stats_track_dram_bytes(small_hierarchy):
    small_hierarchy.load(1)
    small_hierarchy.load(2)
    assert small_hierarchy.stats.dram_bytes == 128


def test_avg_load_latency(small_hierarchy):
    small_hierarchy.load(9)   # dram
    small_hierarchy.load(9)   # l1
    avg = small_hierarchy.stats.avg_load_latency
    assert small_hierarchy.config.l1_latency < avg


def test_hw_prefetch_candidates_empty_when_disabled():
    config = HierarchyConfig(
        l1_size=1024, l1_ways=2, l2_size=8192, l2_ways=4, l3_size=65536, l3_ways=4
    )
    h = build_hierarchy(config, hw_prefetch=False)
    h.load(10)
    assert h.hw_prefetch_candidates(10, l1_hit=False) == []


def test_hw_prefetch_candidates_on_miss(small_hierarchy):
    small_hierarchy.load(10)
    candidates = small_hierarchy.hw_prefetch_candidates(10, l1_hit=False)
    lines = [line for line, _ in candidates]
    assert 11 in lines  # next-line candidate
    targets = {target for _, target in candidates}
    assert targets <= {"l1", "l2"}


def test_hw_candidates_filter_resident_lines(small_hierarchy):
    small_hierarchy.load(11)  # 11 now in L1
    small_hierarchy.load(10)
    candidates = small_hierarchy.hw_prefetch_candidates(10, l1_hit=False)
    assert all(line != 11 or target != "l1" for line, target in candidates)


def test_shared_l3_between_two_hierarchies():
    config = HierarchyConfig(
        l1_size=1024, l1_ways=2, l2_size=8192, l2_ways=4, l3_size=65536, l3_ways=4
    )
    l3 = Cache("l3", config.l3_size, config.l3_ways)
    dram = DRAMModel(config.dram)
    core_a = build_hierarchy(config, shared_l3=l3, shared_dram=dram)
    core_b = build_hierarchy(config, shared_l3=l3, shared_dram=dram)
    core_a.load(500)
    # Constructive sharing: B misses its private levels but hits shared L3.
    result = core_b.load(500)
    assert result.level == "l3"


def test_latency_of_level(small_hierarchy):
    config = small_hierarchy.config
    assert small_hierarchy.latency_of_level("l1") == config.l1_latency
    assert small_hierarchy.latency_of_level("dram") > config.l3_latency
    with pytest.raises(ConfigError):
        small_hierarchy.latency_of_level("l9")


def test_flush_keeps_shared_l3(small_hierarchy):
    small_hierarchy.load(123)
    small_hierarchy.flush()
    assert small_hierarchy.resident_level(123) == "l3"


def test_hierarchy_stats_merge_commutative():
    from repro.mem.stats import HierarchyStats

    a = HierarchyStats(
        level_hits={"dram": 1, "l1": 3},
        total_latency_cycles=50.0,
        demand_accesses=4,
        prefetch_requests=2,
        dram_bytes=64,
    )
    b = HierarchyStats(
        level_hits={"l2": 5, "l1": 1},
        total_latency_cycles=10.0,
        demand_accesses=6,
        prefetch_requests=0,
        dram_bytes=128,
    )
    ab = a.merge(b)
    ba = b.merge(a)
    assert ab == ba  # dataclass eq: every field, including level_hits
    # Key order is canonicalized, so even iteration order is symmetric.
    assert list(ab.level_hits) == list(ba.level_hits)
    assert ab.level_hits == {"l1": 4, "l2": 5, "dram": 1}
    assert ab.total_latency_cycles == 60.0
    assert ab.demand_accesses == 10
    assert ab.prefetch_requests == 2
    assert ab.dram_bytes == 192


def test_hierarchy_stats_reset():
    from repro.mem.stats import HierarchyStats

    stats = HierarchyStats()
    stats.record("l1", 5.0)
    stats.record("dram", 300.0)
    stats.prefetch_requests = 3
    stats.dram_bytes = 64
    stats.reset()
    assert stats == HierarchyStats()
    assert stats.avg_load_latency == 0.0
