"""Feature-interaction tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model.interaction import (
    dot_interaction,
    interaction_flops,
    interaction_output_dim,
)


def test_output_dim_formula():
    # 2 embeddings + bottom = 3 vectors -> C(3,2)=3 pairs + dim passthrough.
    assert interaction_output_dim(2, 16) == 16 + 3
    # rm2_1: 60 tables, dim 128.
    assert interaction_output_dim(60, 128) == 128 + 61 * 60 // 2


def test_output_dim_validation():
    with pytest.raises(ConfigError):
        interaction_output_dim(-1, 8)
    with pytest.raises(ConfigError):
        interaction_output_dim(2, 0)


def test_flops_positive_and_quadratic():
    f1 = interaction_flops(4, 10, 64)
    f2 = interaction_flops(4, 20, 64)
    assert f2 > 3 * f1  # ~quadratic in the table count


def test_interaction_shape(rng):
    bottom = rng.normal(size=(5, 16)).astype(np.float32)
    embs = [rng.normal(size=(5, 16)).astype(np.float32) for _ in range(3)]
    out = dot_interaction(bottom, embs)
    assert out.shape == (5, interaction_output_dim(3, 16))


def test_passthrough_of_bottom_output(rng):
    bottom = rng.normal(size=(2, 8)).astype(np.float32)
    out = dot_interaction(bottom, [np.zeros((2, 8), dtype=np.float32)])
    assert np.allclose(out[:, :8], bottom)


def test_pairwise_dots_match_manual(rng):
    bottom = rng.normal(size=(1, 4)).astype(np.float32)
    emb = rng.normal(size=(1, 4)).astype(np.float32)
    out = dot_interaction(bottom, [emb])
    expected_dot = float(bottom[0] @ emb[0])
    assert out[0, 4] == pytest.approx(expected_dot, rel=1e-5)


def test_three_vectors_have_three_pairs(rng):
    bottom = rng.normal(size=(1, 4)).astype(np.float32)
    e1 = rng.normal(size=(1, 4)).astype(np.float32)
    e2 = rng.normal(size=(1, 4)).astype(np.float32)
    out = dot_interaction(bottom, [e1, e2])
    pairs = out[0, 4:]
    expected = sorted(
        [float(e1[0] @ bottom[0]), float(e2[0] @ bottom[0]), float(e2[0] @ e1[0])]
    )
    assert sorted(pairs.tolist()) == pytest.approx(expected, rel=1e-5)


def test_shape_mismatch_rejected(rng):
    bottom = rng.normal(size=(2, 8)).astype(np.float32)
    with pytest.raises(ConfigError):
        dot_interaction(bottom, [np.zeros((2, 4), dtype=np.float32)])
    with pytest.raises(ConfigError):
        dot_interaction(np.zeros(8), [])
