"""Dense layer tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.model.layers import MLP, Linear, relu


def test_relu():
    x = np.array([-1.0, 0.0, 2.0])
    assert list(relu(x)) == [0.0, 0.0, 2.0]


class TestLinear:
    def test_shapes(self, rng):
        layer = Linear(8, 4, rng=rng)
        out = layer(np.ones((3, 8), dtype=np.float32))
        assert out.shape == (3, 4)
        assert out.dtype == np.float32

    def test_matches_manual_matmul(self, rng):
        layer = Linear(5, 2, rng=rng)
        x = rng.normal(size=(4, 5)).astype(np.float32)
        expected = x @ layer.weight + layer.bias
        assert np.allclose(layer(x), expected)

    def test_rejects_wrong_width(self, rng):
        layer = Linear(5, 2, rng=rng)
        with pytest.raises(ConfigError):
            layer(np.ones((4, 6), dtype=np.float32))

    def test_flops(self):
        layer = Linear(10, 20)
        assert layer.flops(batch_size=3) == 2 * 3 * 10 * 20

    def test_weight_bytes(self):
        layer = Linear(10, 20)
        assert layer.weight_bytes == (10 * 20 + 20) * 4

    def test_validation(self):
        with pytest.raises(ConfigError):
            Linear(0, 4)


class TestMLP:
    def test_table2_notation(self, rng):
        # "Bottom-MLP 256-128-128": widths are outputs of each layer.
        mlp = MLP(256, (256, 128, 128), rng=rng)
        out = mlp(np.ones((2, 256), dtype=np.float32))
        assert out.shape == (2, 128)
        assert mlp.out_features == 128

    def test_relu_applied_between_layers(self, rng):
        mlp = MLP(4, (4, 4), rng=rng)
        out = mlp(rng.normal(size=(10, 4)).astype(np.float32))
        assert np.all(out >= 0)  # final_relu=True by default

    def test_no_final_relu_for_top(self, rng):
        mlp = MLP(4, (4, 1), rng=rng, final_relu=False)
        outs = [
            float(mlp(rng.normal(size=(1, 4)).astype(np.float32))[0, 0])
            for _ in range(20)
        ]
        assert min(outs) < 0  # logits can be negative

    def test_flops_sum_layers(self):
        mlp = MLP(8, (4, 2))
        assert mlp.flops(5) == 2 * 5 * (8 * 4 + 4 * 2)

    def test_weight_bytes_small_for_paper_models(self):
        # Section 4.4: bottom MLPs "only require a few MBs".
        bottom = MLP(256, (2048, 1024, 256, 128))
        assert bottom.weight_bytes < 16 * 1024 * 1024

    def test_empty_widths_rejected(self):
        with pytest.raises(ConfigError):
            MLP(8, ())

    def test_deterministic_given_rng(self):
        a = MLP(4, (4,), rng=np.random.default_rng(3))
        b = MLP(4, (4,), rng=np.random.default_rng(3))
        assert np.array_equal(a.layers[0].weight, b.layers[0].weight)
