"""Critical-path observatory experiment tests: the ISSUE acceptance bar."""

import json

import pytest

from repro.config import SimConfig
from repro.experiments.critpath_observatory import GATED_KNOBS
from repro.experiments.critpath_observatory import run as run_observatory
from repro.experiments.registry import EXPERIMENT_IDS
from repro.experiments.runner import main
from repro.obs.schema import validate_def

SCHEMA = json.loads(open("tools/trace_schema.json").read())

#: Small-but-meaningful smoke configuration (seconds, not minutes).
_SMALL = dict(num_requests=1500)


@pytest.fixture(scope="module")
def report(tmp_path_factory):
    path = tmp_path_factory.mktemp("critpath") / "critpath.jsonl"
    rep = run_observatory(
        config=SimConfig(seed=7), critpath_log=str(path), **_SMALL
    )
    return rep, path


class TestAcceptance:
    """The PR's acceptance bar, locked."""

    def test_registered(self):
        assert "critpath_observatory" in EXPERIMENT_IDS

    def test_conservation_exact_in_both_scenarios(self, report):
        rep, _ = report
        rows = [r for r in rep.rows if r["kind"] == "conservation"]
        assert {r["scenario"] for r in rows} == {"node_kill", "noisy"}
        for row in rows:
            assert row["requests"] == _SMALL["num_requests"]
            assert row["violations"] == 0

    def test_unattributed_time_is_a_sliver(self, report):
        rep, _ = report
        for row in rep.rows:
            if row["kind"] == "conservation":
                assert row["other_frac"] < 0.05

    def test_every_gated_prediction_within_bounds(self, report):
        rep, _ = report
        gated = [
            r for r in rep.rows
            if r["kind"] == "whatif" and r["knob"] in GATED_KNOBS
        ]
        # The acceptance criterion names >= 3 knobs; the suite gates 4.
        assert len(gated) >= 3
        assert {r["knob"] for r in gated} == set(GATED_KNOBS)
        for row in gated:
            assert row["actual"] is not None
            assert row["within_bounds"] is True

    def test_extra_cores_is_estimate_only(self, report):
        rep, _ = report
        rows = [
            r for r in rep.rows
            if r["kind"] == "whatif" and r["knob"] == "extra_cores"
        ]
        assert rows
        for row in rows:
            assert row["actual"] is None
            assert row["within_bounds"] is None
            assert row["estimated"] is True

    def test_headline_notes_present(self, report):
        rep, _ = report
        notes = "\n".join(rep.notes)
        assert "conservation" in notes
        assert "headline" in notes


class TestProfiles:
    def test_profile_rows_name_a_bottleneck(self, report):
        rep, _ = report
        rows = [r for r in rep.rows if r["kind"] == "profile"]
        scopes = {(r["scenario"], r["scope"]) for r in rows}
        assert ("node_kill", "overall") in scopes
        assert ("noisy", "overall") in scopes
        for row in rows:
            assert row["bottleneck"] is not None
            assert 0.0 < row["bottleneck_frac"] <= 1.0


class TestLog:
    def test_log_lines_are_schema_valid(self, report):
        _, path = report
        defs = {"critpath_profile": "critpath_record", "whatif": "whatif_record"}
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        meta = lines[0]
        assert meta["kind"] == "critpath_log_meta"
        assert meta["lines"] == len(lines) - 1
        kinds = set()
        for rec in lines[1:]:
            kinds.add(rec["kind"])
            assert validate_def(rec, SCHEMA, defs[rec["kind"]]) == []
        assert kinds == {"critpath_profile", "whatif"}

    def test_log_covers_node_and_shard_scopes(self, report):
        _, path = report
        scopes = {
            json.loads(l).get("scope")
            for l in path.read_text().splitlines()
        }
        assert any(s and s.startswith("node:") for s in scopes)
        assert any(s and s.startswith("shard:") for s in scopes)


class TestRunner:
    def test_cli_smoke_writes_log(self, tmp_path, capsys):
        log = tmp_path / "critpath.jsonl"
        main(
            [
                "--experiment", "critpath_observatory",
                "--num-requests", "800",
                "--critpath-log", str(log),
            ]
        )
        out = capsys.readouterr().out
        assert "critpath_observatory" in out
        assert log.exists()
        first = json.loads(log.read_text().splitlines()[0])
        assert first["kind"] == "critpath_log_meta"
