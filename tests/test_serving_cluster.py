"""Cluster serving tests: delegation, sharding, failover, hedging."""

import numpy as np
import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.serving.cluster import (
    CL_COMPLETED,
    CL_DEGRADED,
    CL_FAILED,
    ClusterConfig,
    ClusterSim,
    ShardMap,
)
from repro.serving.degradation import DegradationController, scheme_ladder
from repro.serving.faults import (
    ClusterFaultPlan,
    CoreSlowdown,
    FaultPlan,
    NodeCrash,
    NodePartition,
    NodeSlow,
)
from repro.serving.router import HedgePolicy
from repro.serving.server import ServingPolicy, simulate_server
from repro.serving.workload import poisson_arrivals


def _arrivals(n=600, interarrival=0.5, seed=7):
    return poisson_arrivals(interarrival, n, SimConfig(seed=seed).rng("t:arr"))


def _cluster(arrivals, **kwargs):
    defaults = dict(
        num_nodes=4, cores_per_node=2, mean_service_ms=1.0, num_shards=8,
        replication=2, gather_width=2, hop_ms=0.05, call_timeout_ms=12.0,
        deadline_ms=50.0, seed=11,
    )
    defaults.update(kwargs)
    return ClusterSim(ClusterConfig(**defaults)).run(arrivals)


class TestSingleBoxDelegation:
    """A 1-node replication-1 cluster IS the bare server, byte for byte."""

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_plain_path_byte_identical(self, engine):
        arrivals = _arrivals(400)
        direct = simulate_server(
            arrivals, 2.0, 3, SimConfig(seed=5).rng("t:svc"), engine=engine
        )
        res = ClusterSim(
            ClusterConfig(
                num_nodes=1, cores_per_node=3, mean_service_ms=2.0,
                replication=1, gather_width=1, num_shards=1, engine=engine,
            )
        ).run(arrivals, SimConfig(seed=5).rng("t:svc"))
        assert res.local is not None
        assert np.array_equal(res.local.latencies_ms, direct.latencies_ms)
        assert np.array_equal(res.local.services_ms, direct.services_ms)
        assert np.array_equal(res.latencies_ms, direct.latencies_ms)
        assert np.all(res.outcomes == CL_COMPLETED)

    @pytest.mark.parametrize("engine", ["fast", "reference"])
    def test_fault_path_byte_identical(self, engine):
        arrivals = _arrivals(400)
        plan = FaultPlan([CoreSlowdown(0, 20.0, 120.0, 3.0)], seed=5)
        policy = ServingPolicy(
            deadline_ms=25.0, timeout_ms=25.0, max_retries=1,
            retry_backoff_ms=2.0, max_queue_depth=40,
        )
        ladder = scheme_ladder(
            {"baseline": 1.0, "sw_pf": 0.8, "integrated": 0.65},
            batch_scale=0.6,
        )

        def controller():
            return DegradationController(
                ladder, sla_ms=25.0, window=48, min_samples=12,
                escalate_margin=0.75, recover_margin=0.4, cooldown=256,
            )

        direct = simulate_server(
            arrivals, 2.0, 3, SimConfig(seed=5).rng("t:svc"),
            fault_plan=plan, policy=policy, controller=controller(),
            engine=engine,
        )
        res = ClusterSim(
            ClusterConfig(
                num_nodes=1, cores_per_node=3, mean_service_ms=2.0,
                replication=1, gather_width=1, num_shards=1, engine=engine,
                local_fault_plan=plan, local_policy=policy,
                controller_factory=lambda node: controller(),
            )
        ).run(arrivals, SimConfig(seed=5).rng("t:svc"))
        assert res.local is not None
        assert np.array_equal(res.local.latencies_ms, direct.latencies_ms)
        assert np.array_equal(res.local.outcomes, direct.outcomes)
        assert res.local.outcome_counts == direct.outcome_counts

    def test_multi_node_rejects_core_level_config(self):
        plan = FaultPlan([CoreSlowdown(0, 0.0, 10.0, 2.0)], seed=1)
        with pytest.raises(ConfigError):
            ClusterSim(ClusterConfig(num_nodes=2, local_fault_plan=plan))
        with pytest.raises(ConfigError):
            ClusterSim(
                ClusterConfig(
                    num_nodes=2,
                    local_policy=ServingPolicy(deadline_ms=5.0),
                )
            )


class TestShardMap:
    def test_striped_placement(self):
        smap = ShardMap(
            ClusterConfig(num_nodes=4, num_shards=6, replication=2,
                          placement="striped")
        )
        assert smap.replicas[0] == [0, 1]
        assert smap.replicas[5] == [1, 2]
        for replicas in smap.replicas:
            assert len(set(replicas)) == len(replicas)

    def test_hotness_places_hottest_on_cache_rich_node(self):
        smap = ShardMap(
            ClusterConfig(
                num_nodes=4, num_shards=8, replication=1,
                placement="hotness", cache_scores=(0.5, 1.0, 0.6, 0.9),
            )
        )
        # Shard 0 is the hottest (Zipf rank order) and must claim the
        # node with the largest cache score.
        assert smap.replicas[0] == [1]

    def test_hotness_is_zipf_normalized(self):
        smap = ShardMap(ClusterConfig(num_shards=8))
        assert smap.hotness[0] == max(smap.hotness)
        assert np.all(np.diff(smap.hotness) < 0)
        assert smap.hotness.sum() == pytest.approx(1.0)

    def test_call_multiplier_penalizes_cache_poor_nodes(self):
        smap = ShardMap(
            ClusterConfig(num_nodes=2, cache_scores=(1.0, 0.5),
                          miss_penalty=1.0)
        )
        assert smap.call_multiplier(0, 0) == pytest.approx(1.0)
        assert smap.call_multiplier(0, 1) > smap.call_multiplier(0, 0)
        # Colder shards pay a smaller penalty than the hottest.
        assert smap.call_multiplier(7, 1) < smap.call_multiplier(0, 1)

    def test_gather_shards_deterministic_and_distinct(self):
        smap = ShardMap(ClusterConfig(num_shards=8, gather_width=3, seed=3))
        a = smap.gather_shards(200)
        b = ShardMap(
            ClusterConfig(num_shards=8, gather_width=3, seed=3)
        ).gather_shards(200)
        assert np.array_equal(a, b)
        assert a.shape == (200, 3)
        for row in a:
            assert len(set(row.tolist())) == 3


class TestClusterResilience:
    def test_no_fault_all_complete(self):
        res = _cluster(_arrivals())
        assert np.all(res.outcomes == CL_COMPLETED)
        assert res.goodput == pytest.approx(1.0)
        assert res.failovers == 0
        assert np.isfinite(res.quality_percentile(95.0))

    def test_node_kill_unreplicated_degrades_replicated_fails_over(self):
        arrivals = _arrivals(800)
        horizon = float(arrivals[-1])
        plan = ClusterFaultPlan(
            [NodeCrash(1, 0.25 * horizon, 0.6 * horizon)], seed=11
        )
        weak = _cluster(arrivals, replication=1, faults=plan)
        strong = _cluster(arrivals, replication=2, faults=plan)
        # Unreplicated: requests touching the dead node's shards lose
        # recall -> degraded outcomes and an unbounded quality tail.
        assert np.any(weak.outcomes == CL_DEGRADED)
        assert weak.failovers == 0
        assert weak.quality_percentile(95.0) == np.inf
        # Replicated: the router fails over and keeps every request whole.
        assert np.all(strong.outcomes == CL_COMPLETED)
        assert strong.failovers > 0
        assert np.isfinite(strong.quality_percentile(95.0))
        assert strong.goodput > weak.goodput

    def test_partition_ejects_probes_and_readmits(self):
        arrivals = _arrivals(800)
        horizon = float(arrivals[-1])
        plan = ClusterFaultPlan(
            [NodePartition(2, 0.2 * horizon, 0.5 * horizon)], seed=11
        )
        res = _cluster(arrivals, faults=plan)
        assert res.partition_failures > 0
        assert res.ejections >= 1
        assert res.probes >= 1
        # Calls land on the partitioned node again after it rejoins.
        assert res.node_stats[2].calls > 0
        assert np.all(res.outcomes == CL_COMPLETED)

    def test_hedging_cuts_slow_node_tail(self):
        arrivals = _arrivals(900)
        horizon = float(arrivals[-1])
        plan = ClusterFaultPlan(
            [NodeSlow(0, 0.1 * horizon, 0.9 * horizon, factor=8.0)], seed=11
        )
        plain = _cluster(arrivals, faults=plan)
        hedged = _cluster(
            arrivals, faults=plan,
            hedge=HedgePolicy(quantile=95.0, min_ms=2.0, window=64),
        )
        assert hedged.hedges_issued > 0
        assert hedged.hedges_won > 0
        assert hedged.p99_ms < plain.p99_ms

    def test_hedge_accounting_invariant(self):
        arrivals = _arrivals(900)
        horizon = float(arrivals[-1])
        for faults in (
            None,
            ClusterFaultPlan(
                [
                    NodeCrash(1, 0.25 * horizon, 0.6 * horizon),
                    NodeSlow(0, 0.1 * horizon, 0.9 * horizon, factor=6.0),
                ],
                seed=11,
            ),
        ):
            res = _cluster(
                arrivals, faults=faults,
                hedge=HedgePolicy(quantile=90.0, min_ms=1.5, window=64),
            )
            assert (
                res.hedges_won + res.hedges_wasted + res.hedges_failed
                == res.hedges_issued
            )

    def test_partial_results_off_turns_degraded_into_failed(self):
        arrivals = _arrivals(800)
        horizon = float(arrivals[-1])
        plan = ClusterFaultPlan(
            [NodeCrash(1, 0.25 * horizon, 0.6 * horizon)], seed=11
        )
        soft = _cluster(arrivals, replication=1, faults=plan)
        hard = _cluster(
            arrivals, replication=1, faults=plan, partial_results=False
        )
        assert np.any(soft.outcomes == CL_DEGRADED)
        assert not np.any(hard.outcomes == CL_DEGRADED)
        assert np.any(hard.outcomes == CL_FAILED)

    def test_runs_are_deterministic(self):
        arrivals = _arrivals(700)
        horizon = float(arrivals[-1])
        plan = ClusterFaultPlan(
            [
                NodeCrash(1, 0.25 * horizon, 0.6 * horizon),
                NodePartition(2, 0.1 * horizon, 0.3 * horizon),
            ],
            seed=11,
        )
        kwargs = dict(
            faults=plan,
            hedge=HedgePolicy(quantile=95.0, min_ms=2.0, window=64),
        )
        a = _cluster(arrivals, **kwargs)
        b = _cluster(arrivals, **kwargs)
        assert np.array_equal(a.outcomes, b.outcomes)
        assert np.array_equal(a.latencies_ms, b.latencies_ms)
        assert np.array_equal(a.request_latency_ms, b.request_latency_ms)
        assert a.failovers == b.failovers
        assert a.hedges_issued == b.hedges_issued

    def test_crash_loses_in_flight_calls(self):
        arrivals = _arrivals(800)
        horizon = float(arrivals[-1])
        plan = ClusterFaultPlan(
            [NodeCrash(1, 0.25 * horizon, 0.6 * horizon)], seed=11
        )
        res = _cluster(arrivals, replication=2, faults=plan)
        assert res.node_stats[1].lost_calls > 0

    def test_utilization_and_stats_sane(self):
        res = _cluster(_arrivals())
        assert len(res.node_stats) == 4
        assert sum(s.calls for s in res.node_stats) >= res.offered_requests
        for stat in res.node_stats:
            assert 0.0 <= stat.utilization <= 1.0
        assert 0.0 <= res.mean_utilization <= 1.0


class TestClusterConfigValidation:
    def test_bad_topology_rejected(self):
        with pytest.raises(ConfigError):
            ClusterConfig(num_nodes=0)
        with pytest.raises(ConfigError):
            ClusterConfig(num_nodes=2, replication=3)
        with pytest.raises(ConfigError):
            ClusterConfig(num_shards=4, gather_width=5)
        with pytest.raises(ConfigError):
            ClusterConfig(placement="random")
        with pytest.raises(ConfigError):
            ClusterConfig(routing="magic")
        with pytest.raises(ConfigError):
            ClusterConfig(num_nodes=3, cache_scores=(1.0, 0.5))
        with pytest.raises(ConfigError):
            ClusterConfig(call_timeout_ms=0.0)

    def test_bad_arrivals_rejected(self):
        sim = ClusterSim(ClusterConfig())
        with pytest.raises(ConfigError):
            sim.run(np.empty(0))
        with pytest.raises(ConfigError):
            sim.run(np.array([3.0, 1.0]))
