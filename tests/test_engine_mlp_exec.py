"""Roofline MLP timing tests."""

import pytest

from repro.cpu.core import CoreSpec
from repro.engine.mlp_exec import (
    GEMM_EFFICIENCY,
    time_interaction,
    time_mlp,
    time_top_mlp,
)
from repro.errors import ConfigError


@pytest.fixture
def spec():
    return CoreSpec()


def test_flops_counted_exactly(spec):
    timing = time_mlp(8, (4,), batch_size=2, core_spec=spec)
    assert timing.flops == 2 * 2 * 8 * 4


def test_cycles_positive_and_scale_with_batch(spec):
    small = time_mlp(256, (2048, 2048, 256, 64), 16, spec)
    big = time_mlp(256, (2048, 2048, 256, 64), 64, spec)
    assert 0 < small.cycles < big.cycles


def test_compute_bound_region_matches_roofline(spec):
    # Huge batch: weight streaming is amortized; cycles -> flops/peak_eff.
    timing = time_mlp(1024, (1024,), batch_size=4096, core_spec=spec)
    roofline = timing.flops / (spec.fp32_flops_per_cycle * GEMM_EFFICIENCY)
    assert timing.cycles == pytest.approx(roofline, rel=0.05)


def test_memory_bound_region_for_tiny_batch(spec):
    # Batch 1: weights dominate; time well above pure compute roofline.
    timing = time_mlp(2048, (2048,), batch_size=1, core_spec=spec)
    compute = timing.flops / (spec.fp32_flops_per_cycle * GEMM_EFFICIENCY)
    assert timing.cycles > 2 * compute


def test_weight_bytes(spec):
    timing = time_mlp(10, (20,), 1, spec)
    assert timing.weight_bytes == (10 * 20 + 20) * 4


def test_profile_shape_for_smt(spec):
    timing = time_mlp(256, (128,), 16, spec)
    assert 0.5 < timing.utilization <= 1.0
    assert timing.stall_fraction < 0.1


def test_achieved_flops_bounded_by_peak(spec):
    timing = time_mlp(512, (512, 512), 64, spec)
    assert timing.achieved_flops_per_cycle <= spec.fp32_flops_per_cycle


def test_interaction_scales_with_tables(spec):
    small = time_interaction(16, 8, 128, spec)
    big = time_interaction(16, 64, 128, spec)
    assert big.cycles > small.cycles
    assert big.flops > small.flops


def test_top_mlp_includes_interaction_width(spec):
    # rm2_1's top MLP input is 128 + C(61,2) = 1958 wide.
    timing = time_top_mlp(60, 128, (128, 64, 1), 16, spec)
    assert timing.flops == 2 * 16 * (1958 * 128 + 128 * 64 + 64 * 1)


def test_validation(spec):
    with pytest.raises(ConfigError):
        time_mlp(0, (4,), 1, spec)
    with pytest.raises(ConfigError):
        time_mlp(8, (), 1, spec)
    with pytest.raises(ConfigError):
        time_mlp(8, (4,), 1, spec, efficiency=0.0)
    with pytest.raises(ConfigError):
        time_mlp(8, (0,), 1, spec)
    with pytest.raises(ConfigError):
        time_interaction(0, 4, 128, spec)
