"""Synthetic index-generator tests."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.trace.synthetic import (
    one_item_indices,
    permuted_zipf_indices,
    uniform_indices,
    zipf_indices,
)


def test_one_item_all_same():
    out = one_item_indices(100, 50)
    assert out.shape == (50,)
    assert np.all(out == 0)


def test_one_item_custom_item():
    out = one_item_indices(100, 10, item=42)
    assert np.all(out == 42)
    with pytest.raises(ConfigError):
        one_item_indices(100, 10, item=100)


def test_uniform_in_range(rng):
    out = uniform_indices(1000, 5000, rng)
    assert out.min() >= 0
    assert out.max() < 1000


def test_uniform_covers_table(rng):
    out = uniform_indices(100, 10_000, rng)
    assert np.unique(out).size == 100


def test_zipf_concentrates_on_low_ranks(rng):
    out = zipf_indices(10_000, 20_000, alpha=1.5, rng=rng)
    top10_share = np.mean(out < 10)
    assert top10_share > 0.4


def test_zipf_precomputed_probabilities(rng):
    from repro.trace.hotness import zipf_probabilities

    p = zipf_probabilities(500, 1.0)
    out = zipf_indices(500, 100, alpha=1.0, rng=rng, probabilities=p)
    assert out.max() < 500


def test_zipf_rejects_mismatched_probabilities(rng):
    with pytest.raises(ConfigError):
        zipf_indices(500, 100, 1.0, rng, probabilities=np.ones(3) / 3)


def test_permuted_zipf_scatters_hot_rows(rng):
    out = permuted_zipf_indices(10_000, 20_000, alpha=1.5, rng=rng)
    counts = np.bincount(out, minlength=10_000)
    hottest = int(np.argmax(counts))
    # With scattering, the hottest physical row is almost surely not row 0.
    assert hottest != 0


def test_permuted_zipf_same_hotness_distribution(rng):
    raw = zipf_indices(5000, 50_000, 1.2, np.random.default_rng(1))
    perm = permuted_zipf_indices(5000, 50_000, 1.2, np.random.default_rng(1))
    # Permutation relabels rows but preserves the sorted count profile.
    raw_counts = np.sort(np.bincount(raw, minlength=5000))
    perm_counts = np.sort(np.bincount(perm, minlength=5000))
    assert np.array_equal(raw_counts, perm_counts)


def test_permutation_shape_checked(rng):
    with pytest.raises(ConfigError):
        permuted_zipf_indices(100, 10, 1.0, rng, permutation=np.arange(5))


def test_generators_reject_bad_shapes(rng):
    with pytest.raises(ConfigError):
        one_item_indices(0, 5)
    with pytest.raises(ConfigError):
        uniform_indices(10, -1, rng)
