"""Prefetch tuner tests (Fig 10b/c machinery)."""

import pytest

from repro.core.tuner import tune_prefetch
from repro.errors import ConfigError


@pytest.fixture(scope="module")
def tuning():
    from repro.config import SimConfig
    from repro.cpu.platform import get_platform
    from repro.model.configs import get_model
    from repro.trace.production import make_trace
    from repro.trace.stream import AddressMap

    model = get_model("rm2_1").scaled(0.01)
    trace = make_trace(
        "random", model.num_tables, model.rows, 8, 1,
        model.lookups_per_sample, config=SimConfig(seed=11),
    )
    amap = AddressMap([model.rows] * model.num_tables, model.embedding_dim)
    return tune_prefetch(
        trace, amap, get_platform("csl"),
        distances=(1, 2, 4, 16), amounts=(1, 4, 8),
    )


def test_sweeps_cover_requested_points(tuning):
    assert set(tuning.distance_cycles) == {1, 2, 4, 16}
    assert set(tuning.amount_metrics) == {1, 4, 8}


def test_best_points_are_minima(tuning):
    best_d = tuning.best_distance
    assert tuning.distance_cycles[best_d] == min(tuning.distance_cycles.values())
    best_a = tuning.best_amount
    assert tuning.amount_metrics[best_a][0] == min(
        c for c, _, _ in tuning.amount_metrics.values()
    )


def test_best_config_round_trip(tuning):
    config = tuning.best_config()
    assert config.distance == tuning.best_distance
    assert config.amount_lines == tuning.best_amount


def test_distance_speedups_relative_to_baseline(tuning):
    speedups = tuning.distance_speedups()
    for distance, speedup in speedups.items():
        assert speedup == pytest.approx(
            tuning.baseline_cycles / tuning.distance_cycles[distance]
        )
    assert max(speedups.values()) > 1.0  # some distance must help random


def test_full_row_amount_wins_on_hit_rate(tuning):
    # Fig 10c: prefetching all 8 lines maximizes the L1 hit rate.
    hit_1 = tuning.amount_metrics[1][1]
    hit_8 = tuning.amount_metrics[8][1]
    assert hit_8 > hit_1


def test_empty_sweeps_rejected(tuning):
    from repro.cpu.platform import get_platform

    with pytest.raises(ConfigError):
        tune_prefetch(None, None, get_platform("csl"), distances=())
