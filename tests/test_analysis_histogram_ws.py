"""Access-count histogram and working-set tests."""

import numpy as np
import pytest

from repro.analysis.histogram import access_count_histogram, hotness_summary, top_share
from repro.analysis.working_set import (
    cold_miss_fraction,
    unique_rows,
    windowed_working_set,
    working_set_bytes,
)
from repro.errors import ConfigError
from repro.trace.dataset import EmbeddingTrace, TableBatch


def single_table_trace(indices):
    trace = EmbeddingTrace(rows_per_table=[1000])
    arr = np.asarray(indices, dtype=np.int64)
    trace.append_batch([TableBatch(np.array([0, arr.size]), arr)])
    return trace


class TestHistogram:
    def test_counts_sorted_descending(self):
        trace = single_table_trace([1, 1, 1, 2, 2, 3])
        counts = access_count_histogram(trace, table=0)
        assert list(counts) == [3, 2, 1]

    def test_aggregate_over_tables(self, tiny_trace):
        merged = access_count_histogram(tiny_trace)
        per_table = sum(
            access_count_histogram(tiny_trace, t).size
            for t in range(tiny_trace.num_tables)
        )
        assert merged.size == per_table

    def test_top_share(self):
        counts = np.array([90] + [1] * 99)
        # Hottest 1% (1 row) absorbs 90/189 of traffic.
        assert top_share(counts, 0.01) == pytest.approx(90 / 189)

    def test_top_share_full_fraction_is_one(self):
        counts = np.array([5, 3, 2])
        assert top_share(counts, 1.0) == pytest.approx(1.0)

    def test_top_share_validation(self):
        with pytest.raises(ConfigError):
            top_share(np.array([]), 0.1)
        with pytest.raises(ConfigError):
            top_share(np.array([1]), 0.0)

    def test_hotness_summary(self, tiny_trace):
        summary = hotness_summary(tiny_trace, dataset="low")
        assert summary.dataset == "low"
        assert 0 < summary.unique_fraction <= 1
        assert summary.top_1pct_share <= 1
        assert summary.total_lookups == tiny_trace.total_lookups()

    def test_skewed_traces_have_bigger_top_share(self, tiny_model, sim_config):
        from repro.trace.production import make_trace

        shares = {}
        for dataset in ("high", "low"):
            trace = make_trace(
                dataset, tiny_model.num_tables, tiny_model.rows, 8, 2,
                tiny_model.lookups_per_sample, config=sim_config,
            )
            shares[dataset] = hotness_summary(trace).top_1pct_share
        assert shares["high"] > shares["low"]


class TestWorkingSet:
    def test_unique_rows(self):
        trace = single_table_trace([1, 1, 2, 3])
        assert unique_rows(trace) == 3
        assert unique_rows(trace, table=0) == 3

    def test_cold_miss_fraction(self):
        trace = single_table_trace([1, 1, 2, 3])
        assert cold_miss_fraction(trace) == pytest.approx(0.75)

    def test_working_set_bytes(self, tiny_trace, tiny_amap):
        ws = working_set_bytes(tiny_trace, tiny_amap)
        assert ws == unique_rows(tiny_trace) * tiny_amap.row_bytes

    def test_working_set_mismatch_rejected(self, tiny_trace):
        from repro.trace.stream import AddressMap

        with pytest.raises(ConfigError):
            working_set_bytes(tiny_trace, AddressMap([10], 128))

    def test_windowed_working_set(self, tiny_trace):
        windows = windowed_working_set(tiny_trace, window_batches=1)
        assert set(windows) == {0, 1}
        assert all(v > 0 for v in windows.values())

    def test_larger_windows_see_more_rows(self, tiny_trace):
        per_batch = windowed_working_set(tiny_trace, 1)
        whole = windowed_working_set(tiny_trace, 2)
        assert whole[0] >= max(per_batch.values()) * 0.99

    def test_window_validation(self, tiny_trace):
        with pytest.raises(ConfigError):
            windowed_working_set(tiny_trace, 0)
