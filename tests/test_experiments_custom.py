"""Appendix A.7 customization tests."""

import pytest

from repro.config import SimConfig
from repro.errors import ConfigError
from repro.experiments.custom import custom_model, run_custom


def test_custom_model_defaults():
    model = custom_model()
    assert model.bottom_mlp[-1] == model.embedding_dim
    assert model.top_mlp[-1] == 1
    assert model.category == "RMC2"
    assert model.sla_ms == 400.0


def test_custom_model_mixed_class():
    model = custom_model(embedding_heavy=False)
    assert model.category == "RMC1"
    assert model.sla_ms == 100.0


def test_custom_model_rejects_mismatched_bottom():
    with pytest.raises(ConfigError):
        custom_model(embedding_dim=64, bottom_mlp=(128, 128))


def test_run_custom_small_panel():
    model = custom_model(
        rows=20_000, embedding_dim=64, num_tables=3, lookups_per_sample=6
    )
    panel = run_custom(
        model, dataset="low", batch_size=4, num_batches=1,
        schemes=("baseline", "sw_pf"), config=SimConfig(seed=81),
    )
    assert set(panel) == {"baseline", "sw_pf"}
    assert panel["sw_pf"].embedding_speedup_over(panel["baseline"]) > 1.0


def test_run_custom_no_scaling_applied():
    # Unlike quick_eval, the shape given is the shape run.
    model = custom_model(rows=5_000, num_tables=2, lookups_per_sample=4)
    panel = run_custom(
        model, batch_size=4, num_batches=1, schemes=("baseline",),
        config=SimConfig(seed=82),
    )
    # paper_scale_ratio of a non-zoo model is 1 — no projection happened.
    assert model.paper_scale_ratio() == 1.0
    assert panel["baseline"].embedding_cycles > 0


def test_dim_sweep_changes_row_lines():
    # A wider embedding row costs proportionally more per lookup.
    results = {}
    for dim in (32, 128):
        model = custom_model(
            rows=20_000, embedding_dim=dim, num_tables=2, lookups_per_sample=8
        )
        panel = run_custom(
            model, batch_size=4, num_batches=1, schemes=("baseline",),
            config=SimConfig(seed=83),
        )
        results[dim] = panel["baseline"].embedding_cycles
    assert results[128] > 2 * results[32]
