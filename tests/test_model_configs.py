"""Model zoo (Table 2) tests."""

import pytest

from repro.errors import ConfigError, UnknownModelError
from repro.model.configs import MODEL_NAMES, ModelConfig, get_model, list_models


def test_zoo_contains_table2_models():
    assert MODEL_NAMES == ("rm2_1", "rm2_2", "rm2_3", "rm1")


def test_unknown_model():
    with pytest.raises(UnknownModelError):
        get_model("rm9")


@pytest.mark.parametrize(
    "name,rows,dim,tables,lookups,gib,table_mib",
    [
        ("rm2_1", 1_000_000, 128, 60, 120, 28.6, 488.3),
        ("rm2_2", 1_000_000, 128, 120, 150, 57.2, 488.3),
        ("rm2_3", 1_000_000, 128, 170, 180, 81.1, 488.3),
        ("rm1", 500_000, 64, 32, 80, 3.8, 122.0),
    ],
)
def test_table2_values(name, rows, dim, tables, lookups, gib, table_mib):
    model = get_model(name)
    assert model.rows == rows
    assert model.embedding_dim == dim
    assert model.num_tables == tables
    assert model.lookups_per_sample == lookups
    assert model.embedding_gib == pytest.approx(gib, abs=0.06)
    assert model.table_bytes / 1024**2 == pytest.approx(table_mib, abs=0.1)


def test_mlp_stacks_match_table2():
    assert get_model("rm2_3").bottom_mlp == (2048, 1024, 256, 128)
    assert get_model("rm1").top_mlp == (768, 384, 1)


def test_bottom_mlp_ends_at_embedding_dim():
    for name in MODEL_NAMES:
        model = get_model(name)
        assert model.bottom_mlp[-1] == model.embedding_dim


def test_categories_and_sla():
    assert get_model("rm2_1").category == "RMC2"
    assert get_model("rm2_1").sla_ms == 400.0  # Table 1 RMC2 target
    assert get_model("rm1").category == "RMC1"
    assert get_model("rm1").sla_ms == 100.0
    assert get_model("rm2_2").is_embedding_heavy
    assert not get_model("rm1").is_embedding_heavy


def test_lookups_per_batch():
    model = get_model("rm2_1")
    assert model.lookups_per_batch == 60 * 120
    assert model.lookups_for_batch(64) == 60 * 120 * 64


def test_scaled_keeps_rows_by_default():
    scaled = get_model("rm2_1").scaled(0.05)
    assert scaled.rows == 1_000_000
    assert scaled.num_tables < 60
    assert scaled.lookups_per_sample < 120
    assert scaled.bottom_mlp == get_model("rm2_1").bottom_mlp


def test_scaled_for_memory_shrinks_rows():
    scaled = get_model("rm2_1").scaled(0.01, keep_rows=False)
    assert scaled.rows < 1_000_000
    assert scaled.rows >= 2048


def test_scaled_identity():
    model = get_model("rm1")
    assert model.scaled(1.0) is model


def test_scaled_name_and_base_name():
    scaled = get_model("rm2_2").scaled(0.1)
    assert scaled.name == "rm2_2@0.1"
    assert scaled.base_name == "rm2_2"


def test_paper_scale_ratio():
    model = get_model("rm2_1")
    assert model.paper_scale_ratio() == 1.0
    scaled = model.scaled(0.05)
    expected = (60 * 120) / (scaled.num_tables * scaled.lookups_per_sample)
    assert scaled.paper_scale_ratio() == pytest.approx(expected)
    assert scaled.paper_scale_ratio() > 1.0


def test_scaled_rejects_bad_factor():
    with pytest.raises(ConfigError):
        get_model("rm1").scaled(0.0)
    with pytest.raises(ConfigError):
        get_model("rm1").scaled(2.0)


def test_custom_config_validation():
    with pytest.raises(ConfigError):
        ModelConfig(
            name="bad", category="RMC2", rows=10, embedding_dim=8,
            num_tables=1, lookups_per_sample=1,
            bottom_mlp=(16,), top_mlp=(4, 1),  # bottom doesn't end at dim
        )
    with pytest.raises(ConfigError):
        ModelConfig(
            name="bad", category="RMC2", rows=10, embedding_dim=8,
            num_tables=1, lookups_per_sample=1,
            bottom_mlp=(8,), top_mlp=(4, 2),  # top doesn't end at 1
        )


def test_list_models_is_copy():
    models = list_models()
    models["fake"] = None
    with pytest.raises(UnknownModelError):
        get_model("fake")
