"""Acceptance tests for the noisy_neighbor experiment.

The issue's bar: under the adversarial locker the static config violates
the Table 1 SLA; the QoS loop restores goodput to >= 0.95x the no-tenant
run; detection fires in every injected (post-warmup, memory-visible)
tenant window with zero false positives in the quiet scenario; and the
no-tenant path is byte-identical to the pre-tenant engine on both serving
paths.
"""

import numpy as np
import pytest

from repro.analysis.cache_model import analyze_trace_reuse
from repro.config import SimConfig
from repro.cpu.platform import get_platform
from repro.errors import ConfigError
from repro.experiments.noisy_neighbor import run as run_noisy
from repro.experiments.runner import main as runner_main
from repro.experiments.workloads import build_workload
from repro.obs.hooks import Observation, session
from repro.serving.faults import FaultPlan
from repro.serving.server import ServingPolicy, simulate_server
from repro.serving.workload import poisson_arrivals
from repro.tenants import ContentionModel, TenantFaultPlan, TenantMix, TenantWorld


@pytest.fixture(scope="module")
def report():
    # Full default load/length (the SLA-violation bar needs them), but
    # only the acceptance-relevant mixes and no cluster scenario.
    return run_noisy(
        config=SimConfig(), tenants="none,locker", cluster_nodes=1
    )


def _row(report, scenario, mode):
    for row in report.rows:
        if row["scenario"] == scenario and row["mode"] == mode:
            return row
    raise AssertionError(f"missing row {scenario}/{mode}")


class TestAcceptance:
    def test_static_locker_violates_the_sla(self, report):
        assert _row(report, "none", "static")["meets_sla"]
        row = _row(report, "locker", "static")
        assert not row["meets_sla"]
        assert row["p95_ms"] > row["sla_ms"]

    def test_qos_restores_goodput(self, report):
        for mode in ("qos", "qos_degraded"):
            row = _row(report, "locker", mode)
            assert row["meets_sla"]
            assert row["goodput_vs_no_tenant"] >= 0.95
            assert row["defense_changes"] > 0

    def test_static_partition_also_defends(self, report):
        row = _row(report, "locker", "partition")
        assert row["meets_sla"]
        assert row["final_defense"] == "partition+throttle"

    def test_every_injected_window_detected(self, report):
        for mode in ("qos", "qos_degraded"):
            row = _row(report, "locker", mode)
            assert row["tenant_windows"] >= 1
            assert row["windows_detected"] == row["tenant_windows"]
            assert row["mttd_ms"] is not None and row["mttd_ms"] >= 0.0

    def test_quiet_scenario_zero_false_positives(self, report):
        for mode in ("qos", "qos_degraded"):
            row = _row(report, "none", mode)
            assert row["false_positives"] == 0
            assert row["defense_changes"] == 0
            assert row["goodput_vs_no_tenant"] == pytest.approx(1.0)
        assert _row(report, "locker", "qos")["false_positives"] == 0

    def test_subset_validation(self):
        with pytest.raises(ConfigError):
            run_noisy(config=SimConfig(), tenants="martian")
        with pytest.raises(ConfigError):
            run_noisy(config=SimConfig(), defense="yolo")
        with pytest.raises(ConfigError):
            run_noisy(config=SimConfig(), tenants=" , ")


@pytest.fixture(scope="module")
def empty_world():
    cfg = SimConfig(seed=11)
    spec = get_platform("csl")
    wl = build_workload(
        "rm1", "low", scale=0.01, batch_size=8, num_batches=1, config=cfg
    )
    reuse = analyze_trace_reuse(
        wl.trace, spec.hierarchy, wl.model.embedding_dim, dataset="low"
    )
    model = ContentionModel(wl.model, reuse.reuse, spec, 8)
    return TenantWorld(TenantMix((), seed=11), model, 10_000.0)


class TestNoTenantByteIdentity:
    """An empty TenantFaultPlan must not perturb either serving path."""

    def test_fast_path(self, empty_world):
        arrivals = poisson_arrivals(3.0, 600, np.random.default_rng(0))
        plain = simulate_server(arrivals, 10.0, 4, np.random.default_rng(1))
        tenant = simulate_server(
            arrivals, 10.0, 4, np.random.default_rng(1),
            fault_plan=TenantFaultPlan(empty_world),
        )
        assert TenantFaultPlan(empty_world).is_empty
        assert np.array_equal(plain.latencies_ms, tenant.latencies_ms)
        assert np.array_equal(plain.waits_ms, tenant.waits_ms)
        assert np.array_equal(plain.services_ms, tenant.services_ms)

    def test_event_loop_path(self, empty_world):
        arrivals = poisson_arrivals(3.0, 600, np.random.default_rng(2))
        policy = ServingPolicy(deadline_ms=1e12)
        plain = simulate_server(
            arrivals, 10.0, 4, np.random.default_rng(3),
            fault_plan=FaultPlan(), policy=policy,
        )
        tenant = simulate_server(
            arrivals, 10.0, 4, np.random.default_rng(3),
            fault_plan=TenantFaultPlan(empty_world), policy=policy,
        )
        assert np.array_equal(plain.latencies_ms, tenant.latencies_ms)
        assert np.array_equal(plain.core_ids, tenant.core_ids)
        assert np.array_equal(plain.outcomes, tenant.outcomes)


class TestObservabilityNeutrality:
    def test_hooks_on_off_rows_identical(self):
        kwargs = dict(
            model="rm1", dataset="low", scale=0.01, batch_size=8,
            num_batches=1, num_requests=400, num_cores=4,
            tenants="locker", defense="qos", cluster_nodes=1,
        )
        off = run_noisy(config=SimConfig(), **kwargs)
        with session(Observation()):
            on = run_noisy(config=SimConfig(), **kwargs)
        assert on.rows == off.rows


class TestRunnerForwarding:
    def test_cli_flags_reach_the_experiment(self, capsys):
        assert runner_main([
            "noisy_neighbor",
            "--scale", "0.01", "--batch-size", "8", "--num-batches", "1",
            "--num-requests", "300", "--num-cores", "4",
            "--tenants", "none,locker", "--defense", "static,qos",
        ]) == 0
        out = capsys.readouterr().out
        assert "locker" in out and "qos" in out
        # Unselected sweep entries must not appear as scenarios.
        assert "streaming" not in out.split("note:")[0]
