"""Ablation: the online adaptive controller vs fixed prefetch distances.

Extension beyond the paper (its Section 6.4 tuning, automated online).
The adaptive run must land within a few percent of the best fixed distance
without being told which one that is — and far from the worst.
"""

import pytest

from repro.config import SimConfig
from repro.core.adaptive import AdaptiveController, run_adaptive_prefetch
from repro.core.swpf import SWPrefetchConfig
from repro.cpu.platform import get_platform
from repro.engine.embedding_exec import PrefetchPlan, run_embedding_trace
from repro.experiments.workloads import build_workload
from repro.mem.hierarchy import build_hierarchy


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        "rm2_1", "low", scale=0.015, batch_size=8, num_batches=4,
        config=SimConfig(seed=59),
    )


def test_adaptive_vs_fixed_distances(benchmark, workload):
    spec = get_platform("csl")

    def run_all():
        fixed = {}
        for distance in (1, 4, 32):
            hierarchy = build_hierarchy(spec.hierarchy)
            fixed[distance] = run_embedding_trace(
                workload.trace, workload.amap, spec.core, hierarchy,
                plan=PrefetchPlan(distance, 8),
            ).total_cycles
        adaptive = run_adaptive_prefetch(
            workload.trace, workload.amap, spec,
            base=SWPrefetchConfig(distance=1),
            controller=AdaptiveController(distance=1),
        )
        return fixed, adaptive

    fixed, adaptive = benchmark.pedantic(
        run_all, rounds=1, iterations=1, warmup_rounds=0
    )
    print()
    for distance, cycles in sorted(fixed.items()):
        print(f"  fixed distance {distance:>2}: {cycles:12.0f} cycles")
    print(
        f"  adaptive (start=1) : {adaptive.total_cycles:12.0f} cycles, "
        f"trajectory={adaptive.distance_trajectory}"
    )
    best = min(fixed.values())
    worst = max(fixed.values())
    # The controller must not be stuck at its (bad) starting point...
    assert adaptive.total_cycles < worst
    # ...and should close most of the gap to the best fixed setting.
    assert adaptive.total_cycles < best * 1.25
