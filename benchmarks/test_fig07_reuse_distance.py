"""Bench: regenerate Fig 7 (reuse-distance study)."""

from repro.experiments.registry import run_experiment


def test_fig7_reuse_distance(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "fig7", config=bench_config,
            scale=0.02, batch_size=32, num_batches=3,
        )
    )
    by_ds = {r["dataset"]: r for r in report.rows}
    # Cold-miss headline: Low hot dominated by cold misses, High hot much
    # less (paper: 72% vs ~22%).
    assert by_ds["low"]["cold_miss_fraction"] > 0.45
    assert by_ds["high"]["cold_miss_fraction"] < by_ds["low"]["cold_miss_fraction"]
    # "L1D$ hit rates are very bad" for the production traces.
    assert by_ds["low"]["l1_hit_rate_model"] < 0.35
    # Capacity markers: 32KiB/512B = 64 vectors etc.
    assert by_ds["low"]["l1_capacity_vectors"] == 64
    assert by_ds["low"]["l2_capacity_vectors"] == 2048
    # Even the LLC fails to capture the Low-hot working set (Section 3.3).
    assert by_ds["low"]["l3_hit_rate_model"] < 0.55
