"""Bench: regenerate Table 4 (embedding-only batch ms, multi-core)."""

from repro.experiments.registry import run_experiment


def test_table4_batch_times(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "table4", config=bench_config,
            models=("rm2_1", "rm2_3", "rm1"), datasets=("low", "high"),
            scale=0.015, batch_size=8, num_batches=2,
        )
    )

    def cell(dataset, model):
        return report.filter_rows(dataset=dataset, model=model)[0]

    # Shape 1: batch time grows with model size (rm2_1 < rm2_3) and rm1 is
    # far cheaper (paper row: 74 / 304 / 11 ms at Low hot).
    for dataset in ("low", "high"):
        assert cell(dataset, "rm2_1")["baseline_ms"] < cell(dataset, "rm2_3")["baseline_ms"]
        assert cell(dataset, "rm1")["baseline_ms"] < cell(dataset, "rm2_1")["baseline_ms"]
    # Shape 2: High hot is faster than Low hot for every model.
    for model in ("rm2_1", "rm2_3", "rm1"):
        assert cell("high", model)["baseline_ms"] < cell("low", model)["baseline_ms"]
    # Shape 3: SW-PF cuts every cell (paper: 1.2-1.4x).
    for row in report.rows:
        assert row["sw_pf_ms"] < row["baseline_ms"]
    # Shape 4: the rm2_3/rm2_1 ratio is roughly the paper's ~4x at Low hot.
    ratio = cell("low", "rm2_3")["baseline_ms"] / cell("low", "rm2_1")["baseline_ms"]
    assert 2.0 < ratio < 8.0
