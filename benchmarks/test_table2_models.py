"""Bench: regenerate Table 2 (model architecture parameters)."""

import pytest

from repro.experiments.registry import run_experiment


def test_table2_model_parameters(run_once, emit, bench_config):
    report = emit(run_once(run_experiment, "table2", config=bench_config))
    by_model = {r["model"]: r for r in report.rows}
    # Derived size columns must match the paper's printed values.
    assert by_model["rm2_1"]["emb_size_gib"] == pytest.approx(28.6, abs=0.05)
    assert by_model["rm2_2"]["emb_size_gib"] == pytest.approx(57.2, abs=0.05)
    assert by_model["rm2_3"]["emb_size_gib"] == pytest.approx(81.1, abs=0.05)
    assert by_model["rm1"]["emb_size_gib"] == pytest.approx(3.8, abs=0.05)
    assert by_model["rm2_1"]["per_table_mib"] == pytest.approx(488.3, abs=0.1)
    assert by_model["rm1"]["per_table_mib"] == pytest.approx(122.0, abs=0.1)
    # Architecture columns, verbatim.
    assert by_model["rm2_3"]["bottom_mlp"] == "2048-1024-256-128"
    assert by_model["rm1"]["top_mlp"] == "768-384-1"
    assert by_model["rm2_2"]["lookups_per_sample"] == 150
