"""Bench: regenerate Table 1 (model classes and SLA targets)."""

from repro.experiments.registry import run_experiment


def test_table1_sla_targets(run_once, emit, bench_config):
    report = emit(run_once(run_experiment, "table1", config=bench_config))
    by_class = {r["model_class"]: r for r in report.rows}
    assert by_class["RMC1"]["sla_ms"] == 100.0
    assert by_class["RMC2"]["sla_ms"] == 400.0
    assert by_class["RMC3"]["sla_ms"] == 100.0
    assert by_class["RMC2"]["bottleneck"] == "embedding"
    assert by_class["RMC2"]["bottleneck_share"] == 0.90
    assert by_class["RMC3"]["bottleneck"] == "mlp"
