"""Ablation: embedding-loop order (Section 3.1's inter-table reuse class).

The paper's Algorithm 1 (and PyTorch's per-table ``embedding_bag``) is
table-major: all of table t's pooled lookups, then table t+1.  The
alternative — sample-major, all tables for one sample — revisits every
table once per sample, turning the per-batch inter-table transition into
a per-sample one.  Table-major should win on cache behaviour, which is
exactly why the frameworks batch per table.
"""

import pytest

from repro.config import SimConfig
from repro.cpu.platform import get_platform
from repro.engine.embedding_exec import run_embedding_trace
from repro.experiments.workloads import build_workload
from repro.mem.hierarchy import build_hierarchy


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        "rm2_1", "medium", scale=0.015, batch_size=8, num_batches=2,
        config=SimConfig(seed=107),
    )


def test_loop_order_ablation(benchmark, workload):
    spec = get_platform("csl")

    def sweep():
        out = {}
        for order in ("table_major", "sample_major"):
            out[order] = run_embedding_trace(
                workload.trace, workload.amap, spec.core,
                build_hierarchy(spec.hierarchy), loop_order=order,
            )
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for order, r in results.items():
        print(
            f"  {order:>12}: cycles={r.total_cycles:12.0f} "
            f"l1={r.l1_hit_rate:.3f} lat={r.avg_load_latency:6.1f}cy"
        )
    table = results["table_major"]
    sample = results["sample_major"]
    # Identical work issued either way.
    assert table.loads == sample.loads
    # Table-major does not lose: the framework's choice is justified.
    assert table.total_cycles <= sample.total_cycles * 1.05
    assert table.l1_hit_rate >= sample.l1_hit_rate * 0.95
