"""Ablation: *where* to prefetch (Section 4.2's fourth question).

The paper picks L1D (``_MM_HINT_T0``) "as it brings the data closest to
the processor".  This ablation runs the same tuned plan targeting L1, L2
and L3 and checks the ordering the paper's choice relies on.
"""

import pytest

from repro.config import SimConfig
from repro.cpu.platform import get_platform
from repro.engine.embedding_exec import PrefetchPlan, run_embedding_trace
from repro.experiments.workloads import build_workload
from repro.mem.hierarchy import build_hierarchy


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        "rm2_1", "low", scale=0.015, batch_size=8, num_batches=2,
        config=SimConfig(seed=51),
    )


def test_prefetch_target_level_ablation(benchmark, workload):
    spec = get_platform("csl")

    def sweep():
        results = {}
        for target in ("l1", "l2", "l3"):
            hierarchy = build_hierarchy(spec.hierarchy)
            results[target] = run_embedding_trace(
                workload.trace, workload.amap, spec.core, hierarchy,
                plan=PrefetchPlan(distance=4, amount_lines=8, target_level=target),
            )
        hierarchy = build_hierarchy(spec.hierarchy)
        results["none"] = run_embedding_trace(
            workload.trace, workload.amap, spec.core, hierarchy
        )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for target in ("none", "l3", "l2", "l1"):
        r = results[target]
        print(
            f"  target={target:>4}: cycles={r.total_cycles:12.0f} "
            f"l1={r.l1_hit_rate:.3f} latency={r.avg_load_latency:6.1f}cy"
        )
    # Every target level beats no prefetching on a memory-bound trace.
    for target in ("l1", "l2", "l3"):
        assert results[target].total_cycles < results["none"].total_cycles
    # L1 is the best target: data lands closest to the core (the paper's
    # choice); deeper targets leave residual L2/L3 hit latency exposed.
    assert results["l1"].avg_load_latency <= results["l2"].avg_load_latency
    assert results["l2"].avg_load_latency <= results["l3"].avg_load_latency
    assert results["l1"].total_cycles <= results["l2"].total_cycles * 1.02
