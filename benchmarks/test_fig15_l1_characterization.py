"""Bench: regenerate Fig 15 (L1D hit rate + avg load latency per design)."""

from repro.experiments.registry import run_experiment


def test_fig15_l1_characterization(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "fig15", config=bench_config,
            models=("rm2_1", "rm2_2"), scale=0.015, batch_size=8,
            num_batches=2,
        )
    )
    for model in ("rm2_1", "rm2_2"):
        rows = {r["scheme"]: r for r in report.filter_rows(model=model)}
        base, swpf, integ = rows["baseline"], rows["sw_pf"], rows["integrated"]
        # Paper: baseline 72-84% L1D and 23-90 cycles; SW-PF reaches
        # 96.7-99.4% and 5.6-7.1 cycles.
        assert base["l1_hit_rate"] < 0.93
        assert base["avg_load_latency_cycles"] > 20
        assert swpf["l1_hit_rate"] > 0.95
        assert swpf["avg_load_latency_cycles"] < 15
        # Integrated at least matches SW-PF.
        assert integ["l1_hit_rate"] >= swpf["l1_hit_rate"] * 0.99
        assert integ["avg_load_latency_cycles"] <= swpf[
            "avg_load_latency_cycles"
        ] * 1.05
