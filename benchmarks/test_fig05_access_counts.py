"""Bench: regenerate Fig 5 (sorted access-count curves)."""

from repro.experiments.registry import run_experiment


def test_fig5_access_counts(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "fig5", config=bench_config,
            scale=0.02, batch_size=32, num_batches=2,
        )
    )
    by_ds = {r["dataset"]: r for r in report.rows}
    # The power-law steepness orders the datasets (Fig 5's visual).
    assert by_ds["high"]["max_count"] > by_ds["medium"]["max_count"]
    assert by_ds["medium"]["max_count"] > by_ds["low"]["max_count"]
    # Unique-access ordering matches Section 5 (3% < 24% < 60%).
    assert (
        by_ds["high"]["unique_fraction"]
        < by_ds["medium"]["unique_fraction"]
        < by_ds["low"]["unique_fraction"]
    )
    # High hot concentrates traffic in its hottest rows far more than Low.
    assert by_ds["high"]["top_1pct_share"] > 2 * by_ds["low"]["top_1pct_share"]
    assert by_ds["high"]["top_1pct_share"] > 0.3
