"""Bench: regenerate Fig 13 (end-to-end speedups, embedding-heavy models)."""

from repro.experiments.registry import run_experiment


def test_fig13_end_to_end_speedups(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "fig13", config=bench_config,
            models=("rm2_1", "rm2_3"), datasets=("high", "low"),
            core_counts=(1,), scale=0.015, batch_size=8, num_batches=2,
        )
    )
    for row in report.rows:
        # The paper's panel, qualitatively:
        assert row["hw_pf_off_speedup"] < 1.0          # hurts in all cases
        assert row["dp_ht_speedup"] < 0.95             # down to 0.62x
        assert row["sw_pf_speedup"] > 1.0              # 1.21-1.46x
        assert row["integrated_speedup"] > 1.2         # 1.40-1.59x
        # Integrated is the best design point.
        best_other = max(
            row["sw_pf_speedup"], row["mp_ht_speedup"], row["dp_ht_speedup"]
        )
        assert row["integrated_speedup"] >= best_other * 0.98
    # SW-PF gains larger at Low hot; MP-HT relatively better at High hot.
    for model in ("rm2_1", "rm2_3"):
        rows = {r["dataset"]: r for r in report.filter_rows(model=model, cores=1)}
        assert rows["low"]["sw_pf_speedup"] > rows["high"]["sw_pf_speedup"]
        assert rows["high"]["mp_ht_speedup"] >= rows["low"]["mp_ht_speedup"] * 0.95
