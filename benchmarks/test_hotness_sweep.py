"""Bench: the continuous hotness sweep (extension of Figs 4/12)."""

from repro.experiments.registry import run_experiment


def test_hotness_sweep(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "hotness_sweep", config=bench_config,
            unique_fractions=(0.03, 0.24, 0.60, 0.85),
            scale=0.012, batch_size=8, num_batches=2,
        )
    )
    rows = sorted(report.rows, key=lambda r: r["unique_fraction"])
    latency = [r["baseline_ms"] for r in rows]
    l1 = [r["baseline_l1_hit"] for r in rows]
    gain = [r["sw_pf_speedup"] for r in rows]
    # Irregularity monotonically degrades the baseline...
    assert latency == sorted(latency)
    assert l1 == sorted(l1, reverse=True)
    # ...and the SW-PF gain grows with it, then saturates near the
    # MSHR-vs-load-queue concurrency ratio.
    assert gain[-1] > gain[0]
    assert gain[-1] < 2.2
    # Even the hottest point keeps prefetching non-harmful.
    assert gain[0] > 0.95
