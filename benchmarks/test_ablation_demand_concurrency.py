"""Ablation: the demand-concurrency mechanism behind SW-PF's win.

DESIGN.md's load-bearing modeling choice: demand misses sustain fewer
outstanding fetches than the MSHR file holds, while software prefetches use
all of it.  This ablation sweeps the demand-concurrency limit and verifies
(a) the baseline speeds up as the limit rises, and (b) the SW-PF advantage
shrinks as the asymmetry disappears — i.e. the win really does come from
the mechanism the paper exploits, not from an accounting artifact.
"""

import dataclasses

import pytest

from repro.config import SimConfig
from repro.cpu.platform import get_platform
from repro.engine.embedding_exec import PrefetchPlan, run_embedding_trace
from repro.experiments.workloads import build_workload
from repro.mem.hierarchy import build_hierarchy


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        "rm2_1", "random", scale=0.015, batch_size=8, num_batches=2,
        config=SimConfig(seed=57),
    )


def test_demand_concurrency_sweep(benchmark, workload):
    spec = get_platform("csl")

    def sweep():
        out = {}
        for concurrency in (4, 6, 12):
            core = dataclasses.replace(spec.core, demand_concurrency=concurrency)
            base = run_embedding_trace(
                workload.trace, workload.amap, core,
                build_hierarchy(spec.hierarchy),
            )
            pf = run_embedding_trace(
                workload.trace, workload.amap, core,
                build_hierarchy(spec.hierarchy),
                plan=PrefetchPlan(4, 8),
            )
            out[concurrency] = (base.total_cycles, pf.total_cycles)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print()
    gains = {}
    for concurrency, (base, pf) in sorted(results.items()):
        gains[concurrency] = base / pf
        print(
            f"  demand_concurrency={concurrency:>2}: baseline={base:12.0f} "
            f"sw_pf={pf:12.0f} gain={gains[concurrency]:.2f}x"
        )
    # (a) More demand MLP -> faster baseline.
    bases = [results[c][0] for c in (4, 6, 12)]
    assert bases[0] > bases[1] > bases[2]
    # (b) The SW-PF advantage shrinks as the asymmetry closes.
    assert gains[4] > gains[6] > gains[12]
    # With full symmetry the residual gain is small (prefetch still wins
    # slightly by not occupying the window).
    assert gains[12] < 1.35
