"""Bench: regenerate Fig 4 (embedding performance across datasets)."""

from repro.experiments.registry import run_experiment


def test_fig4_dataset_sweep(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "fig4", config=bench_config,
            scale=0.02, batch_size=8, num_batches=2,
        )
    )
    by_ds = {r["dataset"]: r for r in report.rows}
    # Fig 4(a): one-item is the fast extreme, random the slow extreme.
    assert by_ds["one-item"]["batch_latency_ms"] < by_ds["high"]["batch_latency_ms"]
    assert by_ds["random"]["batch_latency_ms"] >= by_ds["low"]["batch_latency_ms"] * 0.9
    # Fig 4(b): load latency spreads by an order of magnitude (paper: 16x).
    spread = (
        by_ds["random"]["avg_load_latency_cycles"]
        / by_ds["one-item"]["avg_load_latency_cycles"]
    )
    assert spread > 8
    # Hit rates degrade monotonically with hotness.
    assert (
        by_ds["one-item"]["l1_hit_rate"]
        > by_ds["high"]["l1_hit_rate"]
        > by_ds["medium"]["l1_hit_rate"]
        > by_ds["low"]["l1_hit_rate"]
        >= by_ds["random"]["l1_hit_rate"]
    )
