"""Bench: regenerate Fig 17 (p95 tail latency vs arrival time)."""

from repro.experiments.registry import run_experiment


def test_fig17_tail_latency(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "fig17", config=bench_config,
            models=("rm2_1", "rm1"), num_cores=8, scale=0.015,
            batch_size=8, num_batches=2, num_requests=800,
        )
    )
    for model in ("rm2_1", "rm1"):
        rows = report.filter_rows(model=model)
        schemes = {r["scheme"] for r in rows}
        assert {"baseline", "dp_ht", "sw_pf", "mp_ht", "integrated"} <= schemes

        def fastest_ok(scheme):
            return next(
                r["fastest_compliant_arrival_ms"]
                for r in rows
                if r["scheme"] == scheme
            )

        # Integrated tolerates faster arrivals than the baseline while
        # meeting the SLA (paper: 1.4x / 2.3x faster arrival rates).
        assert fastest_ok("integrated") <= fastest_ok("baseline")
        # DP-HT saturates earlier (worse) or equal.
        assert fastest_ok("dp_ht") >= fastest_ok("baseline")

        # Inside the compliant region the tail improves under Integrated.
        base_rows = {r["arrival_ms"]: r for r in rows if r["scheme"] == "baseline"}
        integ_rows = {r["arrival_ms"]: r for r in rows if r["scheme"] == "integrated"}
        slowest = max(base_rows)
        assert integ_rows[slowest]["p95_ms"] < base_rows[slowest]["p95_ms"]
