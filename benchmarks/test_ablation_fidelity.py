"""Ablation: opt-in fidelity features (TLB translation, output stores).

Quantifies what the default calibration excludes: with multi-GB tables the
STLB cannot map the working set, so irregular rows pay page walks; and the
output-vector stores of Algorithm 1 add streaming write traffic.  Both
effects must slow the embedding stage without changing who wins.
"""

import pytest

from repro.config import SimConfig
from repro.core.swpf import PAPER_SWPF
from repro.cpu.platform import get_platform
from repro.engine.embedding_exec import run_embedding_trace
from repro.experiments.workloads import build_workload
from repro.mem.hierarchy import build_hierarchy
from repro.mem.tlb import TLBConfig, TLBModel


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        "rm2_1", "low", scale=0.015, batch_size=8, num_batches=2,
        config=SimConfig(seed=67),
    )


def test_fidelity_features(benchmark, workload):
    spec = get_platform("csl")

    def sweep():
        out = {}
        for name, kwargs in (
            ("default", {}),
            ("with_tlb", {"tlb": TLBModel(TLBConfig(l1_entries=16, stlb_entries=64))}),
            ("with_stores", {"model_stores": True}),
        ):
            base = run_embedding_trace(
                workload.trace, workload.amap, spec.core,
                build_hierarchy(spec.hierarchy), **kwargs,
            )
            pf = run_embedding_trace(
                workload.trace, workload.amap, spec.core,
                build_hierarchy(spec.hierarchy), plan=PAPER_SWPF.plan(),
                **kwargs,
            )
            out[name] = (base.total_cycles, pf.total_cycles)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for name, (base, pf) in results.items():
        print(
            f"  {name:<12}: baseline={base:12.0f} sw_pf={pf:12.0f} "
            f"gain={base / pf:.2f}x"
        )
    default_base, default_pf = results["default"]
    # Each fidelity feature adds cost to the baseline...
    assert results["with_tlb"][0] > default_base
    assert results["with_stores"][0] > default_base
    # ...but never flips the paper's conclusion: SW-PF still wins.
    for name in results:
        base, pf = results[name]
        assert base / pf > 1.2, name
