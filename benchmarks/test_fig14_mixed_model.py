"""Bench: regenerate Fig 14 (mixed-model RM1 speedups)."""

from repro.experiments.registry import run_experiment


def test_fig14_mixed_model(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "fig14", config=bench_config,
            num_cores=1, scale=0.02, batch_size=8, num_batches=2,
        )
    )
    by_ds = {r["dataset"]: r for r in report.rows}
    low = by_ds["low"]
    # DP-HT degrades (paper: ~0.60x).
    assert low["dp_ht_speedup"] < 0.9
    # SW-PF modest on the mixed model (paper: ~1.1x average).
    assert 1.0 <= low["sw_pf_speedup"] < 1.45
    # MP-HT is the stronger single lever on RM1 (paper: 1.25-1.37x).
    assert low["mp_ht_speedup"] > 1.1
    assert low["mp_ht_speedup"] > low["sw_pf_speedup"] * 0.95
    # Integrated collects both (paper: 1.37-1.54x).
    assert low["integrated_speedup"] >= low["mp_ht_speedup"] * 0.98
    assert low["integrated_speedup"] > 1.2
