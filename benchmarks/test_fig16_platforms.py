"""Bench: regenerate Fig 16 (speedups across CPU platforms)."""

from repro.experiments.registry import run_experiment


def test_fig16_platform_sweep(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "fig16", config=bench_config,
            models=("rm2_1",), platforms=("skl", "csl", "icl", "zen3"),
            scale=0.012, batch_size=8, num_batches=2, retune=True,
        )
    )
    for row in report.rows:
        # "Our optimizations consistently improve the performance over the
        # baseline across a wide range of CPUs."
        assert row["sw_pf_speedup"] > 1.0, row
        assert row["integrated_speedup"] >= row["sw_pf_speedup"] * 0.95, row
    # Multi-core speedups are lower than single-core (shared-resource
    # interference, Section 6.4).
    for platform in ("skl", "csl", "icl", "zen3"):
        rows = report.filter_rows(platform=platform, model="rm2_1")
        single = next(r for r in rows if r["cores"] == 1)
        multi = next(r for r in rows if r["cores"] > 1)
        assert multi["integrated_speedup"] <= single["integrated_speedup"] * 1.1
