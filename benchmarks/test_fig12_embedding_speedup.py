"""Bench: regenerate Fig 12 (embedding-only speedups)."""

from repro.experiments.registry import run_experiment


def test_fig12_embedding_speedups(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "fig12", config=bench_config,
            models=("rm2_1", "rm2_3"), core_counts=(1, 24),
            scale=0.015, batch_size=8, num_batches=2,
        )
    )
    # SW-PF wins everywhere (paper: 1.16-1.47x across the panel).
    for row in report.rows:
        assert row["sw_pf_speedup"] > 1.0, row
    # Gains grow as hotness falls (paper: best on Low hot).
    for model in ("rm2_1", "rm2_3"):
        for cores in (1, 24):
            by_ds = {
                r["dataset"]: r["sw_pf_speedup"]
                for r in report.filter_rows(model=model, cores=cores)
            }
            assert by_ds["low"] > by_ds["high"]
    # w/o HW-PF stays near the baseline on the embedding stage (small
    # impact, either direction).
    for row in report.rows:
        assert 0.7 < row["hw_pf_off_speedup"] < 1.2
