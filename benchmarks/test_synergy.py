"""Bench: the Section 4.4 synergy decomposition."""

from repro.experiments.registry import run_experiment


def test_synergy_decomposition(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "synergy", config=bench_config,
            scale=0.015, batch_size=8, num_batches=2,
        )
    )
    for row in report.rows:
        # Arithmetic self-consistency of the decomposition.
        expected = row["swpf_speedup"] * row["mpht_speedup"]
        assert row["multiplicative_expectation"] == expected
        # Integrated always collects at least the better single scheme.
        best_single = max(row["swpf_speedup"], row["mpht_speedup"])
        assert row["integrated_speedup"] >= best_single * 0.98
        assert row["synergy"] > 0.8
    # The paper's super-multiplicative synergy appears on the
    # embedding-heavy models (where prefetching frees window resources the
    # MLP sibling absorbs); on RM1 both levers are individually large and
    # the overlap saturates instead.
    rm2_rows = [r for r in report.rows if r["model"].startswith("rm2")]
    assert all(r["synergy"] >= 1.0 for r in rm2_rows)