"""Bench: regenerate Fig 1 (stage breakdown per model)."""

from repro.experiments.registry import run_experiment


def test_fig1_breakdown(run_once, emit, bench_config):
    report = emit(run_once(run_experiment, "fig1", config=bench_config))
    by_model = {r["model"]: r for r in report.rows}
    # Paper: rm2_1=98%, rm2_2=96%, rm2_3=95%, rm1=65% embedding.
    assert by_model["rm2_1"]["embedding_pct"] > 90
    assert by_model["rm2_2"]["embedding_pct"] > 90
    assert by_model["rm2_3"]["embedding_pct"] > 88
    assert 30 < by_model["rm1"]["embedding_pct"] < 85
    # Ordering: every RMC2 model more embedding-bound than RM1.
    assert by_model["rm2_1"]["embedding_pct"] > by_model["rm1"]["embedding_pct"]
