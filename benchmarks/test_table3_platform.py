"""Bench: regenerate Table 3 (CPU configuration parameters)."""

from repro.experiments.registry import run_experiment


def test_table3_platform_parameters(run_once, emit, bench_config):
    report = emit(run_once(run_experiment, "table3", config=bench_config))
    params = {r["parameter"]: str(r["value"]) for r in report.rows}
    assert params["Model"] == "Cascade Lake 6240R"
    assert params["Frequency"] == "2.4GHz"
    assert params["Sockets"] == "2"
    assert params["L1D cache latency"] == "5 cycles"
    assert params["L1D cache size"] == "32.0 KiB"
    assert params["L2 cache size"] == "1.0 MiB"
    assert params["L3 cache size"] == "35.8 MiB"
    assert params["DDR bandwidth per socket"] == "140 GB/s"
