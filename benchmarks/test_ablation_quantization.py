"""Ablation: embedding quantization vs software prefetching.

An industrial alternative to the paper's scheme: compressing rows (fp16 or
int8) also cuts memory traffic.  This ablation measures both levers and
their combination — quantization shrinks the traffic, prefetching hides
what remains, and they compose.
"""

import pytest

from repro.config import SimConfig
from repro.core.swpf import PAPER_SWPF
from repro.cpu.platform import get_platform
from repro.engine.embedding_exec import run_embedding_trace
from repro.mem.hierarchy import build_hierarchy
from repro.model.configs import get_model
from repro.trace.production import make_trace


@pytest.fixture(scope="module")
def setup():
    config = SimConfig(seed=103)
    model = get_model("rm2_1").scaled(0.015)
    trace = make_trace(
        "low", model.num_tables, model.rows, 8, 2,
        model.lookups_per_sample, config=config,
    )
    return model, trace


def test_quantization_vs_prefetching(benchmark, setup, bench_config):
    model, trace = setup
    spec = get_platform("csl")

    def sweep():
        out = {}
        for dtype, label in ((4, "fp32"), (2, "fp16"), (1, "int8")):
            quant = model.quantized(dtype)
            amap = quant.address_map()
            base = run_embedding_trace(
                trace, amap, spec.core, build_hierarchy(spec.hierarchy)
            )
            pf = run_embedding_trace(
                trace, amap, spec.core, build_hierarchy(spec.hierarchy),
                plan=PAPER_SWPF.plan(),
            )
            out[label] = (base.total_cycles, pf.total_cycles)
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print()
    fp32_base = results["fp32"][0]
    for label, (base, pf) in results.items():
        print(
            f"  {label}: baseline={base / fp32_base:5.2f}x-of-fp32 "
            f"sw_pf={pf / fp32_base:5.2f}x-of-fp32 (pf gain {base / pf:.2f}x)"
        )
    # Quantization alone is a real lever: fp16 cuts the baseline hard.
    assert results["fp16"][0] < fp32_base * 0.7
    assert results["int8"][0] < results["fp16"][0]
    # Prefetching still helps every precision (they compose).
    for label, (base, pf) in results.items():
        assert pf < base, label
    # The combination beats either lever alone.
    assert results["int8"][1] < results["fp32"][1]
    assert results["int8"][1] < results["int8"][0]
