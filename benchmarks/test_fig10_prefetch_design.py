"""Bench: regenerate Fig 10 (compiler PF, distance sweep, amount sweep)."""

from repro.experiments.registry import run_experiment


def test_fig10_prefetch_design_space(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "fig10", config=bench_config,
            scale=0.02, batch_size=8, num_batches=2,
            distances=(1, 2, 4, 8, 32), amounts=(1, 2, 4, 8),
        )
    )
    # Panel (a): compiler prefetching shows limited benefit vs baseline.
    panel_a = {r["setting"]: r["speedup"] for r in report.filter_rows(panel="a")}
    assert 0.7 < panel_a["gcc"] < 1.15
    assert 0.7 < panel_a["icc"] < 1.3
    # Panel (b): tuned distances beat both extremes (the U-shape).
    panel_b = {
        int(r["setting"].split("=")[1]): r["speedup"]
        for r in report.filter_rows(panel="b")
    }
    best = max(panel_b.values())
    assert best > 1.25  # the tuned scheme is far better than compilers
    assert best >= panel_b[1]    # too-late extreme loses
    assert best >= panel_b[32]   # pollution extreme loses
    # Panel (c): full-row amount maximizes hit rate and minimizes latency.
    panel_c = {
        int(r["setting"].split("=")[1]): r for r in report.filter_rows(panel="c")
    }
    assert panel_c[8]["l1_hit_rate"] >= panel_c[1]["l1_hit_rate"]
    assert (
        panel_c[8]["avg_load_latency_cycles"]
        <= panel_c[1]["avg_load_latency_cycles"]
    )
