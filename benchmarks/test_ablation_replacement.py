"""Ablation: cache replacement policy under embedding traffic.

The paper's reuse-distance model assumes LRU "or its variants".  This
ablation quantifies how much the variant matters for the irregular
embedding stream: true LRU vs tree-PLRU (what real L1/L2s build) vs FIFO.
"""

import dataclasses

import pytest

from repro.config import SimConfig
from repro.cpu.platform import get_platform
from repro.engine.embedding_exec import run_embedding_trace
from repro.experiments.workloads import build_workload
from repro.mem.hierarchy import build_hierarchy


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        "rm2_1", "medium", scale=0.015, batch_size=8, num_batches=2,
        config=SimConfig(seed=53),
    )


def test_replacement_policy_ablation(benchmark, workload):
    spec = get_platform("csl")

    def sweep():
        results = {}
        for policy in ("lru", "plru", "fifo"):
            # PLRU needs power-of-two ways; the 11-way LLC keeps LRU, as
            # real parts do.
            config = dataclasses.replace(
                spec.hierarchy, policy=policy, l3_policy="lru"
            )
            hierarchy = build_hierarchy(config)
            results[policy] = run_embedding_trace(
                workload.trace, workload.amap, spec.core, hierarchy
            )
        return results

    results = benchmark.pedantic(sweep, rounds=1, iterations=1, warmup_rounds=0)
    print()
    for policy, r in results.items():
        print(
            f"  {policy:>5}: cycles={r.total_cycles:12.0f} "
            f"l1={r.l1_hit_rate:.3f} l2={r.l2_hit_rate:.3f}"
        )
    # The paper's premise: for large-reuse-distance streams the policy
    # variant barely matters — all within a few percent of LRU.
    lru = results["lru"].total_cycles
    for policy in ("plru", "fifo"):
        assert results[policy].total_cycles == pytest.approx(lru, rel=0.10)
    # PLRU approximates LRU more closely than FIFO does on hit rate.
    lru_hit = results["lru"].l1_hit_rate
    assert abs(results["plru"].l1_hit_rate - lru_hit) <= (
        abs(results["fifo"].l1_hit_rate - lru_hit) + 0.02
    )
