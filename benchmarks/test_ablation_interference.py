"""Ablation: constructive vs destructive inter-core sharing (Section 3.1).

Quantifies the fourth reuse class of the paper's characterization: two
cores over the same tables share cold-miss fills through the LLC; two
cores over different tables thrash each other.
"""

import pytest

from repro.analysis.interference import intercore_sharing_study
from repro.config import SimConfig
from repro.cpu.platform import get_platform
from repro.experiments.workloads import build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        "rm2_1", "medium", scale=0.012, batch_size=8, num_batches=2,
        config=SimConfig(seed=61),
    )


def test_intercore_sharing(benchmark, workload):
    spec = get_platform("csl")
    report = benchmark.pedantic(
        intercore_sharing_study,
        args=(workload.trace, workload.amap, spec),
        rounds=1, iterations=1, warmup_rounds=0,
    )
    print()
    print(f"  solo         : {report.solo_cycles:12.0f} cycles")
    print(
        f"  constructive : {report.constructive_cycles:12.0f} cycles "
        f"(x{report.constructive_slowdown:.2f}), "
        f"L3 hit {report.constructive_l3_hit_rate:.3f}"
    )
    print(
        f"  destructive  : {report.destructive_cycles:12.0f} cycles "
        f"(x{report.destructive_slowdown:.2f}), "
        f"L3 hit {report.destructive_l3_hit_rate:.3f}"
    )
    # The paper's claim: same-table sharing is the benign case.
    assert report.sharing_benefit >= 1.0
    assert report.constructive_l3_hit_rate >= report.destructive_l3_hit_rate
