"""Benchmark-suite fixtures.

Every benchmark regenerates one paper table/figure through the experiment
registry, measures it with pytest-benchmark (single round — these are
simulations, not microbenchmarks), prints the regenerated rows, and asserts
the *shape* properties the paper reports (who wins, roughly by how much,
where crossovers fall).
"""

import pytest

from repro.config import SimConfig
from repro.experiments.base import ExperimentReport, format_report


@pytest.fixture(scope="session")
def bench_config():
    """Deterministic config shared by the whole benchmark suite."""
    return SimConfig(seed=2023)


@pytest.fixture
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def runner(func, *args, **kwargs):
        return benchmark.pedantic(
            func, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0
        )

    return runner


@pytest.fixture
def emit():
    """Print a regenerated report so `--benchmark-only -s` shows the rows."""

    def _emit(report: ExperimentReport) -> ExperimentReport:
        print()
        print(format_report(report))
        return report

    return _emit
