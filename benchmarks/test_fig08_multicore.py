"""Bench: regenerate Fig 8 (multi-core scaling)."""

from repro.experiments.registry import run_experiment


def test_fig8_multicore_scaling(run_once, emit, bench_config):
    report = emit(
        run_once(
            run_experiment, "fig8", config=bench_config,
            core_counts=(1, 4, 24), scale=0.02, batch_size=8, num_batches=4,
        )
    )
    rows = sorted(report.rows, key=lambda r: r["cores"])
    times = [r["batch_time_ms"] for r in rows]
    bandwidths = [r["bandwidth_gb_s"] for r in rows]
    # Fig 8(a): per-batch time degrades only mildly (paper: +14%).
    assert times[-1] / times[0] < 2.0
    # Fig 8(b): aggregate bandwidth grows by an order of magnitude
    # (paper: x15.5 at 24 cores), sublinearly in core count.
    growth = bandwidths[-1] / bandwidths[0]
    assert growth > 8
    assert growth <= 24
    # Bandwidth never exceeds the channel peak, and headroom remains —
    # the opportunity software prefetching spends (Section 3.2).
    assert rows[-1]["dram_utilization"] <= 1.0
