"""CI regression gate over the ``BENCH_history.jsonl`` trajectory.

Compares the newest benchmark record (the run ``tools/bench_all.py`` just
appended) against the second newest (the committed baseline) and exits
nonzero when any benchmark regressed past its thresholds, naming the
benchmark and the delta::

    PYTHONPATH=src python tools/bench_all.py --mode smoke --repeats 3
    PYTHONPATH=src python tools/bench_gate.py

Gating rules live in :mod:`repro.obs.regress`: a benchmark regresses only
when it moved in its *worse* direction by more than ``--threshold``
(relative, default 20 %) *and* by more than its recorded absolute noise
floor.  Wall-clock benchmarks are skipped by default — their values only
compare within one host — pass ``--include-wall`` on a pinned machine.

With fewer than two records there is nothing to compare and the gate
passes (the first record *establishes* the baseline).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.regress import (  # noqa: E402
    compare,
    format_regressions,
    last_record,
    load_history,
)

__all__ = ["main"]

DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.jsonl"


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history", type=Path, default=DEFAULT_HISTORY,
        help=f"history JSONL (default {DEFAULT_HISTORY.name})",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.2, metavar="FRAC",
        help="relative worseness bound (default 0.2 = 20%%)",
    )
    parser.add_argument(
        "--include-wall", action="store_true",
        help="also gate wall-clock benchmarks (same-host histories only)",
    )
    args = parser.parse_args(argv)
    if args.threshold <= 0:
        parser.error("--threshold must be positive")

    history = load_history(args.history)
    candidate = last_record(history)
    baseline = last_record(history, offset=1)
    if candidate is None or baseline is None:
        print(
            f"bench gate: {len(history)} record(s) in {args.history} — "
            "nothing to compare, gate passes"
        )
        return 0

    regressions = compare(
        baseline,
        candidate,
        rel_threshold=args.threshold,
        include_wall=args.include_wall,
    )
    compared = set(baseline.get("benchmarks", {})) & set(
        candidate.get("benchmarks", {})
    )
    stamp = (
        f"{baseline.get('timestamp', '?')} -> {candidate.get('timestamp', '?')}"
    )
    if regressions:
        print(
            f"bench gate FAILED ({stamp}): {len(regressions)} of "
            f"{len(compared)} benchmark(s) regressed past "
            f"{args.threshold:.0%}:",
            file=sys.stderr,
        )
        print(format_regressions(regressions), file=sys.stderr)
        return 1
    print(
        f"bench gate OK ({stamp}): {len(compared)} benchmark(s) within "
        f"{args.threshold:.0%}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
