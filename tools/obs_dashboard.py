"""Render the observatory into one self-contained HTML page (stdlib only).

Pulls together the three offline telemetry artifacts and writes a single
file with no external assets — CI uploads it as the build's performance
dashboard::

    PYTHONPATH=src python tools/obs_dashboard.py \\
        --history BENCH_history.jsonl --metrics m.jsonl \\
        --request-log req.jsonl --out dashboard.html

Sections (each present only when its input is given):

* **benchmark trajectories** — one row per benchmark in the history:
  inline-SVG sparkline over all records, latest value, and delta vs the
  previous record (colored by whether it moved in the worse direction);
* **CPI stacks** — the per-stage cycle breakdown from a metrics JSONL;
* **SLA-miss attribution** — the request-log miss causes as a bar table;
* **fleet view** (cluster request logs) — per-node health timelines from
  the windowed drift detectors, the shard x node call heat map, and
  latency percentiles (blank, not NaN, when no request completed);
* **error budget** (``--slo-log``) — per-SLO budget-remaining sparkline,
  burn-rate peak, and the fired burn/detector alerts;
* **critical path** (``--critpath-log``) — per-scope latency attribution
  bars ("where does p99 go") and the counterfactual what-if prediction
  table with its validation verdicts.
"""

from __future__ import annotations

import argparse
import html
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.cpi import CPI_BUCKETS  # noqa: E402
from repro.obs.regress import load_history  # noqa: E402
from repro.obs.requests import load_request_log, miss_attribution  # noqa: E402
from repro.obs.slo import FleetMonitor, node_window_stats  # noqa: E402

__all__ = ["main", "render"]

DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.jsonl"

_STYLE = """
body { font-family: ui-monospace, Menlo, Consolas, monospace;
       background: #111418; color: #d8dee4; margin: 2em; }
h1 { font-size: 1.3em; } h2 { font-size: 1.1em; margin-top: 2em;
     border-bottom: 1px solid #2a3038; padding-bottom: .3em; }
table { border-collapse: collapse; }
td, th { padding: .25em .9em; text-align: right; }
th { color: #8b949e; font-weight: normal; border-bottom: 1px solid #2a3038; }
td:first-child, th:first-child { text-align: left; }
.better { color: #3fb950; } .worse { color: #f85149; }
.flat { color: #8b949e; } .bar { background: #1f6feb; display: inline-block;
height: .7em; } .note { color: #8b949e; font-size: .85em; }
svg { vertical-align: middle; }
"""


def _sparkline(values: List[float], width: int = 120, height: int = 24) -> str:
    """Inline SVG polyline over the value series (min..max scaled)."""
    if len(values) < 2:
        return '<span class="note">n/a</span>'
    lo, hi = min(values), max(values)
    span = (hi - lo) or 1.0
    step = width / (len(values) - 1)
    points = " ".join(
        f"{i * step:.1f},{height - 2 - (height - 4) * (v - lo) / span:.1f}"
        for i, v in enumerate(values)
    )
    last_x = (len(values) - 1) * step
    last_y = height - 2 - (height - 4) * (values[-1] - lo) / span
    return (
        f'<svg width="{width}" height="{height}">'
        f'<polyline points="{points}" fill="none" stroke="#58a6ff" '
        f'stroke-width="1.5"/>'
        f'<circle cx="{last_x:.1f}" cy="{last_y:.1f}" r="2.5" fill="#58a6ff"/>'
        "</svg>"
    )


def _bench_section(history: List[Dict[str, object]]) -> str:
    """Per-benchmark trajectory rows from the full history."""
    if not history:
        return "<h2>benchmark trajectories</h2><p class='note'>no records</p>"
    series: Dict[str, List[float]] = {}
    meta: Dict[str, Dict[str, object]] = {}
    for record in history:
        for name, bench in record.get("benchmarks", {}).items():
            series.setdefault(name, []).append(float(bench["value"]))
            meta[name] = bench
    rows = []
    for name in sorted(series):
        values = series[name]
        bench = meta[name]
        latest = values[-1]
        if len(values) >= 2 and values[-2] != 0:
            delta = (latest - values[-2]) / abs(values[-2])
            worse = delta > 0 if bench.get("direction") == "lower" else delta < 0
            cls = "flat" if abs(delta) < 1e-9 else ("worse" if worse else "better")
            delta_cell = f'<td class="{cls}">{delta:+.1%}</td>'
        else:
            delta_cell = '<td class="flat">—</td>'
        rows.append(
            "<tr>"
            f"<td>{html.escape(name)}</td>"
            f"<td>{_sparkline(values)}</td>"
            f"<td>{latest:,.4g}&nbsp;{html.escape(str(bench.get('unit', '')))}</td>"
            f"{delta_cell}"
            f"<td class='note'>{html.escape(str(bench.get('kind', '')))}</td>"
            "</tr>"
        )
    return (
        f"<h2>benchmark trajectories ({len(history)} record(s))</h2>"
        "<table><tr><th>benchmark</th><th>trend</th><th>latest</th>"
        "<th>delta</th><th>kind</th></tr>" + "".join(rows) + "</table>"
    )


def _cpi_section(metrics_path: Path) -> str:
    """Per-stage CPI stacks parsed from a metrics JSONL export."""
    cycles: Dict[str, float] = {}
    buckets: Dict[str, Dict[str, float]] = {}
    with open(metrics_path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            stage = rec.get("labels", {}).get("stage")
            if stage is None:
                continue
            name = rec.get("name", "")
            if name == "core.cycles":
                cycles[stage] = float(rec.get("value", 0.0))
            elif name.startswith("core.cpi."):
                buckets.setdefault(stage, {})[name[len("core.cpi."):]] = float(
                    rec.get("value", 0.0)
                )
    if not cycles:
        return "<h2>CPI stacks</h2><p class='note'>no core cycles recorded</p>"
    header = "".join(f"<th>{html.escape(b)}</th>" for b in CPI_BUCKETS)
    rows = []
    for stage, total in sorted(cycles.items(), key=lambda kv: -kv[1]):
        cells = []
        for bucket in CPI_BUCKETS:
            frac = buckets.get(stage, {}).get(bucket, 0.0) / total if total else 0.0
            cells.append(
                f"<td><span class='bar' style='width:{60 * frac:.0f}px'></span>"
                f" {frac:.0%}</td>"
            )
        rows.append(
            f"<tr><td>{html.escape(stage)}</td><td>{total:,.0f}</td>"
            + "".join(cells)
            + "</tr>"
        )
    return (
        "<h2>CPI stacks</h2>"
        "<table><tr><th>stage</th><th>cycles</th>" + header + "</tr>"
        + "".join(rows)
        + "</table>"
    )


def _requests_section(request_log_path: Path) -> str:
    """SLA-miss attribution table from a request-log export."""
    meta, records = load_request_log(request_log_path)
    attribution = miss_attribution(records)
    head = (
        f"<h2>SLA-miss attribution</h2>"
        f"<p class='note'>{meta.get('runs', '?')} run(s), "
        f"{meta.get('requests', len(records))} request(s), "
        f"{meta.get('dropped', 0)} dropped</p>"
    )
    failovers = sum(int(r.get("failovers", 0) or 0) for r in records)
    hedges = sum(int(r.get("hedges", 0) or 0) for r in records)
    wasted = sum(int(r.get("hedges_wasted", 0) or 0) for r in records)
    degraded = sum(1 for r in records if r.get("outcome") == "degraded")
    if failovers or hedges or degraded:
        head += (
            f"<p class='note'>fleet: {failovers} failover(s), "
            f"{hedges} hedge(s) ({wasted} wasted), "
            f"{degraded} degraded (partial) result(s)</p>"
        )
    if not attribution:
        return head + "<p class='note'>every request met its deadline</p>"
    total = sum(attribution.values())
    rows = []
    # Stable render order (matches trace_report): biggest cause first,
    # name breaks ties.
    for cause, count in sorted(
        attribution.items(), key=lambda kv: (-kv[1], kv[0])
    ):
        frac = count / total
        rows.append(
            f"<tr><td>{html.escape(cause)}</td><td>{count}</td>"
            f"<td><span class='bar' style='width:{160 * frac:.0f}px'></span>"
            f" {frac:.0%}</td></tr>"
        )
    return (
        head
        + "<table><tr><th>cause</th><th>requests</th><th>share</th></tr>"
        + "".join(rows)
        + f"<tr><td>total missed</td><td>{total}</td><td></td></tr></table>"
    )


#: Health-timeline cell colors (state -> fill).
_HEALTH_COLORS = {
    "idle": "#2a3038",
    "ok": "#1f6f3f",
    "warn": "#b08800",
    "bad": "#b62324",
}

#: Timeline resolution of the dashboard fleet view (windows per run).
_FLEET_WINDOWS = 60


def _percentile(sorted_values: List[float], q: float) -> float:
    """Linear-interpolation percentile of a pre-sorted list."""
    rank = (len(sorted_values) - 1) * (q / 100.0)
    lo = int(rank)
    hi = min(lo + 1, len(sorted_values) - 1)
    return sorted_values[lo] + (sorted_values[hi] - sorted_values[lo]) * (rank - lo)


def _fleet_section(records: List[Dict[str, object]]) -> str:
    """Per-node health timelines + shard heat map for a cluster log.

    Only renders for logs whose records carry per-node shard-call events
    (single-box logs have no node identity).  A run where *no* request
    completed renders blank percentile cells, never NaN — shed/failed
    records still feed the health timelines.
    """
    nodes = sorted(
        {
            int(ev["node"])
            for rec in records
            for ev in rec.get("events", [])  # type: ignore[union-attr]
            if ev.get("node") is not None
            and ev.get("kind") in ("shard_call", "call_ok", "call_failed")
        }
    )
    if not nodes:
        return ""
    num_nodes = max(nodes) + 1
    horizon = max(
        (float(rec.get("end_ms", 0.0) or 0.0) for rec in records), default=0.0
    )
    out = ["<h2>fleet view</h2>"]

    if horizon > 0:
        window_ms = horizon / _FLEET_WINDOWS
        monitor = FleetMonitor(num_nodes)
        monitor.run(node_window_stats(records, window_ms, horizon), window_ms)
        rows = []
        for n in range(num_nodes):
            cells = "".join(
                f"<td style='background:{_HEALTH_COLORS[states[n]]};"
                "padding:.1em .25em'></td>"
                for states in monitor.node_states
            )
            rows.append(f"<tr><td>node{n}</td>{cells}</tr>")
        legend = " ".join(
            f"<span style='color:{color}'>&#9632;</span>&nbsp;{state}"
            for state, color in _HEALTH_COLORS.items()
        )
        out.append(
            f"<h3>node health ({_FLEET_WINDOWS} windows of "
            f"{window_ms:,.1f} ms)</h3>"
            f"<p class='note'>{legend} &mdash; drift detectors on windowed "
            "error rate (bad) and ok-call latency (warn)</p>"
            "<table>" + "".join(rows) + "</table>"
        )

    calls: Dict[tuple, int] = {}
    shards = set()
    for rec in records:
        for ev in rec.get("events", []):  # type: ignore[union-attr]
            if ev.get("kind") != "shard_call" or ev.get("node") is None:
                continue
            key = (int(ev["node"]), int(ev.get("shard", -1)))
            shards.add(key[1])
            calls[key] = calls.get(key, 0) + 1
    if calls:
        shard_cols = sorted(shards)
        peak = max(calls.values())
        header = "".join(f"<th>s{s}</th>" for s in shard_cols)
        rows = []
        for n in nodes:
            cells = []
            for s in shard_cols:
                count = calls.get((n, s), 0)
                alpha = count / peak if peak else 0.0
                cells.append(
                    f"<td style='background:rgba(31,111,235,{alpha:.2f})'>"
                    f"{count or ''}</td>"
                )
            rows.append(f"<tr><td>node{n}</td>{''.join(cells)}</tr>")
        out.append(
            "<h3>shard calls (node x shard)</h3>"
            "<table><tr><th></th>" + header + "</tr>" + "".join(rows)
            + "</table>"
        )

    latencies = sorted(
        float(rec["latency_ms"])  # type: ignore[arg-type]
        for rec in records
        if rec.get("latency_ms") is not None
    )
    if latencies:
        out.append(
            f"<p class='note'>completed latency over {len(latencies):,} "
            f"request(s): p50 {_percentile(latencies, 50.0):,.2f} ms, "
            f"p95 {_percentile(latencies, 95.0):,.2f} ms, "
            f"p99 {_percentile(latencies, 99.0):,.2f} ms</p>"
        )
    else:
        out.append(
            "<p class='note'>completed latency: no completed requests "
            "(percentiles blank)</p>"
        )
    return "".join(out)


def _slo_section(slo_log_path: Path) -> str:
    """Error-budget trajectories and alerts from an --slo-log export."""
    states: Dict[tuple, List[Dict[str, object]]] = {}
    alerts: List[Dict[str, object]] = []
    with open(slo_log_path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("kind") == "slo_state":
                key = (str(rec.get("scenario", "")), str(rec.get("slo", "")))
                states.setdefault(key, []).append(rec)
            elif rec.get("kind") == "alert":
                alerts.append(rec)
    if not states and not alerts:
        return "<h2>error budget</h2><p class='note'>empty SLO log</p>"
    out = ["<h2>error budget</h2>"]
    rows = []
    for (scenario, slo), series in sorted(states.items()):
        budget = [float(s.get("budget_remaining", 1.0)) for s in series]
        burn_peak = max(float(s.get("burn_rate", 0.0)) for s in series)
        fired = sum(
            1
            for a in alerts
            if a.get("state") == "firing"
            and str(a.get("scenario", "")) == scenario
            and str(a.get("name", "")).startswith(f"{slo}:")
        )
        final = budget[-1] if budget else 1.0
        cls = "worse" if final < 0 else ("better" if final >= 0.99 else "flat")
        rows.append(
            "<tr>"
            f"<td>{html.escape(scenario)}</td><td>{html.escape(slo)}</td>"
            f"<td>{_sparkline(budget)}</td>"
            f"<td class='{cls}'>{final:+.3f}</td>"
            f"<td>{burn_peak:,.1f}</td><td>{fired}</td>"
            "</tr>"
        )
    if rows:
        out.append(
            "<table><tr><th>scenario</th><th>SLO</th>"
            "<th>budget remaining</th><th>final</th><th>peak burn</th>"
            "<th>alerts</th></tr>" + "".join(rows) + "</table>"
        )
    firing = [a for a in alerts if a.get("state") == "firing"]
    if firing:
        alert_rows = "".join(
            "<tr>"
            f"<td>{html.escape(str(a.get('scenario', '')))}</td>"
            f"<td>{html.escape(str(a.get('name', '')))}</td>"
            f"<td>{html.escape(str(a.get('source', '')))}</td>"
            f"<td>{float(a.get('t_ms', 0.0)):,.1f}</td>"
            f"<td>{'' if a.get('node') is None else a['node']}</td>"
            "</tr>"
            for a in firing
        )
        out.append(
            f"<h3>alerts fired ({len(firing)})</h3>"
            "<table><tr><th>scenario</th><th>alert</th><th>source</th>"
            "<th>t_ms</th><th>node</th></tr>" + alert_rows + "</table>"
        )
    else:
        out.append("<p class='note'>no alerts fired</p>")
    return "".join(out)


#: Segment-kind colors for the critical-path attribution bars.
_SEGMENT_COLORS = {
    "queue": "#1f6feb",
    "service": "#1f6f3f",
    "penalty": "#b62324",
    "network": "#8b949e",
    "hedge_wait": "#b08800",
    "recovery": "#a371f7",
    "backoff": "#db6d28",
    "other": "#2a3038",
}


def _critpath_section(critpath_log_path: Path) -> str:
    """Attribution bars + what-if table from a --critpath-log export."""
    profiles: List[Dict[str, object]] = []
    whatifs: List[Dict[str, object]] = []
    with open(critpath_log_path) as fh:
        for line in fh:
            line = line.strip()
            if not line:
                continue
            rec = json.loads(line)
            if rec.get("kind") == "critpath_profile":
                profiles.append(rec)
            elif rec.get("kind") == "whatif":
                whatifs.append(rec)
    if not profiles and not whatifs:
        return "<h2>critical path</h2><p class='note'>empty critpath log</p>"
    out = ["<h2>critical path</h2>"]
    if profiles:
        legend = " ".join(
            f"<span style='color:{color}'>&#9632;</span>&nbsp;{kind}"
            for kind, color in _SEGMENT_COLORS.items()
        )
        rows = []
        for prof in profiles:
            scope = str(prof.get("scope", "?"))
            # Node/shard scopes stay in the log; the page shows the
            # fleet-wide and tail breakdowns.
            if not (scope == "overall" or scope.startswith("tail_")):
                continue
            segments: Dict[str, float] = prof.get("segments", {})  # type: ignore[assignment]
            total = float(prof.get("total_ms", 0.0))
            cells = "".join(
                f"<span class='bar' style='background:"
                f"{_SEGMENT_COLORS.get(kind, '#2a3038')};"
                f"width:{240.0 * dur / total:.0f}px' title='{html.escape(kind)}"
                f" {dur:,.1f} ms'></span>"
                for kind, dur in sorted(segments.items(), key=lambda kv: -kv[1])
                if total > 0 and dur > 0
            )
            rows.append(
                "<tr>"
                f"<td>{html.escape(str(prof.get('scenario', '')))}/"
                f"{html.escape(scope)}</td>"
                f"<td>{int(prof.get('requests', 0))}</td>"
                f"<td>{total:,.1f}</td>"
                f"<td>{html.escape(str(prof.get('bottleneck') or '-'))}</td>"
                f"<td style='text-align:left'>{cells}</td>"
                "</tr>"
            )
        out.append(
            f"<p class='note'>{legend}</p>"
            "<table><tr><th>scenario/scope</th><th>requests</th>"
            "<th>total_ms</th><th>bottleneck</th><th>attribution</th></tr>"
            + "".join(rows)
            + "</table>"
        )
    if whatifs:
        rows = []
        for rec in whatifs:
            actual = rec.get("actual")
            predicted = float(rec.get("predicted", 0.0))
            bounds = rec.get("within_bounds")
            cls = "flat" if bounds is None else ("better" if bounds else "worse")
            verdict = "—" if bounds is None else ("ok" if bounds else "MISS")
            rows.append(
                "<tr>"
                f"<td>{html.escape(str(rec.get('scenario', '')))}/"
                f"{html.escape(str(rec.get('knob', '?')))}</td>"
                f"<td>{float(rec.get('value', 0.0)):g}</td>"
                f"<td>{float(rec.get('baseline', 0.0)):,.2f}</td>"
                f"<td>{predicted:,.2f}</td>"
                f"<td>{'—' if actual is None else f'{float(actual):,.2f}'}</td>"
                f"<td class='{cls}'>{verdict}</td>"
                f"<td class='note'>{'est' if rec.get('estimated') else 'exact'}</td>"
                "</tr>"
            )
        out.append(
            "<h3>what-if predictions (p99, ms)</h3>"
            "<table><tr><th>scenario/knob</th><th>value</th>"
            "<th>baseline</th><th>predicted</th><th>actual</th>"
            "<th>verdict</th><th>mode</th></tr>" + "".join(rows) + "</table>"
        )
    return "".join(out)


def render(
    history_path: Optional[Path],
    metrics_path: Optional[Path],
    request_log_path: Optional[Path],
    slo_log_path: Optional[Path] = None,
    critpath_log_path: Optional[Path] = None,
) -> str:
    """The full dashboard HTML document."""
    sections: List[str] = []
    if history_path is not None and history_path.exists():
        sections.append(_bench_section(load_history(history_path)))
    if metrics_path is not None and metrics_path.exists():
        sections.append(_cpi_section(metrics_path))
    if request_log_path is not None and request_log_path.exists():
        sections.append(_requests_section(request_log_path))
        _, records = load_request_log(request_log_path)
        fleet = _fleet_section(records)
        if fleet:
            sections.append(fleet)
    if slo_log_path is not None and slo_log_path.exists():
        sections.append(_slo_section(slo_log_path))
    if critpath_log_path is not None and critpath_log_path.exists():
        sections.append(_critpath_section(critpath_log_path))
    if not sections:
        sections.append("<p class='note'>no artifacts given</p>")
    return (
        "<!doctype html><html><head><meta charset='utf-8'>"
        "<title>repro observatory</title>"
        f"<style>{_STYLE}</style></head><body>"
        "<h1>repro observatory</h1>"
        + "".join(sections)
        + "</body></html>\n"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--history", type=Path, default=DEFAULT_HISTORY,
        help=f"benchmark history JSONL (default {DEFAULT_HISTORY.name})",
    )
    parser.add_argument(
        "--metrics", type=Path, default=None,
        help="metrics JSONL from repro-experiment --metrics",
    )
    parser.add_argument(
        "--request-log", type=Path, default=None,
        help="request-log JSONL from repro-experiment --request-log",
    )
    parser.add_argument(
        "--slo-log", type=Path, default=None,
        help="SLO state/alert JSONL from repro-experiment --slo-log",
    )
    parser.add_argument(
        "--critpath-log", type=Path, default=None,
        help="critical-path/what-if JSONL from repro-experiment "
        "--critpath-log",
    )
    parser.add_argument(
        "--out", type=Path, default=Path("dashboard.html"),
        help="output HTML file (default dashboard.html)",
    )
    args = parser.parse_args(argv)
    page = render(
        args.history, args.metrics, args.request_log, args.slo_log,
        args.critpath_log,
    )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(page)
    print(f"wrote {args.out} ({len(page):,} bytes)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
