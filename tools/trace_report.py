"""Summarize repro.obs artifacts: Chrome traces and metrics JSONL.

The offline half of the telemetry layer — point it at the files written by
``repro-experiment --trace/--metrics`` and it prints the VTune-style
summary views::

    PYTHONPATH=src python tools/trace_report.py t.json
    PYTHONPATH=src python tools/trace_report.py t.json --metrics m.jsonl
    PYTHONPATH=src python tools/trace_report.py t.json --top 20 --validate

Views:

* **top spans** — the N longest simulated spans (cycles), the first thing
  to look at when asking "where did the time go";
* **by name** — aggregate cycles/count per span name across all tracks;
* **wall spans** — real elapsed time of orchestration code;
* with ``--metrics``: the per-stage CPI stack table and every latency
  histogram's count/mean/p50/p95/p99;
* ``--validate`` checks the trace against ``tools/trace_schema.json``
  (exit 1 on violations) — CI runs this on a fresh smoke trace.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.cpi import CPI_BUCKETS, CpiStack, format_cpi_table  # noqa: E402
from repro.obs.schema import validate  # noqa: E402

__all__ = ["main", "load_trace", "summarize"]

SCHEMA_PATH = REPO_ROOT / "tools" / "trace_schema.json"


def load_trace(path: Path) -> dict:
    """Read a Chrome-trace JSON file."""
    with open(path) as fh:
        return json.load(fh)


def _sim_spans(trace: dict) -> List[dict]:
    """Simulated-time spans: pid 2 complete events, excluding track metadata."""
    return [
        e
        for e in trace.get("traceEvents", [])
        if e.get("ph") == "X" and e.get("pid") == 2 and e.get("cat") != "sim.meta"
    ]


def _wall_spans(trace: dict) -> List[dict]:
    """Wall-clock spans: pid 1 complete events."""
    return [
        e for e in trace.get("traceEvents", []) if e.get("ph") == "X" and e.get("pid") == 1
    ]


def _table(header: List[str], rows: List[List[str]]) -> str:
    """Right-aligned text table (first column left-aligned)."""
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    out = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        cells = [r[0].ljust(widths[0])] + [
            c.rjust(w) for c, w in zip(r[1:], widths[1:])
        ]
        out.append("  ".join(cells))
    return "\n".join(out)


def summarize(trace: dict, top: int = 10) -> str:
    """The text report for one trace dict."""
    sections: List[str] = []
    sim = _sim_spans(trace)
    wall = _wall_spans(trace)
    dropped = trace.get("otherData", {}).get("dropped_events", 0)

    sections.append(
        f"trace: {len(sim)} sim spans, {len(wall)} wall spans, "
        f"{dropped} dropped"
    )

    if sim:
        by_dur = sorted(sim, key=lambda e: e.get("dur", 0.0), reverse=True)[:top]
        rows = [
            [
                str(e.get("name", "?")),
                str(e.get("cat", "")),
                str(e.get("tid", 0)),
                f"{e.get('ts', 0.0):,.0f}",
                f"{e.get('dur', 0.0):,.0f}",
            ]
            for e in by_dur
        ]
        sections.append(
            f"== top {len(rows)} sim spans by cycles ==\n"
            + _table(["name", "category", "tid", "start_cycles", "cycles"], rows)
        )

        agg: Dict[str, List[float]] = defaultdict(lambda: [0.0, 0])
        for e in sim:
            entry = agg[str(e.get("name", "?"))]
            entry[0] += float(e.get("dur", 0.0))
            entry[1] += 1
        agg_rows = [
            [name, f"{total:,.0f}", str(int(count))]
            for name, (total, count) in sorted(
                agg.items(), key=lambda kv: kv[1][0], reverse=True
            )[:top]
        ]
        sections.append(
            "== sim cycles by span name ==\n"
            + _table(["name", "total_cycles", "spans"], agg_rows)
        )

    if wall:
        wall_rows = [
            [
                str(e.get("name", "?")),
                f"{e.get('dur', 0.0) / 1000.0:,.1f}",
                str(e.get("args", {}).get("depth", "")),
            ]
            for e in sorted(wall, key=lambda e: e.get("dur", 0.0), reverse=True)[:top]
        ]
        sections.append(
            "== wall spans (ms) ==\n" + _table(["name", "ms", "depth"], wall_rows)
        )

    return "\n\n".join(sections)


def load_metrics(path: Path) -> List[dict]:
    """Read a metrics JSONL file (one metric record per line)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize_metrics(records: List[dict]) -> str:
    """CPI stacks and histogram summaries from exported metric records."""
    sections: List[str] = []

    cycles: Dict[str, float] = {}
    buckets: Dict[str, Dict[str, float]] = defaultdict(dict)
    for rec in records:
        name, labels = rec.get("name", ""), rec.get("labels", {})
        stage = labels.get("stage")
        if stage is None:
            continue
        if name == "core.cycles":
            cycles[stage] = float(rec.get("value", 0.0))
        elif name.startswith("core.cpi."):
            buckets[stage][name[len("core.cpi."):]] = float(rec.get("value", 0.0))
    if cycles:
        stacks = [
            CpiStack(stage, total, {b: buckets[stage].get(b, 0.0) for b in CPI_BUCKETS})
            for stage, total in cycles.items()
        ]
        stacks.sort(key=lambda s: s.total_cycles, reverse=True)
        sections.append("== CPI stacks ==\n" + format_cpi_table(stacks))

    hist_rows = []
    for rec in records:
        if rec.get("type") != "histogram" or not rec.get("count"):
            continue
        label_str = ",".join(f"{k}={v}" for k, v in sorted(rec.get("labels", {}).items()))
        display = rec["name"] + (f"{{{label_str}}}" if label_str else "")
        mean = rec["sum"] / rec["count"]
        hist_rows.append(
            [
                display,
                f"{rec['count']:,}",
                f"{mean:,.1f}",
                f"{rec.get('p50', 0.0):,.1f}",
                f"{rec.get('p95', 0.0):,.1f}",
                f"{rec.get('p99', 0.0):,.1f}",
            ]
        )
    if hist_rows:
        sections.append(
            "== latency histograms ==\n"
            + _table(["histogram", "count", "mean", "p50", "p95", "p99"], hist_rows)
        )

    counters = sum(1 for r in records if r.get("type") == "counter")
    gauges = sum(1 for r in records if r.get("type") == "gauge")
    hists = sum(1 for r in records if r.get("type") == "histogram")
    sections.append(f"metrics: {counters} counters, {gauges} gauges, {hists} histograms")
    return "\n\n".join(sections)


def main(argv: Optional[List[str]] = None) -> int:
    """CLI main; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="trace_report",
        description="Summarize repro.obs Chrome traces and metrics JSONL.",
    )
    parser.add_argument("trace", type=Path, help="Chrome-trace JSON from --trace")
    parser.add_argument(
        "--metrics", type=Path, default=None, help="metrics JSONL from --metrics"
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="N", help="rows per table (default 10)"
    )
    parser.add_argument(
        "--validate", action="store_true",
        help=f"validate the trace against {SCHEMA_PATH.name}; exit 1 on violations",
    )
    args = parser.parse_args(argv)

    trace = load_trace(args.trace)
    if args.validate:
        schema = json.loads(SCHEMA_PATH.read_text())
        errors = validate(trace, schema)
        if errors:
            print(f"{args.trace}: {len(errors)} schema violation(s):", file=sys.stderr)
            for err in errors[:20]:
                print(f"  {err}", file=sys.stderr)
            return 1
        print(f"{args.trace}: schema OK")

    print(summarize(trace, top=args.top))
    if args.metrics is not None:
        print()
        print(summarize_metrics(load_metrics(args.metrics)))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
