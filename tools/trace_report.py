"""Summarize repro.obs artifacts: traces, metrics, and request logs.

The offline half of the telemetry layer — point it at the files written by
``repro-experiment --trace/--metrics/--request-log`` and it prints the
VTune-style summary views::

    PYTHONPATH=src python tools/trace_report.py t.json
    PYTHONPATH=src python tools/trace_report.py t.json --metrics m.jsonl
    PYTHONPATH=src python tools/trace_report.py t.json --top 20 --validate
    PYTHONPATH=src python tools/trace_report.py --requests req.jsonl

Views:

* **top spans** — the N longest simulated spans (cycles), the first thing
  to look at when asking "where did the time go";
* **by name** — aggregate cycles/count per span name across all tracks;
* **wall spans** — real elapsed time of orchestration code;
* with ``--metrics``: the per-stage CPI stack table and every latency
  histogram's count/mean/p50/p95/p99;
* with ``--requests``: the slowest-N request timelines (every lifecycle
  event, simulated ms) and the SLA-miss attribution table — queueing vs
  slow service vs faults vs retries vs admission control;
* with ``--fleet``: the fleet view of a cluster trace — request
  outcomes, per-node attempt/hedge accounting, router decision counts,
  and the slowest request span envelopes (from the ``fleet.*`` spans a
  traced cluster run emits);
* with ``--critpath``: critical-path attribution computed from the
  ``--requests`` log — per-scope "where does the time go" profiles
  (overall, p99 tail, per node/shard) and the conservation check;
* with ``--critpath-log``: the profiles and what-if predictions an
  experiment exported (``repro-experiment critpath_observatory
  --critpath-log``), validated against ``$defs.critpath_record`` /
  ``$defs.whatif_record`` under ``--validate``;
* ``--format json`` emits every requested view as one machine-readable
  JSON document instead of text tables;
* ``--validate`` checks the trace against ``tools/trace_schema.json``
  and each request-log line against its ``$defs.request_event`` (exit 1
  on violations) — CI runs this on fresh smoke artifacts.
"""

from __future__ import annotations

import argparse
import json
import sys
from collections import defaultdict
from pathlib import Path
from typing import Dict, List, Optional

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.cpi import CPI_BUCKETS, CpiStack, format_cpi_table  # noqa: E402
from repro.obs.critpath import (  # noqa: E402
    check_conservation,
    extract_paths,
    aggregate_profiles,
)
from repro.obs.requests import (  # noqa: E402
    attribute_miss,
    load_request_log,
    miss_attribution,
)
from repro.obs.schema import validate, validate_def  # noqa: E402

__all__ = [
    "main",
    "load_trace",
    "summarize",
    "summarize_critpath",
    "summarize_fleet",
    "summarize_requests",
    "summarize_slo",
]

SCHEMA_PATH = REPO_ROOT / "tools" / "trace_schema.json"


def load_trace(path: Path) -> dict:
    """Read a Chrome-trace JSON file."""
    with open(path) as fh:
        return json.load(fh)


def _sim_spans(trace: dict) -> List[dict]:
    """Simulated-time spans: pid 2 complete events, excluding track metadata."""
    return [
        e
        for e in trace.get("traceEvents", [])
        if e.get("ph") == "X" and e.get("pid") == 2 and e.get("cat") != "sim.meta"
    ]


def _wall_spans(trace: dict) -> List[dict]:
    """Wall-clock spans: pid 1 complete events."""
    return [
        e for e in trace.get("traceEvents", []) if e.get("ph") == "X" and e.get("pid") == 1
    ]


def _table(header: List[str], rows: List[List[str]]) -> str:
    """Right-aligned text table (first column left-aligned)."""
    widths = [
        max(len(header[i]), *(len(r[i]) for r in rows)) if rows else len(header[i])
        for i in range(len(header))
    ]
    out = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for r in rows:
        cells = [r[0].ljust(widths[0])] + [
            c.rjust(w) for c, w in zip(r[1:], widths[1:])
        ]
        out.append("  ".join(cells))
    return "\n".join(out)


def summarize(trace: dict, top: int = 10) -> str:
    """The text report for one trace dict."""
    sections: List[str] = []
    sim = _sim_spans(trace)
    wall = _wall_spans(trace)
    dropped = trace.get("otherData", {}).get("dropped_events", 0)

    sections.append(
        f"trace: {len(sim)} sim spans, {len(wall)} wall spans, "
        f"{dropped} dropped"
    )

    if sim:
        by_dur = sorted(sim, key=lambda e: e.get("dur", 0.0), reverse=True)[:top]
        rows = [
            [
                str(e.get("name", "?")),
                str(e.get("cat", "")),
                str(e.get("tid", 0)),
                f"{e.get('ts', 0.0):,.0f}",
                f"{e.get('dur', 0.0):,.0f}",
            ]
            for e in by_dur
        ]
        sections.append(
            f"== top {len(rows)} sim spans by cycles ==\n"
            + _table(["name", "category", "tid", "start_cycles", "cycles"], rows)
        )

        agg: Dict[str, List[float]] = defaultdict(lambda: [0.0, 0])
        for e in sim:
            entry = agg[str(e.get("name", "?"))]
            entry[0] += float(e.get("dur", 0.0))
            entry[1] += 1
        agg_rows = [
            [name, f"{total:,.0f}", str(int(count))]
            for name, (total, count) in sorted(
                agg.items(), key=lambda kv: kv[1][0], reverse=True
            )[:top]
        ]
        sections.append(
            "== sim cycles by span name ==\n"
            + _table(["name", "total_cycles", "spans"], agg_rows)
        )

    if wall:
        wall_rows = [
            [
                str(e.get("name", "?")),
                f"{e.get('dur', 0.0) / 1000.0:,.1f}",
                str(e.get("args", {}).get("depth", "")),
            ]
            for e in sorted(wall, key=lambda e: e.get("dur", 0.0), reverse=True)[:top]
        ]
        sections.append(
            "== wall spans (ms) ==\n" + _table(["name", "ms", "depth"], wall_rows)
        )

    return "\n\n".join(sections)


def load_metrics(path: Path) -> List[dict]:
    """Read a metrics JSONL file (one metric record per line)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def summarize_metrics(records: List[dict]) -> str:
    """CPI stacks and histogram summaries from exported metric records."""
    sections: List[str] = []

    cycles: Dict[str, float] = {}
    buckets: Dict[str, Dict[str, float]] = defaultdict(dict)
    for rec in records:
        name, labels = rec.get("name", ""), rec.get("labels", {})
        stage = labels.get("stage")
        if stage is None:
            continue
        if name == "core.cycles":
            cycles[stage] = float(rec.get("value", 0.0))
        elif name.startswith("core.cpi."):
            buckets[stage][name[len("core.cpi."):]] = float(rec.get("value", 0.0))
    if cycles:
        stacks = [
            CpiStack(stage, total, {b: buckets[stage].get(b, 0.0) for b in CPI_BUCKETS})
            for stage, total in cycles.items()
        ]
        stacks.sort(key=lambda s: s.total_cycles, reverse=True)
        sections.append("== CPI stacks ==\n" + format_cpi_table(stacks))

    hist_rows = []
    for rec in records:
        if rec.get("type") != "histogram" or not rec.get("count"):
            continue
        label_str = ",".join(f"{k}={v}" for k, v in sorted(rec.get("labels", {}).items()))
        display = rec["name"] + (f"{{{label_str}}}" if label_str else "")
        mean = rec["sum"] / rec["count"]
        hist_rows.append(
            [
                display,
                f"{rec['count']:,}",
                f"{mean:,.1f}",
                f"{rec.get('p50', 0.0):,.1f}",
                f"{rec.get('p95', 0.0):,.1f}",
                f"{rec.get('p99', 0.0):,.1f}",
            ]
        )
    if hist_rows:
        sections.append(
            "== latency histograms ==\n"
            + _table(["histogram", "count", "mean", "p50", "p95", "p99"], hist_rows)
        )

    counters = sum(1 for r in records if r.get("type") == "counter")
    gauges = sum(1 for r in records if r.get("type") == "gauge")
    hists = sum(1 for r in records if r.get("type") == "histogram")
    sections.append(f"metrics: {counters} counters, {gauges} gauges, {hists} histograms")
    return "\n\n".join(sections)


def _fmt_ms(value: object) -> str:
    """Milliseconds for the timeline tables; '-' for absent values."""
    if value is None:
        return "-"
    return f"{float(value):,.2f}"


def _fmt_nodes(rec: dict) -> str:
    """The serving node(s) of one request record; '-' for a single box.

    Cluster records carry the sorted node set every shard call of the
    request touched; single-box records have no node identity.
    """
    nodes = rec.get("nodes")
    if nodes:
        return ",".join(str(n) for n in nodes)
    if rec.get("node") is not None:
        return str(rec["node"])
    return "-"


def summarize_requests(meta: dict, records: List[dict], top: int = 10) -> str:
    """Slowest-N request timelines and the SLA-miss attribution table."""
    sections: List[str] = []
    sections.append(
        f"request log: {meta.get('runs', '?')} run(s), "
        f"{meta.get('requests', len(records))} request(s), "
        f"{meta.get('dropped', 0)} dropped"
    )
    if not records:
        return sections[0]

    attribution = miss_attribution(records)
    total_missed = sum(attribution.values())
    if attribution:
        # Stable render order: biggest cause first, name breaks ties —
        # independent of record order, so diffs across runs are clean.
        rows = [
            [cause, str(count), f"{100.0 * count / total_missed:.1f}%"]
            for cause, count in sorted(
                attribution.items(), key=lambda kv: (-kv[1], kv[0])
            )
        ]
        rows.append(["total", str(total_missed), "100.0%"])
        sections.append(
            "== SLA-miss attribution ==\n"
            + _table(["cause", "requests", "share"], rows)
        )
    else:
        sections.append("SLA-miss attribution: every request met its deadline")

    # Slowest timelines: completed requests by latency, then every
    # non-completed request (whose "latency" is its time in the system).
    def span_ms(rec: dict) -> float:
        if rec.get("latency_ms") is not None:
            return float(rec["latency_ms"])
        return float(rec.get("end_ms", 0.0)) - float(rec.get("arrival_ms", 0.0))

    slowest = sorted(records, key=span_ms, reverse=True)[:top]
    lines: List[str] = [f"== slowest {len(slowest)} requests =="]
    for rank, rec in enumerate(slowest, 1):
        cause = attribute_miss(rec)
        head = (
            f"#{rank} id={rec.get('id')} label={rec.get('label')} "
            f"outcome={rec.get('outcome')} "
            f"in_system={span_ms(rec):,.2f}ms "
            f"wait={_fmt_ms(rec.get('wait_ms'))}ms "
            f"service={_fmt_ms(rec.get('service_ms'))}ms "
            f"core={rec.get('core') if rec.get('core') is not None else '-'} "
            f"node={_fmt_nodes(rec)} "
            f"retries={rec.get('retries', 0)}"
        )
        if rec.get("failovers"):
            head += f" failovers={rec['failovers']}"
        if rec.get("hedges"):
            head += (
                f" hedges={rec['hedges']}"
                f" hedges_wasted={rec.get('hedges_wasted', 0)}"
            )
        if cause is not None:
            head += f" miss_cause={cause}"
        if rec.get("fault_windows"):
            head += f" faults={','.join(rec['fault_windows'])}"
        lines.append(head)
        for event in rec.get("events", []):
            attrs = ", ".join(
                f"{k}={v}"
                for k, v in event.items()
                if k not in ("kind", "t_ms") and v is not None
            )
            lines.append(
                f"    {float(event.get('t_ms', 0.0)):>12,.3f}ms  "
                f"{event.get('kind')}"
                + (f"  ({attrs})" if attrs else "")
            )
    sections.append("\n".join(lines))
    return "\n\n".join(sections)


def _fleet_spans(trace: dict) -> List[dict]:
    """Fleet-trace spans (categories ``fleet.*``) from a Chrome trace."""
    return [
        e
        for e in trace.get("traceEvents", [])
        if e.get("ph") == "X" and str(e.get("cat", "")).startswith("fleet.")
    ]


def summarize_fleet(trace: dict, top: int = 10) -> str:
    """Fleet view of a cluster trace: per-node attempts + router behaviour.

    Everything comes from the merged span forest the cluster emitted
    (``fleet.request`` / ``fleet.gather`` / ``fleet.route`` /
    ``fleet.attempt`` categories), so the table is exactly the span tree
    a distributed tracer would show — outcomes per node, hedge win/waste
    accounting, and why the router was consulted.
    """
    spans = _fleet_spans(trace)
    if not spans:
        return (
            "fleet: no fleet spans in this trace "
            "(run a cluster experiment with --trace)"
        )
    requests = [e for e in spans if e.get("cat") == "fleet.request"]
    attempts = [e for e in spans if e.get("cat") == "fleet.attempt"]
    routes = [e for e in spans if e.get("cat") == "fleet.route"]
    sections: List[str] = [
        f"fleet: {len(requests)} request(s), {len(attempts)} attempt(s), "
        f"{len(routes)} route decision(s)"
    ]

    outcomes: Dict[str, int] = defaultdict(int)
    for e in requests:
        outcomes[str(e.get("args", {}).get("outcome", "?"))] += 1
    sections.append(
        "== request outcomes ==\n"
        + _table(
            ["outcome", "requests"],
            [
                [name, str(count)]
                for name, count in sorted(
                    outcomes.items(), key=lambda kv: (-kv[1], kv[0])
                )
            ],
        )
    )

    per_node: Dict[int, Dict[str, float]] = defaultdict(
        lambda: {"attempts": 0, "ok": 0, "failed": 0, "hedges": 0,
                 "wasted": 0, "ms": 0.0, "max_ms": 0.0}
    )
    for e in attempts:
        args = e.get("args", {})
        node = int(args.get("node", -1))
        stats = per_node[node]
        stats["attempts"] += 1
        if args.get("outcome") == "ok":
            stats["ok"] += 1
            if args.get("winner") is False:
                stats["wasted"] += 1
        else:
            stats["failed"] += 1
        if args.get("hedge"):
            stats["hedges"] += 1
        dur = float(e.get("dur", 0.0))
        stats["ms"] += dur
        stats["max_ms"] = max(stats["max_ms"], dur)
    node_rows = [
        [
            f"node{node}",
            str(int(s["attempts"])),
            str(int(s["ok"])),
            str(int(s["failed"])),
            str(int(s["hedges"])),
            str(int(s["wasted"])),
            f"{s['ms'] / s['attempts']:,.2f}" if s["attempts"] else "-",
            f"{s['max_ms']:,.2f}",
        ]
        for node, s in sorted(per_node.items())
    ]
    sections.append(
        "== per-node attempts ==\n"
        + _table(
            ["node", "attempts", "ok", "failed", "hedged", "wasted",
             "mean_ms", "max_ms"],
            node_rows,
        )
    )

    reasons: Dict[str, List[int]] = defaultdict(lambda: [0, 0])
    for e in routes:
        args = e.get("args", {})
        entry = reasons[str(args.get("reason", "?"))]
        entry[0] += 1
        if args.get("chosen") is None:
            entry[1] += 1
    sections.append(
        "== router decisions ==\n"
        + _table(
            ["reason", "decisions", "no_replica"],
            [
                [reason, str(total), str(missed)]
                for reason, (total, missed) in sorted(reasons.items())
            ],
        )
    )

    slowest = sorted(
        requests, key=lambda e: float(e.get("dur", 0.0)), reverse=True
    )[:top]
    slow_rows = [
        [
            str(e.get("args", {}).get("span_id", "?")),
            str(e.get("args", {}).get("outcome", "?")),
            f"{float(e.get('ts', 0.0)):,.2f}",
            f"{float(e.get('dur', 0.0)):,.2f}",
        ]
        for e in slowest
    ]
    sections.append(
        f"== slowest {len(slow_rows)} requests (span envelope, ms) ==\n"
        + _table(["span_id", "outcome", "start_ms", "ms"], slow_rows)
    )
    return "\n\n".join(sections)


def summarize_slo(lines: List[dict]) -> str:
    """Per-(scenario, SLO) budget summary + alert list from an SLO log."""
    states: Dict[tuple, List[dict]] = defaultdict(list)
    alerts: List[dict] = []
    for rec in lines:
        if rec.get("kind") == "slo_state":
            states[
                (str(rec.get("scenario", "")), str(rec.get("slo", "")))
            ].append(rec)
        elif rec.get("kind") == "alert":
            alerts.append(rec)
    sections: List[str] = []
    if states:
        rows = []
        for (scenario, slo), series in sorted(states.items()):
            fired = sum(
                1
                for a in alerts
                if a.get("state") == "firing"
                and str(a.get("scenario", "")) == scenario
                and str(a.get("name", "")).startswith(f"{slo}:")
            )
            rows.append(
                [
                    f"{scenario}/{slo}",
                    str(len(series)),
                    f"{min(float(s.get('compliance', 1.0)) for s in series):.3f}",
                    f"{max(float(s.get('burn_rate', 0.0)) for s in series):,.1f}",
                    f"{float(series[-1].get('budget_remaining', 1.0)):+.3f}",
                    str(fired),
                ]
            )
        sections.append(
            "== SLO error budgets ==\n"
            + _table(
                ["scenario/SLO", "windows", "min_compliance", "peak_burn",
                 "budget_final", "alerts"],
                rows,
            )
        )
    firing = [a for a in alerts if a.get("state") == "firing"]
    if firing:
        rows = [
            [
                str(a.get("scenario", "")),
                str(a.get("name", "")),
                str(a.get("source", "")),
                f"{float(a.get('t_ms', 0.0)):,.1f}",
                "-" if a.get("node") is None else str(a["node"]),
            ]
            for a in firing
        ]
        sections.append(
            f"== alerts fired ({len(firing)}) ==\n"
            + _table(["scenario", "alert", "source", "t_ms", "node"], rows)
        )
    else:
        sections.append("alerts: none fired")
    return "\n\n".join(sections)


def critpath_from_requests(records: List[dict], top: int = 10) -> List[dict]:
    """Profile records (plus a conservation line) computed from a request log."""
    paths = extract_paths(records)
    violations = sum(1 for p in paths if check_conservation(p) != 0.0)
    profiles = aggregate_profiles(paths)
    return [
        {
            "kind": "critpath_conservation",
            "requests": len(paths),
            "violations": violations,
        }
    ] + profiles


def summarize_critpath(lines: List[dict], top: int = 10) -> str:
    """Profile + what-if tables from critpath records (log or computed)."""
    profiles = [r for r in lines if r.get("kind") == "critpath_profile"]
    whatifs = [r for r in lines if r.get("kind") == "whatif"]
    conservation = [
        r for r in lines if r.get("kind") == "critpath_conservation"
    ]
    sections: List[str] = []
    for rec in conservation:
        sections.append(
            f"conservation: {rec.get('requests', 0)} request(s), "
            f"{rec.get('violations', 0)} violation(s)"
        )
    if profiles:
        rows = []
        for prof in profiles:
            segments: Dict[str, float] = prof.get("segments", {})
            total = float(prof.get("total_ms", 0.0)) or 1.0
            breakdown = " ".join(
                f"{kind}={dur:,.1f}({100.0 * dur / total:.0f}%)"
                for kind, dur in sorted(
                    segments.items(), key=lambda kv: -kv[1]
                )[:3]
            )
            rows.append(
                [
                    f"{prof.get('scenario', '')}/{prof.get('scope', '?')}",
                    str(prof.get("requests", 0)),
                    f"{float(prof.get('total_ms', 0.0)):,.1f}",
                    str(prof.get("bottleneck") or "-"),
                    breakdown,
                ]
            )
        sections.append(
            "== critical-path profiles (where does the time go) ==\n"
            + _table(
                ["scenario/scope", "requests", "total_ms", "bottleneck",
                 "top segments (ms, share)"],
                rows,
            )
        )
    if whatifs:
        rows = []
        for rec in whatifs:
            actual = rec.get("actual")
            predicted = float(rec.get("predicted", 0.0))
            delta = (
                f"{100.0 * (predicted - float(actual)) / float(actual):+.1f}%"
                if actual
                else "-"
            )
            bounds = rec.get("within_bounds")
            rows.append(
                [
                    f"{rec.get('scenario', '')}/{rec.get('knob', '?')}",
                    f"{float(rec.get('value', 0.0)):g}",
                    f"{float(rec.get('baseline', 0.0)):,.2f}",
                    f"{predicted:,.2f}",
                    "-" if actual is None else f"{float(actual):,.2f}",
                    delta,
                    "-" if bounds is None else str(bool(bounds)),
                    "yes" if rec.get("estimated") else "no",
                ]
            )
        sections.append(
            "== what-if predictions (p99, ms) ==\n"
            + _table(
                ["scenario/knob", "value", "baseline", "predicted",
                 "actual", "delta", "in_bounds", "estimated"],
                rows,
            )
        )
    if not sections:
        sections.append("critpath: no critpath_profile or whatif records")
    return "\n\n".join(sections)


# -- machine-readable (--format json) ----------------------------------------


def trace_data(trace: dict, top: int = 10) -> dict:
    """The trace view as plain data (what ``summarize`` prints)."""
    sim = _sim_spans(trace)
    wall = _wall_spans(trace)
    agg: Dict[str, List[float]] = defaultdict(lambda: [0.0, 0])
    for e in sim:
        entry = agg[str(e.get("name", "?"))]
        entry[0] += float(e.get("dur", 0.0))
        entry[1] += 1
    return {
        "sim_spans": len(sim),
        "wall_spans": len(wall),
        "dropped": trace.get("otherData", {}).get("dropped_events", 0),
        "top_sim_spans": [
            {
                "name": e.get("name"),
                "category": e.get("cat"),
                "tid": e.get("tid"),
                "start": e.get("ts", 0.0),
                "cycles": e.get("dur", 0.0),
            }
            for e in sorted(
                sim, key=lambda e: e.get("dur", 0.0), reverse=True
            )[:top]
        ],
        "by_name": [
            {"name": name, "total_cycles": total, "spans": int(count)}
            for name, (total, count) in sorted(
                agg.items(), key=lambda kv: kv[1][0], reverse=True
            )[:top]
        ],
        "wall": [
            {"name": e.get("name"), "ms": float(e.get("dur", 0.0)) / 1000.0}
            for e in sorted(
                wall, key=lambda e: e.get("dur", 0.0), reverse=True
            )[:top]
        ],
    }


def fleet_data(trace: dict, top: int = 10) -> dict:
    """The fleet view as plain data (what ``summarize_fleet`` prints)."""
    spans = _fleet_spans(trace)
    requests = [e for e in spans if e.get("cat") == "fleet.request"]
    attempts = [e for e in spans if e.get("cat") == "fleet.attempt"]
    routes = [e for e in spans if e.get("cat") == "fleet.route"]
    outcomes: Dict[str, int] = defaultdict(int)
    for e in requests:
        outcomes[str(e.get("args", {}).get("outcome", "?"))] += 1
    per_node: Dict[int, Dict[str, float]] = defaultdict(
        lambda: {"attempts": 0, "ok": 0, "failed": 0, "hedges": 0,
                 "wasted": 0, "ms": 0.0}
    )
    for e in attempts:
        args = e.get("args", {})
        stats = per_node[int(args.get("node", -1))]
        stats["attempts"] += 1
        if args.get("outcome") == "ok":
            stats["ok"] += 1
            if args.get("winner") is False:
                stats["wasted"] += 1
        else:
            stats["failed"] += 1
        if args.get("hedge"):
            stats["hedges"] += 1
        stats["ms"] += float(e.get("dur", 0.0))
    reasons: Dict[str, List[int]] = defaultdict(lambda: [0, 0])
    for e in routes:
        args = e.get("args", {})
        entry = reasons[str(args.get("reason", "?"))]
        entry[0] += 1
        if args.get("chosen") is None:
            entry[1] += 1
    return {
        "requests": len(requests),
        "attempts": len(attempts),
        "routes": len(routes),
        "outcomes": dict(outcomes),
        "per_node": {
            str(node): stats for node, stats in sorted(per_node.items())
        },
        "router": {
            reason: {"decisions": total, "no_replica": missed}
            for reason, (total, missed) in sorted(reasons.items())
        },
        "slowest": [
            {
                "span_id": e.get("args", {}).get("span_id"),
                "outcome": e.get("args", {}).get("outcome"),
                "start_ms": float(e.get("ts", 0.0)),
                "ms": float(e.get("dur", 0.0)),
            }
            for e in sorted(
                requests, key=lambda e: float(e.get("dur", 0.0)), reverse=True
            )[:top]
        ],
    }


def requests_data(meta: dict, records: List[dict], top: int = 10) -> dict:
    """The request-log view as plain data."""

    def span_ms(rec: dict) -> float:
        if rec.get("latency_ms") is not None:
            return float(rec["latency_ms"])
        return float(rec.get("end_ms", 0.0)) - float(rec.get("arrival_ms", 0.0))

    return {
        "meta": meta,
        "miss_attribution": miss_attribution(records),
        "slowest": [
            {
                "id": rec.get("id"),
                "outcome": rec.get("outcome"),
                "in_system_ms": span_ms(rec),
                "retries": rec.get("retries", 0),
                "miss_cause": attribute_miss(rec),
            }
            for rec in sorted(records, key=span_ms, reverse=True)[:top]
        ],
    }


def slo_data(lines: List[dict]) -> dict:
    """The SLO-log view as plain data."""
    states: Dict[tuple, List[dict]] = defaultdict(list)
    alerts: List[dict] = []
    for rec in lines:
        if rec.get("kind") == "slo_state":
            states[
                (str(rec.get("scenario", "")), str(rec.get("slo", "")))
            ].append(rec)
        elif rec.get("kind") == "alert":
            alerts.append(rec)
    return {
        "budgets": [
            {
                "scenario": scenario,
                "slo": slo,
                "windows": len(series),
                "min_compliance": min(
                    float(s.get("compliance", 1.0)) for s in series
                ),
                "peak_burn": max(
                    float(s.get("burn_rate", 0.0)) for s in series
                ),
                "budget_final": float(series[-1].get("budget_remaining", 1.0)),
            }
            for (scenario, slo), series in sorted(states.items())
        ],
        "alerts": [a for a in alerts if a.get("state") == "firing"],
    }


def critpath_data(lines: List[dict]) -> dict:
    """The critpath view as plain data (profiles + what-if records)."""
    return {
        "conservation": [
            r for r in lines if r.get("kind") == "critpath_conservation"
        ],
        "profiles": [r for r in lines if r.get("kind") == "critpath_profile"],
        "whatif": [r for r in lines if r.get("kind") == "whatif"],
    }


def main(argv: Optional[List[str]] = None) -> int:
    """CLI main; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="trace_report",
        description="Summarize repro.obs traces, metrics, and request logs.",
    )
    parser.add_argument(
        "trace", type=Path, nargs="?", default=None,
        help="Chrome-trace JSON from --trace (optional with --requests)",
    )
    parser.add_argument(
        "--metrics", type=Path, default=None, help="metrics JSONL from --metrics"
    )
    parser.add_argument(
        "--requests", type=Path, default=None, metavar="FILE",
        help="request-log JSONL from --request-log: print slowest-N "
        "timelines and the SLA-miss attribution table",
    )
    parser.add_argument(
        "--slo", type=Path, default=None, metavar="FILE",
        help="SLO log JSONL from --slo-log: print per-SLO budget/alert "
        "summaries (with --validate, check every line against "
        "$defs.slo_state / $defs.alert_event)",
    )
    parser.add_argument(
        "--fleet", action="store_true",
        help="also print the fleet view of a cluster trace: per-node "
        "attempt/outcome tables, router decision counts, and the "
        "slowest request span envelopes",
    )
    parser.add_argument(
        "--critpath", action="store_true",
        help="with --requests: extract every request's critical path, "
        "check the conservation invariant, and print the per-scope "
        "attribution profiles",
    )
    parser.add_argument(
        "--critpath-log", type=Path, default=None, metavar="FILE",
        help="critpath log JSONL from --critpath-log: print the "
        "attribution profiles and what-if prediction table (with "
        "--validate, check every line against $defs.critpath_record / "
        "$defs.whatif_record)",
    )
    parser.add_argument(
        "--top", type=int, default=10, metavar="N", help="rows per table (default 10)"
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="output format: human tables (text, default) or one "
        "machine-readable JSON document covering every requested view",
    )
    parser.add_argument(
        "--validate", action="store_true",
        help=f"validate artifacts against {SCHEMA_PATH.name}; exit 1 on violations",
    )
    args = parser.parse_args(argv)
    if (
        args.trace is None
        and args.requests is None
        and args.slo is None
        and args.critpath_log is None
    ):
        parser.error(
            "give a trace file, --requests FILE, --slo FILE, "
            "--critpath-log FILE, or any mix"
        )
    if args.critpath and args.requests is None:
        parser.error("--critpath needs --requests FILE")

    schema = json.loads(SCHEMA_PATH.read_text()) if args.validate else None
    as_json = args.format == "json"
    outputs: List[str] = []
    document: Dict[str, object] = {}

    if args.trace is not None:
        trace = load_trace(args.trace)
        if schema is not None:
            errors = validate(trace, schema)
            if errors:
                print(
                    f"{args.trace}: {len(errors)} schema violation(s):",
                    file=sys.stderr,
                )
                for err in errors[:20]:
                    print(f"  {err}", file=sys.stderr)
                return 1
            # In json mode diagnostics go to stderr so stdout stays one
            # parseable document.
            print(
                f"{args.trace}: schema OK",
                file=sys.stderr if as_json else sys.stdout,
            )
        if as_json:
            document["trace"] = trace_data(trace, top=args.top)
            if args.fleet:
                document["fleet"] = fleet_data(trace, top=args.top)
        else:
            outputs.append(summarize(trace, top=args.top))
            if args.fleet:
                outputs.append(summarize_fleet(trace, top=args.top))
        if args.metrics is not None:
            metrics = load_metrics(args.metrics)
            if as_json:
                document["metrics"] = metrics
            else:
                outputs.append(summarize_metrics(metrics))

    if args.requests is not None:
        meta, records = load_request_log(args.requests)
        if schema is not None:
            errors = []
            for i, rec in enumerate(records):
                for err in validate_def(rec, schema, "request_event"):
                    errors.append(f"line {i + 2}: {err}")
            if errors:
                print(
                    f"{args.requests}: {len(errors)} schema violation(s):",
                    file=sys.stderr,
                )
                for err in errors[:20]:
                    print(f"  {err}", file=sys.stderr)
                return 1
            print(
                f"{args.requests}: schema OK",
                file=sys.stderr if as_json else sys.stdout,
            )
        if as_json:
            document["requests"] = requests_data(meta, records, top=args.top)
        else:
            outputs.append(summarize_requests(meta, records, top=args.top))
        if args.critpath:
            critpath_lines = critpath_from_requests(records, top=args.top)
            if as_json:
                document["critpath"] = critpath_data(critpath_lines)
            else:
                outputs.append(summarize_critpath(critpath_lines, top=args.top))

    if args.slo is not None:
        lines = []
        with open(args.slo) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    lines.append(json.loads(line))
        if schema is not None:
            errors = []
            defs = {"slo_state": "slo_state", "alert": "alert_event"}
            for i, rec in enumerate(lines):
                def_name = defs.get(str(rec.get("kind")))
                if def_name is None:
                    continue  # meta/unknown lines are out of contract
                for err in validate_def(rec, schema, def_name):
                    errors.append(f"line {i + 1}: {err}")
            if errors:
                print(
                    f"{args.slo}: {len(errors)} schema violation(s):",
                    file=sys.stderr,
                )
                for err in errors[:20]:
                    print(f"  {err}", file=sys.stderr)
                return 1
            print(
                f"{args.slo}: schema OK",
                file=sys.stderr if as_json else sys.stdout,
            )
        if as_json:
            document["slo"] = slo_data(lines)
        else:
            outputs.append(summarize_slo(lines))

    if args.critpath_log is not None:
        lines = []
        with open(args.critpath_log) as fh:
            for line in fh:
                line = line.strip()
                if line:
                    lines.append(json.loads(line))
        if schema is not None:
            errors = []
            defs = {
                "critpath_profile": "critpath_record",
                "whatif": "whatif_record",
            }
            for i, rec in enumerate(lines):
                def_name = defs.get(str(rec.get("kind")))
                if def_name is None:
                    continue  # meta/unknown lines are out of contract
                for err in validate_def(rec, schema, def_name):
                    errors.append(f"line {i + 1}: {err}")
            if errors:
                print(
                    f"{args.critpath_log}: {len(errors)} schema violation(s):",
                    file=sys.stderr,
                )
                for err in errors[:20]:
                    print(f"  {err}", file=sys.stderr)
                return 1
            print(
                f"{args.critpath_log}: schema OK",
                file=sys.stderr if as_json else sys.stdout,
            )
        if as_json:
            document["critpath_log"] = critpath_data(lines)
        else:
            outputs.append(summarize_critpath(lines, top=args.top))

    if as_json:
        print(json.dumps(document, indent=2, sort_keys=True))
    else:
        print("\n\n".join(outputs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
