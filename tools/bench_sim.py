"""Micro-benchmark harness: reference vs fast simulation engines.

Measures four levels of the stack:

1. **hierarchy** — raw demand-walk throughput (simulated lines/sec) of
   :meth:`MemoryHierarchy.access_lines` on a Zipf-distributed row stream.
2. **embedding** — the end-to-end embedding hot path
   (:func:`run_embedding_trace`, hardware prefetch off) that every figure
   funnels through.
3. **serving** — simulated-requests-per-minute throughput of the M/G/c
   serving loop (:func:`simulate_server`) under heavy load.
4. **fig12** — wall time of the end-to-end fig12 pipeline under each
   engine, with a per-stage breakdown: ``embedding`` (the trace-driven
   fig12 experiment), ``dense`` (MLP/interaction rooflines), ``dram``
   (raw demand-walk), and ``event_loop`` (an at-scale serving replay of
   the optimized schemes — the paper's end-to-end deployment context).

Each run appends a record to ``BENCH_sim.json`` so future changes have a
perf trajectory to regress against::

    PYTHONPATH=src python tools/bench_sim.py            # full numbers
    PYTHONPATH=src python tools/bench_sim.py --quick    # CI-sized

The fast and reference engines produce bit-identical simulation results
(enforced by tests/test_engine_fastpath.py and
tests/test_serving_engine.py); this harness only measures speed.
"""

from __future__ import annotations

import argparse
import json
import platform as platform_mod
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro import __version__  # noqa: E402
from repro.config import SimConfig  # noqa: E402
from repro.cpu.platform import get_platform  # noqa: E402
from repro.engine.embedding_exec import run_embedding_trace  # noqa: E402
from repro.mem.hierarchy import build_hierarchy  # noqa: E402

__all__ = ["main", "run_benchmarks"]

ENGINES = ("reference", "fast")


def _zipf_stream(num_lines: int, seed: int = 7) -> np.ndarray:
    """Row-expanded Zipf line stream (8-line rows, skewed row popularity)."""
    rng = np.random.default_rng(seed)
    rows = rng.zipf(1.2, num_lines // 8) % 200_000
    return (rows[:, None] * 8 + np.arange(8)).ravel().astype(np.int64)


def bench_hierarchy(engine: str, num_lines: int, repeats: int = 3) -> Dict[str, float]:
    """Demand-walk throughput of one engine on a Zipf stream (best of N)."""
    lines = _zipf_stream(num_lines)
    spec = get_platform("csl")
    best = float("inf")
    for _ in range(repeats):
        # Fresh hierarchy per trial so every run starts cold.
        hierarchy = build_hierarchy(spec.hierarchy, hw_prefetch=False, engine=engine)
        start = time.perf_counter()
        hierarchy.access_lines(lines)
        best = min(best, time.perf_counter() - start)
    return {"lines": float(lines.size), "seconds": best,
            "lines_per_sec": lines.size / best}


def bench_embedding(
    engine: str, scale: float, batch_size: int, num_batches: int, repeats: int = 3
) -> Dict[str, float]:
    """End-to-end embedding hot path (the paper's Algorithm 1 loop)."""
    from repro.experiments.workloads import build_workload

    config = SimConfig(seed=1234, engine=engine)
    wl = build_workload(
        "rm2_1", "low", scale=scale, batch_size=batch_size,
        num_batches=num_batches, config=config,
    )
    spec = get_platform("csl")
    best = float("inf")
    loads = 0
    for _ in range(repeats):
        hierarchy = build_hierarchy(spec.hierarchy, hw_prefetch=False, engine=engine)
        start = time.perf_counter()
        result = run_embedding_trace(wl.trace, wl.amap, spec.core, hierarchy)
        best = min(best, time.perf_counter() - start)
        loads = result.loads
    return {"lines": float(loads), "seconds": best,
            "lines_per_sec": loads / best}


def bench_serving(
    engine: str,
    num_requests: int,
    num_cores: int = 64,
    utilization: float = 0.9,
    repeats: int = 1,
) -> Dict[str, float]:
    """Serving-loop throughput (simulated requests/min of wall time).

    Heavy load near saturation on a many-core box — the regime where the
    event loop, not the arrival process, is the bottleneck.  Both engines
    produce byte-identical latencies; only wall time differs.
    """
    from repro.serving.server import simulate_server
    from repro.serving.workload import poisson_arrivals

    config = SimConfig(seed=7, engine=engine)
    mean_service_ms = 5.0
    interarrival_ms = mean_service_ms / (num_cores * utilization)
    arrivals = poisson_arrivals(
        interarrival_ms, num_requests, config.rng("bench:serving")
    )
    best = float("inf")
    for _ in range(repeats):
        service_rng = config.rng("bench:service")
        start = time.perf_counter()
        simulate_server(
            arrivals, mean_service_ms, num_cores, service_rng, engine=engine
        )
        best = min(best, time.perf_counter() - start)
    return {"requests": float(num_requests), "seconds": best,
            "requests_per_min": num_requests / best * 60.0}


def bench_dense(batch_size: int = 16, repeats: int = 3) -> Dict[str, float]:
    """Dense-stage rooflines of the fig12 models (engine-independent).

    The dense stages are closed-form in this codebase (the paper's own
    observation: they are compute-bound and tiny next to embedding), so
    this stage exists to make the fig12 pipeline breakdown complete, not
    to discriminate engines.
    """
    from repro.engine.mlp_exec import time_interaction, time_mlp, time_top_mlp
    from repro.model.configs import get_model

    spec = get_platform("csl")
    models = [get_model(name) for name in ("rm2_1", "rm2_2", "rm2_3")]
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for model in models:
            time_mlp(model.dense_features, model.bottom_mlp, batch_size, spec.core)
            time_interaction(
                batch_size, model.num_tables, model.embedding_dim, spec.core
            )
            time_top_mlp(
                model.num_tables, model.embedding_dim, model.top_mlp,
                batch_size, spec.core,
            )
        best = min(best, time.perf_counter() - start)
    return {"seconds": best}


def bench_fig12(engine: str, quick: bool, repeats: int = 1) -> Dict[str, object]:
    """End-to-end fig12 pipeline under one engine, per-stage breakdown.

    Stages (each best-of-``repeats``):

    * ``embedding_s`` — the trace-driven fig12 experiment on a pinned
      representative slice (one model x one dataset, both core counts;
      the full 3x3 grid is the *figure's* job — a benchmark wants a
      stable sample per stage, like the other stages' pinned streams),
    * ``dense_s`` — MLP/interaction rooflines of the fig12 models,
    * ``dram_s`` — raw demand-walk on a Zipf line stream,
    * ``event_loop_s`` — at-scale serving replay, the paper's end-to-end
      deployment context and the stage the batched serving engine exists
      for: tens of millions of requests (~35 simulated minutes of a
      64-core box near saturation) through the M/G/c loop.

    ``seconds`` is the stage sum, so every stage's contribution to the
    headline fast-over-reference speedup is visible in the record.
    """
    from repro.experiments.registry import run_experiment

    config = SimConfig(engine=engine)
    if quick:
        overrides: Dict[str, object] = {
            "models": ("rm2_1",), "datasets": ("low",),
            "core_counts": (1,), "scale": 0.01, "num_batches": 1,
        }
    else:
        overrides = {"models": ("rm2_2",), "datasets": ("medium",)}
    serving_requests = 200_000 if quick else 24_000_000
    dram_lines = 200_000 if quick else 800_000
    embedding_s = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        run_experiment("fig12", config=config, **overrides)
        embedding_s = min(embedding_s, time.perf_counter() - start)
    dense_s = bench_dense(repeats=repeats)["seconds"]
    dram_s = bench_hierarchy(engine, dram_lines, repeats=repeats)["seconds"]
    serving = bench_serving(engine, serving_requests, repeats=repeats)
    stages = {
        "embedding_s": embedding_s,
        "dense_s": dense_s,
        "dram_s": dram_s,
        "event_loop_s": serving["seconds"],
    }
    return {
        "seconds": sum(stages.values()),
        "stages": stages,
        "serving_requests_per_min": serving["requests_per_min"],
    }


def run_benchmarks(quick: bool, skip_fig12: bool = False) -> Dict[str, object]:
    """Run every benchmark under both engines; return the record."""
    num_lines = 200_000 if quick else 800_000
    emb_args = (0.01, 8, 1) if quick else (0.05, 16, 4)
    serving_requests = 100_000 if quick else 2_000_000
    # Best-of-N: wall-clock noise on shared machines only ever adds time,
    # so the minimum over repeats is the honest throughput estimate.
    repeats = 1 if quick else 5
    record: Dict[str, object] = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S"),
        "version": __version__,
        "mode": "quick" if quick else "full",
        "python": platform_mod.python_version(),
        "numpy": np.__version__,
        "benchmarks": {},
    }
    benches: Dict[str, Dict[str, Dict[str, float]]] = {}
    for name, fn, rate_key, rate_unit in (
        ("hierarchy",
         lambda eng: bench_hierarchy(eng, num_lines, repeats),
         "lines_per_sec", "l/s"),
        ("embedding",
         lambda eng: bench_embedding(eng, *emb_args, repeats),
         "lines_per_sec", "l/s"),
        ("serving",
         lambda eng: bench_serving(eng, serving_requests, repeats=repeats),
         "requests_per_min", "req/min"),
    ):
        benches[name] = {eng: fn(eng) for eng in ENGINES}
        ref, fast = benches[name]["reference"], benches[name]["fast"]
        benches[name]["speedup"] = {
            "fast_over_reference": ref["seconds"] / fast["seconds"]
        }
        print(
            f"{name:10s} reference {ref[rate_key]:>14,.0f} {rate_unit:<8s} "
            f"fast {fast[rate_key]:>14,.0f} {rate_unit:<8s} "
            f"speedup {ref['seconds'] / fast['seconds']:.2f}x"
        )
    if not skip_fig12:
        fig12_reps = 1 if quick else 2
        benches["fig12"] = {
            eng: bench_fig12(eng, quick, fig12_reps) for eng in ENGINES
        }
        ref, fast = benches["fig12"]["reference"], benches["fig12"]["fast"]
        benches["fig12"]["speedup"] = {
            "fast_over_reference": ref["seconds"] / fast["seconds"]
        }
        print(
            f"{'fig12':10s} reference {ref['seconds']:>10.2f}s"
            f"{'':9s}fast {fast['seconds']:>10.2f}s"
            f"{'':9s}speedup {ref['seconds'] / fast['seconds']:.2f}x"
        )
        for stage in ("embedding_s", "dense_s", "dram_s", "event_loop_s"):
            print(
                f"  {stage[:-2]:16s} reference {ref['stages'][stage]:>8.2f}s   "
                f"fast {fast['stages'][stage]:>8.2f}s"
            )
    record["benchmarks"] = benches
    return record


def append_record(record: Dict[str, object], path: Path) -> None:
    """Append ``record`` to the JSON benchmark log at ``path``."""
    history: List[Dict[str, object]] = []
    if path.exists():
        try:
            history = json.loads(path.read_text())
        except json.JSONDecodeError:
            history = []
    history.append(record)
    path.write_text(json.dumps(history, indent=2) + "\n")


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick", action="store_true",
        help="small sizes (seconds, CI-friendly) instead of full sizes",
    )
    parser.add_argument(
        "--skip-fig12", action="store_true",
        help="skip the end-to-end fig12 wall-time benchmark",
    )
    parser.add_argument(
        "--out", type=Path, default=REPO_ROOT / "BENCH_sim.json",
        help="benchmark log to append to (default: repo-root BENCH_sim.json)",
    )
    args = parser.parse_args(argv)
    record = run_benchmarks(args.quick, skip_fig12=args.skip_fig12)
    append_record(record, args.out)
    print(f"appended record to {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
