"""Pinned benchmark suite feeding the regression observatory.

Runs a fixed set of benchmarks spanning every layer the paper's story
depends on and appends one schema-versioned record per invocation to
``BENCH_history.jsonl`` (the repo's performance trajectory)::

    PYTHONPATH=src python tools/bench_all.py --mode smoke --repeats 3
    PYTHONPATH=src python tools/bench_all.py --mode full

The suite:

* **engine wall clocks** (kind ``wall``) — demand-walk, embedding
  hot-path, and serving-loop throughput of the fast and reference
  engines, median of ``--repeats`` trials; host-dependent, so the gate
  skips them unless ``bench_gate.py --include-wall``.
* **scheme sim outputs** (kind ``sim``) — MP-HT / DP-HT / Integrated
  end-to-end speedups over baseline from :func:`evaluate_all_schemes`;
  exact simulator outputs, identical on every host, gated strictly.
* **serving sim outputs** (kind ``sim``) — p50/p95/p99 and goodput of a
  pinned resilience scenario (bandwidth degradation + arrival burst +
  stragglers against a retry/shed policy and a degradation controller)
  plus the fast-path p95; also exact.
* **cluster sim outputs** (kind ``sim``) — goodput and quality/latency
  tails of a pinned replicated+hedged 4-node cluster riding out a node
  kill (the ``cluster_resilience`` headline, pinned); also exact.
* **fleet observability** (``obs.fleet.*``) — span-forest merge and
  drift-detector update throughputs (kind ``wall``) bounding what the
  tracing layer may cost, plus detection recall/MTTD on the pinned
  node-kill run (kind ``sim``, exact).
* **critical path** (``obs.critpath.*``) — extraction throughput over a
  pinned cluster log (kind ``wall``), plus the conservation rate and the
  worst gated what-if prediction error of the ``critpath_observatory``
  scenarios (kind ``sim``, exact).

Records validate against ``$defs.bench_record`` in
``tools/trace_schema.json``; ``tools/bench_gate.py`` compares the two
newest records and fails CI on a regression, and
``tools/obs_dashboard.py`` renders the trajectory.
"""

from __future__ import annotations

import argparse
import json
import platform as platform_mod
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT / "tools"))

import bench_sim  # noqa: E402

from repro.config import SimConfig  # noqa: E402
from repro.core.schemes import evaluate_all_schemes  # noqa: E402
from repro.cpu.platform import get_platform  # noqa: E402
from repro.experiments.noisy_neighbor import run as noisy_run  # noqa: E402
from repro.experiments.workloads import build_workload  # noqa: E402
from repro.obs.regress import (  # noqa: E402
    Benchmark,
    append_record,
    make_record,
    median,
)
from repro.obs.detect import MeanShiftDetector  # noqa: E402
from repro.obs.fleet import FleetTrace  # noqa: E402
from repro.obs.hooks import Observation, session  # noqa: E402
from repro.obs.requests import RequestLog  # noqa: E402
from repro.obs.schema import validate_def  # noqa: E402
from repro.obs.slo import (  # noqa: E402
    FleetMonitor,
    node_window_stats,
    score_detections,
)
from repro.serving.degradation import (  # noqa: E402
    DegradationController,
    scheme_ladder,
)
from repro.serving.faults import (  # noqa: E402
    ArrivalBurst,
    BandwidthDegradation,
    ClusterFaultPlan,
    FaultPlan,
    NodeCrash,
    Stragglers,
)
from repro.serving.cluster import ClusterConfig, ClusterSim  # noqa: E402
from repro.serving.router import HedgePolicy  # noqa: E402
from repro.serving.server import ServingPolicy, simulate_server  # noqa: E402
from repro.serving.workload import poisson_arrivals  # noqa: E402

__all__ = ["main", "run_suite"]

SCHEMA_PATH = REPO_ROOT / "tools" / "trace_schema.json"
DEFAULT_HISTORY = REPO_ROOT / "BENCH_history.jsonl"

#: Relative wobble tolerated on wall-clock throughputs before the
#: absolute noise floor is exceeded (shared CI machines are noisy).
WALL_NOISE_FRAC = 0.15

MODES = ("smoke", "full")


def _wall_benchmarks(mode: str, repeats: int) -> List[Benchmark]:
    """Engine throughput wall clocks, median of ``repeats`` trials each."""
    num_lines = 100_000 if mode == "smoke" else 800_000
    emb_args = (0.01, 8, 1) if mode == "smoke" else (0.05, 16, 4)
    serving_requests = 100_000 if mode == "smoke" else 2_000_000
    out: List[Benchmark] = []
    for engine in ("fast", "reference"):
        for bench, runner, rate_key, unit in (
            (
                "hierarchy",
                lambda: bench_sim.bench_hierarchy(engine, num_lines, repeats=1),
                "lines_per_sec",
                "lines/s",
            ),
            (
                "embedding",
                lambda: bench_sim.bench_embedding(engine, *emb_args, repeats=1),
                "lines_per_sec",
                "lines/s",
            ),
            (
                "serving",
                lambda: bench_sim.bench_serving(
                    engine, serving_requests, repeats=1
                ),
                "requests_per_min",
                "req/min",
            ),
        ):
            value = median([runner()[rate_key] for _ in range(repeats)])
            out.append(
                Benchmark(
                    name=f"engine.{bench}.{engine}.{rate_key}",
                    value=value,
                    unit=unit,
                    direction="higher",
                    noise_floor=WALL_NOISE_FRAC * value,
                    kind="wall",
                )
            )
    return out


def _scheme_benchmarks(mode: str) -> List[Benchmark]:
    """MP-HT / DP-HT / Integrated speedups (exact simulator outputs)."""
    scale, batch_size, num_batches = (
        (0.01, 8, 1) if mode == "smoke" else (0.02, 16, 2)
    )
    config = SimConfig(seed=1234)
    wl = build_workload(
        "rm2_1", "low", scale=scale, batch_size=batch_size,
        num_batches=num_batches, config=config,
    )
    spec = get_platform("csl")
    results = evaluate_all_schemes(
        wl.model, wl.trace, wl.amap, spec,
        schemes=("baseline", "dp_ht", "mp_ht", "integrated"),
    )
    base = results["baseline"]
    return [
        Benchmark(
            name=f"scheme.{scheme}.speedup",
            value=results[scheme].speedup_over(base),
            unit="x",
            direction="higher",
        )
        for scheme in ("dp_ht", "mp_ht", "integrated")
    ]


def _serving_benchmarks(mode: str) -> List[Benchmark]:
    """Tail latency + goodput of one pinned resilience scenario (exact)."""
    num_requests = 400 if mode == "smoke" else 2000
    mean_service_ms = 5.0
    num_cores = 4
    interarrival_ms = mean_service_ms / (num_cores * 0.6)
    config = SimConfig(seed=99)
    arrivals = poisson_arrivals(
        interarrival_ms, num_requests, config.rng("bench:arrivals")
    )
    horizon_ms = num_requests * interarrival_ms

    fast = simulate_server(
        arrivals, mean_service_ms, num_cores, config.rng("bench:fast"),
        label="bench:fast",
    )

    plan = FaultPlan(
        [
            BandwidthDegradation(0.25 * horizon_ms, 0.6 * horizon_ms, 2.5),
            ArrivalBurst(
                0.4 * horizon_ms, num_requests // 4, interarrival_ms / 5.0
            ),
            Stragglers(0.05, 5.0, tail_alpha=1.5),
        ],
        seed=99,
    )
    policy = ServingPolicy(
        deadline_ms=5.0 * mean_service_ms,
        timeout_ms=5.0 * mean_service_ms,
        max_retries=1,
        retry_backoff_ms=mean_service_ms,
        max_queue_depth=20 * num_cores,
    )
    ladder = scheme_ladder(
        {"baseline": 1.0, "sw_pf": 0.8, "integrated": 0.65}, batch_scale=0.6
    )
    controller = DegradationController(
        ladder,
        sla_ms=policy.deadline_ms,
        window=48,
        min_samples=12,
        escalate_margin=0.75,
        recover_margin=0.4,
        cooldown=256,
    )
    resilient = simulate_server(
        arrivals, mean_service_ms, num_cores, config.rng("bench:resilient"),
        fault_plan=plan, policy=policy, controller=controller,
        label="bench:resilient",
    )
    return [
        Benchmark("serving.fast.p95_ms", fast.p95_ms, "ms", direction="lower"),
        Benchmark(
            "serving.resilient.p50_ms", resilient.p50_ms, "ms", direction="lower"
        ),
        Benchmark(
            "serving.resilient.p95_ms", resilient.p95_ms, "ms", direction="lower"
        ),
        Benchmark(
            "serving.resilient.p99_ms", resilient.p99_ms, "ms", direction="lower"
        ),
        Benchmark(
            "serving.resilient.goodput", resilient.goodput, "frac",
            direction="higher",
        ),
    ]


def _cluster_benchmarks(mode: str) -> List[Benchmark]:
    """Fleet goodput/tail of one pinned node-kill scenario (exact).

    A replicated, hedged 4-node cluster rides out a mid-run node crash;
    the gate watches that its goodput and quality tail stay put — the
    headline property of the ``cluster_resilience`` experiment, pinned.
    """
    num_requests = 400 if mode == "smoke" else 2000
    call_ms = 2.0
    num_nodes, cores = 4, 4
    interarrival_ms = 2.0 * call_ms / (num_nodes * cores * 0.55)
    config = SimConfig(seed=77)
    arrivals = poisson_arrivals(
        interarrival_ms, num_requests, config.rng("bench:cluster")
    )
    horizon_ms = num_requests * interarrival_ms
    cluster = ClusterSim(
        ClusterConfig(
            num_nodes=num_nodes,
            cores_per_node=cores,
            mean_service_ms=call_ms,
            num_shards=8,
            replication=2,
            gather_width=2,
            hop_ms=0.1,
            call_timeout_ms=25.0,
            deadline_ms=100.0,
            placement="hotness",
            routing="least_loaded",
            hedge=HedgePolicy(quantile=95.0, min_ms=6.0, window=128),
            faults=ClusterFaultPlan(
                [NodeCrash(1, 0.25 * horizon_ms, 0.6 * horizon_ms)], seed=77
            ),
            seed=77,
            label="bench:cluster",
        )
    )
    result = cluster.run(arrivals)
    return [
        Benchmark(
            "cluster.resilient.goodput", result.goodput, "frac",
            direction="higher",
        ),
        Benchmark(
            "cluster.resilient.quality_p95_ms",
            result.quality_percentile(95.0), "ms", direction="lower",
        ),
        Benchmark(
            "cluster.resilient.p99_ms", result.p99_ms, "ms", direction="lower"
        ),
    ]


def _fleet_benchmarks(mode: str, repeats: int) -> List[Benchmark]:
    """Fleet-observability overheads and a pinned detection-quality run.

    Two wall clocks bound what the tracing layer may cost — merging a
    realistic span forest (request -> gather -> route/attempt, the shape
    a hedged cluster run produces) and pushing windowed samples through
    a drift detector — plus exact sim outputs pinning the observatory's
    detection quality on the same node-kill scenario the cluster
    benchmarks ride.
    """
    out: List[Benchmark] = []

    merge_requests = 2_000 if mode == "smoke" else 10_000

    def build_forest() -> FleetTrace:
        trace = FleetTrace("bench", run_index=0)
        t = 0.0
        for req in range(merge_requests):
            trace.begin_request(req, t)
            for k in range(2):
                sid = trace.begin_slot(req, k, k, t)
                trace.route(sid, t, (req + k) % 4, "least_loaded", 2, "primary")
                aid = trace.begin_attempt(sid, (req + k) % 4, t, False)
                trace.end_attempt(aid, t + 2.0, "ok", winner=True)
                trace.end_slot(sid, t + 2.0, "ok")
            trace.end_request(req, t + 2.1, "completed")
            t += 0.5
        return trace

    rates = []
    for _ in range(repeats):
        trace = build_forest()
        num_spans = len(trace.router_spans) + sum(
            len(spans) for spans in trace.node_spans.values()
        )
        start = time.perf_counter()
        trace.finalize()
        elapsed = time.perf_counter() - start
        rates.append(num_spans / elapsed)
    value = median(rates)
    out.append(
        Benchmark(
            name="obs.fleet.trace_merge.spans_per_sec",
            value=value,
            unit="spans/s",
            direction="higher",
            noise_floor=WALL_NOISE_FRAC * value,
            kind="wall",
        )
    )

    updates = 50_000 if mode == "smoke" else 200_000
    samples = 1.0 + 0.1 * SimConfig(seed=7).rng(
        "bench:detector"
    ).standard_normal(updates)
    rates = []
    for _ in range(repeats):
        detector = MeanShiftDetector("bench.signal", direction="up")
        start = time.perf_counter()
        for j in range(updates):
            detector.update(float(j), float(samples[j]))
        elapsed = time.perf_counter() - start
        rates.append(updates / elapsed)
    value = median(rates)
    out.append(
        Benchmark(
            name="obs.fleet.detector.updates_per_sec",
            value=value,
            unit="updates/s",
            direction="higher",
            noise_floor=WALL_NOISE_FRAC * value,
            kind="wall",
        )
    )

    # Detection quality, exact: the _cluster_benchmarks node-kill run,
    # replayed observed, scored against the fault plan's ground truth.
    num_requests = 2000 if mode == "smoke" else 10000
    call_ms = 2.0
    num_nodes, cores = 4, 4
    interarrival_ms = 2.0 * call_ms / (num_nodes * cores * 0.55)
    config = SimConfig(seed=77)
    arrivals = poisson_arrivals(
        interarrival_ms, num_requests, config.rng("bench:cluster")
    )
    horizon_ms = num_requests * interarrival_ms
    plan = ClusterFaultPlan(
        [NodeCrash(1, 0.25 * horizon_ms, 0.6 * horizon_ms)], seed=77
    )
    cluster = ClusterSim(
        ClusterConfig(
            num_nodes=num_nodes,
            cores_per_node=cores,
            mean_service_ms=call_ms,
            num_shards=8,
            replication=2,
            gather_width=2,
            hop_ms=0.1,
            call_timeout_ms=25.0,
            deadline_ms=100.0,
            placement="hotness",
            routing="least_loaded",
            hedge=HedgePolicy(quantile=95.0, min_ms=6.0, window=128),
            faults=plan,
            seed=77,
            label="bench:fleet",
        )
    )
    log = RequestLog()
    with session(Observation(requests=log)):
        cluster.run(arrivals)
    records = log.runs[-1].records
    window_ms = horizon_ms / 60
    monitor = FleetMonitor(num_nodes)
    events = monitor.run(
        node_window_stats(records, window_ms, horizon_ms), window_ms
    )
    score = score_detections(events, plan.windows(), 2 * window_ms)
    mttd = score["mttd_ms"]
    out.append(
        Benchmark(
            name="obs.fleet.detection.recall",
            value=float(score["recall"]),
            unit="frac",
            direction="higher",
        )
    )
    out.append(
        Benchmark(
            name="obs.fleet.detection.mttd_ms",
            # Nothing detected pins the worst case (the full horizon)
            # rather than dropping the benchmark.
            value=float(mttd) if mttd is not None else horizon_ms,
            unit="ms",
            direction="lower",
        )
    )
    return out


def _critpath_benchmarks(mode: str, repeats: int) -> List[Benchmark]:
    """Critical-path extraction cost and what-if accuracy, pinned.

    One wall clock bounds what per-request attribution costs (requests
    extracted per second over a pinned node-kill cluster log), and two
    exact sim outputs pin the observatory's analytic quality: the
    fraction of requests whose segments conserve exactly, and the worst
    relative error any *gated* what-if prediction made against its
    actual re-run in the ``critpath_observatory`` scenarios.
    """
    from repro.experiments.critpath_observatory import (
        GATED_KNOBS,
        _scenarios,
        run as critpath_run,
    )
    from repro.obs.critpath import extract_paths

    num_requests = 1500 if mode == "smoke" else 6000
    config = SimConfig(seed=7)
    report = critpath_run(config=config, num_requests=num_requests)
    conservation = [r for r in report.rows if r["kind"] == "conservation"]
    total = sum(int(r["requests"]) for r in conservation) or 1
    violations = sum(int(r["violations"]) for r in conservation)
    errors = [
        abs(float(r["delta_frac"]))
        for r in report.rows
        if r["kind"] == "whatif"
        and r.get("delta_frac") is not None
        and r["knob"] in GATED_KNOBS
    ]
    out = [
        Benchmark(
            "obs.critpath.conserved_frac",
            1.0 - violations / total, "frac", direction="higher",
        ),
        Benchmark(
            "obs.critpath.whatif.max_err_frac",
            max(errors), "frac", direction="lower",
            # Prediction error legitimately wobbles as the estimators
            # evolve; only a loss of more than 5 points is a regression.
            noise_floor=0.05,
        ),
    ]

    scenario_cfg = _scenarios(num_requests * 0.9, 2.0, 4, 4, 8)[0][1]
    arrivals = config.rng("critpath:arrivals").exponential(
        0.9, size=num_requests
    ).cumsum()
    log = RequestLog()
    with session(Observation(requests=log)):
        ClusterSim(scenario_cfg).run(arrivals)
    records = log.runs[-1].records
    rates = []
    for _ in range(repeats):
        start = time.perf_counter()
        extract_paths(records)
        elapsed = time.perf_counter() - start
        rates.append(len(records) / elapsed)
    value = median(rates)
    out.append(
        Benchmark(
            name="obs.critpath.extract.requests_per_sec",
            value=value,
            unit="req/s",
            direction="higher",
            noise_floor=WALL_NOISE_FRAC * value,
            kind="wall",
        )
    )
    return out


def _tenant_benchmarks(mode: str) -> List[Benchmark]:
    """Noisy-neighbor defense quality, pinned (exact).

    One seeded locker-vs-QoS run of the ``noisy_neighbor`` experiment:
    the gate watches that the detectors keep finding every injected
    locker window (recall), how fast (MTTD), and that the defense keeps
    restoring no-tenant goodput — the experiment's headline properties.
    """
    num_requests = 1500 if mode == "smoke" else 6000
    report = noisy_run(
        config=SimConfig(seed=77),
        num_requests=num_requests,
        tenants="none,locker",
        defense="static,qos",
        cluster_nodes=1,
    )
    row = next(
        r for r in report.rows
        if r["scenario"] == "locker" and r["mode"] == "qos"
    )
    windows = int(row["tenant_windows"]) or 1
    horizon_ms = num_requests * 10.0  # worst-case MTTD stand-in
    mttd = row["mttd_ms"]
    return [
        Benchmark(
            "tenants.detection.recall",
            float(row["windows_detected"]) / windows, "frac",
            direction="higher",
        ),
        Benchmark(
            "tenants.detection.mttd_ms",
            float(mttd) if mttd is not None else horizon_ms, "ms",
            direction="lower",
        ),
        Benchmark(
            "tenants.qos.goodput_recovery",
            float(row["goodput_vs_no_tenant"]), "frac", direction="higher",
        ),
    ]


def run_suite(mode: str, repeats: int) -> Dict[str, object]:
    """Run the pinned suite; return the (schema-valid) history record."""
    if mode not in MODES:
        raise ValueError(f"mode must be one of {MODES}, got {mode!r}")
    benchmarks: List[Benchmark] = []
    benchmarks.extend(_wall_benchmarks(mode, repeats))
    benchmarks.extend(_scheme_benchmarks(mode))
    benchmarks.extend(_serving_benchmarks(mode))
    benchmarks.extend(_cluster_benchmarks(mode))
    benchmarks.extend(_fleet_benchmarks(mode, repeats))
    benchmarks.extend(_critpath_benchmarks(mode, repeats))
    benchmarks.extend(_tenant_benchmarks(mode))
    for bench in benchmarks:
        print(
            f"{bench.name:42s} {bench.value:>14,.4g} {bench.unit:<8s} "
            f"[{bench.kind}]"
        )
    record = make_record(
        mode=mode,
        repeats=repeats,
        benchmarks=benchmarks,
        host={
            "python": platform_mod.python_version(),
            "numpy": np.__version__,
            "machine": platform_mod.machine(),
        },
    )
    schema = json.loads(SCHEMA_PATH.read_text())
    errors = validate_def(record, schema, "bench_record")
    if errors:  # pragma: no cover - suite bug, not an input condition
        raise RuntimeError(f"bench record fails its own schema: {errors}")
    return record


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--mode", choices=MODES, default="smoke",
        help="suite size: smoke (CI, seconds) or full (minutes)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, metavar="K",
        help="wall-clock benchmarks record the median of K trials (default 3)",
    )
    parser.add_argument(
        "--history", type=Path, default=DEFAULT_HISTORY,
        help=f"history JSONL to append to (default {DEFAULT_HISTORY.name})",
    )
    parser.add_argument(
        "--no-append", action="store_true",
        help="print the record without touching the history file",
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be at least 1")
    record = run_suite(args.mode, args.repeats)
    if args.no_append:
        print(json.dumps(record, indent=2))
    else:
        append_record(args.history, record)
        print(
            f"appended {len(record['benchmarks'])} benchmark(s) "
            f"to {args.history}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
