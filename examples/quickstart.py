#!/usr/bin/env python
"""Quickstart: evaluate the paper's design points on one workload.

Runs the six design points — hardware-prefetch-off, baseline, software
prefetching (Section 4.2), naive and model-parallel hyperthreading
(Section 4.3), and the Integrated scheme (Section 4.4) — on an rm2_1-shaped
workload with the Low-hot production-trace statistics, then prints the
Fig 13-style speedup panel plus the VTune-style characterization columns.

Run time: ~30 seconds on a laptop.

    python examples/quickstart.py
"""

from repro import SCHEME_NAMES, SimConfig, quick_eval


def main() -> None:
    config = SimConfig(seed=7)
    print("Evaluating rm2_1 (embedding-heavy) on the Low-hot dataset...")
    results = quick_eval(
        model="rm2_1",
        dataset="low",
        platform="csl",
        num_cores=1,
        scale=0.02,        # shrink tables/lookups; rows stay at 1M
        batch_size=16,
        num_batches=2,
        config=config,
    )
    baseline = results["baseline"]

    print(f"\nbaseline batch latency : {baseline.batch_ms:8.2f} ms")
    print(f"embedding share        : {baseline.stages.embedding_fraction:8.1%}")
    print(f"baseline L1D hit rate  : {baseline.l1_hit_rate:8.1%}")
    print(f"baseline load latency  : {baseline.avg_load_latency:8.1f} cycles")

    print(f"\n{'scheme':<12} {'speedup':>8} {'L1D hit':>8} {'load lat':>9}")
    print("-" * 42)
    for scheme in SCHEME_NAMES:
        result = results[scheme]
        print(
            f"{scheme:<12} {result.speedup_over(baseline):>7.2f}x "
            f"{result.l1_hit_rate:>7.1%} {result.avg_load_latency:>7.1f}cy"
        )

    integrated = results["integrated"].speedup_over(baseline)
    swpf = results["sw_pf"].speedup_over(baseline)
    mpht = results["mp_ht"].speedup_over(baseline)
    print(
        f"\nIntegrated {integrated:.2f}x vs SW-PF {swpf:.2f}x x MP-HT {mpht:.2f}x "
        f"(paper's headline: up to 1.59x, average 1.4x)"
    )


if __name__ == "__main__":
    main()
