#!/usr/bin/env python
"""Capacity planning: how many requests can a socket serve under its SLA?

The operational question behind the paper's Section 6.5: given a model, a
trace hotness, and the Table 1 SLA, what request rate can a 24-core socket
sustain at p95 — and how much does each optimization raise that ceiling?
This is the workflow a serving-infrastructure owner would run before
choosing between buying machines and deploying the software schemes.

    python examples/capacity_planning.py
"""

from repro.config import SimConfig
from repro.core.schemes import evaluate_scheme
from repro.cpu.platform import get_platform
from repro.experiments.workloads import build_workload
from repro.serving.latency import sla_compliant_region, sweep_arrival_times
from repro.serving.sla import sla_for_model

SCHEMES = ("baseline", "sw_pf", "mp_ht", "integrated")
NUM_CORES = 24


def plan(model_name: str, dataset: str, config: SimConfig) -> None:
    spec = get_platform("csl")
    workload = build_workload(
        model_name, dataset, scale=0.02, batch_size=16, num_batches=2,
        config=config,
    )
    sla = sla_for_model(workload.model)
    print(
        f"\n=== {model_name} on {dataset}-hot, {NUM_CORES} cores, "
        f"SLA p95 <= {sla.sla_ms:.0f} ms ==="
    )

    # Per-scheme mean batch service time from the simulator.
    service_ms = {}
    for scheme in SCHEMES:
        result = evaluate_scheme(
            scheme, workload.model, workload.trace, workload.amap, spec,
            num_cores=NUM_CORES,
        )
        service_ms[scheme] = result.batch_ms

    # Sweep arrival times around every scheme's knee: faster schemes stay
    # compliant at arrival rates the baseline cannot touch, so the grid
    # must extend well below the baseline's saturation point.
    per_core = service_ms["baseline"] / NUM_CORES
    grid = [per_core * f for f in (0.3, 0.5, 0.6, 0.7, 0.8, 0.9, 1.1, 1.4, 2.0, 3.0)]
    print(f"{'scheme':<12} {'service':>9} {'max rate':>10} {'headroom':>9}")
    print("-" * 44)
    baseline_rate = None
    for scheme in SCHEMES:
        sweep = sweep_arrival_times(
            service_ms[scheme], grid, NUM_CORES, num_requests=1200, config=config
        )
        fastest_ok, _ = sla_compliant_region(sweep, sla.sla_ms)
        rate = 1000.0 / fastest_ok if fastest_ok != float("inf") else 0.0
        if scheme == "baseline":
            baseline_rate = rate
        headroom = rate / baseline_rate if baseline_rate else float("nan")
        print(
            f"{scheme:<12} {service_ms[scheme]:>7.1f}ms {rate:>7.0f}/s "
            f"{headroom:>8.2f}x"
        )


def main() -> None:
    config = SimConfig(seed=29)
    plan("rm2_1", "low", config)   # embedding-heavy, 400 ms SLA
    plan("rm1", "low", config)     # mixed model, 100 ms SLA


if __name__ == "__main__":
    main()
