#!/usr/bin/env python
"""Tune software-prefetch distance and amount for a platform (Fig 10b/c).

The paper's design-space exploration, automated: sweep the look-ahead
distance (timeliness vs. L1 pollution) and the per-row line count, on any
registered CPU platform.  Section 6.4 found different optima per platform
(distance 4 / amount 8 on Cascade Lake; amount 2 on Ice Lake and Sapphire
Rapids; amount 4 on Zen3) — this script reproduces that workflow.

    python examples/prefetch_tuning.py           # Cascade Lake
    python examples/prefetch_tuning.py icl zen3  # other platforms
"""

import sys

from repro.config import SimConfig
from repro.core.tuner import tune_prefetch
from repro.cpu.platform import get_platform
from repro.experiments.workloads import build_workload


def tune_platform(platform_name: str, config: SimConfig) -> None:
    spec = get_platform(platform_name)
    workload = build_workload(
        "rm2_1", "low", scale=0.015, batch_size=8, num_batches=2, config=config
    )
    print(f"\n=== {spec.display_name} ===")
    tuning = tune_prefetch(
        workload.trace,
        workload.amap,
        spec,
        distances=(1, 2, 4, 8, 16, 32),
        amounts=(1, 2, 4, 8),
    )

    print("distance sweep (amount fixed at 8):")
    for distance, speedup in sorted(tuning.distance_speedups().items()):
        marker = "  <-- best" if distance == tuning.best_distance else ""
        print(f"  distance {distance:>2}: {speedup:5.2f}x{marker}")

    print(f"amount sweep (distance fixed at {tuning.best_distance}):")
    for amount, (cycles, l1_hit, latency) in sorted(tuning.amount_metrics.items()):
        marker = "  <-- best" if amount == tuning.best_amount else ""
        print(
            f"  amount {amount}: {tuning.baseline_cycles / cycles:5.2f}x  "
            f"L1D {l1_hit:6.1%}  load latency {latency:5.1f}cy{marker}"
        )

    best = tuning.best_config()
    print(
        f"tuned config: distance={best.distance}, amount={best.amount_lines} "
        f"(paper CSL optimum: distance=4, amount=8)"
    )


def main() -> None:
    platforms = sys.argv[1:] or ["csl"]
    config = SimConfig(seed=13)
    for name in platforms:
        tune_platform(name, config)


if __name__ == "__main__":
    main()
