#!/usr/bin/env python
"""The batching trade-off: collection delay vs amortized inference.

Queries arrive one by one (Section 2.1); the server chunks them into
batches.  A larger batch-collection timeout raises occupancy (throughput)
but taxes every query with waiting time — and the right setting depends on
which execution scheme serves the batch.  This example sweeps the timeout
for the baseline and the Integrated scheme and prints where each meets the
RMC2 SLA.

    python examples/batching_tradeoff.py
"""

import numpy as np

from repro.config import SimConfig
from repro.core.schemes import evaluate_scheme
from repro.cpu.platform import get_platform
from repro.experiments.workloads import build_workload
from repro.serving.pipeline import serve_query_stream
from repro.serving.sla import sla_for_model
from repro.serving.workload import poisson_arrivals

NUM_CORES = 24
BATCH_SIZE = 16


def main() -> None:
    config = SimConfig(seed=37)
    spec = get_platform("csl")
    workload = build_workload(
        "rm2_1", "low", scale=0.02, batch_size=BATCH_SIZE, num_batches=2,
        config=config,
    )
    sla = sla_for_model(workload.model)

    service_ms = {}
    for scheme in ("baseline", "integrated"):
        result = evaluate_scheme(
            scheme, workload.model, workload.trace, workload.amap, spec,
            num_cores=NUM_CORES,
        )
        service_ms[scheme] = result.batch_ms
        print(f"{scheme}: full-batch service {result.batch_ms:.1f} ms")

    # Light load (well inside the SLA region) so the batching timeout is
    # the binding knob: batches fill in ~BATCH_SIZE * 2 ms without it.
    rng = config.rng("batching")
    queries = poisson_arrivals(
        mean_interarrival_ms=2.0,
        num_requests=4000,
        rng=rng,
    )
    print(
        f"\nquery rate: {1000 / np.mean(np.diff(queries)):.0f}/s, "
        f"SLA p95 <= {sla.sla_ms:.0f} ms\n"
    )
    print(f"{'timeout':>8} {'scheme':<11} {'batch occ.':>10} {'p95':>9} {'SLA':>5}")
    print("-" * 48)
    for timeout in (2.0, 10.0, 50.0, 200.0):
        for scheme in ("baseline", "integrated"):
            result = serve_query_stream(
                queries, BATCH_SIZE, timeout, service_ms[scheme], NUM_CORES,
                config.rng(f"pipe:{scheme}:{timeout}"),
            )
            ok = "yes" if result.p95_ms <= sla.sla_ms else "NO"
            print(
                f"{timeout:>6.0f}ms {scheme:<11} {result.mean_batch_size:>10.1f} "
                f"{result.p95_ms:>7.1f}ms {ok:>5}"
            )


if __name__ == "__main__":
    main()
