#!/usr/bin/env python
"""Characterize an embedding workload's memory behaviour (Section 3).

Given a model and dataset hotness, reproduce the paper's characterization
pipeline end to end:

1. hotness metrics (unique-access fraction, top-share — Fig 5),
2. reuse-distance analysis with per-level hit-rate predictions and the
   cold-miss fraction (Figs 6/7),
3. trace-driven measurement on the simulated Cascade Lake (Fig 4-style
   hit rates and load latency),
4. the resulting end-to-end stage breakdown (Fig 1).

    python examples/characterize_trace.py rm2_1 medium
"""

import sys

from repro.analysis.breakdown import estimate_stage_breakdown
from repro.analysis.cache_model import analyze_trace_reuse
from repro.analysis.histogram import hotness_summary
from repro.config import SimConfig
from repro.cpu.platform import get_platform
from repro.engine.embedding_exec import run_embedding_trace
from repro.experiments.workloads import build_workload
from repro.mem.hierarchy import build_hierarchy
from repro.model.configs import get_model


def main() -> None:
    model_name = sys.argv[1] if len(sys.argv) > 1 else "rm2_1"
    dataset = sys.argv[2] if len(sys.argv) > 2 else "medium"
    config = SimConfig(seed=17)
    spec = get_platform("csl")
    workload = build_workload(
        model_name, dataset, scale=0.02, batch_size=16, num_batches=2,
        config=config,
    )

    print(f"=== {model_name} / {dataset}-hot on {spec.display_name} ===")

    # 1. Hotness (Fig 5).
    hotness = hotness_summary(workload.trace, dataset=dataset)
    print("\n[hotness]")
    print(f"  unique-access fraction : {hotness.unique_fraction:7.1%}")
    print(f"  top-1% rows' share     : {hotness.top_1pct_share:7.1%}")
    print(f"  hottest row count      : {hotness.max_count}")

    # 2. Reuse-distance model (Figs 6/7).
    reuse = analyze_trace_reuse(
        workload.trace, spec.hierarchy, workload.model.embedding_dim,
        dataset=dataset,
    )
    print("\n[reuse-distance model, fully-associative LRU]")
    print(f"  cold-miss fraction     : {reuse.cold_fraction:7.1%}")
    for level in ("l1", "l2", "l3"):
        print(f"  predicted {level} hit rate : {reuse.hit_rates[level]:7.1%}")

    # 3. Trace-driven measurement (Fig 4).
    hierarchy = build_hierarchy(spec.hierarchy)
    measured = run_embedding_trace(
        workload.trace, workload.amap, spec.core, hierarchy
    )
    print("\n[simulated Cascade Lake, set-associative + HW prefetchers]")
    print(f"  L1D hit rate           : {measured.l1_hit_rate:7.1%}")
    print(f"  avg load latency       : {measured.avg_load_latency:7.1f} cycles")
    print(f"  DRAM-served fraction   : {measured.dram_fraction:7.1%}")
    print(f"  pipeline stall share   : {measured.stall_fraction:7.1%}")

    # 4. End-to-end breakdown at paper scale (Fig 1).
    stages = estimate_stage_breakdown(
        get_model(model_name), dataset, spec, batch_size=64,
        sample_tables=2, sample_batches=2, config=config,
    )
    print("\n[stage breakdown, paper scale]")
    for stage, fraction in stages.breakdown().items():
        print(f"  {stage:<12}: {fraction:7.1%}")


if __name__ == "__main__":
    main()
