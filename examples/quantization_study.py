#!/usr/bin/env python
"""Quantization x prefetching: two memory-traffic levers, composed.

The paper reduces embedding-stage memory cost by *hiding* latency
(prefetching).  Deployments also *shrink* the traffic by quantizing rows
(fp16/int8).  This study measures both levers and their combination on the
same trace — the levers are orthogonal and multiply.

    python examples/quantization_study.py
"""

from repro.config import SimConfig
from repro.core.swpf import PAPER_SWPF
from repro.cpu.platform import get_platform
from repro.engine.embedding_exec import run_embedding_trace
from repro.mem.hierarchy import build_hierarchy
from repro.model.configs import get_model
from repro.trace.production import make_trace
from repro.units import cycles_to_ms


def main() -> None:
    config = SimConfig(seed=43)
    spec = get_platform("csl")
    model = get_model("rm2_1").scaled(0.015)
    trace = make_trace(
        "low", model.num_tables, model.rows, 8, 2,
        model.lookups_per_sample, config=config,
    )

    print(f"{'precision':<10} {'rows':>10} {'baseline':>10} {'+SW-PF':>10} {'vs fp32':>9}")
    print("-" * 54)
    fp32_base = None
    for dtype, label in ((4, "fp32"), (2, "fp16"), (1, "int8")):
        quant = model.quantized(dtype)
        amap = quant.address_map()
        base = run_embedding_trace(
            trace, amap, spec.core, build_hierarchy(spec.hierarchy)
        )
        pf = run_embedding_trace(
            trace, amap, spec.core, build_hierarchy(spec.hierarchy),
            plan=PAPER_SWPF.plan(),
        )
        base_ms = cycles_to_ms(base.total_cycles, spec.frequency_hz)
        pf_ms = cycles_to_ms(pf.total_cycles, spec.frequency_hz)
        if fp32_base is None:
            fp32_base = base_ms
        print(
            f"{label:<10} {amap.row_lines:>6} lines {base_ms:>8.3f}ms "
            f"{pf_ms:>8.3f}ms {fp32_base / pf_ms:>8.2f}x"
        )
    print(
        "\nint8 + SW-PF compounds both levers — the combined speedup over the "
        "fp32 baseline exceeds either alone."
    )


if __name__ == "__main__":
    main()
