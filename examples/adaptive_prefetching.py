#!/usr/bin/env python
"""Online-adaptive prefetch distance across a hotness shift (extension).

Production traffic drifts: a table that was High-hot during the day can
turn Low-hot overnight.  The paper tunes its prefetch distance offline per
platform; this example shows the repo's extension — a controller that
re-tunes the distance *between batches* from two live signals (late
prefetches, wasted prefetches) — converging on each regime without being
told which trace it is serving.

    python examples/adaptive_prefetching.py
"""

from repro.config import SimConfig
from repro.core.adaptive import AdaptiveController, run_adaptive_prefetch
from repro.core.swpf import SWPrefetchConfig
from repro.cpu.platform import get_platform
from repro.engine.embedding_exec import PrefetchPlan, run_embedding_trace
from repro.experiments.workloads import build_workload
from repro.mem.hierarchy import build_hierarchy


def fixed_run(workload, spec, distance):
    hierarchy = build_hierarchy(spec.hierarchy)
    return run_embedding_trace(
        workload.trace, workload.amap, spec.core, hierarchy,
        plan=PrefetchPlan(distance, 8),
    ).total_cycles


def main() -> None:
    config = SimConfig(seed=23)
    spec = get_platform("csl")

    for dataset in ("high", "low"):
        workload = build_workload(
            "rm2_1", dataset, scale=0.015, batch_size=8, num_batches=6,
            config=config,
        )
        print(f"\n=== rm2_1 / {dataset}-hot ===")
        for distance in (1, 4, 16):
            cycles = fixed_run(workload, spec, distance)
            print(f"  fixed distance {distance:>2}: {cycles / 1e6:8.2f} Mcycles")
        adaptive = run_adaptive_prefetch(
            workload.trace, workload.amap, spec,
            base=SWPrefetchConfig(distance=1),
            controller=AdaptiveController(distance=1),
        )
        print(
            f"  adaptive (from 1) : {adaptive.total_cycles / 1e6:8.2f} Mcycles, "
            f"distance trajectory {adaptive.distance_trajectory} "
            f"-> {adaptive.final_distance}"
        )


if __name__ == "__main__":
    main()
