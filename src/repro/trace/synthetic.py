"""Index-stream generators: the paper's synthetic extremes plus Zipf.

``one-item`` (best case: every lookup hits one row, minimal working set) and
``random`` (worst case: uniform over all rows) bracket the execution
spectrum in Fig 4; Zipf streams with a calibrated exponent model the three
production hotness groups.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from ..errors import ConfigError
from .hotness import zipf_probabilities

__all__ = [
    "one_item_indices",
    "uniform_indices",
    "zipf_indices",
    "permuted_zipf_indices",
]


def _check(rows: int, count: int) -> None:
    if rows <= 0:
        raise ConfigError(f"rows must be positive, got {rows}")
    if count < 0:
        raise ConfigError(f"count must be non-negative, got {count}")


def one_item_indices(rows: int, count: int, item: int = 0) -> np.ndarray:
    """All ``count`` lookups hit row ``item`` (the paper's best case)."""
    _check(rows, count)
    if not 0 <= item < rows:
        raise ConfigError(f"item {item} outside table of {rows} rows")
    return np.full(count, item, dtype=np.int64)


def uniform_indices(rows: int, count: int, rng: np.random.Generator) -> np.ndarray:
    """Uniformly random rows (the paper's worst case)."""
    _check(rows, count)
    return rng.integers(0, rows, size=count, dtype=np.int64)


def zipf_indices(
    rows: int,
    count: int,
    alpha: float,
    rng: np.random.Generator,
    probabilities: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Zipf-distributed rows; rank 0 is the hottest row.

    Pass precomputed ``probabilities`` (from
    :func:`repro.trace.hotness.zipf_probabilities`) when generating many
    streams for the same table to avoid recomputing the distribution.
    """
    _check(rows, count)
    p = probabilities if probabilities is not None else zipf_probabilities(rows, alpha)
    if p.shape != (rows,):
        raise ConfigError("probability vector does not match table rows")
    return rng.choice(rows, size=count, p=p).astype(np.int64)


def permuted_zipf_indices(
    rows: int,
    count: int,
    alpha: float,
    rng: np.random.Generator,
    permutation: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Zipf draws with hot ranks scattered across the physical table.

    Real embedding tables do not store popular items contiguously; hot rows
    land at arbitrary offsets.  This matters for the cache simulator since
    contiguous hot rows would artificially share cache sets and pages.
    """
    ranks = zipf_indices(rows, count, alpha, rng)
    if permutation is None:
        permutation = rng.permutation(rows)
    elif permutation.shape != (rows,):
        raise ConfigError("permutation does not match table rows")
    return permutation[ranks].astype(np.int64)
