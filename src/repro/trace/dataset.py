"""The :class:`EmbeddingTrace` container — Fig 3's offsets/indices layout.

A trace holds, for each (batch, table) pair, the ``offsets`` and ``indices``
arrays exactly as PyTorch's ``embedding_bag`` consumes them:

* ``offsets`` has ``batch_size + 1`` entries; sample *k* of the batch owns
  ``indices[offsets[k] : offsets[k+1]]``,
* ``indices`` are row ids into that table.

This is the shape of Meta's released ``dlrm_datasets`` files and the input
to every execution engine and analysis in this repo.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

import numpy as np

from ..errors import TraceError

__all__ = ["TableBatch", "EmbeddingTrace"]


@dataclass(frozen=True)
class TableBatch:
    """One table's lookups for one batch (an ``embedding_bag`` invocation)."""

    offsets: np.ndarray
    indices: np.ndarray

    def __post_init__(self) -> None:
        offsets, indices = self.offsets, self.indices
        if offsets.ndim != 1 or indices.ndim != 1:
            raise TraceError("offsets and indices must be 1-D arrays")
        if offsets.size < 2:
            raise TraceError("offsets must cover at least one sample")
        if offsets[0] != 0:
            raise TraceError(f"offsets must start at 0, got {offsets[0]}")
        if np.any(np.diff(offsets) < 0):
            raise TraceError("offsets must be non-decreasing")
        if offsets[-1] != indices.size:
            raise TraceError(
                f"offsets end at {offsets[-1]} but there are {indices.size} indices"
            )
        if indices.size and indices.min() < 0:
            raise TraceError("indices must be non-negative")

    @property
    def batch_size(self) -> int:
        """Samples in this batch."""
        return self.offsets.size - 1

    @property
    def total_lookups(self) -> int:
        """Total index-array entries (pooled lookups) in this batch."""
        return int(self.indices.size)

    def sample_indices(self, sample: int) -> np.ndarray:
        """Row ids looked up by sample ``sample``."""
        if not 0 <= sample < self.batch_size:
            raise TraceError(f"sample {sample} outside batch of {self.batch_size}")
        return self.indices[self.offsets[sample] : self.offsets[sample + 1]]

    def lookups_per_sample(self) -> np.ndarray:
        """Pooling factor of each sample."""
        return np.diff(self.offsets)


@dataclass
class EmbeddingTrace:
    """All embedding lookups of a workload: batches x tables.

    ``batches[b][t]`` is the :class:`TableBatch` for batch ``b``, table
    ``t``.  ``rows_per_table[t]`` bounds the valid index range of table
    ``t`` and is validated on construction.
    """

    rows_per_table: Sequence[int]
    batches: List[List[TableBatch]] = field(default_factory=list)
    name: str = "unnamed"

    def __post_init__(self) -> None:
        if not self.rows_per_table:
            raise TraceError("a trace needs at least one table")
        for rows in self.rows_per_table:
            if rows <= 0:
                raise TraceError(f"table row count must be positive, got {rows}")
        for b, batch in enumerate(self.batches):
            self._validate_batch(b, batch)

    def _validate_batch(self, b: int, batch: List[TableBatch]) -> None:
        if len(batch) != self.num_tables:
            raise TraceError(
                f"batch {b} covers {len(batch)} tables, expected {self.num_tables}"
            )
        for t, tb in enumerate(batch):
            if tb.indices.size and tb.indices.max() >= self.rows_per_table[t]:
                raise TraceError(
                    f"batch {b} table {t}: index {tb.indices.max()} outside "
                    f"{self.rows_per_table[t]} rows"
                )

    # -- shape ---------------------------------------------------------------

    @property
    def num_tables(self) -> int:
        """Number of embedding tables."""
        return len(self.rows_per_table)

    @property
    def num_batches(self) -> int:
        """Number of batches recorded."""
        return len(self.batches)

    @property
    def batch_size(self) -> int:
        """Samples per batch (uniform across the trace)."""
        if not self.batches:
            raise TraceError("empty trace has no batch size")
        return self.batches[0][0].batch_size

    def append_batch(self, batch: List[TableBatch]) -> None:
        """Validate and add one batch across all tables."""
        self._validate_batch(self.num_batches, batch)
        self.batches.append(batch)

    # -- views ----------------------------------------------------------------

    def table_batch(self, batch: int, table: int) -> TableBatch:
        """The lookups of one ``embedding_bag`` call."""
        return self.batches[batch][table]

    def table_indices(self, table: int) -> np.ndarray:
        """All indices ever looked up in ``table``, concatenated over batches."""
        parts = [batch[table].indices for batch in self.batches]
        return np.concatenate(parts) if parts else np.empty(0, dtype=np.int64)

    def iter_table_batches(self) -> Iterator[Tuple[int, int, TableBatch]]:
        """Yield ``(batch, table, TableBatch)`` in execution order.

        Execution order follows Algorithm 1: for each batch, tables are
        processed in order — the order that produces the inter-table cache
        thrash discussed in Section 3.1.
        """
        for b, batch in enumerate(self.batches):
            for t, tb in enumerate(batch):
                yield b, t, tb

    # -- statistics -------------------------------------------------------------

    def total_lookups(self) -> int:
        """Pooled lookups across the whole trace."""
        return sum(tb.total_lookups for _, _, tb in self.iter_table_batches())

    def unique_fraction(self, table: int) -> float:
        """Observed unique-access fraction for one table (paper's metric)."""
        indices = self.table_indices(table)
        if indices.size == 0:
            raise TraceError(f"table {table} has no lookups")
        return min(1.0, np.unique(indices).size / indices.size)

    def mean_unique_fraction(self) -> float:
        """Average unique fraction across tables."""
        return float(
            np.mean([self.unique_fraction(t) for t in range(self.num_tables)])
        )

    def access_counts(self, table: int) -> np.ndarray:
        """Per-row access counts, sorted descending (Fig 5's histogram)."""
        indices = self.table_indices(table)
        counts = np.bincount(indices, minlength=self.rows_per_table[table])
        counts = counts[counts > 0]
        return np.sort(counts)[::-1]

    def summary(self) -> Dict[str, float]:
        """Compact description used by experiment reports."""
        return {
            "tables": self.num_tables,
            "batches": self.num_batches,
            "batch_size": self.batch_size,
            "total_lookups": self.total_lookups(),
            "mean_unique_fraction": self.mean_unique_fraction(),
        }
