"""Embedding-lookup trace generation.

The paper evaluates on Meta's released production traces
(``dlrm_datasets``), binned by *hotness* into High / Medium / Low groups
with unique-access fractions of 3% / 24% / 60%, plus two synthetic
extremes: ``one-item`` (every lookup hits row 0) and ``random`` (uniform).
We cannot ship the proprietary traces, so this subpackage synthesizes
traces calibrated to exactly those published statistics:

* :mod:`repro.trace.hotness` — hotness profiles and Zipf-exponent
  calibration against a target unique-access fraction,
* :mod:`repro.trace.synthetic` — one-item / uniform / Zipf index streams,
* :mod:`repro.trace.dataset` — the :class:`EmbeddingTrace` container
  (offsets + indices per batch and table, the Fig 3 layout),
* :mod:`repro.trace.production` — full dataset synthesis with per-table
  hotness variation, mirroring the released traces' structure,
* :mod:`repro.trace.stream` — table address maps and cache-line streams.
"""

from .dataset import EmbeddingTrace, TableBatch
from .hotness import (
    HOTNESS_PROFILES,
    HotnessProfile,
    expected_unique_fraction,
    fit_zipf_alpha,
)
from .io import load_trace, save_trace
from .production import make_production_trace, make_trace
from .stream import AddressMap
from .synthetic import one_item_indices, uniform_indices, zipf_indices

__all__ = [
    "AddressMap",
    "EmbeddingTrace",
    "HOTNESS_PROFILES",
    "HotnessProfile",
    "TableBatch",
    "expected_unique_fraction",
    "fit_zipf_alpha",
    "load_trace",
    "make_production_trace",
    "save_trace",
    "make_trace",
    "one_item_indices",
    "uniform_indices",
    "zipf_indices",
]
