"""Trace serialization, mirroring the ``dlrm_datasets`` release format.

Meta's released traces are (offsets, indices) tensor pairs per table.  We
persist the same structure in a single ``.npz``: per (batch, table) pair an
``offsets_<b>_<t>`` and ``indices_<b>_<t>`` array, plus a metadata vector.
Saved traces round-trip exactly, so expensive calibrated traces can be
generated once and shared between experiment runs.
"""

from __future__ import annotations

from pathlib import Path
from typing import Union

import numpy as np

from ..errors import TraceError
from .dataset import EmbeddingTrace, TableBatch

__all__ = ["save_trace", "load_trace"]

_FORMAT_VERSION = 1


def save_trace(trace: EmbeddingTrace, path: Union[str, Path]) -> Path:
    """Write a trace to ``path`` (``.npz`` appended if missing)."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    arrays = {
        "meta_version": np.array([_FORMAT_VERSION]),
        "meta_shape": np.array([trace.num_batches, trace.num_tables]),
        "meta_rows_per_table": np.asarray(trace.rows_per_table, dtype=np.int64),
        "meta_name": np.array([trace.name]),
    }
    for b in range(trace.num_batches):
        for t in range(trace.num_tables):
            tb = trace.table_batch(b, t)
            arrays[f"offsets_{b}_{t}"] = tb.offsets
            arrays[f"indices_{b}_{t}"] = tb.indices
    np.savez_compressed(path, **arrays)
    return path


def load_trace(path: Union[str, Path]) -> EmbeddingTrace:
    """Read a trace written by :func:`save_trace` (validated on load)."""
    path = Path(path)
    if not path.exists():
        raise TraceError(f"trace file not found: {path}")
    with np.load(path, allow_pickle=False) as data:
        try:
            version = int(data["meta_version"][0])
            num_batches, num_tables = (int(x) for x in data["meta_shape"])
            rows_per_table = data["meta_rows_per_table"].tolist()
            name = str(data["meta_name"][0])
        except KeyError as missing:
            raise TraceError(f"not a repro trace file (missing {missing})") from None
        if version != _FORMAT_VERSION:
            raise TraceError(
                f"unsupported trace format version {version} "
                f"(this build reads {_FORMAT_VERSION})"
            )
        trace = EmbeddingTrace(rows_per_table=rows_per_table, name=name)
        for b in range(num_batches):
            batch = []
            for t in range(num_tables):
                try:
                    offsets = data[f"offsets_{b}_{t}"]
                    indices = data[f"indices_{b}_{t}"]
                except KeyError:
                    raise TraceError(
                        f"trace file truncated at batch {b}, table {t}"
                    ) from None
                batch.append(TableBatch(offsets=offsets, indices=indices))
            trace.append_batch(batch)
    return trace
