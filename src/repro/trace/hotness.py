"""Hotness profiles and Zipf calibration.

Section 5 of the paper: "the unique accesses in Low, Medium, & High are
60%, 24%, & 3% respectively, which matches Meta's input traces".  Unique
accesses = fraction of distinct item ids among all lookups of a table.

We model the per-row popularity as a finite Zipf distribution
``p_r ∝ 1 / rank^alpha`` and calibrate ``alpha`` so the *expected* unique
fraction at the workload's access count matches the target.  Uniform
sampling (alpha=0) of R rows with N=R draws already leaves only
``1 - e^{-1} ≈ 63%`` unique, which is why Low-hot is nearly uniform while
High-hot needs a steep exponent.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict

import numpy as np

from ..errors import ConfigError

__all__ = [
    "HotnessProfile",
    "HOTNESS_PROFILES",
    "zipf_probabilities",
    "expected_unique_fraction",
    "fit_zipf_alpha",
]


@dataclass(frozen=True)
class HotnessProfile:
    """A named hotness level with its published unique-access target."""

    name: str
    unique_fraction: float
    #: Spread of per-table alpha jitter (hotness varies across tables).
    table_jitter: float = 0.1

    def __post_init__(self) -> None:
        if not 0.0 < self.unique_fraction <= 1.0:
            raise ConfigError(
                f"unique fraction must be in (0,1], got {self.unique_fraction}"
            )


#: The paper's three production-trace groups (Section 5).
HOTNESS_PROFILES: Dict[str, HotnessProfile] = {
    "high": HotnessProfile("high", unique_fraction=0.03),
    "medium": HotnessProfile("medium", unique_fraction=0.24),
    "low": HotnessProfile("low", unique_fraction=0.60),
}


def zipf_probabilities(rows: int, alpha: float) -> np.ndarray:
    """Normalized finite-Zipf probabilities over ``rows`` ranks.

    ``alpha = 0`` is uniform.  Rank 0 is the hottest row.
    """
    if rows <= 0:
        raise ConfigError(f"rows must be positive, got {rows}")
    if alpha < 0:
        raise ConfigError(f"alpha must be non-negative, got {alpha}")
    ranks = np.arange(1, rows + 1, dtype=np.float64)
    weights = ranks**-alpha
    return weights / weights.sum()


def expected_unique_fraction(rows: int, samples: int, alpha: float) -> float:
    """Expected fraction of distinct rows after ``samples`` Zipf draws.

    ``E[unique] = Σ_r (1 - (1 - p_r)^N`` evaluated in log space for
    numerical stability with tiny tail probabilities.
    """
    if samples <= 0:
        raise ConfigError(f"samples must be positive, got {samples}")
    p = zipf_probabilities(rows, alpha)
    log_miss = samples * np.log1p(-np.minimum(p, 1.0 - 1e-15))
    expected_unique = float(np.sum(1.0 - np.exp(log_miss)))
    # The paper's metric: distinct ids over total lookups.  Always bounded
    # by min(rows, samples) / samples <= 1.
    return expected_unique / samples


@lru_cache(maxsize=256)
def fit_zipf_alpha(
    rows: int,
    samples: int,
    target_unique_fraction: float,
    tolerance: float = 1e-3,
    max_alpha: float = 8.0,
) -> float:
    """Find alpha such that the expected unique fraction hits the target.

    Unique fraction decreases monotonically in alpha, so a bisection over
    ``[0, max_alpha]`` suffices.  If even ``alpha = 0`` (uniform) leaves
    fewer uniques than the target — which happens when ``samples >> rows``
    — the uniform exponent 0 is returned as the closest achievable point.

    Deterministic in its arguments (a pure 60-step bisection over closed
    forms), so results are memoized — every workload build re-fits the
    same handful of (rows, samples, target) triples.
    """
    if not 0.0 < target_unique_fraction <= 1.0:
        raise ConfigError("target unique fraction must be in (0, 1]")
    base = expected_unique_fraction(rows, samples, 0.0)
    if base <= target_unique_fraction:
        return 0.0
    lo, hi = 0.0, max_alpha
    if expected_unique_fraction(rows, samples, hi) > target_unique_fraction:
        return hi
    for _ in range(60):
        mid = (lo + hi) / 2
        got = expected_unique_fraction(rows, samples, mid)
        if abs(got - target_unique_fraction) < tolerance:
            return mid
        if got > target_unique_fraction:
            lo = mid
        else:
            hi = mid
    return (lo + hi) / 2


def measured_unique_fraction(indices: np.ndarray) -> float:
    """Observed unique fraction of an index stream (Fig 5 style metric).

    Denominator follows the paper's definition: distinct ids over total
    lookups (capped at 1.0 for degenerate tiny streams).
    """
    if indices.size == 0:
        raise ConfigError("cannot measure an empty index stream")
    return min(1.0, np.unique(indices).size / indices.size)
