"""Synthesis of Meta-like production traces.

:func:`make_trace` builds an :class:`~repro.trace.dataset.EmbeddingTrace`
for a workload shape (tables x rows x batches x lookups) and a dataset
name: the three production hotness groups (``high`` / ``medium`` / ``low``,
Zipf calibrated to the published 3% / 24% / 60% unique fractions) or the
synthetic extremes (``one-item`` / ``random``).

Per-table realism knobs mirror what the released ``dlrm_datasets`` show:

* hotness varies across tables (alpha jitter around the calibrated value),
* hot rows are scattered over the physical table (rank permutation),
* per-sample pooling factors vary around the mean (Poisson).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..config import PAPER_BATCH_SIZE, PAPER_NUM_BATCHES, SimConfig
from ..errors import ConfigError
from .dataset import EmbeddingTrace, TableBatch
from .hotness import HOTNESS_PROFILES, fit_zipf_alpha, zipf_probabilities
from .synthetic import one_item_indices, uniform_indices

__all__ = ["DATASET_NAMES", "make_trace", "make_production_trace", "make_zipf_trace"]

#: Valid dataset names, in the Fig 4 presentation order.
DATASET_NAMES = ("one-item", "high", "medium", "low", "random")


def _offsets_for(
    batch_size: int,
    mean_lookups: int,
    rng: np.random.Generator,
    variable_pooling: bool,
) -> np.ndarray:
    if variable_pooling and mean_lookups > 1:
        pooling = rng.poisson(mean_lookups, size=batch_size)
        pooling = np.maximum(pooling, 1)
    else:
        pooling = np.full(batch_size, mean_lookups, dtype=np.int64)
    offsets = np.zeros(batch_size + 1, dtype=np.int64)
    np.cumsum(pooling, out=offsets[1:])
    return offsets


def make_trace(
    dataset: str,
    num_tables: int,
    rows_per_table: int,
    batch_size: int,
    num_batches: int,
    lookups_per_sample: int,
    config: Optional[SimConfig] = None,
    variable_pooling: bool = True,
    name: Optional[str] = None,
    calibration_samples: Optional[int] = None,
) -> EmbeddingTrace:
    """Build a complete trace for one workload and dataset.

    Parameters mirror the embedding-stage loop of Algorithm 1.

    The Zipf exponent for the hotness datasets is calibrated so the
    expected unique-access fraction at ``calibration_samples`` draws hits
    the paper's published target (3% / 24% / 60%).  The unique fraction is
    sample-size dependent, and the paper measures it over full production
    traces (batch 64, 120 batches), so by default calibration uses that
    *paper-scale* access count even when the generated trace is smaller —
    the skew is a property of the dataset, not of how much of it we
    sample.
    """
    dataset = dataset.lower()
    if dataset not in DATASET_NAMES:
        raise ConfigError(f"unknown dataset {dataset!r}; expected one of {DATASET_NAMES}")
    if num_tables <= 0 or rows_per_table <= 0:
        raise ConfigError("table shape must be positive")
    if batch_size <= 0 or num_batches <= 0 or lookups_per_sample <= 0:
        raise ConfigError("workload shape must be positive")
    config = config or SimConfig()
    rng = config.rng(f"trace:{dataset}:{num_tables}x{rows_per_table}")

    if calibration_samples is None:
        calibration_samples = PAPER_BATCH_SIZE * PAPER_NUM_BATCHES * lookups_per_sample
    if calibration_samples <= 0:
        raise ConfigError("calibration_samples must be positive")

    base_alpha = 0.0
    if dataset in HOTNESS_PROFILES:
        profile = HOTNESS_PROFILES[dataset]
        base_alpha = fit_zipf_alpha(
            rows_per_table, calibration_samples, profile.unique_fraction
        )

    # Per-table popularity distributions and rank scatter, fixed for the
    # whole trace (a table's hot set does not change between batches —
    # that stability is what creates the inter-batch reuse of Fig 7).
    table_probs: List[Optional[np.ndarray]] = []
    table_perms: List[Optional[np.ndarray]] = []
    for t in range(num_tables):
        if dataset in HOTNESS_PROFILES:
            jitter = HOTNESS_PROFILES[dataset].table_jitter
            alpha_t = max(0.0, base_alpha * (1.0 + rng.uniform(-jitter, jitter)))
            table_probs.append(zipf_probabilities(rows_per_table, alpha_t))
            table_perms.append(rng.permutation(rows_per_table))
        else:
            table_probs.append(None)
            table_perms.append(None)

    trace = EmbeddingTrace(
        rows_per_table=[rows_per_table] * num_tables,
        name=name or f"{dataset}-{num_tables}x{rows_per_table}",
    )
    for _ in range(num_batches):
        batch: List[TableBatch] = []
        for t in range(num_tables):
            offsets = _offsets_for(batch_size, lookups_per_sample, rng, variable_pooling)
            count = int(offsets[-1])
            if dataset == "one-item":
                indices = one_item_indices(rows_per_table, count)
            elif dataset == "random":
                indices = uniform_indices(rows_per_table, count, rng)
            else:
                probs = table_probs[t]
                perm = table_perms[t]
                assert probs is not None and perm is not None
                ranks = rng.choice(rows_per_table, size=count, p=probs)
                indices = perm[ranks].astype(np.int64)
            batch.append(TableBatch(offsets=offsets, indices=indices))
        trace.append_batch(batch)
    return trace


def make_zipf_trace(
    target_unique_fraction: float,
    num_tables: int,
    rows_per_table: int,
    batch_size: int,
    num_batches: int,
    lookups_per_sample: int,
    config: Optional[SimConfig] = None,
    calibration_samples: Optional[int] = None,
    name: Optional[str] = None,
) -> EmbeddingTrace:
    """A trace at an *arbitrary* hotness, not just the three named groups.

    Calibrates a Zipf exponent so the expected unique-access fraction at
    ``calibration_samples`` (paper-scale by default) equals
    ``target_unique_fraction`` — the continuous axis between the paper's
    High (0.03) and Low (0.60) points.  Used by the hotness-sweep
    experiment.
    """
    if not 0.0 < target_unique_fraction <= 1.0:
        raise ConfigError("target unique fraction must be in (0, 1]")
    config = config or SimConfig()
    rng = config.rng(
        f"zipf:{target_unique_fraction}:{num_tables}x{rows_per_table}"
    )
    if calibration_samples is None:
        calibration_samples = PAPER_BATCH_SIZE * PAPER_NUM_BATCHES * lookups_per_sample
    alpha = fit_zipf_alpha(rows_per_table, calibration_samples, target_unique_fraction)
    trace = EmbeddingTrace(
        rows_per_table=[rows_per_table] * num_tables,
        name=name or f"zipf-u{target_unique_fraction:g}",
    )
    probs = zipf_probabilities(rows_per_table, alpha)
    perms = [rng.permutation(rows_per_table) for _ in range(num_tables)]
    for _ in range(num_batches):
        batch: List[TableBatch] = []
        for t in range(num_tables):
            offsets = _offsets_for(batch_size, lookups_per_sample, rng, True)
            ranks = rng.choice(rows_per_table, size=int(offsets[-1]), p=probs)
            indices = perms[t][ranks].astype(np.int64)
            batch.append(TableBatch(offsets=offsets, indices=indices))
        trace.append_batch(batch)
    return trace


def make_production_trace(
    dataset: str,
    num_tables: int,
    rows_per_table: int,
    config: Optional[SimConfig] = None,
    lookups_per_sample: int = 120,
    num_batches: Optional[int] = None,
) -> EmbeddingTrace:
    """Convenience wrapper using the :class:`SimConfig` batch geometry."""
    config = config or SimConfig()
    return make_trace(
        dataset,
        num_tables=num_tables,
        rows_per_table=rows_per_table,
        batch_size=config.batch_size,
        num_batches=num_batches if num_batches is not None else config.num_batches,
        lookups_per_sample=lookups_per_sample,
        config=config,
    )
