"""Table address maps and cache-line streams.

The cache simulator works on byte addresses.  :class:`AddressMap` lays the
embedding tables out in a flat address space — contiguous rows, tables
page-aligned and separated — exactly like a resident model in DRAM, and
converts (table, row) pairs into cache-line runs.
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from ..errors import ConfigError, TraceError
from ..units import CACHE_LINE_BYTES, FLOAT32_BYTES
from .dataset import TableBatch

__all__ = ["AddressMap"]

#: Tables start on a 2 MiB boundary (huge-page alignment, like IPEX).
TABLE_ALIGN_BYTES = 2 * 1024 * 1024


class AddressMap:
    """Physical layout of a model's embedding tables.

    Parameters
    ----------
    rows_per_table:
        Row count of each table.
    embedding_dim:
        Elements per row (uniform across tables, as in Table 2 models).
    dtype_bytes:
        Element width; fp32 throughout the paper.
    base_address:
        Where table 0 starts.  Non-zero bases let several structures
        (e.g. MLP weights) coexist in one simulated address space.
    """

    def __init__(
        self,
        rows_per_table: Sequence[int],
        embedding_dim: int,
        dtype_bytes: int = FLOAT32_BYTES,
        base_address: int = TABLE_ALIGN_BYTES,
    ) -> None:
        if embedding_dim <= 0:
            raise ConfigError(f"embedding_dim must be positive, got {embedding_dim}")
        if dtype_bytes <= 0:
            raise ConfigError(f"dtype_bytes must be positive, got {dtype_bytes}")
        if not rows_per_table:
            raise ConfigError("need at least one table")
        self.embedding_dim = embedding_dim
        self.dtype_bytes = dtype_bytes
        self.row_bytes = embedding_dim * dtype_bytes
        self.rows_per_table = list(rows_per_table)
        self.table_bases: List[int] = []
        cursor = base_address
        for rows in self.rows_per_table:
            if rows <= 0:
                raise ConfigError("row counts must be positive")
            cursor = -(-cursor // TABLE_ALIGN_BYTES) * TABLE_ALIGN_BYTES
            self.table_bases.append(cursor)
            cursor += rows * self.row_bytes

    @property
    def num_tables(self) -> int:
        """Number of tables laid out."""
        return len(self.rows_per_table)

    @property
    def row_lines(self) -> int:
        """Cache lines per embedding row (8 for dim=128 fp32)."""
        return -(-self.row_bytes // CACHE_LINE_BYTES)

    @property
    def total_bytes(self) -> int:
        """Footprint from table 0's base through the last row."""
        last = self.num_tables - 1
        end = self.table_bases[last] + self.rows_per_table[last] * self.row_bytes
        return end - self.table_bases[0]

    # -- address math ----------------------------------------------------------

    def row_address(self, table: int, row: int) -> int:
        """Byte address of ``table[row][0]``."""
        if not 0 <= table < self.num_tables:
            raise TraceError(f"table {table} out of range")
        if not 0 <= row < self.rows_per_table[table]:
            raise TraceError(f"row {row} outside table {table}")
        return self.table_bases[table] + row * self.row_bytes

    def row_first_line(self, table: int, row: int) -> int:
        """First cache line of a row."""
        return self.row_address(table, row) // CACHE_LINE_BYTES

    def row_line_run(self, table: int, row: int) -> range:
        """All cache lines of a row, in ascending order."""
        first = self.row_first_line(table, row)
        last = (self.row_address(table, row) + self.row_bytes - 1) // CACHE_LINE_BYTES
        return range(first, last + 1)

    # -- vectorized streams ------------------------------------------------------

    def batch_first_lines(self, table: int, table_batch: TableBatch) -> np.ndarray:
        """First-line numbers of every lookup of one ``embedding_bag`` call."""
        if table_batch.indices.size and (
            table_batch.indices.max() >= self.rows_per_table[table]
        ):
            raise TraceError("trace indices exceed table rows in the address map")
        base = self.table_bases[table]
        addresses = base + table_batch.indices * self.row_bytes
        return addresses // CACHE_LINE_BYTES

    def row_id_of_line(self, line: int) -> "tuple[int, int] | None":
        """Inverse map: (table, row) owning a cache line, or None."""
        addr = line * CACHE_LINE_BYTES
        for table, base in enumerate(self.table_bases):
            end = base + self.rows_per_table[table] * self.row_bytes
            if base <= addr < end:
                return table, (addr - base) // self.row_bytes
        return None
