"""Mechanistic contention: tenant pressure through the shared-memory models.

No ad-hoc slowdown multipliers: a tenant degrades us exactly the way the
hardware would.

* **LLC occupancy** — the tenant's footprint claims LLC ways
  (:func:`contended_hierarchy`), shrinking our effective L3 through the
  same :class:`~repro.mem.hierarchy.HierarchyConfig` knob a CAT mask
  uses; the reuse-distance model then converts the smaller capacity into
  a higher DRAM service fraction.
* **DRAM bandwidth** — the tenant's channel load feeds
  :meth:`~repro.mem.dram.DRAMModel.set_tenant_utilization`, and the
  shared queueing curve inflates every miss's latency.
* **SMT siblings** — a tenant hyperthread inflates our core time through
  the calibrated :class:`~repro.cpu.smt.SMTModel`.

Defenses are the same knobs pointed the other way: a CAT allocation caps
the *tenant's* ways (giving ours back), and an MBA-style throttle caps the
tenant load the channel queue sees.

:class:`ContentionModel` composes the three effects into a service-time
multiplier and an observable probe (memory-stall share of the CPI stack,
per-level miss mix) for each (active tenants, defense) design point, so
the serving loop and the QoS detectors consume one consistent mechanism.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Dict, FrozenSet, Optional, Sequence, Tuple

from ..analysis.breakdown import estimate_embedding_cycles
from ..analysis.cache_model import CacheHitModel, ReuseResult
from ..cpu.platform import CPUSpec
from ..cpu.smt import SMTModel, ThreadProfile
from ..engine.kernels import KernelCostModel
from ..engine.mlp_exec import time_interaction, time_mlp, time_top_mlp
from ..errors import ConfigError
from ..mem.dram import DRAMModel
from ..mem.hierarchy import HierarchyConfig
from ..model.configs import ModelConfig
from ..obs.cpi import embedding_cpi_stack
from ..units import CACHE_LINE_BYTES, FLOAT32_BYTES
from .profiles import TenantProfile

__all__ = [
    "DEFAULT_DEFENSE_LADDER",
    "ContentionModel",
    "ContentionPoint",
    "DefenseConfig",
    "contended_hierarchy",
]


@dataclass(frozen=True)
class DefenseConfig:
    """One rung of the QoS defense ladder.

    ``tenant_ways`` confines tenants to that many LLC ways (CAT);
    ``bandwidth_cap`` bounds the channel fraction tenant traffic may
    occupy (MBA).  Both ``None`` is the undefended sharing default.
    """

    name: str
    tenant_ways: Optional[int] = None
    bandwidth_cap: Optional[float] = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("defense name must be non-empty")
        if self.tenant_ways is not None and self.tenant_ways < 1:
            raise ConfigError(
                f"tenant_ways must be >= 1, got {self.tenant_ways}"
            )
        if self.bandwidth_cap is not None and not (
            math.isfinite(self.bandwidth_cap) and 0.0 <= self.bandwidth_cap <= 1.0
        ):
            raise ConfigError(
                f"bandwidth_cap must be in [0, 1], got {self.bandwidth_cap}"
            )


#: Escalation ladder the QoS controller steps through: share everything,
#: then wall off the LLC, then also throttle the channel.
DEFAULT_DEFENSE_LADDER: Tuple[DefenseConfig, ...] = (
    DefenseConfig("none"),
    DefenseConfig("partition", tenant_ways=2),
    DefenseConfig("partition+throttle", tenant_ways=2, bandwidth_cap=0.15),
)


def contended_hierarchy(
    hierarchy: HierarchyConfig,
    tenant_footprint_bytes: int,
    defense: DefenseConfig = DefenseConfig("none"),
) -> HierarchyConfig:
    """Our effective hierarchy when tenants occupy part of the LLC.

    Way-granular, like the replacement hardware: undefended, the tenant
    claims ``ceil(footprint / way_bytes)`` ways (capped so we always keep
    one); with a CAT defense it holds exactly ``defense.tenant_ways``
    regardless of appetite — and pays that reservation even while idle.
    Our allocation is clamped so the effective L3 stays larger than the
    L2 (the model's strict-inclusion invariant).
    """
    if tenant_footprint_bytes < 0:
        raise ConfigError("tenant footprint must be non-negative")
    way_bytes = hierarchy.l3_size // hierarchy.l3_ways
    if defense.tenant_ways is not None:
        tenant_ways = min(defense.tenant_ways, hierarchy.l3_ways - 1)
    else:
        tenant_ways = min(
            hierarchy.l3_ways - 1,
            -(-tenant_footprint_bytes // way_bytes),
        )
    if tenant_ways <= 0:
        return hierarchy
    ours = hierarchy.l3_ways - tenant_ways
    min_ours = hierarchy.l2_size // way_bytes + 1
    ours = max(ours, min_ours)
    if ours >= hierarchy.l3_ways:
        return hierarchy
    return replace(hierarchy, l3_allocated_ways=ours)


@dataclass(frozen=True)
class ContentionPoint:
    """One (active tenants, defense) design point of the contention model."""

    multiplier: float        # service-time inflation vs. the solo baseline
    batch_cycles: float      # contended cycles for one batch
    mem_stall_share: float   # L3+DRAM stall fraction of the batch (probe)
    level_mix: Dict[str, float]  # per-level service fractions (probe)
    dram_inflation: float    # queueing-factor ratio vs. solo
    smt_inflation: float     # sibling inflation factor
    our_l3_ways: int         # ways we keep at this point


class ContentionModel:
    """Maps tenant mixes and defenses to mechanistic service multipliers.

    Built once per workload from the trace's reuse profile; every design
    point reuses the solo dense-stage roofline and re-derives only what
    the tenants actually touch (LLC capacity, DRAM queueing, SMT).
    Points are cached by (active tenant names, defense), since the
    serving loop asks for the same handful of points thousands of times.
    """

    def __init__(
        self,
        model: ModelConfig,
        reuse: ReuseResult,
        platform: CPUSpec,
        batch_size: int,
        own_dram_utilization: float = 0.35,
        own_profile: Optional[ThreadProfile] = None,
        smt: Optional[SMTModel] = None,
        cost: KernelCostModel = KernelCostModel(),
    ) -> None:
        if batch_size <= 0:
            raise ConfigError("batch_size must be positive")
        if not 0.0 <= own_dram_utilization < 1.0:
            raise ConfigError(
                f"own_dram_utilization must be in [0, 1), got {own_dram_utilization}"
            )
        self.model = model
        self.reuse = reuse
        self.platform = platform
        self.batch_size = batch_size
        self.own_dram_utilization = own_dram_utilization
        self.own_profile = own_profile or ThreadProfile(
            "inference", 1.0, utilization=0.30, stall_fraction=0.60
        )
        self.smt = smt or SMTModel()
        self.cost = cost

        core = platform.core
        self._dense_cycles = (
            time_mlp(model.dense_features, model.bottom_mlp, batch_size, core).cycles
            + time_interaction(
                batch_size, model.num_tables, model.embedding_dim, core
            ).cycles
            + time_top_mlp(
                model.num_tables, model.embedding_dim, model.top_mlp,
                batch_size, core,
            ).cycles
        )
        row_lines = -(-model.embedding_dim * FLOAT32_BYTES // CACHE_LINE_BYTES)
        self._issue_cycles = (
            cost.instructions_per_lookup(row_lines) / core.issue_width
        ) * model.lookups_for_batch(batch_size)
        self._cache: Dict[
            Tuple[FrozenSet[TenantProfile], DefenseConfig], ContentionPoint
        ] = {}
        self._base_cycles = self._contended_cycles((), DefenseConfig("none"))[0]

    # -- internals ----------------------------------------------------------

    def _dram_inflation(
        self, tenants: Sequence[TenantProfile], defense: DefenseConfig
    ) -> float:
        """Queueing-factor ratio: (own + throttled tenant load) vs. own."""
        channel = DRAMModel(self.platform.hierarchy.dram)
        channel.set_utilization(self.own_dram_utilization)
        solo = channel.queueing_factor()
        channel.set_tenant_utilization(sum(t.dram_utilization for t in tenants))
        channel.set_tenant_throttle(defense.bandwidth_cap)
        return channel.queueing_factor() / solo

    def _smt_inflation(self, tenants: Sequence[TenantProfile]) -> float:
        """Inflation from the most demanding tenant hyperthread (if any)."""
        live = [t for t in tenants if t.smt_utilization > 0 or t.smt_stall_fraction > 0]
        if not live:
            return 1.0
        worst = max(
            live,
            key=lambda t: t.smt_utilization + t.smt_stall_fraction,
        )
        sibling = ThreadProfile(
            worst.name, 1.0,
            utilization=worst.smt_utilization,
            stall_fraction=worst.smt_stall_fraction,
        )
        return self.smt.inflation(self.own_profile, sibling)

    def _contended_cycles(
        self, tenants: Sequence[TenantProfile], defense: DefenseConfig
    ) -> Tuple[float, Dict[str, float], float, float, HierarchyConfig]:
        footprint = sum(t.llc_footprint_bytes for t in tenants)
        hierarchy = contended_hierarchy(
            self.platform.hierarchy, footprint, defense
        )
        fractions = CacheHitModel.from_hierarchy(
            hierarchy, self.model.embedding_dim
        ).level_fractions(self.reuse)
        dram_inflation = self._dram_inflation(tenants, defense)
        # Queueing applies to the DRAM access itself, not the L3 probe in
        # front of it — inflate only the channel's base latency.
        loaded = replace(
            hierarchy,
            dram=replace(
                hierarchy.dram,
                base_latency_cycles=(
                    hierarchy.dram.base_latency_cycles * dram_inflation
                ),
            ),
        )
        platform = replace(self.platform, hierarchy=loaded)
        embedding = estimate_embedding_cycles(
            self.model, fractions, platform, self.batch_size, cost=self.cost
        )
        smt_inflation = self._smt_inflation(tenants)
        total = (self._dense_cycles + embedding) * smt_inflation
        return total, fractions, dram_inflation, smt_inflation, loaded

    # -- design points ------------------------------------------------------

    def design_point(
        self, tenants: Sequence[TenantProfile], defense: DefenseConfig
    ) -> ContentionPoint:
        """The contended operating point for one set of live tenants."""
        key = (frozenset(tenants), defense)
        cached = self._cache.get(key)
        if cached is not None:
            return cached
        total, fractions, dram_infl, smt_infl, loaded = self._contended_cycles(
            tenants, defense
        )
        embedding = total / smt_infl - self._dense_cycles
        stack = embedding_cpi_stack(
            "tenants.embedding",
            embedding,
            self._issue_cycles,
            fractions,
            loaded.l3_latency,
            loaded.l3_latency + loaded.dram.base_latency_cycles,
        )
        mem_stall = stack.buckets.get("l3_bound", 0.0) + stack.buckets.get(
            "dram_bound", 0.0
        )
        point = ContentionPoint(
            multiplier=max(1.0, total / self._base_cycles),
            batch_cycles=total,
            mem_stall_share=mem_stall / total if total > 0 else 0.0,
            level_mix=dict(fractions),
            dram_inflation=dram_infl,
            smt_inflation=smt_infl,
            our_l3_ways=loaded.effective_l3_ways,
        )
        self._cache[key] = point
        return point
