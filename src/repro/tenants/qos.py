"""The QoS closed loop: obs-signal detection -> defense stepping.

The controller never looks at the tenant schedule — it consumes only what
an operator could export from performance counters: the windowed
memory-stall share of the CPI stack (through a
:class:`~repro.obs.detect.MeanShiftDetector`, direction-gated upward) and
the per-level miss mix (through a
:class:`~repro.obs.detect.CompositionDriftDetector`).  Either detector
firing means a neighbor is squeezing the shared LLC/DRAM, and the
controller jumps the defense ladder to its top rung (CAT partition +
bandwidth throttle).

Release is probed, with hysteresis: after ``release_windows`` calm
windows the defense drops back to the undefended rung; if a detector
re-fires during the probation that follows, the controller jumps back and
*doubles* the calm requirement (exponential backoff), so a persistent
neighbor costs at most a geometrically-vanishing fraction of windows in
probes, while a departed neighbor frees the reserved ways within one calm
streak.

``QoSController`` implements the :class:`DegradationController` protocol
(``scale``/``observe``/``level``/``ladder``/``events``) by delegating to
an optional inner controller, so the serving loops compose overload
degradation and contention defense without knowing the difference.

Probe observations are seeded — ``SeedSequence([seed, stream, window])``
— with small multiplicative noise, mirroring counter-sampling jitter
without ever breaking determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..errors import ConfigError
from ..obs.detect import CompositionDriftDetector, DetectionEvent, MeanShiftDetector
from ..serving.degradation import DegradationController, DegradationLevel
from .plan import TenantWorld

__all__ = ["QoSAction", "QoSController"]

#: Sub-stream tag for probe-noise draws (per-window index appended).
_STREAM_QOS = 12

#: Ladder reported when no inner degradation controller is attached.
_NULL_LADDER = (DegradationLevel("baseline", 1.0),)

#: Backoff multipliers stop doubling here (bounded hysteresis).
_MAX_BACKOFF = 64


@dataclass(frozen=True)
class QoSAction:
    """One defense transition the controller took, with its trigger score."""

    t_ms: float
    from_step: int
    to_step: int
    reason: str
    score: float


class QoSController:
    """Detects noisy neighbors from obs signals and steps the defenses."""

    def __init__(
        self,
        world: TenantWorld,
        window_ms: float,
        *,
        inner: Optional[DegradationController] = None,
        seed: int = 0,
        warmup: int = 8,
        mem_threshold: float = 4.0,
        mix_threshold: float = 0.08,
        release_windows: int = 6,
        probe_noise: float = 0.02,
    ) -> None:
        if window_ms <= 0:
            raise ConfigError("QoS window must be positive")
        if release_windows < 1:
            raise ConfigError("release_windows must be >= 1")
        if not 0.0 <= probe_noise < 1.0:
            raise ConfigError(f"probe_noise must be in [0, 1), got {probe_noise}")
        self.world = world
        self.window_ms = float(window_ms)
        self.inner = inner
        self.seed = int(seed)
        self.warmup = int(warmup)
        self.release_windows = int(release_windows)
        self.probe_noise = float(probe_noise)
        # The sigma floor must sit below a neighbor's marginal shift even
        # when the warmup baseline is itself contended (an always-on
        # streamer lifts the mean, and a proportional floor would scale
        # with it); 2% still clears the probe-noise band with margin.
        self.mem_detector = MeanShiftDetector(
            "tenants.mem_stall_share",
            warmup=warmup,
            threshold=mem_threshold,
            min_sigma_frac=0.02,
            direction="up",
        )
        self.mix_detector = CompositionDriftDetector(
            "tenants.level_mix", warmup=warmup, threshold=mix_threshold
        )
        self.actions: List[QoSAction] = []
        self._window_index = 0
        self._next_end = self.window_ms
        self._calm = 0
        self._backoff = 1
        self._probation = 0

    # -- DegradationController protocol (delegated) -------------------------

    def scale(self) -> float:
        return self.inner.scale() if self.inner is not None else 1.0

    @property
    def level(self) -> int:
        return self.inner.level if self.inner is not None else 0

    @property
    def ladder(self):
        return self.inner.ladder if self.inner is not None else _NULL_LADDER

    @property
    def events(self):
        return self.inner.events if self.inner is not None else []

    def observe(self, now_ms: float, latency_ms: float) -> None:
        """Feed one completion; advances any QoS windows that have closed.

        Windows stop at the world's horizon: the tenant schedule is
        defined on ``[0, horizon)``, and probing the post-arrival drain
        would read the empty world as a signal shift.
        """
        if self.inner is not None:
            self.inner.observe(now_ms, latency_ms)
        while (
            now_ms >= self._next_end
            and self._next_end <= self.world.horizon_ms
        ):
            self._step_window(self._next_end)
            self._window_index += 1
            self._next_end += self.window_ms

    # -- detection + defense ------------------------------------------------

    @property
    def detections(self) -> List[DetectionEvent]:
        """Both detectors' transitions, merged in time order."""
        return sorted(
            self.mem_detector.events + self.mix_detector.events,
            key=lambda e: e.t_ms,
        )

    def _probe(self, end_ms: float):
        """One window's noisy observation of the world's CPI probe."""
        mem_share, level_mix = self.world.probe_at(end_ms - self.window_ms / 2.0)
        rng = np.random.default_rng(
            np.random.SeedSequence([self.seed, _STREAM_QOS, self._window_index])
        )
        jitter = self.probe_noise
        mem_obs = mem_share * (1.0 + jitter * (2.0 * float(rng.random()) - 1.0))
        mix_obs = {
            key: value * (1.0 + jitter * (2.0 * float(rng.random()) - 1.0))
            for key, value in sorted(level_mix.items())
        }
        return mem_obs, mix_obs

    def _step_window(self, end_ms: float) -> None:
        mem_obs, mix_obs = self._probe(end_ms)
        self.mem_detector.update(end_ms, mem_obs)
        self.mix_detector.update(end_ms, mix_obs)
        firing = self.mem_detector.firing or self.mix_detector.firing
        step = self.world.defense_step
        if firing:
            self._calm = 0
            if self._probation > 0:
                # A release probe flushed out the neighbor: re-arm with a
                # longer calm requirement before probing again.
                self._backoff = min(_MAX_BACKOFF, self._backoff * 2)
                self._probation = 0
            if step < self.world.max_step:
                score = max(
                    (e.score for e in self.detections if e.firing), default=0.0
                )
                self._move(end_ms, self.world.max_step, "detector_fired", score)
            return
        if self._probation > 0:
            self._probation -= 1
            if self._probation == 0:
                # The probe survived probation: the neighbor really left.
                self._backoff = 1
        if step > 0:
            self._calm += 1
            if self._calm >= self.release_windows * self._backoff:
                self._move(end_ms, 0, "release_probe", 0.0)
                self._calm = 0
                self._probation = self.release_windows

    def _move(self, t_ms: float, to_step: int, reason: str, score: float) -> None:
        from_step = self.world.defense_step
        self.world.set_defense(t_ms, to_step, reason)
        self.actions.append(QoSAction(t_ms, from_step, to_step, reason, score))
