"""Multi-tenant contention: foreign co-runners, defenses, and the QoS loop.

Real fleets co-schedule foreign tenants next to the recommendation model;
since embedding lookups are bandwidth-bound, a bus-hogging neighbor
destroys p99 without any fault ever firing.  This package models the
neighbor (:mod:`profiles`), translates its pressure into mechanistic
degradation through the shared cache/DRAM models (:mod:`contention`),
injects it into the serving loops (:mod:`plan`), and closes the loop with
obs-signal detection plus CAT/MBA-style defenses (:mod:`qos`).
"""

from .contention import (
    DEFAULT_DEFENSE_LADDER,
    ContentionModel,
    ContentionPoint,
    DefenseConfig,
    contended_hierarchy,
)
from .plan import TenantFaultPlan, TenantWorld, node_tenant_slowdowns
from .profiles import (
    TENANT_KINDS,
    TenantMix,
    TenantProfile,
    compute_tenant,
    locker_tenant,
    streaming_tenant,
)
from .qos import QoSAction, QoSController

__all__ = [
    "DEFAULT_DEFENSE_LADDER",
    "ContentionModel",
    "ContentionPoint",
    "DefenseConfig",
    "QoSAction",
    "QoSController",
    "TENANT_KINDS",
    "TenantFaultPlan",
    "TenantMix",
    "TenantProfile",
    "TenantWorld",
    "compute_tenant",
    "contended_hierarchy",
    "locker_tenant",
    "node_tenant_slowdowns",
    "streaming_tenant",
]
