"""Foreign co-runner profiles and their seeded activity windows.

A :class:`TenantProfile` describes one neighbor by what it takes from the
shared hardware — LLC footprint, DRAM channel load, SMT sibling pressure —
not by what it computes.  Three archetypes cover the fleet mix:

* ``streaming`` — a bandwidth-heavy log/video pipeline: large streaming
  footprint, steady DRAM load, light on the core.
* ``compute``   — a compute-bound batch job: tiny cache footprint, almost
  no bandwidth, but a hungry SMT sibling.
* ``locker``    — the adversary: it sweeps a buffer larger than the whole
  LLC while hammering the channel, in on/off duty windows, which is the
  worst case for the embedding kernel (every way evicted, every miss
  queued behind foreign traffic).

Activity windows are seeded the same way :mod:`repro.serving.faults`
seeds its streams — every derived stream is
``SeedSequence([seed, stream, index])`` — so a mix replays identically
across runs and engines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from ..errors import ConfigError
from ..units import mib

__all__ = [
    "TENANT_KINDS",
    "TenantMix",
    "TenantProfile",
    "compute_tenant",
    "locker_tenant",
    "streaming_tenant",
]

#: Recognized archetypes (the window name prefix in request logs).
TENANT_KINDS = ("streaming", "compute", "locker")

#: Sub-stream tag for window generation (per-tenant index appended).
_STREAM_WINDOWS = 11


def _check_unit(name: str, value: float, lo: float = 0.0, hi: float = 1.0) -> None:
    if not (math.isfinite(value) and lo <= value <= hi):
        raise ConfigError(f"{name} must be in [{lo}, {hi}], got {value}")


@dataclass(frozen=True)
class TenantProfile:
    """One foreign co-runner's demand on the shared hardware.

    Parameters
    ----------
    llc_footprint_bytes:
        Bytes of LLC the tenant's working set occupies while active.  A
        footprint at or above the LLC size models a streaming sweep that
        evicts everything it can reach.
    dram_utilization:
        Fraction of the shared channel the tenant offers while active
        (before any throttle).
    smt_utilization / smt_stall_fraction:
        The tenant as an SMT sibling: issue-slot utilization and
        full-window stall fraction of its hyperthread (0/0 = the tenant
        runs on other physical cores).
    duty_cycle:
        Fraction of each activity period the tenant is on.  1.0 = always
        on from ``phase_frac`` to the horizon.
    period_frac:
        Activity period as a fraction of the run horizon.
    phase_frac:
        Offset of the first window as a fraction of the horizon.
    """

    name: str
    kind: str
    llc_footprint_bytes: int
    dram_utilization: float
    smt_utilization: float = 0.0
    smt_stall_fraction: float = 0.0
    duty_cycle: float = 1.0
    period_frac: float = 0.5
    phase_frac: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigError("tenant name must be non-empty")
        if self.kind not in TENANT_KINDS:
            raise ConfigError(
                f"unknown tenant kind {self.kind!r}; expected one of {TENANT_KINDS}"
            )
        if self.llc_footprint_bytes < 0:
            raise ConfigError("LLC footprint must be non-negative")
        if not (math.isfinite(self.dram_utilization) and self.dram_utilization >= 0):
            raise ConfigError(
                f"dram_utilization must be finite and non-negative, "
                f"got {self.dram_utilization}"
            )
        _check_unit("smt_utilization", self.smt_utilization)
        _check_unit("smt_stall_fraction", self.smt_stall_fraction)
        if not (math.isfinite(self.duty_cycle) and 0.0 < self.duty_cycle <= 1.0):
            raise ConfigError(f"duty_cycle must be in (0, 1], got {self.duty_cycle}")
        if not (math.isfinite(self.period_frac) and 0.0 < self.period_frac <= 1.0):
            raise ConfigError(
                f"period_frac must be in (0, 1], got {self.period_frac}"
            )
        _check_unit("phase_frac", self.phase_frac, 0.0, 1.0)


def streaming_tenant(name: str = "streamer") -> TenantProfile:
    """A bandwidth-heavy streaming pipeline, on for the whole run."""
    return TenantProfile(
        name=name,
        kind="streaming",
        llc_footprint_bytes=mib(16),
        dram_utilization=0.30,
        smt_utilization=0.15,
        smt_stall_fraction=0.70,
    )


def compute_tenant(name: str = "batchjob") -> TenantProfile:
    """A compute-bound batch job: SMT pressure, almost no memory demand."""
    return TenantProfile(
        name=name,
        kind="compute",
        llc_footprint_bytes=mib(2),
        dram_utilization=0.05,
        smt_utilization=0.90,
        smt_stall_fraction=0.05,
    )


def locker_tenant(name: str = "buslock", phase_frac: float = 0.25) -> TenantProfile:
    """The adversarial memory-bus locker, in on/off duty windows.

    It runs on its own physical cores (no SMT sibling pressure) — all of
    its damage flows through the shared LLC and the DRAM channel, which
    is exactly the surface the CAT/MBA defenses cover.
    """
    return TenantProfile(
        name=name,
        kind="locker",
        llc_footprint_bytes=mib(64),
        dram_utilization=0.85,
        duty_cycle=0.4,
        period_frac=0.45,
        phase_frac=phase_frac,
    )


class TenantMix:
    """A set of tenants plus the seed their activity windows derive from."""

    def __init__(self, tenants: Sequence[TenantProfile] = (), seed: int = 0) -> None:
        names = [t.name for t in tenants]
        if len(set(names)) != len(names):
            raise ConfigError(f"tenant names must be unique, got {names}")
        self.tenants: Tuple[TenantProfile, ...] = tuple(tenants)
        self.seed = int(seed)

    @property
    def is_empty(self) -> bool:
        return not self.tenants

    def windows(self, horizon_ms: float) -> List[Tuple[int, float, float]]:
        """Activity windows over ``[0, horizon_ms)`` as (tenant, start, end).

        Each tenant's windows come from its own
        ``SeedSequence([seed, stream, index])`` generator, so adding a
        tenant to the mix never perturbs another tenant's schedule.
        Windows are clipped to the horizon and returned sorted by start.
        """
        if horizon_ms <= 0:
            raise ConfigError("horizon must be positive")
        out: List[Tuple[int, float, float]] = []
        for idx, tenant in enumerate(self.tenants):
            phase = tenant.phase_frac * horizon_ms
            if tenant.duty_cycle >= 1.0:
                if phase < horizon_ms:
                    out.append((idx, phase, horizon_ms))
                continue
            rng = np.random.default_rng(
                np.random.SeedSequence([self.seed, _STREAM_WINDOWS, idx])
            )
            period = tenant.period_frac * horizon_ms
            on_len = tenant.duty_cycle * period
            slack = period - on_len
            t = phase
            while t < horizon_ms:
                start = t + float(rng.uniform(0.0, slack))
                end = min(start + on_len, horizon_ms)
                if end > start:
                    out.append((idx, start, end))
                t += period
        out.sort(key=lambda w: (w[1], w[0]))
        return out
