"""Injecting tenants into the serving loops.

:class:`TenantWorld` holds the mix's precomputed activity windows plus the
*mutable* defense step — the one piece of state the QoS controller moves at
runtime — and answers the two questions the loops ask: "how slow is
service right now?" and "what would the CPI probe read right now?".

:class:`TenantFaultPlan` adapts a world to the
:class:`~repro.serving.faults.FaultPlan` interface, so both serving
engines (the reference event loop and the batched fast engine) pick up
tenant pressure through the exact dispatch-time ``service_multiplier``
call they already make — zero engine changes, and an empty world keeps
``is_empty`` true so the no-tenant path stays byte-identical.

:func:`node_tenant_slowdowns` compiles a mix into cluster-scoped
:class:`~repro.serving.faults.NodeTenant` windows for runs where tenants
land on a subset of nodes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError
from ..serving.faults import FaultPlan, NodeTenant
from .contention import DEFAULT_DEFENSE_LADDER, ContentionModel, DefenseConfig
from .profiles import TenantMix, TenantProfile

__all__ = [
    "DefenseChange",
    "TenantFaultPlan",
    "TenantWorld",
    "node_tenant_slowdowns",
]


@dataclass(frozen=True)
class DefenseChange:
    """One defense-step transition, recorded for reporting."""

    t_ms: float
    from_step: int
    to_step: int
    reason: str


@dataclass
class TenantWorld:
    """Live tenant state for one serving run.

    ``defense_step`` indexes ``ladder`` and is the only mutable knob; the
    QoS controller moves it through :meth:`set_defense`.  Design points
    come from the contention model, which caches them, so the per-dispatch
    cost is a window scan plus a dict lookup.
    """

    mix: TenantMix
    model: ContentionModel
    horizon_ms: float
    ladder: Tuple[DefenseConfig, ...] = DEFAULT_DEFENSE_LADDER
    initial_step: int = 0
    defense_step: int = field(init=False)
    changes: List[DefenseChange] = field(init=False, default_factory=list)

    def __post_init__(self) -> None:
        if self.horizon_ms <= 0:
            raise ConfigError("horizon must be positive")
        if not self.ladder:
            raise ConfigError("defense ladder must be non-empty")
        if not 0 <= self.initial_step < len(self.ladder):
            raise ConfigError(
                f"initial_step must index the ladder "
                f"[0, {len(self.ladder)}), got {self.initial_step}"
            )
        self.defense_step = self.initial_step
        self._windows = self.mix.windows(self.horizon_ms) if self.mix.tenants else []

    @property
    def is_empty(self) -> bool:
        """True when the world can never perturb service times."""
        return not self._windows and self.initial_step == 0

    @property
    def max_step(self) -> int:
        return len(self.ladder) - 1

    def active_at(self, t_ms: float) -> Tuple[TenantProfile, ...]:
        """Tenants whose activity windows cover ``t_ms``."""
        live = []
        seen = set()
        for idx, start, end in self._windows:
            if start <= t_ms < end and idx not in seen:
                seen.add(idx)
                live.append(self.mix.tenants[idx])
        return tuple(live)

    def multiplier_at(self, t_ms: float) -> float:
        """Service-time inflation at ``t_ms`` under the current defense.

        1.0 exactly when nothing is live and no defense is engaged — a
        standing CAT reservation costs capacity even while tenants sleep,
        which is precisely the static-partition tax the QoS loop exists
        to avoid.
        """
        active = self.active_at(t_ms)
        if not active and self.defense_step == 0:
            return 1.0
        return self.model.design_point(
            active, self.ladder[self.defense_step]
        ).multiplier

    def probe_at(self, t_ms: float) -> Tuple[float, Dict[str, float]]:
        """(memory-stall share, per-level mix) an observer reads at ``t_ms``."""
        point = self.model.design_point(
            self.active_at(t_ms), self.ladder[self.defense_step]
        )
        return point.mem_stall_share, point.level_mix

    def set_defense(self, t_ms: float, step: int, reason: str) -> None:
        """Move the defense ladder; records the transition."""
        if not 0 <= step < len(self.ladder):
            raise ConfigError(
                f"defense step must index the ladder [0, {len(self.ladder)}), "
                f"got {step}"
            )
        if step == self.defense_step:
            return
        self.changes.append(
            DefenseChange(float(t_ms), self.defense_step, step, reason)
        )
        self.defense_step = step

    def tenant_windows(self) -> List[Tuple[str, float, float, Dict[str, object]]]:
        """Activity windows in the fault-window reporting shape.

        Names are ``tenant_<kind>:<name>`` so request-log miss attribution
        classifies overlapping SLA misses as ``contention``; the attrs
        carry no ``core`` key, making the windows fleet-wide.
        """
        out: List[Tuple[str, float, float, Dict[str, object]]] = []
        for idx, start, end in self._windows:
            tenant = self.mix.tenants[idx]
            out.append(
                (
                    f"tenant_{tenant.kind}:{tenant.name}",
                    start,
                    end,
                    {"tenant": tenant.name, "kind": tenant.kind},
                )
            )
        return out


class TenantFaultPlan(FaultPlan):
    """A fault plan that also carries a tenant world.

    Composes: ordinary faults keep working, and the tenant multiplier
    stacks multiplicatively on top, evaluated at dispatch time like every
    other slowdown.  With an empty base plan *and* an empty world the
    plan reports itself empty, so ``ServerSim`` keeps the vectorized
    happy path and the no-tenant run stays byte-identical.
    """

    def __init__(
        self,
        world: TenantWorld,
        faults: Sequence[object] = (),
        seed: int = 0,
    ) -> None:
        super().__init__(faults, seed)
        self.world = world

    @property
    def is_empty(self) -> bool:
        return super().is_empty and self.world.is_empty

    def service_multiplier(self, core: int, t_ms: float) -> float:
        return super().service_multiplier(core, t_ms) * self.world.multiplier_at(
            t_ms
        )

    def windows(self) -> List[Tuple[str, float, float, Dict[str, object]]]:
        return super().windows() + self.world.tenant_windows()


def node_tenant_slowdowns(
    mix: TenantMix,
    model: ContentionModel,
    horizon_ms: float,
    nodes: Sequence[int],
    defense: Optional[DefenseConfig] = None,
) -> List[NodeTenant]:
    """Compile a mix into node-scoped tenant windows for the cluster layer.

    Each activity window becomes one :class:`NodeTenant` per affected
    node, with the window's *static* contended multiplier (the cluster
    loop has no per-node QoS controller; this models an undefended or
    statically-defended subset of the fleet).
    """
    defense = defense or DefenseConfig("none")
    out: List[NodeTenant] = []
    for idx, start, end in mix.windows(horizon_ms):
        tenant = mix.tenants[idx]
        factor = model.design_point((tenant,), defense).multiplier
        for node in nodes:
            out.append(
                NodeTenant(
                    node=node,
                    start_ms=start,
                    end_ms=end,
                    factor=max(1.0, factor),
                    tenant=tenant.name,
                    kind=tenant.kind,
                )
            )
    return out
