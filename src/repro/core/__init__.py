"""The paper's contribution: software prefetching + smart hyperthreading.

* :mod:`repro.core.swpf` — application-initiated software prefetching for
  ``embedding_bag`` (Section 4.2's what/when/how/where design space),
* :mod:`repro.core.compiler_pf` — the compiler-inserted prefetching
  baselines of Fig 10a (gcc ``-fprefetch-loop-arrays``, icc
  ``-qopt-prefetch=5``),
* :mod:`repro.core.hyperthread` — Sequential / DP-HT / MP-HT scheduling on
  the SMT model (Fig 11),
* :mod:`repro.core.integrated` — SW-PF + MP-HT with the window-stall
  synergy coupling (Section 4.4),
* :mod:`repro.core.tuner` — prefetch distance/amount auto-tuning
  (Fig 10b/c, Section 6.4's per-platform tuning),
* :mod:`repro.core.schemes` — the six evaluated design points behind
  Figs 12-16 and Table 4.
"""

from .adaptive import AdaptiveController, AdaptiveRunResult, run_adaptive_prefetch
from .compiler_pf import COMPILER_STYLES, compiler_prefetch_plan
from .hyperthread import (
    dp_ht_batch_cycles,
    halved_smt_hierarchy_config,
    mp_ht_batch_cycles,
    sequential_batch_cycles,
)
from .integrated import integrated_batch_cycles
from .schemes import SCHEME_NAMES, SchemeResult, evaluate_all_schemes, evaluate_scheme
from .swpf import PAPER_SWPF, SWPrefetchConfig
from .tuner import PrefetchTuningResult, tune_prefetch

__all__ = [
    "AdaptiveController",
    "AdaptiveRunResult",
    "COMPILER_STYLES",
    "run_adaptive_prefetch",
    "PAPER_SWPF",
    "PrefetchTuningResult",
    "SCHEME_NAMES",
    "SWPrefetchConfig",
    "SchemeResult",
    "compiler_prefetch_plan",
    "dp_ht_batch_cycles",
    "evaluate_all_schemes",
    "evaluate_scheme",
    "halved_smt_hierarchy_config",
    "integrated_batch_cycles",
    "mp_ht_batch_cycles",
    "sequential_batch_cycles",
    "tune_prefetch",
]
