"""Prefetch distance/amount tuning (Fig 10b, Fig 10c, Section 6.4).

The paper tunes two knobs empirically:

* **distance** (look-ahead in lookups): too small leaves latency exposed
  (late prefetches), too large pollutes the 32 KiB L1D — the U-shape of
  Fig 10b with the optimum at 4 on Cascade Lake;
* **amount** (lines per row): covering all 8 lines of a dim-128 row
  maximizes hit rate and minimizes load latency (Fig 10c).

Section 6.4 repeats the tuning per platform and lands on amount 2 for
Ice Lake / Sapphire Rapids and 4 for Zen3; :func:`tune_prefetch` is that
procedure automated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Sequence, Tuple

from ..cpu.platform import CPUSpec
from ..engine.embedding_exec import EmbeddingRunResult, run_embedding_trace
from ..errors import ConfigError
from ..mem.hierarchy import build_hierarchy
from ..trace.dataset import EmbeddingTrace
from ..trace.stream import AddressMap
from .swpf import PAPER_SWPF, SWPrefetchConfig

__all__ = ["PrefetchTuningResult", "tune_prefetch", "DEFAULT_DISTANCES", "DEFAULT_AMOUNTS"]

#: Fig 10b's sweep points.
DEFAULT_DISTANCES: Tuple[int, ...] = (1, 2, 4, 8, 16, 32)

#: Fig 10c's sweep points (lines of an 8-line row).
DEFAULT_AMOUNTS: Tuple[int, ...] = (1, 2, 4, 8)


@dataclass
class PrefetchTuningResult:
    """Outcome of the two-phase sweep."""

    distance_cycles: Dict[int, float] = field(default_factory=dict)
    amount_metrics: Dict[int, "tuple[float, float, float]"] = field(
        default_factory=dict
    )  # amount -> (cycles, l1 hit rate, avg load latency)
    best_distance: int = 0
    best_amount: int = 0
    baseline_cycles: float = 0.0

    def distance_speedups(self) -> Dict[int, float]:
        """Fig 10b's series: speedup over baseline per distance."""
        return {
            d: self.baseline_cycles / c for d, c in self.distance_cycles.items()
        }

    def best_config(self) -> SWPrefetchConfig:
        """The tuned configuration."""
        return SWPrefetchConfig(distance=self.best_distance, amount_lines=self.best_amount)


def _run(
    trace: EmbeddingTrace,
    amap: AddressMap,
    platform: CPUSpec,
    config: "SWPrefetchConfig | None",
) -> EmbeddingRunResult:
    hierarchy = build_hierarchy(platform.hierarchy)
    plan = config.plan() if config is not None else None
    return run_embedding_trace(trace, amap, platform.core, hierarchy, plan=plan)


def tune_prefetch(
    trace: EmbeddingTrace,
    amap: AddressMap,
    platform: CPUSpec,
    distances: Sequence[int] = DEFAULT_DISTANCES,
    amounts: Sequence[int] = DEFAULT_AMOUNTS,
    base: SWPrefetchConfig = PAPER_SWPF,
) -> PrefetchTuningResult:
    """Sweep distance (at the base amount), then amount (at best distance).

    Mirrors the paper's procedure: Fig 10b fixes amount=8 and sweeps
    distance; Fig 10c fixes the chosen distance and sweeps amount.
    """
    if not distances or not amounts:
        raise ConfigError("sweeps must be non-empty")
    result = PrefetchTuningResult()
    result.baseline_cycles = _run(trace, amap, platform, None).total_cycles

    for distance in distances:
        run = _run(trace, amap, platform, base.with_distance(distance))
        result.distance_cycles[distance] = run.total_cycles
    result.best_distance = min(
        result.distance_cycles, key=lambda d: result.distance_cycles[d]
    )

    tuned = base.with_distance(result.best_distance)
    for amount in amounts:
        run = _run(trace, amap, platform, tuned.with_amount(amount))
        result.amount_metrics[amount] = (
            run.total_cycles,
            run.l1_hit_rate,
            run.avg_load_latency,
        )
    result.best_amount = min(
        result.amount_metrics, key=lambda a: result.amount_metrics[a][0]
    )
    return result
