"""The Integrated scheme: SW-PF + MP-HT and their synergy (Section 4.4).

The paper's observation: combining the two techniques yields more than the
product of their individual gains.  Two mechanisms, both represented here:

1. Prefetching shortens the embedding thread *and* slashes its
   full-window-stall fraction; through
   :class:`~repro.cpu.smt.SMTModel`'s window-pressure term, the colocated
   bottom-MLP thread then runs closer to its solo speed.
2. The bottom-MLP thread's weights live in L2/L3 and barely touch DRAM,
   so prefetch bandwidth is still available — the embedding thread's
   prefetch pipeline is not degraded by the sibling.

Both effects fall out of composing :func:`mp_ht_batch_cycles` with an
:class:`~repro.engine.inference.InferenceTiming` built from a *prefetched*
embedding run — this module just names that composition and offers the
synergy accounting used by the benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.smt import SMTModel
from ..engine.inference import InferenceTiming
from ..errors import ConfigError
from .hyperthread import mp_ht_batch_cycles, sequential_batch_cycles

__all__ = ["integrated_batch_cycles", "SynergyReport", "synergy_report"]


def integrated_batch_cycles(
    timing_with_prefetch: InferenceTiming, smt: SMTModel = SMTModel()
) -> float:
    """Batch cycles under SW-PF + MP-HT.

    ``timing_with_prefetch`` must be built from an embedding run executed
    with the software-prefetch plan — its thread profile carries the
    reduced stall fraction that the MLP sibling benefits from.
    """
    return mp_ht_batch_cycles(timing_with_prefetch, smt=smt)


@dataclass(frozen=True)
class SynergyReport:
    """Decomposition of the Integrated speedup (the Section 4.4 claim)."""

    baseline_cycles: float
    swpf_cycles: float
    mpht_cycles: float
    integrated_cycles: float

    @property
    def swpf_speedup(self) -> float:
        """SW-PF alone over the sequential baseline."""
        return self.baseline_cycles / self.swpf_cycles

    @property
    def mpht_speedup(self) -> float:
        """MP-HT alone over the sequential baseline."""
        return self.baseline_cycles / self.mpht_cycles

    @property
    def integrated_speedup(self) -> float:
        """The combined scheme over the sequential baseline."""
        return self.baseline_cycles / self.integrated_cycles

    @property
    def multiplicative_expectation(self) -> float:
        """What independent composition would predict."""
        return self.swpf_speedup * self.mpht_speedup

    @property
    def synergy(self) -> float:
        """>1 when the combination beats independent composition."""
        return self.integrated_speedup / self.multiplicative_expectation


def synergy_report(
    timing_baseline: InferenceTiming,
    timing_with_prefetch: InferenceTiming,
    smt: SMTModel = SMTModel(),
) -> SynergyReport:
    """Build the four-way comparison behind the paper's synergy claim."""
    baseline = sequential_batch_cycles(timing_baseline)
    if baseline <= 0:
        raise ConfigError("baseline timing must be positive")
    swpf = sequential_batch_cycles(timing_with_prefetch)
    mpht = mp_ht_batch_cycles(timing_baseline, smt=smt)
    integrated = integrated_batch_cycles(timing_with_prefetch, smt=smt)
    return SynergyReport(
        baseline_cycles=baseline,
        swpf_cycles=swpf,
        mpht_cycles=mpht,
        integrated_cycles=integrated,
    )
