"""Adaptive prefetch-distance controller (extension beyond the paper).

The paper tunes the prefetch distance offline per platform (Section 6.4).
This module automates that tuning *online*: between batches, the controller
inspects the engine's measured prefetch outcome — the late-prefetch stall
share and the unused-prefetch eviction rate — and nudges the distance:

* many late prefetches (demand loads still waiting on in-flight fetches)
  -> the look-ahead is too short -> increase distance;
* many prefetched lines evicted unused -> the look-ahead overruns the
  L1D -> decrease distance.

This is the natural production deployment of the paper's design: one knob,
self-tuned, robust to dataset drift between hotness regimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..cpu.platform import CPUSpec
from ..engine.embedding_exec import PrefetchPlan, run_embedding_trace
from ..errors import ConfigError
from ..mem.hierarchy import build_hierarchy
from ..trace.dataset import EmbeddingTrace
from ..trace.stream import AddressMap
from .swpf import SWPrefetchConfig

__all__ = ["AdaptiveController", "AdaptiveRunResult", "run_adaptive_prefetch"]


@dataclass
class AdaptiveController:
    """Hill-climbing controller over the prefetch distance.

    Decisions use two ratios measured per batch:

    * ``late_ratio`` — merged-load stall cycles / total cycles (the cost of
      too-short distances),
    * ``waste_ratio`` — prefetched-but-evicted-unused lines / prefetch
      fills (the cost of too-long distances).
    """

    distance: int = 4
    min_distance: int = 1
    max_distance: int = 32
    late_threshold: float = 0.05
    waste_threshold: float = 0.10
    history: List[int] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not self.min_distance <= self.distance <= self.max_distance:
            raise ConfigError("distance outside [min, max]")
        if self.min_distance <= 0:
            raise ConfigError("min_distance must be positive")

    def update(self, late_ratio: float, waste_ratio: float) -> int:
        """Observe one batch's outcome; return the next distance."""
        if late_ratio < 0 or waste_ratio < 0:
            raise ConfigError("ratios must be non-negative")
        self.history.append(self.distance)
        if waste_ratio > self.waste_threshold and self.distance > self.min_distance:
            self.distance = max(self.min_distance, self.distance // 2)
        elif late_ratio > self.late_threshold and self.distance < self.max_distance:
            self.distance = min(self.max_distance, self.distance * 2)
        return self.distance


@dataclass
class AdaptiveRunResult:
    """Outcome of an adaptive run over a trace."""

    total_cycles: float
    distance_trajectory: List[int]
    final_distance: int
    per_batch_cycles: List[float]

    @property
    def converged(self) -> bool:
        """Whether the last two decisions agree."""
        tail = self.distance_trajectory[-2:]
        return len(tail) == 2 and tail[0] == tail[1]


def run_adaptive_prefetch(
    trace: EmbeddingTrace,
    amap: AddressMap,
    platform: CPUSpec,
    base: SWPrefetchConfig = SWPrefetchConfig(),
    controller: Optional[AdaptiveController] = None,
) -> AdaptiveRunResult:
    """Execute a trace batch by batch, re-tuning distance between batches.

    The cache hierarchy persists across batches (warm state), so the
    controller sees realistic steady-state feedback.
    """
    controller = controller or AdaptiveController(distance=base.distance)
    hierarchy = build_hierarchy(platform.hierarchy)
    total = 0.0
    per_batch: List[float] = []
    trajectory: List[int] = []
    prior_unused = 0
    prior_fills = 0
    for b in range(trace.num_batches):
        trajectory.append(controller.distance)
        plan = PrefetchPlan(
            distance=controller.distance,
            amount_lines=base.amount_lines,
            target_level=base.target_level,
        )
        result = run_embedding_trace(
            trace, amap, platform.core, hierarchy, plan=plan, batch_indices=[b]
        )
        total += result.total_cycles
        per_batch.append(result.total_cycles)
        # Late prefetches show up as merged-load waits (mshr stalls here
        # are issue-side; use the effective latency excess over L1 hits).
        late_ratio = result.mshr_stall_cycles / max(result.total_cycles, 1e-9)
        l1 = hierarchy.l1.stats
        unused = l1.prefetch_evicted_unused - prior_unused
        fills = l1.prefetch_fills - prior_fills
        prior_unused, prior_fills = l1.prefetch_evicted_unused, l1.prefetch_fills
        waste_ratio = unused / fills if fills else 0.0
        controller.update(late_ratio, waste_ratio)
    return AdaptiveRunResult(
        total_cycles=total,
        distance_trajectory=trajectory,
        final_distance=controller.distance,
        per_batch_cycles=per_batch,
    )
