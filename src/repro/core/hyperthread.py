"""Hyperthreading schedulers: Sequential, DP-HT, MP-HT (Fig 11).

* **Sequential** — the common DLRM deployment: one thread per core runs
  bottom MLP, embedding, interaction, top MLP back to back.
* **DP-HT** (data-parallel, the naive scheme prior work evaluated and
  dismissed) — two *complete inference instances* share one physical
  core's SMT threads.  Their embedding phases thrash the shared L1/L2
  (memory-memory overlap) and their MLP phases oversubscribe the issue
  ports (compute-compute overlap); per-inference latency degrades to the
  0.5-0.62x the paper reports.
* **MP-HT** (model-parallel, the paper's scheme) — the two SMT threads of
  one core split *one batch*: embedding on one thread, bottom MLP on the
  other.  The memory-bound and compute-bound threads overlap favourably,
  then interaction + top MLP run after the join.

In the simulator, thread interference goes through
:class:`~repro.cpu.smt.SMTModel`; DP-HT's cache thrash is captured by
running the embedding stage against statically halved L1/L2 capacities
(competitive sharing between two symmetric memory-bound threads).
"""

from __future__ import annotations

from dataclasses import replace

from ..cpu.smt import SMTModel, ThreadProfile
from ..engine.inference import InferenceTiming
from ..errors import ConfigError
from ..mem.hierarchy import HierarchyConfig
from ..obs import hooks as obs_hooks

__all__ = [
    "sequential_batch_cycles",
    "mp_ht_batch_cycles",
    "mp_two_core_batch_cycles",
    "dp_ht_batch_cycles",
    "halved_smt_hierarchy_config",
]


def sequential_batch_cycles(timing: InferenceTiming) -> float:
    """Baseline: all four stages back to back on one thread."""
    return timing.stages.total


def mp_ht_batch_cycles(timing: InferenceTiming, smt: SMTModel = SMTModel()) -> float:
    """MP-HT: embedding ∥ bottom MLP, then interaction + top MLP.

    ``timing``'s embedding profile must come from the scheme's embedding
    run (baseline for plain MP-HT, prefetched for Integrated) — the
    profile's stall fraction is what sets the sibling's contention
    penalty, which is where the SW-PF synergy enters.
    """
    overlapped = smt.overlapped_time(timing.embedding_profile, timing.bottom_mlp_profile)
    obs = obs_hooks.active()
    if obs is not None:
        # Show the SMT overlap region and the post-join stages on one
        # sim track; the gauge records how much serial time the overlap
        # removed vs the sequential schedule.
        tid = obs.tracer.new_sim_track(f"mp_ht:{timing.model}")
        stages = timing.stages
        obs.tracer.add_sim_span(
            "embedding || bottom_mlp", "sim.smt", 0.0, overlapped, tid=tid,
            args={"model": timing.model},
        )
        obs.tracer.add_sim_span(
            "interaction", "sim.smt", overlapped, stages.interaction, tid=tid
        )
        obs.tracer.add_sim_span(
            "top_mlp", "sim.smt", overlapped + stages.interaction,
            stages.top_mlp, tid=tid,
        )
        obs.metrics.gauge("smt.mp_ht.overlap_saved_cycles").set(
            stages.embedding + stages.bottom_mlp - overlapped
        )
    return overlapped + timing.stages.interaction + timing.stages.top_mlp


def dp_ht_batch_cycles(
    timing_halved_cache: InferenceTiming, smt: SMTModel = SMTModel()
) -> float:
    """DP-HT: per-inference batch latency with a symmetric sibling.

    ``timing_halved_cache`` must be built from an embedding run against
    :func:`halved_smt_hierarchy_config` caches — the static-partition model
    of two memory threads sharing L1/L2.  On top of the cache thrash, each
    phase pays SMT interference from the *same* phase of the sibling
    inference (the unsynchronized instances drift, but embedding dominates
    so embedding-embedding and MLP-MLP overlap is the expected case).
    """
    stages = timing_halved_cache.stages
    emb = timing_halved_cache.embedding_profile
    mlp = timing_halved_cache.bottom_mlp_profile
    emb_inflation = smt.inflation(emb, emb, identical=True)
    mlp_inflation = smt.inflation(mlp, mlp, identical=True)
    obs = obs_hooks.active()
    if obs is not None:
        obs.metrics.gauge("smt.dp_ht.embedding_inflation").set(emb_inflation)
        obs.metrics.gauge("smt.dp_ht.mlp_inflation").set(mlp_inflation)
    return (
        stages.embedding * emb_inflation
        + (stages.bottom_mlp + stages.interaction + stages.top_mlp) * mlp_inflation
    )


def halved_smt_hierarchy_config(config: HierarchyConfig) -> HierarchyConfig:
    """Private caches as seen by one of two symmetric SMT memory threads.

    L1D and L2 halve (capacity *and* ways, keeping the set count — how
    competitive sharing between two identical thrashing threads behaves);
    the shared L3 is unchanged (both threads of one core share it either
    way).
    """
    if config.l1_ways < 2 or config.l2_ways < 2:
        raise ConfigError("cannot halve a direct-mapped cache for SMT sharing")
    return replace(
        config,
        l1_size=config.l1_size // 2,
        l1_ways=config.l1_ways // 2,
        l2_size=config.l2_size // 2,
        l2_ways=config.l2_ways // 2,
    )


#: Cross-core synchronization cost of splitting one batch over two cores
#: (thread wake + cacheline handoff of the bottom-MLP output), cycles.
TWO_CORE_SYNC_CYCLES = 5000.0


def mp_two_core_batch_cycles(
    timing: InferenceTiming, sync_cycles: float = TWO_CORE_SYNC_CYCLES
) -> float:
    """The alternative Section 4.3 dismisses: embedding and bottom MLP on
    *separate physical cores*.

    No SMT interference (each thread runs at solo speed), but the split
    "would cost double the CPU cores, and synchronization overheads" — the
    bottom-MLP output crosses the LLC to the interaction stage and the
    join pays a wakeup.  Use with :func:`mp_ht_batch_cycles` to quantify
    the paper's argument that MP-HT gets most of the overlap at half the
    core cost.
    """
    if sync_cycles < 0:
        raise ConfigError("sync overhead must be non-negative")
    stages = timing.stages
    overlapped = max(stages.embedding, stages.bottom_mlp)
    return overlapped + sync_cycles + stages.interaction + stages.top_mlp


def mp_ht_thread_slowdowns(
    timing: InferenceTiming, smt: SMTModel = SMTModel()
) -> "tuple[float, float]":
    """(embedding, bottom-MLP) inflation factors under MP-HT colocation.

    Exposed for the characterization benchmarks: the embedding thread is
    barely slowed (the MLP sibling leaves the memory pipeline alone) while
    the MLP thread pays for the embedding thread's window pressure.
    """
    emb = timing.embedding_profile
    mlp = timing.bottom_mlp_profile
    return smt.inflation(emb, mlp), smt.inflation(mlp, emb)
