"""Application-initiated software prefetching (Section 4.2).

The paper answers four questions; this module encodes each answer:

* **What to prefetch?**  The embedding row of a *future* lookup, whose
  address the application can compute exactly by looking ahead in the
  indices array — :attr:`SWPrefetchConfig.distance` lookups ahead.
* **When to prefetch?**  At lookup granularity; the paper finds distance 4
  optimal on Cascade Lake (~200 instructions of lead time).
* **How to prefetch?**  ``_mm_prefetch`` per cache line — in the simulator,
  :meth:`repro.mem.hierarchy.MemoryHierarchy.prefetch` calls issued by the
  engine, each occupying an issue slot and a fill buffer.
* **Where to prefetch?**  ``_MM_HINT_T0`` = into L1D
  (:attr:`SWPrefetchConfig.target_level`), covering
  :attr:`SWPrefetchConfig.amount_lines` of the row's 8 lines (amount 8 is
  the paper's optimum for dim-128 rows).

The mechanism (timeliness, pollution, MSHR sharing) lives in
:mod:`repro.engine.embedding_exec`; this module is the policy layer plus
the budget arithmetic the paper uses to argue the design is safe.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..engine.embedding_exec import PrefetchPlan
from ..errors import ConfigError
from ..units import CACHE_LINE_BYTES, kib

__all__ = ["SWPrefetchConfig", "PAPER_SWPF", "prefetch_injection_bytes", "l1_occupancy_fraction"]


@dataclass(frozen=True)
class SWPrefetchConfig:
    """Tunable knobs of the software-prefetch design."""

    distance: int = 4
    amount_lines: int = 8
    target_level: str = "l1"

    def __post_init__(self) -> None:
        if self.distance <= 0:
            raise ConfigError(f"distance must be positive, got {self.distance}")
        if self.amount_lines <= 0:
            raise ConfigError(f"amount must be positive, got {self.amount_lines}")
        if self.target_level not in ("l1", "l2", "l3"):
            raise ConfigError(f"bad target level {self.target_level!r}")

    def plan(self) -> PrefetchPlan:
        """The engine-level mechanism object."""
        return PrefetchPlan(
            distance=self.distance,
            amount_lines=self.amount_lines,
            target_level=self.target_level,
        )

    def with_distance(self, distance: int) -> "SWPrefetchConfig":
        """Copy with a different look-ahead distance (Fig 10b sweeps)."""
        return SWPrefetchConfig(distance, self.amount_lines, self.target_level)

    def with_amount(self, amount_lines: int) -> "SWPrefetchConfig":
        """Copy with a different per-row line count (Fig 10c sweeps)."""
        return SWPrefetchConfig(self.distance, amount_lines, self.target_level)


#: The paper's chosen configuration for Cascade Lake (Algorithm 3).
PAPER_SWPF = SWPrefetchConfig(distance=4, amount_lines=8, target_level="l1")


def prefetch_injection_bytes(config: SWPrefetchConfig) -> int:
    """Bytes in flight between prefetch and demand use.

    The paper's safety argument: distance 4 x 512 B = 2 KB, "reasonably
    low compared to the L1D$ cache capacity" of 32 KiB.
    """
    return config.distance * config.amount_lines * CACHE_LINE_BYTES


def l1_occupancy_fraction(config: SWPrefetchConfig, l1_bytes: int = kib(32)) -> float:
    """Fraction of L1D the in-flight prefetch window occupies.

    Values approaching 1 indicate the pollution regime that makes large
    distances lose (the right side of Fig 10b's U-shape).
    """
    if l1_bytes <= 0:
        raise ConfigError("l1 capacity must be positive")
    return prefetch_injection_bytes(config) / l1_bytes
