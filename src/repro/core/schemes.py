"""The six evaluated design points (Section 6's legend).

===========  ==============================================================
name         meaning
===========  ==============================================================
hw_pf_off    hardware prefetching disabled (msr-tools in the artifact)
baseline     stock execution, hardware prefetching on
sw_pf        + application-initiated software prefetching (Section 4.2)
dp_ht        naive hyperthreading: two inferences per physical core
mp_ht        model-parallel hyperthreading: embedding ∥ bottom MLP
integrated   sw_pf + mp_ht with their synergy (Section 4.4)
===========  ==============================================================

:func:`evaluate_scheme` runs one design point for one (model, trace,
platform, core-count) combination and returns a :class:`SchemeResult`;
:func:`evaluate_all_schemes` produces the full Fig 12/13/14 panel.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Optional, Tuple

from ..cpu.platform import CPUSpec
from ..cpu.smt import SMTModel
from ..engine.embedding_exec import run_embedding_trace
from ..engine.inference import InferenceTiming, StageTimes, time_inference_sequential
from ..engine.multicore import run_embedding_multicore
from ..errors import UnknownSchemeError
from ..mem.hierarchy import build_hierarchy
from ..model.configs import ModelConfig
from ..trace.dataset import EmbeddingTrace
from ..trace.stream import AddressMap
from ..units import cycles_to_ms
from .hyperthread import (
    dp_ht_batch_cycles,
    halved_smt_hierarchy_config,
    mp_ht_batch_cycles,
)
from .integrated import integrated_batch_cycles
from .swpf import PAPER_SWPF, SWPrefetchConfig

__all__ = ["SCHEME_NAMES", "SchemeResult", "evaluate_scheme", "evaluate_all_schemes"]

#: Design points in the paper's presentation order.
SCHEME_NAMES: Tuple[str, ...] = (
    "hw_pf_off",
    "baseline",
    "sw_pf",
    "dp_ht",
    "mp_ht",
    "integrated",
)

#: MLP/interaction slowdown when hardware prefetching is disabled — the
#: dense stages stream weights and lose their prefetcher coverage entirely
#: ("hardware prefetching is useful in the compute-intensive stages as they
#: bring regular access patterns", Section 6.2.1).
HW_PF_OFF_DENSE_SLOWDOWN = 1.4


@dataclass(frozen=True)
class SchemeResult:
    """Measured outcome of one design point."""

    scheme: str
    model: str
    num_cores: int
    embedding_cycles: float
    batch_cycles: float
    frequency_hz: float
    l1_hit_rate: float
    avg_load_latency: float
    emb_utilization: float
    emb_stall_fraction: float
    stages: Optional[StageTimes] = None

    @property
    def batch_ms(self) -> float:
        """End-to-end batch latency in milliseconds."""
        return cycles_to_ms(self.batch_cycles, self.frequency_hz)

    @property
    def embedding_ms(self) -> float:
        """Embedding-only batch latency in milliseconds (Table 4's unit)."""
        return cycles_to_ms(self.embedding_cycles, self.frequency_hz)

    def speedup_over(self, baseline: "SchemeResult") -> float:
        """End-to-end speedup relative to another result."""
        return baseline.batch_cycles / self.batch_cycles

    def embedding_speedup_over(self, baseline: "SchemeResult") -> float:
        """Embedding-only speedup relative to another result."""
        return baseline.embedding_cycles / self.embedding_cycles


@dataclass
class _EmbStage:
    """Embedding-stage metrics in the shape the inference composer wants."""

    mean_batch_cycles: float
    utilization: float
    stall_fraction: float


def _run_embedding(
    model: ModelConfig,
    trace: EmbeddingTrace,
    amap: AddressMap,
    platform: CPUSpec,
    num_cores: int,
    hw_prefetch: bool,
    plan,
    halved_caches: bool,
    detailed_cores: int,
) -> "tuple[_EmbStage, float, float]":
    """Run the embedding stage; return (stage metrics, l1 hit, latency)."""
    hier_config = platform.hierarchy
    if halved_caches:
        hier_config = halved_smt_hierarchy_config(hier_config)
    if num_cores <= 1:
        hierarchy = build_hierarchy(hier_config, hw_prefetch=hw_prefetch)
        result = run_embedding_trace(trace, amap, platform.core, hierarchy, plan=plan)
        stage = _EmbStage(
            result.mean_batch_cycles,
            result.utilization,
            min(1.0, result.stall_fraction),
        )
        return stage, result.l1_hit_rate, result.avg_load_latency
    mc = run_embedding_multicore(
        trace,
        amap,
        platform,
        num_cores,
        plan=plan,
        detailed_cores=detailed_cores,
        hw_prefetch=hw_prefetch,
        hier_override=hier_config if halved_caches else None,
    )
    stage = _EmbStage(
        mc.mean_batch_cycles, mc.emb_utilization, min(1.0, mc.emb_stall_fraction)
    )
    return stage, mc.l1_hit_rate, mc.avg_load_latency


def evaluate_scheme(
    scheme: str,
    model: ModelConfig,
    trace: EmbeddingTrace,
    amap: AddressMap,
    platform: CPUSpec,
    num_cores: int = 1,
    swpf: SWPrefetchConfig = PAPER_SWPF,
    smt: Optional[SMTModel] = None,
    detailed_cores: int = 2,
) -> SchemeResult:
    """Evaluate one design point.

    ``trace`` and ``amap`` must describe the same (scaled) ``model`` —
    sharing them across schemes keeps the comparison paired.
    """
    if scheme not in SCHEME_NAMES:
        raise UnknownSchemeError(
            f"unknown scheme {scheme!r}; expected one of {SCHEME_NAMES}"
        )
    smt = smt or SMTModel()
    batch_size = trace.batch_size
    hw_prefetch = scheme != "hw_pf_off"
    plan = swpf.plan() if scheme in ("sw_pf", "integrated") else None
    halved = scheme == "dp_ht"

    stage, l1_hit, load_latency = _run_embedding(
        model, trace, amap, platform, num_cores, hw_prefetch, plan, halved,
        detailed_cores,
    )
    # Project embedding cycles from the simulated (scaled) lookup count to
    # paper scale so stage ratios — and every scheme that depends on them
    # (MP-HT overlap, Fig 1 shares, Table 4 ms) — match the paper's shape.
    stage.mean_batch_cycles *= model.paper_scale_ratio()
    timing = time_inference_sequential(model, stage, platform.core, batch_size)

    if scheme == "hw_pf_off":
        stages = StageTimes(
            bottom_mlp=timing.stages.bottom_mlp * HW_PF_OFF_DENSE_SLOWDOWN,
            embedding=timing.stages.embedding,
            interaction=timing.stages.interaction * HW_PF_OFF_DENSE_SLOWDOWN,
            top_mlp=timing.stages.top_mlp * HW_PF_OFF_DENSE_SLOWDOWN,
        )
        batch_cycles = stages.total
    elif scheme in ("baseline", "sw_pf"):
        stages = timing.stages
        batch_cycles = stages.total
    elif scheme == "dp_ht":
        stages = timing.stages
        batch_cycles = dp_ht_batch_cycles(timing, smt=smt)
    elif scheme == "mp_ht":
        stages = timing.stages
        batch_cycles = mp_ht_batch_cycles(timing, smt=smt)
    else:  # integrated
        stages = timing.stages
        batch_cycles = integrated_batch_cycles(timing, smt=smt)

    return SchemeResult(
        scheme=scheme,
        model=model.name,
        num_cores=num_cores,
        embedding_cycles=stage.mean_batch_cycles,
        batch_cycles=batch_cycles,
        frequency_hz=platform.frequency_hz,
        l1_hit_rate=l1_hit,
        avg_load_latency=load_latency,
        emb_utilization=stage.utilization,
        emb_stall_fraction=stage.stall_fraction,
        stages=stages,
    )


def evaluate_all_schemes(
    model: ModelConfig,
    trace: EmbeddingTrace,
    amap: AddressMap,
    platform: CPUSpec,
    num_cores: int = 1,
    schemes: Iterable[str] = SCHEME_NAMES,
    swpf: SWPrefetchConfig = PAPER_SWPF,
    smt: Optional[SMTModel] = None,
    detailed_cores: int = 2,
) -> Dict[str, SchemeResult]:
    """Evaluate several design points on one shared workload."""
    return {
        scheme: evaluate_scheme(
            scheme,
            model,
            trace,
            amap,
            platform,
            num_cores=num_cores,
            swpf=swpf,
            smt=smt,
            detailed_cores=detailed_cores,
        )
        for scheme in schemes
    }
