"""Compiler-inserted prefetching baselines (Fig 10a).

Section 4.1 evaluates two off-the-shelf compiler schemes against the
hardware-prefetch-on baseline and finds "limited benefits, or even
marginally degraded performance":

* **gcc** ``-fprefetch-loop-arrays`` — prefetches arrays with *affine*
  subscripts.  In ``embedding_bag`` that covers only the offsets/indices
  arrays (already streamed perfectly by the hardware prefetchers), not the
  data-dependent table rows.  Net effect: extra prefetch instructions, no
  new coverage.
* **icc** ``-qopt-prefetch=5`` — at its most aggressive level the compiler
  also emits indirect prefetches, but (the paper's critique of [36])
  without control over the *prefetch amount*: one line per future index at
  a generic distance, leaving 7 of a dim-128 row's 8 lines uncovered.

Both are modeled as degenerate :class:`~repro.engine.embedding_exec.PrefetchPlan`
settings plus instruction overhead, so they run through the exact same
engine as the paper's tuned scheme.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..engine.embedding_exec import PrefetchPlan
from ..engine.kernels import KernelCostModel
from ..errors import ConfigError

__all__ = ["COMPILER_STYLES", "compiler_prefetch_plan", "compiler_cost_model"]

#: Supported compiler styles, in Fig 10a's order.
COMPILER_STYLES: Tuple[str, ...] = ("gcc", "icc")

#: icc's generic indirect-prefetch distance (not tuned per workload).
_ICC_DISTANCE = 16

#: Extra non-memory uops per lookup from compiler-emitted prefetch code.
_OVERHEAD_UOPS: Dict[str, int] = {"gcc": 2, "icc": 3}


def compiler_prefetch_plan(style: str) -> Optional[PrefetchPlan]:
    """The engine plan a compiler scheme corresponds to.

    gcc covers no indirect accesses -> no row prefetching (None).
    icc emits single-line indirect prefetches at a generic distance.
    """
    lowered = style.lower()
    if lowered == "gcc":
        return None
    if lowered == "icc":
        return PrefetchPlan(distance=_ICC_DISTANCE, amount_lines=1, target_level="l2")
    raise ConfigError(f"unknown compiler style {style!r}; expected one of {COMPILER_STYLES}")


def compiler_cost_model(style: str, base: KernelCostModel = KernelCostModel()) -> KernelCostModel:
    """Kernel cost model including the compiler's prefetch-code overhead."""
    lowered = style.lower()
    if lowered not in _OVERHEAD_UOPS:
        raise ConfigError(f"unknown compiler style {style!r}; expected one of {COMPILER_STYLES}")
    return KernelCostModel(
        uops_per_line=base.uops_per_line,
        uops_per_lookup_base=base.uops_per_lookup_base + _OVERHEAD_UOPS[lowered],
        uops_per_sample_base=base.uops_per_sample_base,
    )
