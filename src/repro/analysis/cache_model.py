"""The paper's Fig 6 modeling pipeline: trace -> reuse bins -> hit rates.

Given an embedding access trace and a cache hierarchy's capacities, the
model predicts per-level hit rates by comparing every access's stack
distance against how many embedding *vectors* each level can hold
(``capacity_bytes / row_bytes``, the paper's 32 KiB L1D = 64 vectors at
dim 128 example), assuming full associativity and LRU — exactly the
simplifications stated in Section 3.1.2.

This analytic path runs at paper scale (1M-row tables) because it only
needs index streams, not cache-line simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..mem.hierarchy import HierarchyConfig
from ..trace.dataset import EmbeddingTrace
from ..units import FLOAT32_BYTES
from .reuse import ReuseResult, reuse_distances

__all__ = ["CacheHitModel", "ReuseModelReport", "analyze_trace_reuse"]


@dataclass(frozen=True)
class CacheHitModel:
    """Cache levels expressed in embedding-vector capacities."""

    vectors_l1: int
    vectors_l2: int
    vectors_l3: int

    @classmethod
    def from_hierarchy(
        cls, config: HierarchyConfig, embedding_dim: int, dtype_bytes: int = FLOAT32_BYTES
    ) -> "CacheHitModel":
        """Convert byte capacities to embedding-vector counts.

        The L3 uses the *effective* capacity so a CAT way allocation
        (``HierarchyConfig.l3_allocated_ways``) shrinks the analytic model
        the same way it shrinks the simulated cache.
        """
        if embedding_dim <= 0:
            raise ConfigError("embedding_dim must be positive")
        row_bytes = embedding_dim * dtype_bytes
        return cls(
            vectors_l1=max(1, config.l1_size // row_bytes),
            vectors_l2=max(1, config.l2_size // row_bytes),
            vectors_l3=max(1, config.effective_l3_size // row_bytes),
        )

    def hit_rates(self, reuse: ReuseResult) -> Dict[str, float]:
        """Cumulative hit rate at each level (L1 ⊆ L2 ⊆ L3)."""
        return {
            "l1": reuse.hit_rate_at_capacity(self.vectors_l1),
            "l2": reuse.hit_rate_at_capacity(self.vectors_l2),
            "l3": reuse.hit_rate_at_capacity(self.vectors_l3),
        }

    def level_fractions(self, reuse: ReuseResult) -> Dict[str, float]:
        """Fraction of accesses served at each level, DRAM included."""
        rates = self.hit_rates(reuse)
        return {
            "l1": rates["l1"],
            "l2": rates["l2"] - rates["l1"],
            "l3": rates["l3"] - rates["l2"],
            "dram": 1.0 - rates["l3"],
        }


@dataclass
class ReuseModelReport:
    """Everything Fig 7 plots for one dataset."""

    dataset: str
    reuse: ReuseResult
    hit_rates: Dict[str, float]
    level_fractions: Dict[str, float]
    cold_fraction: float
    capacities: CacheHitModel

    def distance_cdf(
        self, points: Optional[Sequence[int]] = None
    ) -> "List[tuple[int, float]]":
        """(capacity, cumulative-hit-rate) series for plotting Fig 7.

        The CDF is over *all* accesses, so it asymptotes to
        ``1 - cold_fraction`` — the yellow cold-miss region of Fig 7.
        """
        if points is None:
            points = [2**k for k in range(1, 27)]
        return [(int(p), self.reuse.hit_rate_at_capacity(int(p))) for p in points]


def analyze_trace_reuse(
    trace: EmbeddingTrace,
    hierarchy: HierarchyConfig,
    embedding_dim: int,
    tables: Optional[Sequence[int]] = None,
    dataset: str = "unnamed",
) -> ReuseModelReport:
    """Run the Fig 6 pipeline on (a subset of) a trace.

    The access stream follows Algorithm 1's execution order — for each
    batch, tables in order, each table's pooled lookups in order — with
    keys namespaced per table (no sharing across tables, the inter-table
    class of Section 3.1).  ``tables`` restricts the stream to a sample of
    tables to bound analysis cost on very wide models.
    """
    table_ids = list(tables) if tables is not None else list(range(trace.num_tables))
    if not table_ids:
        raise ConfigError("need at least one table to analyze")
    for t in table_ids:
        if not 0 <= t < trace.num_tables:
            raise ConfigError(f"table {t} out of range")
    streams: List[np.ndarray] = []
    for b in range(trace.num_batches):
        for t in table_ids:
            tb = trace.table_batch(b, t)
            # Namespace keys per table: tables never share rows.
            streams.append(tb.indices.astype(np.int64) + t * (2**34))
    stream = np.concatenate(streams)
    reuse = reuse_distances(stream.tolist(), length_hint=stream.size)
    capacities = CacheHitModel.from_hierarchy(hierarchy, embedding_dim)
    return ReuseModelReport(
        dataset=dataset,
        reuse=reuse,
        hit_rates=capacities.hit_rates(reuse),
        level_fractions=capacities.level_fractions(reuse),
        cold_fraction=reuse.cold_fraction,
        capacities=capacities,
    )
