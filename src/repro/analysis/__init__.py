"""Characterization tooling (Section 3 of the paper).

* :mod:`repro.analysis.reuse` — exact LRU stack-distance computation
  (Olken's algorithm on a Fenwick tree),
* :mod:`repro.analysis.cache_model` — the paper's Fig 6 pipeline: trace ->
  reuse-distance bins -> per-cache-level hit rates and cold-miss fractions,
* :mod:`repro.analysis.histogram` — access-count histograms and hotness
  metrics (Fig 5),
* :mod:`repro.analysis.working_set` — working-set and cold-miss accounting,
* :mod:`repro.analysis.breakdown` — analytic stage-time breakdown at paper
  scale (Fig 1).
"""

from .analytic import AnalyticReport, analytic_hit_rate, analytic_hit_report
from .bandwidth import BandwidthReport, bandwidth_report, memory_boundedness
from .breakdown import estimate_stage_breakdown
from .cache_model import CacheHitModel, ReuseModelReport, analyze_trace_reuse
from .histogram import access_count_histogram, hotness_summary, top_share
from .interference import InterferenceReport, intercore_sharing_study
from .reuse import ReuseDistanceCounter, reuse_distances
from .working_set import cold_miss_fraction, unique_rows, working_set_bytes

__all__ = [
    "AnalyticReport",
    "BandwidthReport",
    "CacheHitModel",
    "analytic_hit_rate",
    "analytic_hit_report",
    "InterferenceReport",
    "ReuseDistanceCounter",
    "ReuseModelReport",
    "access_count_histogram",
    "analyze_trace_reuse",
    "bandwidth_report",
    "cold_miss_fraction",
    "estimate_stage_breakdown",
    "hotness_summary",
    "intercore_sharing_study",
    "memory_boundedness",
    "reuse_distances",
    "top_share",
    "unique_rows",
    "working_set_bytes",
]
