"""Bandwidth-boundedness reporting (Section 3.2's VTune numbers).

The paper reports that at 24 cores the Low-hot execution "does remain
memory bandwidth bound by 80% ... but the bandwidth does not get fully
utilized" — the observation motivating software prefetching as a way to
*spend* the idle bandwidth.  These helpers compute the same two quantities
from simulator results: how memory-bound the execution is, and how much
channel headroom remains.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cpu.platform import CPUSpec
from ..engine.embedding_exec import EmbeddingRunResult
from ..engine.multicore import MulticoreResult
from ..errors import ConfigError

__all__ = ["BandwidthReport", "memory_boundedness", "bandwidth_report"]


def memory_boundedness(result: EmbeddingRunResult) -> float:
    """Fraction of execution the core spends waiting on memory.

    VTune's "memory bound" metric approximated by the simulator's stall
    share (window + load-queue + fill-buffer waits are all memory waits in
    this kernel).
    """
    return min(1.0, result.stall_fraction)


@dataclass(frozen=True)
class BandwidthReport:
    """Section 3.2's pair of observations for one multi-core run."""

    memory_bound_fraction: float
    achieved_gb_s: float
    peak_gb_s: float

    @property
    def utilization(self) -> float:
        """Achieved / peak channel bandwidth."""
        return self.achieved_gb_s / self.peak_gb_s if self.peak_gb_s else 0.0

    @property
    def headroom_gb_s(self) -> float:
        """Idle bandwidth available for prefetch traffic."""
        return max(0.0, self.peak_gb_s - self.achieved_gb_s)

    @property
    def motivates_prefetching(self) -> bool:
        """The paper's Section 3.2 condition: memory-bound yet headroom left."""
        return self.memory_bound_fraction > 0.5 and self.utilization < 0.9


def bandwidth_report(
    mc: MulticoreResult, platform: CPUSpec, sockets_used: int = 1
) -> BandwidthReport:
    """Build the Section 3.2 report from a multi-core run."""
    if sockets_used <= 0:
        raise ConfigError("sockets_used must be positive")
    peak = platform.peak_dram_bw_bytes_s * min(sockets_used, platform.sockets) / 1e9
    return BandwidthReport(
        memory_bound_fraction=min(1.0, mc.emb_stall_fraction),
        achieved_gb_s=mc.bandwidth_gb_s(platform.frequency_hz),
        peak_gb_s=peak,
    )
