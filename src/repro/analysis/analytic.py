"""Closed-form hit-rate model: Che's approximation over the Zipf mixture.

The Fig 6 pipeline (``analysis.cache_model``) replays a synthesized index
stream through an exact stack-distance counter — O(accesses · log rows).
This module predicts the same per-level hit rates *without a trace*, in
O(rows) per cache level, from the calibrated popularity law alone:

* The trace generator draws each table's rows from a finite Zipf
  distribution whose exponent is calibrated against the paper's published
  unique-access fractions (``trace.hotness.fit_zipf_alpha``).  Per-table
  alpha jitter averages out across tables, so the *base* exponent
  describes the stream.
* **Che's approximation** [Che et al., 2002]: an LRU cache of capacity
  ``C`` behaves like a TTL cache whose *characteristic time* ``T_C``
  solves ``E[distinct items in a window of T_C accesses] = C``.  The
  expected-distinct function is monotone in the window length, so a
  bisection (in log space — hot-row probabilities make ``(1−q)^w``
  underflow otherwise) finds ``T_C`` to machine precision.
* **Block structure**: Algorithm 1's loop order accesses each table in a
  contiguous block of ``B = batch_size × lookups_per_sample`` draws, and
  blocks of the same table recur once per batch (period ``T·B``).  A
  naive ``q_r = p_r / T`` dilution misses the short-distance reuse this
  creates (L1-sized windows sit entirely inside one table's block), so
  both sides of the fixed point honor the blocks:

  - distinct items in a window of ``w`` stream accesses::

        d(w) = S(w)            w ≤ B        (one table's block)
             = (w / B)·S(B)    B < w ≤ T·B  (w/B distinct tables' blocks)
             = T·S(w / T)      w > T·B      (every table, deeper per table)

    with ``S(x) = Σ_r (1 − (1 − p_r)^x)``, one table's expected distinct
    rows after ``x`` draws;
  - the *effective same-table lookback* ``e(T_C)`` — how many draws of
    the current table a window of ``T_C`` stream accesses reaches, once
    the ``(T−1)·B`` accesses other tables contribute between consecutive
    same-table blocks are skipped — averaged over the access's position
    inside its block.

  A row then hits with probability ``1 − (1 − p_r)^{e(T_C)}``.
* **Finite-trace correction**: the stack-distance model runs on a sampled
  stream, so every first touch is a cold miss and early accesses cannot
  look back past their own position.  With ``n`` draws per table the
  expected misses on row ``r`` are::

      (1 − (1 − p_r)^m)  +  (n − m) · p_r · (1 − p_r)^{e(T_C)},
      m = min(n, e(T_C))

  (warm-up misses while the history is shorter than the window, then
  steady-state Che misses).  Summing over rows and tables and dividing
  by the stream length reproduces, in expectation, exactly the quantity
  :meth:`~repro.analysis.reuse.ReuseResult.hit_rate_at_capacity` measures.

Validity envelope: independent draws within a block (the generator's
Poisson pooling only perturbs block lengths around ``B``), identical
tables (per-table alpha jitter ≤ the profile's ±10 %), and the Fig 6
full-associativity/LRU idealization.  ``tests/test_analysis_analytic.py``
pins the agreement against the simulated pipeline with noise-floored
bounds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..config import PAPER_BATCH_SIZE, PAPER_NUM_BATCHES
from ..errors import ConfigError
from ..mem.hierarchy import HierarchyConfig
from ..trace.hotness import HOTNESS_PROFILES, fit_zipf_alpha, zipf_probabilities
from .cache_model import CacheHitModel

__all__ = [
    "AnalyticReport",
    "analytic_hit_report",
    "analytic_hit_rate",
    "characteristic_time",
]

#: Bisection iterations for the characteristic-time solve (monotone in a
#: bracketed interval; 60 halvings reach double precision).
_SOLVE_ITERS = 60

#: Windows beyond this are treated as unbounded (every warm access hits).
_INF_WINDOW = 1e18


@dataclass(frozen=True)
class AnalyticReport:
    """Analytic counterpart of :class:`~.cache_model.ReuseModelReport`.

    Carries the same ``hit_rates`` / ``level_fractions`` / ``cold_fraction``
    surface the breakdown and observability paths consume, plus the solved
    characteristic times for inspection.
    """

    dataset: str
    hit_rates: Dict[str, float]
    level_fractions: Dict[str, float]
    cold_fraction: float
    capacities: CacheHitModel
    #: Solved Che characteristic time per level, in stream accesses;
    #: values ≥ 1e18 mean the level holds the whole reachable working set.
    characteristic_accesses: Dict[str, float]
    total_accesses: int
    alpha: float


class _BlockedZipfStream:
    """The popularity law plus the loop-order block geometry."""

    def __init__(self, probs: np.ndarray, num_tables: int, block: int) -> None:
        if num_tables <= 0:
            raise ConfigError("num_tables must be positive")
        if block <= 0:
            raise ConfigError("block length must be positive")
        self.probs = probs
        self.num_tables = num_tables
        self.block = float(block)
        # log(1 − p_r), clipped so deterministic rows (p → 1) stay finite.
        self._log_miss = np.log1p(-np.minimum(probs, 1.0 - 1e-15))

    def table_distinct(self, draws: float) -> float:
        """``S(x)``: expected distinct rows of one table after ``x`` draws."""
        if draws <= 0:
            return 0.0
        return float(np.sum(-np.expm1(draws * self._log_miss)))

    def window_distinct(self, window: float) -> float:
        """``d(w)``: expected distinct items in ``w`` stream accesses."""
        t, b = self.num_tables, self.block
        if window <= b:
            return self.table_distinct(window)
        if window <= t * b:
            return (window / b) * self.table_distinct(b)
        return t * self.table_distinct(window / t)

    def same_table_lookback(self, window: float) -> float:
        """``e(T_C)``: same-table draws a ``window`` lookback covers.

        Averaged over the access's position ``j ~ U[0, B]`` inside its
        block: the window first covers the ``j`` preceding draws of the
        current block, then — after skipping the ``(T−1)·B`` accesses the
        other tables contribute — up to ``B`` draws of each previous
        same-table block (one per period ``T·B``).
        """
        t, b = self.num_tables, self.block
        if window >= _INF_WINDOW:
            return _INF_WINDOW
        if window <= 0:
            return 0.0
        # avg_j min(j, w) over j ~ U[0, B].
        if window >= b:
            covered = b / 2.0
        else:
            covered = window - window * window / (2.0 * b)
        # The k-th previous same-table block sits (k·T − 1)·B + j back; its
        # window overlap is clamp(u_k − j, 0, B) with u_k = w − (k·T − 1)·B.
        # Blocks with u_k ≥ 2B are fully covered (count them arithmetically
        # — the loop below then touches at most the two partial blocks).
        k_full = int(max(0.0, (window / b - 1.0) // t))
        covered += b * k_full
        k = k_full + 1
        while True:
            u = window - (k * t - 1.0) * b
            if u <= 0:
                break
            covered += _avg_clamped_overlap(u, b)
            k += 1
        return covered


def _avg_clamped_overlap(u: float, b: float) -> float:
    """``avg_j clamp(u − j, 0, B)`` for ``j ~ U[0, B]`` (piecewise exact)."""
    if u <= 0:
        return 0.0
    if u <= b:
        return u * u / (2.0 * b)
    if u <= 2.0 * b:
        return b - (2.0 * b - u) ** 2 / (2.0 * b)
    return b


def characteristic_time(
    probs: np.ndarray,
    num_tables: int,
    capacity: int,
    block_accesses: Optional[int] = None,
) -> float:
    """Solve Che's fixed point for an LRU cache of ``capacity`` vectors.

    ``probs`` is one table's popularity law; ``num_tables`` identically
    distributed tables are interleaved in blocks of ``block_accesses``
    draws (``1`` = perfectly interleaved IRM).  Returns the window length
    (in stream accesses) whose expected distinct-item count equals the
    capacity, or :data:`_INF_WINDOW` when no finite window reaches it.
    """
    if capacity <= 0:
        raise ConfigError("capacity must be positive")
    stream = _BlockedZipfStream(probs, num_tables, block_accesses or 1)
    hi = float(capacity)
    while stream.window_distinct(hi) < capacity:
        hi *= 2.0
        if hi > _INF_WINDOW:
            # The reachable working set (rows with nonzero probability, at
            # most rows × tables) fits in the cache: unbounded window.
            return _INF_WINDOW
    lo = 0.0
    for _ in range(_SOLVE_ITERS):
        mid = 0.5 * (lo + hi)
        if stream.window_distinct(mid) < capacity:
            lo = mid
        else:
            hi = mid
    return 0.5 * (lo + hi)


def analytic_hit_rate(
    probs: np.ndarray,
    num_tables: int,
    total_accesses: int,
    capacity: int,
    block_accesses: Optional[int] = None,
) -> float:
    """Expected finite-trace LRU hit rate at ``capacity`` vectors.

    Mirrors :meth:`ReuseResult.hit_rate_at_capacity` on a stream of
    ``total_accesses`` loop-ordered draws from ``num_tables`` tables
    sharing ``probs``: cold misses are charged exactly as the
    stack-distance counter charges them, so the two paths are directly
    comparable.
    """
    if total_accesses <= 0:
        raise ConfigError("total_accesses must be positive")
    stream = _BlockedZipfStream(probs, num_tables, block_accesses or 1)
    t_c = characteristic_time(probs, num_tables, capacity, block_accesses)
    return _finite_hit_rate(stream, t_c, total_accesses)


def _finite_hit_rate(
    stream: _BlockedZipfStream, t_c: float, total_accesses: int
) -> float:
    """Finite-trace hit rate given an already-solved characteristic time."""
    lookback = stream.same_table_lookback(t_c)
    per_table = total_accesses / stream.num_tables
    m = min(per_table, lookback)
    log_miss = stream._log_miss
    warmup = -np.expm1(m * log_miss)  # 1 − (1 − p)^m, per row
    if per_table > m:
        steady = (per_table - m) * stream.probs * np.exp(lookback * log_miss)
    else:
        steady = 0.0
    misses = stream.num_tables * float(np.sum(warmup + steady))
    return max(0.0, min(1.0, 1.0 - misses / total_accesses))


def analytic_hit_report(
    dataset: str,
    num_tables: int,
    rows_per_table: int,
    total_accesses: int,
    hierarchy: HierarchyConfig,
    embedding_dim: int,
    calibration_samples: Optional[int] = None,
    lookups_per_sample: int = 1,
    block_accesses: Optional[int] = None,
) -> AnalyticReport:
    """Per-level hit rates for a dataset, no trace synthesis involved.

    ``total_accesses`` is the stream length being modeled (what the
    simulated pipeline would feed the stack-distance counter) and
    ``block_accesses`` its per-table block length (``batch_size ×
    lookups_per_sample`` under Algorithm 1's loop order); the Zipf
    exponent is calibrated at paper-scale access counts exactly as
    :func:`~repro.trace.production.make_trace` does, so both paths model
    the *same* popularity law.
    """
    dataset = dataset.lower()
    if num_tables <= 0 or rows_per_table <= 0:
        raise ConfigError("table shape must be positive")
    if calibration_samples is None:
        calibration_samples = (
            PAPER_BATCH_SIZE * PAPER_NUM_BATCHES * lookups_per_sample
        )
    if dataset in HOTNESS_PROFILES:
        profile = HOTNESS_PROFILES[dataset]
        alpha = fit_zipf_alpha(
            rows_per_table, calibration_samples, profile.unique_fraction
        )
        probs = zipf_probabilities(rows_per_table, alpha)
    elif dataset == "random":
        alpha = 0.0
        probs = zipf_probabilities(rows_per_table, alpha)
    elif dataset == "one-item":
        # Degenerate synthetic extreme: every lookup targets row 0.
        alpha = float("inf")
        probs = np.zeros(rows_per_table, dtype=np.float64)
        probs[0] = 1.0
    else:
        raise ConfigError(
            f"analytic model knows "
            f"{tuple(HOTNESS_PROFILES) + ('random', 'one-item')}, "
            f"got {dataset!r}"
        )
    capacities = CacheHitModel.from_hierarchy(hierarchy, embedding_dim)
    level_caps = {
        "l1": capacities.vectors_l1,
        "l2": capacities.vectors_l2,
        "l3": capacities.vectors_l3,
    }
    stream = _BlockedZipfStream(probs, num_tables, block_accesses or 1)
    t_cs = {
        level: characteristic_time(probs, num_tables, cap, block_accesses)
        for level, cap in level_caps.items()
    }
    hit_rates = {
        level: _finite_hit_rate(stream, t_cs[level], total_accesses)
        for level in level_caps
    }
    # Monotone by construction (larger capacity ⟹ larger window ⟹ fewer
    # misses), but clamp against float dust so fractions never go negative.
    hit_rates["l2"] = max(hit_rates["l2"], hit_rates["l1"])
    hit_rates["l3"] = max(hit_rates["l3"], hit_rates["l2"])
    level_fractions = {
        "l1": hit_rates["l1"],
        "l2": hit_rates["l2"] - hit_rates["l1"],
        "l3": hit_rates["l3"] - hit_rates["l2"],
        "dram": 1.0 - hit_rates["l3"],
    }
    cold = num_tables * stream.table_distinct(total_accesses / num_tables)
    return AnalyticReport(
        dataset=dataset,
        hit_rates=hit_rates,
        level_fractions=level_fractions,
        cold_fraction=min(1.0, cold / total_accesses),
        capacities=capacities,
        characteristic_accesses=t_cs,
        total_accesses=int(total_accesses),
        alpha=alpha,
    )
