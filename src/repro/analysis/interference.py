"""Inter-core sharing study (Section 3.1's fourth reuse class).

The paper distinguishes two multi-core regimes:

* **Constructive sharing** — cores working on the *same* embedding tables:
  one core's cold-miss fill can serve another core's later access from the
  shared LLC.
* **Destructive sharing** — cores working on *different* tables: each
  core's working set evicts the other's from every shared buffer.

This module measures both against a solo-core reference with the real
simulator: two per-core hierarchies wired to one shared L3 and DRAM
channel, fed either the same trace (same tables, different batches) or
address-disjoint clones of it.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import SimConfig
from ..cpu.platform import CPUSpec
from ..engine.embedding_exec import EmbeddingRunResult, run_embedding_trace
from ..errors import ConfigError
from ..mem.cache import Cache
from ..mem.dram import DRAMModel
from ..mem.hierarchy import build_hierarchy
from ..trace.dataset import EmbeddingTrace
from ..trace.stream import AddressMap

__all__ = ["InterferenceReport", "intercore_sharing_study"]


@dataclass(frozen=True)
class InterferenceReport:
    """Solo vs constructive vs destructive sharing, measured."""

    solo_cycles: float
    constructive_cycles: float
    destructive_cycles: float
    solo_l3_hit_rate: float
    constructive_l3_hit_rate: float
    destructive_l3_hit_rate: float

    @property
    def constructive_slowdown(self) -> float:
        """Per-core slowdown when sharing the LLC over the same tables."""
        return self.constructive_cycles / self.solo_cycles

    @property
    def destructive_slowdown(self) -> float:
        """Per-core slowdown when cores thrash each other's tables."""
        return self.destructive_cycles / self.solo_cycles

    @property
    def sharing_benefit(self) -> float:
        """How much cheaper constructive sharing is than destructive (>1)."""
        return self.destructive_cycles / self.constructive_cycles


def _two_core_run(
    trace: EmbeddingTrace,
    amaps: "tuple[AddressMap, AddressMap]",
    platform: CPUSpec,
) -> "tuple[EmbeddingRunResult, Cache]":
    """Run two cores batch-interleaved on a shared L3; return core 0's view."""
    config = platform.hierarchy
    shared_l3 = Cache("l3", config.l3_size, config.l3_ways, policy=config.policy)
    shared_dram = DRAMModel(config.dram)
    cores = [
        build_hierarchy(config, shared_l3=shared_l3, shared_dram=shared_dram, seed=c)
        for c in range(2)
    ]
    results: "list[list[EmbeddingRunResult]]" = [[], []]
    for b in range(trace.num_batches):
        for c in range(2):
            results[c].append(
                run_embedding_trace(
                    trace, amaps[c], platform.core, cores[c], batch_indices=[b]
                )
            )
    total = sum(r.total_cycles for r in results[0])
    merged = results[0][-1]
    combined = EmbeddingRunResult(
        total_cycles=total,
        batch_cycles=[c for r in results[0] for c in r.batch_cycles],
        loads=sum(r.loads for r in results[0]),
        effective_latency_sum=sum(r.effective_latency_sum for r in results[0]),
        instr_count=sum(r.instr_count for r in results[0]),
        utilization=merged.utilization,
        stall_fraction=merged.stall_fraction,
        window_stall_cycles=sum(r.window_stall_cycles for r in results[0]),
        mshr_stall_cycles=sum(r.mshr_stall_cycles for r in results[0]),
        l1_hit_rate=merged.l1_hit_rate,
        l2_hit_rate=merged.l2_hit_rate,
        l3_hit_rate=merged.l3_hit_rate,
        dram_fraction=merged.dram_fraction,
        dram_bytes=merged.dram_bytes,
        prefetches_issued=sum(r.prefetches_issued for r in results[0]),
        level_fractions=merged.level_fractions,
    )
    return combined, shared_l3


def intercore_sharing_study(
    trace: EmbeddingTrace,
    amap: AddressMap,
    platform: CPUSpec,
    config: "SimConfig | None" = None,
) -> InterferenceReport:
    """Measure the three regimes on one workload.

    Solo: one core, private everything.  Constructive: two cores, same
    address map (same physical tables).  Destructive: two cores, the
    second relocated to a disjoint address range (different tables of the
    same shape).
    """
    if trace.num_batches < 2:
        raise ConfigError("need at least 2 batches to interleave across cores")
    # Solo reference.
    solo_h = build_hierarchy(platform.hierarchy)
    solo = run_embedding_trace(trace, amap, platform.core, solo_h)

    # Constructive: both cores gather from the same tables.
    constructive, l3_cons = _two_core_run(trace, (amap, amap), platform)

    # Destructive: core 1's tables live elsewhere in memory.
    disjoint = AddressMap(
        list(amap.rows_per_table),
        amap.embedding_dim,
        base_address=amap.table_bases[-1]
        + amap.rows_per_table[-1] * amap.row_bytes
        + (1 << 30),
    )
    destructive, l3_dest = _two_core_run(trace, (amap, disjoint), platform)

    return InterferenceReport(
        solo_cycles=solo.total_cycles,
        constructive_cycles=constructive.total_cycles,
        destructive_cycles=destructive.total_cycles,
        solo_l3_hit_rate=solo_h.l3.stats.hit_rate,
        constructive_l3_hit_rate=l3_cons.stats.hit_rate,
        destructive_l3_hit_rate=l3_dest.stats.hit_rate,
    )
