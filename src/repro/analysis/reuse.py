"""Exact LRU stack-distance (reuse-distance) computation.

The paper's Fig 6/7 methodology: collect the index access trace, compute
the stack distance of every access, and compare distances against cache
capacities to predict hit rates.  The classical algorithm is Olken's: keep
the last access position of every key and a Fenwick (binary indexed) tree
marking which positions are the *most recent* access of their key; the
stack distance of an access is the number of marked positions after the
key's previous access.

Cold (first-ever) accesses have infinite distance, reported separately —
these are the cold misses that reach 72% in the paper's Low-hot traces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List

import numpy as np

from ..errors import ConfigError

__all__ = ["ReuseDistanceCounter", "ReuseResult", "reuse_distances"]


class _Fenwick:
    """Prefix-sum tree over positions 1..n."""

    def __init__(self, n: int) -> None:
        self.n = n
        self.tree = np.zeros(n + 1, dtype=np.int64)

    def add(self, i: int, delta: int) -> None:
        while i <= self.n:
            self.tree[i] += delta
            i += i & (-i)

    def prefix(self, i: int) -> int:
        total = 0
        while i > 0:
            total += self.tree[i]
            i -= i & (-i)
        return int(total)


@dataclass
class ReuseResult:
    """Stack distances of one access stream."""

    distances: np.ndarray  # finite distances only, one per reuse access
    cold_accesses: int
    total_accesses: int

    @property
    def cold_fraction(self) -> float:
        """Fraction of accesses that are cold (infinite distance)."""
        return self.cold_accesses / self.total_accesses if self.total_accesses else 0.0

    def hit_rate_at_capacity(self, capacity: int) -> float:
        """Predicted fully-associative LRU hit rate for ``capacity`` entries.

        An access hits iff its stack distance is strictly less than the
        cache capacity (in the same units as the stream's keys — embedding
        vectors when the stream is row ids).
        """
        if capacity <= 0:
            raise ConfigError(f"capacity must be positive, got {capacity}")
        if self.total_accesses == 0:
            return 0.0
        hits = int(np.count_nonzero(self.distances < capacity))
        return hits / self.total_accesses

    def histogram(self, log2_bins: int = 32) -> "tuple[np.ndarray, np.ndarray]":
        """(bin_edges, counts) of distances in log2 bins; cold excluded."""
        if self.distances.size == 0:
            return np.array([0]), np.array([0])
        edges = 2 ** np.arange(log2_bins + 1)
        counts, _ = np.histogram(np.maximum(self.distances, 1), bins=edges)
        return edges, counts

    def percentile(self, q: float) -> float:
        """Distance percentile over finite distances."""
        if self.distances.size == 0:
            raise ConfigError("no finite reuse distances")
        return float(np.percentile(self.distances, q))


class ReuseDistanceCounter:
    """Streaming stack-distance counter (Olken / Fenwick)."""

    def __init__(self, expected_length: int) -> None:
        if expected_length <= 0:
            raise ConfigError("expected stream length must be positive")
        self._tree = _Fenwick(expected_length)
        self._last_pos: Dict[int, int] = {}
        self._t = 0
        self._distances: List[int] = []
        self._cold = 0

    def access(self, key: int) -> int:
        """Record one access; return its stack distance (-1 when cold)."""
        self._t += 1
        t = self._t
        if t > self._tree.n:
            raise ConfigError("stream longer than declared expected_length")
        previous = self._last_pos.get(key)
        if previous is None:
            distance = -1
            self._cold += 1
        else:
            # Distinct keys accessed strictly between previous and now.
            distance = self._tree.prefix(t - 1) - self._tree.prefix(previous)
            self._distances.append(distance)
            self._tree.add(previous, -1)
        self._tree.add(t, 1)
        self._last_pos[key] = t
        return distance

    def result(self) -> ReuseResult:
        """Finish the stream and return distances + cold counts."""
        return ReuseResult(
            distances=np.asarray(self._distances, dtype=np.int64),
            cold_accesses=self._cold,
            total_accesses=self._t,
        )


def reuse_distances(stream: Iterable[int], length_hint: int = 0) -> ReuseResult:
    """Compute stack distances of a full access stream.

    ``stream`` may be any iterable of hashable integer keys (row ids or
    cache-line numbers).  ``length_hint`` sizes the Fenwick tree; when 0
    the stream is materialized first.
    """
    if length_hint <= 0:
        stream = list(stream)
        length_hint = len(stream)
        if length_hint == 0:
            return ReuseResult(np.empty(0, dtype=np.int64), 0, 0)
    counter = ReuseDistanceCounter(length_hint)
    for key in stream:
        counter.access(int(key))
    return counter.result()
