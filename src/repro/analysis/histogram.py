"""Access-count histograms and hotness metrics (Fig 5).

Fig 5 plots, per dataset, the per-row access counts sorted descending —
the visual signature of the power-law "hot embedding" behaviour.  The
helpers here compute that series plus the scalar hotness summaries the
paper quotes (unique-access fraction, share of accesses absorbed by the
hottest rows).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..errors import ConfigError
from ..trace.dataset import EmbeddingTrace

__all__ = ["access_count_histogram", "top_share", "hotness_summary", "HotnessReport"]


def access_count_histogram(
    trace: EmbeddingTrace, table: Optional[int] = None
) -> np.ndarray:
    """Sorted-descending per-row access counts (Fig 5's y-series).

    With ``table=None`` the counts aggregate across all tables, each
    table's rows kept distinct.
    """
    if table is not None:
        return trace.access_counts(table)
    parts = [trace.access_counts(t) for t in range(trace.num_tables)]
    merged = np.concatenate(parts)
    return np.sort(merged)[::-1]


def top_share(counts: np.ndarray, fraction: float = 0.01) -> float:
    """Share of all accesses going to the hottest ``fraction`` of rows.

    The quantity behind "a small fraction of embedding entries contribute
    to a major fraction of accesses" (Section 2.3).
    """
    if counts.size == 0:
        raise ConfigError("empty access-count array")
    if not 0.0 < fraction <= 1.0:
        raise ConfigError(f"fraction must be in (0,1], got {fraction}")
    ordered = np.sort(counts)[::-1]
    k = max(1, int(round(ordered.size * fraction)))
    return float(ordered[:k].sum() / ordered.sum())


@dataclass(frozen=True)
class HotnessReport:
    """Scalar hotness description of one trace."""

    dataset: str
    unique_fraction: float
    top_1pct_share: float
    top_10pct_share: float
    max_count: int
    accessed_rows: int
    total_lookups: int


def hotness_summary(trace: EmbeddingTrace, dataset: str = "unnamed") -> HotnessReport:
    """Summarize the hotness of a trace across all tables."""
    counts = access_count_histogram(trace)
    return HotnessReport(
        dataset=dataset,
        unique_fraction=trace.mean_unique_fraction(),
        top_1pct_share=top_share(counts, 0.01),
        top_10pct_share=top_share(counts, 0.10),
        max_count=int(counts[0]) if counts.size else 0,
        accessed_rows=int(counts.size),
        total_lookups=trace.total_lookups(),
    )
