"""Working-set and cold-miss accounting.

Cold misses are a headline of the paper's characterization: up to 72% of
accesses in the Low-hot traces are first-ever touches, and even High-hot
sees ~22% on average — the regime where LRU caches cannot help and only
prefetching or latency tolerance can.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from ..errors import ConfigError
from ..trace.dataset import EmbeddingTrace
from ..trace.stream import AddressMap

__all__ = ["unique_rows", "cold_miss_fraction", "working_set_bytes", "windowed_working_set"]


def unique_rows(trace: EmbeddingTrace, table: Optional[int] = None) -> int:
    """Distinct rows touched in one table (or summed over all tables)."""
    if table is not None:
        return int(np.unique(trace.table_indices(table)).size)
    return sum(
        int(np.unique(trace.table_indices(t)).size) for t in range(trace.num_tables)
    )


def cold_miss_fraction(trace: EmbeddingTrace, table: Optional[int] = None) -> float:
    """Fraction of accesses that are first-ever touches of their row.

    Exactly the infinite-reuse-distance fraction of the Fig 7 analysis,
    computable without the Fenwick machinery: uniques / accesses.
    """
    if table is not None:
        indices = trace.table_indices(table)
        if indices.size == 0:
            raise ConfigError(f"table {table} has no accesses")
        return np.unique(indices).size / indices.size
    total = trace.total_lookups()
    if total == 0:
        raise ConfigError("trace has no accesses")
    return unique_rows(trace) / total


def working_set_bytes(trace: EmbeddingTrace, amap: AddressMap) -> int:
    """Bytes of embedding data actually touched by the trace."""
    if amap.num_tables != trace.num_tables:
        raise ConfigError("address map and trace disagree on table count")
    return unique_rows(trace) * amap.row_bytes


def windowed_working_set(
    trace: EmbeddingTrace, window_batches: int = 1
) -> Dict[int, float]:
    """Mean distinct rows touched per window of ``window_batches`` batches.

    Maps window start batch -> distinct rows in that window (averaged
    across tables).  The 'working set within a certain time window' notion
    of Section 3.1.1.
    """
    if window_batches <= 0:
        raise ConfigError("window must be positive")
    out: Dict[int, float] = {}
    for start in range(0, trace.num_batches, window_batches):
        stop = min(start + window_batches, trace.num_batches)
        per_table = []
        for t in range(trace.num_tables):
            parts = [trace.table_batch(b, t).indices for b in range(start, stop)]
            per_table.append(np.unique(np.concatenate(parts)).size)
        out[start] = float(np.mean(per_table))
    return out
