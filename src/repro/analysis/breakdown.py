"""Analytic stage-time breakdown at paper scale (Fig 1).

Fig 1 reports the embedding share of end-to-end execution for each model.
At paper scale (1M-row tables, 60-170 tables) trace-driven simulation is
infeasible, but the breakdown only needs *average* per-stage costs, so this
module combines:

* the reuse-distance hit-rate model (Fig 6 pipeline) on a sampled
  paper-scale index stream -> per-level service fractions,
* an exposed-latency model consistent with the detailed engine
  (misses overlap up to the core's demand concurrency),
* the roofline timings of the dense stages.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..config import SimConfig
from ..cpu.core import CoreModel
from ..cpu.platform import CPUSpec
from ..engine.inference import StageTimes
from ..engine.kernels import KernelCostModel
from ..engine.mlp_exec import time_interaction, time_mlp, time_top_mlp
from ..errors import ConfigError
from ..model.configs import ModelConfig
from ..obs import hooks as obs_hooks
from ..obs.cpi import dense_cpi_stack, embedding_cpi_stack, publish_cpi_stack
from ..trace.production import make_trace
from ..units import CACHE_LINE_BYTES, FLOAT32_BYTES
from .analytic import analytic_hit_report
from .cache_model import analyze_trace_reuse

__all__ = ["estimate_stage_breakdown", "estimate_embedding_cycles"]

#: Cost of a pipelined (L1-hit) load, cycles of critical path per line.
HIT_COST_CYCLES = 0.5


def estimate_embedding_cycles(
    model: ModelConfig,
    level_fractions: Dict[str, float],
    platform: CPUSpec,
    batch_size: int,
    cost: KernelCostModel = KernelCostModel(),
) -> float:
    """Embedding-stage cycles for one batch from per-level hit fractions.

    Per line: hits are pipelined; misses expose ``latency / concurrency``
    where concurrency is the demand MLP the core sustains — the same
    mechanism the detailed engine produces, in closed form.
    """
    if batch_size <= 0:
        raise ConfigError("batch_size must be positive")
    hier = platform.hierarchy
    spec = platform.core
    level_latency = {
        "l1": hier.l1_latency,
        "l2": hier.l2_latency,
        "l3": hier.l3_latency,
        "dram": hier.l3_latency + hier.dram.base_latency_cycles,
    }
    threshold = CoreModel.HIT_PIPELINE_THRESHOLD
    exposed_per_line = 0.0
    for level, fraction in level_fractions.items():
        latency = level_latency[level]
        if latency <= threshold:
            exposed_per_line += fraction * HIT_COST_CYCLES
        else:
            exposed_per_line += fraction * latency / spec.demand_concurrency
    row_lines = -(-model.embedding_dim * FLOAT32_BYTES // CACHE_LINE_BYTES)
    issue_cycles = cost.instructions_per_lookup(row_lines) / spec.issue_width
    per_lookup = issue_cycles + row_lines * exposed_per_line
    return model.lookups_for_batch(batch_size) * per_lookup


def estimate_stage_breakdown(
    model: ModelConfig,
    dataset: str,
    platform: CPUSpec,
    batch_size: int = 64,
    sample_tables: int = 3,
    sample_batches: int = 4,
    config: Optional[SimConfig] = None,
) -> StageTimes:
    """Fig 1's quantity: per-stage cycles at paper scale.

    A small sample of paper-scale tables is synthesized for ``dataset``;
    its reuse profile generalizes across tables because tables are i.i.d.
    at a given hotness.  Row-granularity reuse distances stand in for line
    granularity (lines of one row behave identically).

    With ``config.mode == "analytic"`` no trace is synthesized at all: the
    per-level fractions come from Che's approximation over the calibrated
    Zipf law (:mod:`repro.analysis.analytic`) for the *same* sampled
    stream shape, in O(rows) instead of O(accesses · log rows).
    """
    config = config or SimConfig()
    sample_tables = min(sample_tables, model.num_tables)
    if config.mode == "analytic":
        # Model the stream the sim path would synthesize: sample_tables
        # interleaved tables, sample_batches batches, mean Poisson pooling.
        total_accesses = (
            sample_tables * sample_batches * batch_size * model.lookups_per_sample
        )
        report = analytic_hit_report(
            dataset,
            num_tables=sample_tables,
            rows_per_table=model.rows,
            total_accesses=total_accesses,
            hierarchy=platform.hierarchy,
            embedding_dim=model.embedding_dim,
            lookups_per_sample=model.lookups_per_sample,
            block_accesses=batch_size * model.lookups_per_sample,
        )
    else:
        trace = make_trace(
            dataset,
            num_tables=sample_tables,
            rows_per_table=model.rows,
            batch_size=batch_size,
            num_batches=sample_batches,
            lookups_per_sample=model.lookups_per_sample,
            config=config,
        )
        report = analyze_trace_reuse(
            trace, platform.hierarchy, model.embedding_dim, dataset=dataset
        )
    embedding = estimate_embedding_cycles(
        model, report.level_fractions, platform, batch_size
    )
    bottom = time_mlp(model.dense_features, model.bottom_mlp, batch_size, platform.core)
    interaction = time_interaction(
        batch_size, model.num_tables, model.embedding_dim, platform.core
    )
    top = time_top_mlp(
        model.num_tables, model.embedding_dim, model.top_mlp, batch_size, platform.core
    )
    stages = StageTimes(
        bottom_mlp=bottom.cycles,
        embedding=embedding,
        interaction=interaction.cycles,
        top_mlp=top.cycles,
    )
    obs = obs_hooks.active()
    if obs is not None:
        # Mirror the detailed engine's telemetry for the analytic path: one
        # sim track of sequential stage spans, dense CPI stacks from the
        # roofline stall fractions, and an embedding stack whose stall split
        # comes from the reuse model's per-level service fractions.
        tid = obs.tracer.new_sim_track(f"breakdown:{model.name}")
        cursor = 0.0
        for stage_name, cycles in (
            ("bottom_mlp", stages.bottom_mlp),
            ("embedding", stages.embedding),
            ("interaction", stages.interaction),
            ("top_mlp", stages.top_mlp),
        ):
            obs.tracer.add_sim_span(
                stage_name, "sim.breakdown", cursor, cycles, tid=tid,
                args={"model": model.name, "dataset": dataset},
            )
            cursor += cycles
        hier = platform.hierarchy
        row_lines = -(-model.embedding_dim * FLOAT32_BYTES // CACHE_LINE_BYTES)
        issue_cycles = (
            model.lookups_for_batch(batch_size)
            * KernelCostModel().instructions_per_lookup(row_lines)
            / platform.core.issue_width
        )
        publish_cpi_stack(
            obs.metrics,
            embedding_cpi_stack(
                "embedding",
                stages.embedding,
                issue_cycles,
                report.level_fractions,
                hier.l3_latency,
                hier.l3_latency + hier.dram.base_latency_cycles,
            ),
        )
        for stage_name, timing in (
            ("bottom_mlp", bottom),
            ("interaction", interaction),
            ("top_mlp", top),
        ):
            publish_cpi_stack(
                obs.metrics,
                dense_cpi_stack(stage_name, timing.cycles, timing.stall_fraction),
            )
    return stages
