"""Table 4 — embedding-only batch times (ms), multi-core.

HW-PF OFF / baseline / SW-PF for every model and dataset on the full
24-core socket, in milliseconds, projected to paper-scale lookup counts.
The paper's shape to check: times grow rm2_1 < rm2_2 < rm2_3 >> rm1,
shrink from Low to High hotness, and SW-PF cuts every cell by ~1.2-1.4x.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SimConfig
from ..core.schemes import evaluate_scheme
from ..cpu.platform import get_platform
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "table4"
TITLE = "Embedding-only batch time (ms), multi-core"
PAPER_REFERENCE = "Table 4"

SCHEMES = ("hw_pf_off", "baseline", "sw_pf")


def run(
    config: Optional[SimConfig] = None,
    models: Sequence[str] = ("rm2_1", "rm2_2", "rm2_3", "rm1"),
    datasets: Sequence[str] = ("low", "medium", "high"),
    platform: str = "csl",
    num_cores: int = 24,
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
    detailed_cores: int = 2,
) -> ExperimentReport:
    """Fill the 3-scheme x 4-model x 3-dataset table."""
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for dataset in datasets:
        for model_name in models:
            wl = build_workload(
                model_name, dataset, scale=scale, batch_size=batch_size,
                num_batches=num_batches, config=config,
            )
            row = {"dataset": dataset, "model": model_name}
            # Embedding cost is linear in batch size; project the simulated
            # batch to the paper's batch of 64.
            batch_projection = 64.0 / batch_size
            for scheme in SCHEMES:
                result = evaluate_scheme(
                    scheme, wl.model, wl.trace, wl.amap, spec,
                    num_cores=num_cores, detailed_cores=detailed_cores,
                )
                row[f"{scheme}_ms"] = result.embedding_ms * batch_projection
            report.rows.append(row)
    report.notes.append(
        "ms are paper-scale-projected simulator cycles at the platform "
        "frequency (batch projected to 64); compare shapes and ratios, "
        "not absolute silicon time"
    )
    return report
