"""Fig 7 — reuse-distance study for the three datasets.

The Fig 6 pipeline applied to rm2_1's access stream: stack-distance CDF
with vertical markers at the L1/L2/L3 vector capacities, plus the cold-miss
fraction (the yellow region; the paper reports up to 72% cold misses for
Low hot and ~22% even for High hot).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.cache_model import analyze_trace_reuse
from ..config import SimConfig
from ..cpu.platform import get_platform
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "fig7"
TITLE = "Reuse-distance study per dataset (rm2_1)"
PAPER_REFERENCE = "Figure 7; Figure 6 pipeline; Section 3.1.2"


def run(
    config: Optional[SimConfig] = None,
    model: str = "rm2_1",
    datasets: Sequence[str] = ("high", "medium", "low"),
    platform: str = "csl",
    scale: float = 0.02,
    batch_size: int = 64,
    num_batches: int = 4,
    sample_tables: int = 3,
) -> ExperimentReport:
    """Compute reuse CDFs and model-predicted hit rates per dataset."""
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for dataset in datasets:
        wl = build_workload(
            model, dataset, scale=scale, batch_size=batch_size,
            num_batches=num_batches, config=config,
        )
        tables = list(range(min(sample_tables, wl.model.num_tables)))
        analysis = analyze_trace_reuse(
            wl.trace, spec.hierarchy, wl.model.embedding_dim,
            tables=tables, dataset=dataset,
        )
        caps = analysis.capacities
        report.rows.append(
            {
                "dataset": dataset,
                "cold_miss_fraction": analysis.cold_fraction,
                "l1_hit_rate_model": analysis.hit_rates["l1"],
                "l2_hit_rate_model": analysis.hit_rates["l2"],
                "l3_hit_rate_model": analysis.hit_rates["l3"],
                "l1_capacity_vectors": caps.vectors_l1,
                "l2_capacity_vectors": caps.vectors_l2,
                "l3_capacity_vectors": caps.vectors_l3,
                "median_reuse_distance": (
                    analysis.reuse.percentile(50.0)
                    if analysis.reuse.distances.size
                    else None
                ),
            }
        )
    report.notes.append(
        "cold fraction rises as hotness falls (paper: High ~22%, Low up to 72%)"
    )
    report.notes.append(
        "hit rates are the fully-associative LRU model of Fig 6, not the "
        "set-associative simulator"
    )
    return report
