"""Fig 4 — RM2_1 embedding-stage performance across input datasets.

(a) batch latency and (b) average load latency + L1D/L2/L3 hit rates for
{one-item, High, Medium, Low, random}.  The paper's headline observations:
one-item is an order of magnitude faster than everything else (up to 16x
load-latency spread), and hit rates degrade monotonically with falling
hotness.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SimConfig
from ..cpu.platform import get_platform
from ..engine.embedding_exec import run_embedding_trace
from ..mem.hierarchy import build_hierarchy
from ..trace.production import DATASET_NAMES
from ..units import cycles_to_ms
from .base import ExperimentReport
from .workloads import DEFAULT_BATCH, DEFAULT_NUM_BATCHES, DEFAULT_SCALE, build_workload

EXPERIMENT_ID = "fig4"
TITLE = "RM2_1 embedding-stage performance across datasets"
PAPER_REFERENCE = "Figure 4(a,b)"


def run(
    config: Optional[SimConfig] = None,
    model: str = "rm2_1",
    datasets: Sequence[str] = DATASET_NAMES,
    platform: str = "csl",
    scale: float = DEFAULT_SCALE,
    batch_size: int = DEFAULT_BATCH,
    num_batches: int = DEFAULT_NUM_BATCHES,
) -> ExperimentReport:
    """Measure the embedding stage for each dataset."""
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for dataset in datasets:
        wl = build_workload(
            model, dataset, scale=scale, batch_size=batch_size,
            num_batches=num_batches, config=config,
        )
        hierarchy = build_hierarchy(spec.hierarchy)
        result = run_embedding_trace(wl.trace, wl.amap, spec.core, hierarchy)
        report.rows.append(
            {
                "dataset": dataset,
                "batch_latency_ms": cycles_to_ms(
                    result.mean_batch_cycles, spec.frequency_hz
                ),
                "avg_load_latency_cycles": result.avg_load_latency,
                "l1_hit_rate": result.l1_hit_rate,
                "l2_hit_rate": result.l2_hit_rate,
                "l3_hit_rate": result.l3_hit_rate,
                "dram_fraction": result.dram_fraction,
            }
        )
    one_item = report.filter_rows(dataset="one-item")
    slowest = max(report.rows, key=lambda r: r["avg_load_latency_cycles"])
    if one_item:
        spread = (
            slowest["avg_load_latency_cycles"]
            / max(one_item[0]["avg_load_latency_cycles"], 1e-9)
        )
        report.notes.append(
            f"load-latency spread one-item -> {slowest['dataset']}: {spread:.1f}x "
            "(paper: up to 16x)"
        )
    report.notes.append(f"model={model}, scale={scale}, batch={batch_size}")
    return report
