"""Table 1 — model classes, bottlenecks, and SLA targets."""

from __future__ import annotations

from typing import Optional

from ..config import SimConfig
from ..serving.sla import SLA_TARGETS
from .base import ExperimentReport

EXPERIMENT_ID = "table1"
TITLE = "Model class characteristics and SLA targets"
PAPER_REFERENCE = "Table 1 (from Gupta et al. [17])"


def run(config: Optional[SimConfig] = None) -> ExperimentReport:
    """Dump the SLA registry in Table 1's layout."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for target in SLA_TARGETS.values():
        report.rows.append(
            {
                "model_class": target.model_class,
                "bottleneck": target.bottleneck,
                "bottleneck_share": target.bottleneck_share,
                "model_size": target.model_size,
                "sla_ms": target.sla_ms,
            }
        )
    return report
