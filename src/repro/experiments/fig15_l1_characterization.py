"""Fig 15 — L1D hit rate and average load latency under each design.

VTune-style characterization on the Low-hot dataset: the paper's baseline
sits at 72-84% L1D hit and 23-90 cycles average load latency; SW-PF lifts
hit rates to 96.7-99.4% and cuts latency to 5.6-7.1 cycles; Integrated
nudges further to 99.3-99.5% and 5.5-5.7 cycles.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SimConfig
from ..core.schemes import evaluate_scheme
from ..cpu.platform import get_platform
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "fig15"
TITLE = "L1D hit rate and average load latency per design"
PAPER_REFERENCE = "Figure 15; SW-PF reaches 96.7-99.4%% L1D, 5.6-7.1 cycles"

SCHEMES = ("baseline", "sw_pf", "integrated")


def run(
    config: Optional[SimConfig] = None,
    models: Sequence[str] = ("rm2_1", "rm2_2", "rm2_3"),
    dataset: str = "low",
    platform: str = "csl",
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
) -> ExperimentReport:
    """Collect the hit-rate / latency panel on the Low-hot dataset."""
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for model_name in models:
        wl = build_workload(
            model_name, dataset, scale=scale, batch_size=batch_size,
            num_batches=num_batches, config=config,
        )
        for scheme in SCHEMES:
            result = evaluate_scheme(
                scheme, wl.model, wl.trace, wl.amap, spec, num_cores=1
            )
            report.rows.append(
                {
                    "model": model_name,
                    "scheme": scheme,
                    "l1_hit_rate": result.l1_hit_rate,
                    "avg_load_latency_cycles": result.avg_load_latency,
                }
            )
    report.notes.append(f"dataset={dataset} (the panel the paper shows)")
    return report
