"""Fig 10 — the prefetch design space.

(a) compiler-inserted prefetching (gcc / icc) vs the baseline — limited or
negative benefit; (b) prefetch-distance sweep — a U-shape with the optimum
at small distances (the paper finds 4 on Cascade Lake); (c) prefetch-amount
sweep — covering the full 8-line row maximizes hit rate and minimizes load
latency.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SimConfig
from ..core.compiler_pf import COMPILER_STYLES, compiler_cost_model, compiler_prefetch_plan
from ..core.tuner import DEFAULT_AMOUNTS, DEFAULT_DISTANCES, tune_prefetch
from ..cpu.platform import get_platform
from ..engine.embedding_exec import run_embedding_trace
from ..mem.hierarchy import build_hierarchy
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "fig10"
TITLE = "Prefetch design space: compiler PF, distance, amount"
PAPER_REFERENCE = "Figure 10(a,b,c); optimum distance 4, amount 8 on CSL"


def run(
    config: Optional[SimConfig] = None,
    model: str = "rm2_1",
    dataset: str = "low",
    platform: str = "csl",
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
    distances: Sequence[int] = DEFAULT_DISTANCES,
    amounts: Sequence[int] = DEFAULT_AMOUNTS,
) -> ExperimentReport:
    """Run all three panels on one shared workload."""
    config = config or SimConfig()
    spec = get_platform(platform)
    wl = build_workload(
        model, dataset, scale=scale, batch_size=batch_size,
        num_batches=num_batches, config=config,
    )
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )

    # Panel (a): compiler prefetching vs baseline.
    baseline = run_embedding_trace(
        wl.trace, wl.amap, spec.core, build_hierarchy(spec.hierarchy)
    )
    report.rows.append(
        {"panel": "a", "setting": "baseline", "speedup": 1.0}
    )
    for style in COMPILER_STYLES:
        result = run_embedding_trace(
            wl.trace,
            wl.amap,
            spec.core,
            build_hierarchy(spec.hierarchy),
            plan=compiler_prefetch_plan(style),
            cost=compiler_cost_model(style),
        )
        report.rows.append(
            {
                "panel": "a",
                "setting": style,
                "speedup": baseline.total_cycles / result.total_cycles,
            }
        )

    # Panels (b) distance and (c) amount, via the tuner.
    tuning = tune_prefetch(
        wl.trace, wl.amap, spec, distances=distances, amounts=amounts
    )
    for distance, speedup in sorted(tuning.distance_speedups().items()):
        report.rows.append(
            {"panel": "b", "setting": f"distance={distance}", "speedup": speedup}
        )
    for amount, (cycles, l1_hit, latency) in sorted(tuning.amount_metrics.items()):
        report.rows.append(
            {
                "panel": "c",
                "setting": f"amount={amount}",
                "speedup": tuning.baseline_cycles / cycles,
                "l1_hit_rate": l1_hit,
                "avg_load_latency_cycles": latency,
            }
        )
    report.notes.append(
        f"best distance={tuning.best_distance} (paper: 4), "
        f"best amount={tuning.best_amount} (paper: 8)"
    )
    report.notes.append(
        "compiler prefetching shows limited/negative benefit (paper Fig 10a)"
    )
    return report
