"""Experiment harness: one module per paper table/figure.

Every experiment module exposes ``run(config=None, **overrides)`` returning
an :class:`~repro.experiments.base.ExperimentReport` whose rows/series are
the same quantities the paper's artifact plots.  The registry
(:mod:`repro.experiments.registry`) maps experiment ids (``fig12``,
``table4``...) to these runners, and ``repro-experiment <id>`` on the
command line pretty-prints any of them.
"""

from .base import ExperimentReport, format_report
from .registry import EXPERIMENT_IDS, get_experiment, list_experiments, run_experiment

__all__ = [
    "EXPERIMENT_IDS",
    "ExperimentReport",
    "format_report",
    "get_experiment",
    "list_experiments",
    "run_experiment",
]
