"""Experiment customization (the artifact's Appendix A.7).

"The models or dataset can be customized by changing the parameters passed
in the inference launch script."  This module is that launch script as a
library function: build an arbitrary DLRM shape, pick any dataset and
platform, and evaluate any subset of the design points — without going
through the Table 2 zoo.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..config import SimConfig
from ..core.schemes import SCHEME_NAMES, SchemeResult, evaluate_all_schemes
from ..core.swpf import PAPER_SWPF, SWPrefetchConfig
from ..cpu.platform import get_platform
from ..errors import ConfigError
from ..model.configs import ModelConfig
from ..trace.production import make_trace
from ..trace.stream import AddressMap

__all__ = ["custom_model", "run_custom"]


def custom_model(
    name: str = "custom",
    rows: int = 100_000,
    embedding_dim: int = 128,
    num_tables: int = 8,
    lookups_per_sample: int = 20,
    bottom_mlp: Optional[Tuple[int, ...]] = None,
    top_mlp: Tuple[int, ...] = (128, 64, 1),
    dense_features: int = 256,
    embedding_heavy: bool = True,
) -> ModelConfig:
    """Build a one-off :class:`ModelConfig` with sensible defaults.

    The bottom MLP defaults to ending at ``embedding_dim`` (required for
    the interaction shapes to line up), and the model class (hence SLA)
    follows ``embedding_heavy``.
    """
    if bottom_mlp is None:
        bottom_mlp = (256, embedding_dim, embedding_dim)
    if bottom_mlp[-1] != embedding_dim:
        raise ConfigError(
            f"bottom MLP must end at embedding_dim={embedding_dim}, "
            f"got {bottom_mlp[-1]}"
        )
    return ModelConfig(
        name=name,
        category="RMC2" if embedding_heavy else "RMC1",
        rows=rows,
        embedding_dim=embedding_dim,
        num_tables=num_tables,
        lookups_per_sample=lookups_per_sample,
        bottom_mlp=tuple(bottom_mlp),
        top_mlp=tuple(top_mlp),
        dense_features=dense_features,
        sla_ms=400.0 if embedding_heavy else 100.0,
    )


def run_custom(
    model: ModelConfig,
    dataset: str = "low",
    platform: str = "csl",
    num_cores: int = 1,
    batch_size: int = 16,
    num_batches: int = 2,
    schemes: Sequence[str] = SCHEME_NAMES,
    swpf: SWPrefetchConfig = PAPER_SWPF,
    config: Optional[SimConfig] = None,
) -> Dict[str, SchemeResult]:
    """Evaluate the design points on a custom model (A.7's workflow).

    Unlike :func:`repro.quick_eval`, nothing is scaled — the model runs at
    exactly the shape given, so keep ``rows * num_tables`` tractable.
    """
    config = config or SimConfig()
    spec = get_platform(platform)
    trace = make_trace(
        dataset,
        num_tables=model.num_tables,
        rows_per_table=model.rows,
        batch_size=batch_size,
        num_batches=num_batches,
        lookups_per_sample=model.lookups_per_sample,
        config=config,
    )
    amap = AddressMap([model.rows] * model.num_tables, model.embedding_dim)
    return evaluate_all_schemes(
        model, trace, amap, spec,
        num_cores=num_cores, schemes=schemes, swpf=swpf,
    )
