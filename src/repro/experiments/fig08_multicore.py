"""Fig 8 — multi-core scalability: execution time and memory bandwidth.

The paper maps one batch per core and scales from 1 to 24 cores on the
Cascade Lake socket: execution time rises only ~14% while consumed
bandwidth rises ~15.5x — i.e. bandwidth headroom exists, motivating the
software-prefetching design that spends it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SimConfig
from ..cpu.platform import get_platform
from ..engine.multicore import run_embedding_multicore
from ..units import cycles_to_ms
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "fig8"
TITLE = "Multi-core scaling: execution time and memory bandwidth"
PAPER_REFERENCE = "Figure 8 (time +14%, bandwidth x15.5 at 24 cores)"


def run(
    config: Optional[SimConfig] = None,
    model: str = "rm2_1",
    dataset: str = "low",
    platform: str = "csl",
    core_counts: Sequence[int] = (1, 2, 4, 8, 16, 24),
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 4,
    detailed_cores: int = 2,
) -> ExperimentReport:
    """Sweep the core count and record time + achieved bandwidth."""
    config = config or SimConfig()
    spec = get_platform(platform)
    wl = build_workload(
        model, dataset, scale=scale, batch_size=batch_size,
        num_batches=num_batches, config=config,
    )
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for cores in core_counts:
        mc = run_embedding_multicore(
            wl.trace, wl.amap, spec, cores, detailed_cores=detailed_cores
        )
        report.rows.append(
            {
                "cores": cores,
                "batch_time_ms": cycles_to_ms(mc.mean_batch_cycles, spec.frequency_hz),
                "bandwidth_gb_s": mc.bandwidth_gb_s(spec.frequency_hz),
                "dram_utilization": mc.utilization,
                "avg_load_latency_cycles": mc.avg_load_latency,
            }
        )
    first, last = report.rows[0], report.rows[-1]
    time_growth = last["batch_time_ms"] / first["batch_time_ms"]
    bw_growth = last["bandwidth_gb_s"] / max(first["bandwidth_gb_s"], 1e-9)
    report.notes.append(
        f"{last['cores']} vs 1 core: time x{time_growth:.2f} "
        f"(paper +14%), bandwidth x{bw_growth:.1f} (paper x15.5)"
    )
    return report
