"""SLO observatory — scored fault detection over the resilient cluster.

``cluster_resilience`` shows the fleet *surviving* node faults; this
experiment asks whether the observatory *notices* them.  It replays the
same fault scenarios (none / node kill / chaos) through the same
replicated, hedged cluster configuration, but instead of grading
latency percentiles it grades the telemetry pipeline end to end:

1. every run is request-logged (the cluster's distributed tracing and
   ``call_ok``/``call_failed`` per-node telemetry feed the log);
2. declarative SLOs (:mod:`repro.obs.slo`) are evaluated over rolling
   windows — a tail-latency SLO pinned at 2x the no-fault p99, an
   availability SLO, and the paper-grade full-quality SLA objective —
   with error-budget accounting and multi-window burn-rate alerts;
3. per-node drift detectors (:mod:`repro.obs.detect`) watch each node's
   windowed error rate and mean call latency;
4. the fired alerts are correlated against the
   :class:`repro.serving.faults.ClusterFaultPlan` ground truth, and the
   report scores **detection precision, per-fault-class recall, and
   mean time-to-detect** — the numbers that make "the observatory
   works" falsifiable.

The acceptance bar (locked by ``tests/test_experiments_slo.py``): every
injected NodeCrash/NodePartition/NodeSlow window is detected with
precision >= 0.9 and finite MTTD, the error budget burns during fault
windows and recovers after, and the quiet scenario stays quiet.

Degradation controllers are left off so the per-node service process is
stationary outside the injected faults — the detectors grade the fault
response, not the control loop's own adaptation.  Everything is seeded
and simulated-time-only, so rows are byte-stable across hosts and
``--jobs``.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from ..config import SimConfig
from ..core.schemes import evaluate_scheme
from ..cpu.platform import get_platform
from ..obs import hooks as obs_hooks
from ..obs.hooks import Observation
from ..obs.requests import RequestLog
from ..obs.slo import (
    FleetMonitor,
    SLOSpec,
    alert_record,
    burn_alerts,
    burn_summary,
    evaluate_slo,
    node_window_stats,
    score_detections,
    slo_state_records,
)
from ..serving.cluster import ClusterConfig, ClusterSim
from ..serving.router import HedgePolicy
from ..serving.sla import sla_for_model
from ..serving.workload import poisson_arrivals
from .base import ExperimentReport
from .cluster_resilience import _scenarios
from .workloads import build_workload

EXPERIMENT_ID = "slo_observatory"
TITLE = "SLO burn and fault detection scored against ground truth"
PAPER_REFERENCE = "Table 1 SLAs; fleet observability for at-scale serving"

#: Detector warmup (in windows) before alerts may fire; fault windows
#: start at >= 20% of the horizon, well past it.
_WARMUP_WINDOWS = 8

#: Detection grace: an alert within this many windows after a fault
#: window closes still credits it (resolution lags the repair).
_GRACE_WINDOWS = 2


def run(
    config: Optional[SimConfig] = None,
    model: str = "rm1",
    dataset: str = "low",
    platform: str = "csl",
    num_nodes: int = 4,
    cores_per_node: int = 4,
    replication: int = 2,
    num_shards: int = 8,
    gather_width: int = 2,
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
    num_requests: int = 20000,
    detailed_cores: int = 2,
    offered_load: float = 0.55,
    hop_ms: float = 0.1,
    window_count: int = 80,
    slo_log: Optional[str] = None,
) -> ExperimentReport:
    """Replay the cluster fault scenarios and score the observatory.

    ``window_count`` sets the SLO/detector window resolution (windows =
    horizon / count); ``slo_log`` optionally writes every windowed SLO
    state and every alert as schema-valid JSONL (the CI smoke validates
    it against ``$defs.slo_state`` / ``$defs.alert_event``).
    """
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    wl = build_workload(
        model, dataset, scale=scale, batch_size=batch_size,
        num_batches=num_batches, config=config,
    )
    sla = sla_for_model(wl.model)
    base_ms = evaluate_scheme(
        "baseline", wl.model, wl.trace, wl.amap, spec,
        num_cores=cores_per_node, detailed_cores=detailed_cores,
    ).batch_ms
    call_ms = base_ms / gather_width
    total_cores = num_nodes * cores_per_node
    interarrival_ms = base_ms / (total_cores * offered_load)
    horizon_ms = num_requests * interarrival_ms
    arrivals = poisson_arrivals(
        interarrival_ms, num_requests, config.rng("cluster:arrivals")
    )
    call_timeout_ms = max(4.0 * call_ms, sla.sla_ms / 4.0)
    hedge = HedgePolicy(
        quantile=95.0, min_ms=max(1.0, 3.0 * call_ms), window=128, max_hedges=1
    )
    window_ms = horizon_ms / window_count
    grace_ms = _GRACE_WINDOWS * window_ms
    repl = max(1, min(replication, num_nodes))

    def simulate(scenario: str, plan):
        """One cluster run, request-logged whatever the outer session is."""
        cluster = ClusterSim(
            ClusterConfig(
                num_nodes=num_nodes,
                cores_per_node=cores_per_node,
                mean_service_ms=call_ms,
                num_shards=num_shards,
                replication=repl,
                gather_width=gather_width,
                hop_ms=hop_ms,
                call_timeout_ms=call_timeout_ms,
                deadline_ms=sla.sla_ms,
                max_outstanding=50 * total_cores,
                placement="hotness",
                routing="least_loaded",
                hedge=hedge,
                faults=plan,
                seed=config.seed,
                label=f"slo:{scenario}",
            )
        )
        outer = obs_hooks.active()
        if outer is not None and outer.requests is not None:
            result = cluster.run(arrivals)
            records = outer.requests.runs[-1].records
            return result, records
        # No request log attached (or no observation at all): capture one
        # privately, keeping any outer tracer/metrics so spans and
        # histograms still land in the session's artifacts.
        inner = Observation(
            tracer=outer.tracer if outer is not None else None,
            metrics=outer.metrics if outer is not None else None,
            requests=RequestLog(),
        )
        with obs_hooks.session(inner):
            result = cluster.run(arrivals)
        return result, inner.requests.runs[-1].records

    # Baseline pass pins the tail SLO threshold at 2x the no-fault p99:
    # tight enough that fault-window queueing burns budget, loose enough
    # that healthy jitter does not.
    scenarios = _scenarios(horizon_ms, num_nodes, config.seed)
    base_result, _ = simulate("baseline", None)
    tail_ms = 2.0 * base_result.percentile(99.0)
    specs = [
        SLOSpec("latency_tail", "latency", 0.99, threshold_ms=tail_ms),
        SLOSpec("availability", "availability", 0.999),
        SLOSpec("quality_sla", "quality", 0.95, threshold_ms=sla.sla_ms),
    ]

    log_lines: List[Dict[str, object]] = []
    detect_ok = True
    burn_shown = False
    for scenario, plan in scenarios:
        result, records = simulate(scenario, plan)
        fault_windows = plan.windows() if plan is not None else []

        slo_alert_count = 0
        burn_in_tail = 0.0
        burn_out_tail = 0.0
        for slo in specs:
            timeline = evaluate_slo(slo, records, window_ms, horizon_ms)
            alerts = burn_alerts(timeline)
            fired = sum(1 for a in alerts if a.firing)
            slo_alert_count += fired
            burn = burn_summary(timeline, fault_windows, grace_ms)
            if slo.name == "latency_tail":
                burn_in_tail = burn["burn_in"]
                burn_out_tail = burn["burn_out"]
            report.rows.append(
                {
                    "scenario": scenario,
                    "kind": "slo",
                    "name": slo.name,
                    "objective": slo.objective,
                    "compliance": timeline.compliance,
                    "budget_final": burn["budget_final"],
                    "burn_in": burn["burn_in"],
                    "burn_out": burn["burn_out"],
                    "alerts": fired,
                }
            )
            log_lines.extend(slo_state_records(timeline, scenario))
            log_lines.extend(alert_record(a, scenario) for a in alerts)

        monitor = FleetMonitor(num_nodes, warmup=_WARMUP_WINDOWS)
        events = monitor.run(
            node_window_stats(records, window_ms, horizon_ms), window_ms
        )
        log_lines.extend(alert_record(e, scenario) for e in events)
        score = score_detections(events, fault_windows, grace_ms)
        for cls, entry in score["classes"].items():  # type: ignore[union-attr]
            report.rows.append(
                {
                    "scenario": scenario,
                    "kind": "detection",
                    "name": cls,
                    "windows": entry["windows"],
                    "detected": entry["detected"],
                    "recall": entry["recall"],
                    "mttd_ms": entry["mttd_ms"],
                    "precision": score["precision"],
                    "alerts": score["alerts_fired"],
                }
            )
        report.rows.append(
            {
                "scenario": scenario,
                "kind": "summary",
                "name": "all",
                "windows": score["windows_total"],
                "detected": score["windows_detected"],
                "recall": score["recall"],
                "mttd_ms": score["mttd_ms"],
                "precision": score["precision"],
                "alerts": score["alerts_fired"] + slo_alert_count,
                "completed": result.outcome_count("completed"),
                "degraded": result.outcome_count("degraded"),
                "failed": result.outcome_count("failed"),
                "burn_in": burn_in_tail,
                "burn_out": burn_out_tail,
            }
        )
        if fault_windows:
            if (
                score["windows_detected"] < score["windows_total"]
                or score["precision"] < 0.9
                or score["mttd_ms"] is None
            ):
                detect_ok = False
            if burn_in_tail > max(1.0, 2.0 * burn_out_tail):
                burn_shown = True

    if slo_log is not None:
        with open(slo_log, "w") as fh:
            fh.write(
                json.dumps(
                    {
                        "kind": "slo_log_meta",
                        "schema_version": 1,
                        "window_ms": window_ms,
                        "scenarios": [name for name, _ in scenarios],
                        "lines": len(log_lines),
                    }
                )
                + "\n"
            )
            for line in log_lines:
                fh.write(json.dumps(line) + "\n")

    report.notes.append(
        f"{num_nodes} nodes x {cores_per_node} cores, replication {repl}, "
        f"least_loaded + hedging, offered load {offered_load:.2f}; "
        f"{window_count} windows of {window_ms:.1f} ms; tail SLO "
        f"{tail_ms:.2f} ms (2x no-fault p99), quality SLA {sla.sla_ms:.0f} ms"
    )
    report.notes.append(
        "detection: per-node mean-shift detectors on windowed error rate "
        "and ok-call latency; precision counts alerts outside every "
        "ground-truth fault window (+grace) as false positives; MTTD = "
        "first on-node alert minus fault start"
    )
    if detect_ok:
        report.notes.append(
            "headline: every injected fault window detected "
            f"(precision >= 0.9, grace {_GRACE_WINDOWS} windows)"
            + (
                "; tail error budget burns inside fault windows and "
                "recovers outside"
                if burn_shown
                else ""
            )
        )
    return report
