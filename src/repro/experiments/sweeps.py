"""Parametric sweeps over workload dimensions.

The paper fixes batch size (64) and the Table 2 shapes; these sweeps expose
how its conclusions move with the knobs a deployment owner actually turns:
batch size (throughput vs SLA), pooling factor (lookups per sample), and
table count.  Each sweep returns an :class:`ExperimentReport` and keeps the
evaluation paired (same trace RNG stream across points where possible).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SimConfig
from ..core.schemes import evaluate_scheme
from ..cpu.platform import get_platform
from ..errors import ConfigError
from ..model.configs import get_model
from ..trace.production import make_trace
from ..trace.stream import AddressMap
from .base import ExperimentReport

__all__ = ["sweep_batch_size", "sweep_lookups", "sweep_tables"]

_SCHEMES = ("baseline", "sw_pf")


def _evaluate(model, dataset, batch_size, num_batches, config, platform, schemes):
    spec = get_platform(platform)
    trace = make_trace(
        dataset,
        num_tables=model.num_tables,
        rows_per_table=model.rows,
        batch_size=batch_size,
        num_batches=num_batches,
        lookups_per_sample=model.lookups_per_sample,
        config=config,
    )
    amap = AddressMap([model.rows] * model.num_tables, model.embedding_dim)
    return {
        scheme: evaluate_scheme(scheme, model, trace, amap, spec)
        for scheme in schemes
    }


def sweep_batch_size(
    batch_sizes: Sequence[int] = (4, 16, 64),
    model_name: str = "rm2_1",
    dataset: str = "low",
    platform: str = "csl",
    scale: float = 0.015,
    num_batches: int = 2,
    config: Optional[SimConfig] = None,
    schemes: Sequence[str] = _SCHEMES,
) -> ExperimentReport:
    """Batch-latency and SW-PF gain vs batch size.

    Embedding work is linear in batch size, so per-batch latency grows
    linearly while the SW-PF *ratio* should be scale-free — the property
    that lets the paper pick batch 64 once and for all.
    """
    if not batch_sizes:
        raise ConfigError("need at least one batch size")
    config = config or SimConfig()
    model = get_model(model_name).scaled(scale)
    report = ExperimentReport(
        experiment_id="sweep_batch",
        title="Batch-size sweep",
        paper_reference="Section 5 (batch 64 meets the Table 1 SLAs)",
    )
    for batch_size in batch_sizes:
        results = _evaluate(
            model, dataset, batch_size, num_batches, config, platform, schemes
        )
        base = results["baseline"]
        row = {
            "batch_size": batch_size,
            "baseline_emb_ms": base.embedding_ms,
            "per_sample_ms": base.embedding_ms / batch_size,
        }
        for scheme in schemes:
            if scheme != "baseline":
                row[f"{scheme}_speedup"] = results[scheme].embedding_speedup_over(base)
        report.rows.append(row)
    return report


def sweep_lookups(
    lookup_counts: Sequence[int] = (8, 16, 32),
    model_name: str = "rm2_1",
    dataset: str = "low",
    platform: str = "csl",
    scale: float = 0.015,
    batch_size: int = 8,
    num_batches: int = 2,
    config: Optional[SimConfig] = None,
    schemes: Sequence[str] = _SCHEMES,
) -> ExperimentReport:
    """Pooling-factor sweep: more lookups per sample = more intra-sample
    reuse opportunity and more prefetch runway."""
    if not lookup_counts:
        raise ConfigError("need at least one lookup count")
    config = config or SimConfig()
    base_model = get_model(model_name).scaled(scale)
    report = ExperimentReport(
        experiment_id="sweep_lookups",
        title="Lookups-per-sample sweep",
        paper_reference="Table 2's lookups column (80-180 at paper scale)",
    )
    import dataclasses

    for lookups in lookup_counts:
        # A clean (non-zoo, no-"@") name keeps paper_scale_ratio at 1.0 so
        # the sweep reports raw simulated cost, not projected cost.
        model = dataclasses.replace(
            base_model,
            name=f"sweep-lookups-{lookups}",
            lookups_per_sample=lookups,
        )
        results = _evaluate(
            model, dataset, batch_size, num_batches, config, platform, schemes
        )
        base = results["baseline"]
        row = {
            "lookups_per_sample": lookups,
            "baseline_emb_ms": base.embedding_ms,
            "per_lookup_us": base.embedding_ms * 1000
            / model.lookups_for_batch(batch_size),
        }
        for scheme in schemes:
            if scheme != "baseline":
                row[f"{scheme}_speedup"] = results[scheme].embedding_speedup_over(base)
        report.rows.append(row)
    return report


def sweep_tables(
    table_counts: Sequence[int] = (2, 4, 8),
    model_name: str = "rm2_1",
    dataset: str = "low",
    platform: str = "csl",
    batch_size: int = 8,
    num_batches: int = 2,
    lookups_per_sample: int = 12,
    config: Optional[SimConfig] = None,
    schemes: Sequence[str] = _SCHEMES,
) -> ExperimentReport:
    """Table-count sweep: each extra table adds an inter-table thrash
    transition per batch (Section 3.1's inter-table reuse class)."""
    if not table_counts:
        raise ConfigError("need at least one table count")
    config = config or SimConfig()
    base_model = get_model(model_name)
    report = ExperimentReport(
        experiment_id="sweep_tables",
        title="Table-count sweep",
        paper_reference="Section 3.1 inter-table class; Table 2's 32-170 tables",
    )
    import dataclasses

    for tables in table_counts:
        # Clean name: report raw simulated cost (see sweep_lookups).
        model = dataclasses.replace(
            base_model,
            name=f"sweep-tables-{tables}",
            num_tables=tables,
            lookups_per_sample=lookups_per_sample,
        )
        results = _evaluate(
            model, dataset, batch_size, num_batches, config, platform, schemes
        )
        base = results["baseline"]
        row = {
            "tables": tables,
            "baseline_emb_ms": base.embedding_ms,
            "per_table_us": base.embedding_ms * 1000 / tables,
        }
        for scheme in schemes:
            if scheme != "baseline":
                row[f"{scheme}_speedup"] = results[scheme].embedding_speedup_over(base)
        report.rows.append(row)
    return report
