"""Fig 13 — end-to-end speedups on the embedding-heavy models.

All six design points for rm2_1..rm2_3 across High/Medium/Low datasets on
single- and multi-core.  The paper's headline ranges: SW-PF 1.21-1.46x
(single) / 1.18-1.42x (multi), MP-HT up to 1.24x, DP-HT down to 0.62x,
Integrated 1.40-1.59x (single) / 1.29-1.43x (multi).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SimConfig
from ..core.schemes import SCHEME_NAMES, evaluate_all_schemes
from ..cpu.platform import get_platform
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "fig13"
TITLE = "End-to-end speedups, embedding-heavy models"
PAPER_REFERENCE = "Figure 13(a,b); Integrated 1.40-1.59x single-core"


def run(
    config: Optional[SimConfig] = None,
    models: Sequence[str] = ("rm2_1", "rm2_2", "rm2_3"),
    datasets: Sequence[str] = ("high", "medium", "low"),
    platform: str = "csl",
    core_counts: Sequence[int] = (1, 24),
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
    detailed_cores: int = 2,
    schemes: Sequence[str] = SCHEME_NAMES,
) -> ExperimentReport:
    """Evaluate every scheme end-to-end on the RMC2 grid."""
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for model_name in models:
        for dataset in datasets:
            wl = build_workload(
                model_name, dataset, scale=scale, batch_size=batch_size,
                num_batches=num_batches, config=config,
            )
            for cores in core_counts:
                results = evaluate_all_schemes(
                    wl.model, wl.trace, wl.amap, spec,
                    num_cores=cores, schemes=schemes,
                    detailed_cores=detailed_cores,
                )
                base = results["baseline"]
                row = {
                    "model": model_name,
                    "dataset": dataset,
                    "cores": cores,
                    "baseline_ms": base.batch_ms,
                }
                for scheme in schemes:
                    if scheme == "baseline":
                        continue
                    row[f"{scheme}_speedup"] = results[scheme].speedup_over(base)
                report.rows.append(row)
    report.notes.append(
        "DP-HT speedups are per-inference latency (the paper's latency focus)"
    )
    return report
