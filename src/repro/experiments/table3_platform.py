"""Table 3 — CPU configuration parameters of the primary platform."""

from __future__ import annotations

from typing import Optional

from ..config import SimConfig
from ..cpu.platform import get_platform
from ..units import pretty_bytes
from .base import ExperimentReport

EXPERIMENT_ID = "table3"
TITLE = "CPU configuration parameters (Cascade Lake 6240R)"
PAPER_REFERENCE = "Table 3"


def run(config: Optional[SimConfig] = None, platform: str = "csl") -> ExperimentReport:
    """Dump the platform spec in Table 3's layout."""
    spec = get_platform(platform)
    hier = spec.hierarchy
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    rows = [
        ("Model", spec.display_name),
        ("Frequency", f"{spec.frequency_hz / 1e9:.1f}GHz"),
        ("Sockets", spec.sockets),
        ("Cores per socket", spec.cores_per_socket),
        ("SMT threads per core", spec.smt_per_core),
        ("L1D cache latency", f"{hier.l1_latency:.0f} cycles"),
        ("L1D cache size", pretty_bytes(hier.l1_size)),
        ("L2 cache size", pretty_bytes(hier.l2_size)),
        ("L3 cache size", pretty_bytes(hier.l3_size)),
        ("DDR bandwidth per socket", f"{spec.peak_dram_bw_bytes_s / 1e9:.0f} GB/s"),
        ("ROB entries", spec.core.rob_entries),
        ("L1 MSHRs", spec.core.l1_mshrs),
    ]
    report.rows.extend({"parameter": k, "value": v} for k, v in rows)
    return report
