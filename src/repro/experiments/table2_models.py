"""Table 2 — model architecture parameters, with derived size columns.

Reproduces the table including the computed columns (embedding size in
GiB, per-table capacity in MiB) so the registry's arithmetic is checked
against the paper's printed values (28.6 / 57.2 / 81.1 / 3.8 GB and
488.3 / 122.0 MB).
"""

from __future__ import annotations

from typing import Optional

from ..config import SimConfig
from ..model.configs import MODEL_NAMES, get_model
from .base import ExperimentReport

EXPERIMENT_ID = "table2"
TITLE = "Model architecture parameters"
PAPER_REFERENCE = "Table 2"


def run(config: Optional[SimConfig] = None) -> ExperimentReport:
    """Dump the model zoo in Table 2's layout."""
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for name in MODEL_NAMES:
        model = get_model(name)
        report.rows.append(
            {
                "model": name,
                "category": model.category,
                "emb_size_gib": model.embedding_gib,
                "rows": model.rows,
                "emb_dim": model.embedding_dim,
                "tables": model.num_tables,
                "lookups_per_sample": model.lookups_per_sample,
                "bottom_mlp": "-".join(str(w) for w in model.bottom_mlp),
                "top_mlp": "-".join(str(w) for w in model.top_mlp),
                "per_table_mib": model.table_bytes / 1024**2,
                "paper_emb_pct": model.reference_emb_pct,
            }
        )
    return report
