"""Resilience — SLA violations and goodput under injected faults.

The paper's at-scale story culminates in meeting Table 1 SLAs under load
(Fig 17); this extension experiment asks what happens when the fleet
misbehaves.  For one model class it measures, per fault scenario, three
serving modes:

* ``static``   — the happy-path baseline server (no overload response);
* ``degraded`` — a :class:`~repro.serving.degradation.DegradationController`
  closed loop that escalates along the paper's scheme ladder
  (baseline -> sw_pf -> integrated -> reduced batch) when the windowed p95
  violates the SLA;
* ``degraded_shed`` — the controller plus SLA-deadline admission control:
  queue timeout with retry/backoff and queue-depth load shedding.

Fault scenarios sweep DRAM-bandwidth degradation severity (the knob the
paper's embedding analysis predicts the fleet is most sensitive to) and
add core failure-and-repair, an arrival burst, and heavy-tail stragglers.
The headline result: under faults where the static baseline blows the
Table 1 SLA, the degradation ladder recovers the p95 and holds goodput.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence, Tuple

from ..config import SimConfig
from ..core.schemes import evaluate_scheme
from ..cpu.platform import get_platform
from ..serving.degradation import DegradationController, scheme_ladder
from ..serving.faults import (
    ArrivalBurst,
    BandwidthDegradation,
    CoreFailure,
    FaultPlan,
    Stragglers,
)
from ..serving.server import ServingPolicy, simulate_server
from ..serving.sla import sla_for_model
from ..serving.workload import poisson_arrivals
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "resilience"
TITLE = "SLA violations and goodput under injected faults"
PAPER_REFERENCE = "Table 1 SLAs; Section 6.5 serving methodology, under faults"

#: Schemes measured to parameterize the degradation ladder.
LADDER_SCHEMES = ("baseline", "sw_pf", "integrated")


def _controller(service_ms: Dict[str, float], sla_ms: float) -> DegradationController:
    """The closed loop used by the degraded modes."""
    return DegradationController(
        scheme_ladder(service_ms, batch_scale=0.6),
        sla_ms=sla_ms,
        window=48,
        min_samples=12,
        escalate_margin=0.75,
        recover_margin=0.4,
        cooldown=256,
    )


def _scenarios(
    horizon_ms: float,
    interarrival_ms: float,
    num_cores: int,
    num_requests: int,
    bw_factors: Sequence[float],
    seed: int,
) -> "list[Tuple[str, FaultPlan]]":
    """The fault sweep: bandwidth severities plus three other fault kinds."""
    window = (0.25 * horizon_ms, 0.60 * horizon_ms)
    scenarios: "list[Tuple[str, FaultPlan]]" = [("none", FaultPlan(seed=seed))]
    for factor in bw_factors:
        scenarios.append(
            (
                f"bw_x{factor:g}",
                FaultPlan([BandwidthDegradation(*window, factor)], seed=seed),
            )
        )
    scenarios.append(
        (
            "core_fail",
            FaultPlan(
                [CoreFailure(core, *window) for core in range(num_cores // 2)],
                seed=seed,
            ),
        )
    )
    scenarios.append(
        (
            "burst",
            FaultPlan(
                [
                    ArrivalBurst(
                        0.4 * horizon_ms,
                        max(1, num_requests // 3),
                        interarrival_ms / 5.0,
                    )
                ],
                seed=seed,
            ),
        )
    )
    scenarios.append(
        (
            "straggler",
            FaultPlan([Stragglers(0.08, 6.0, tail_alpha=1.5)], seed=seed),
        )
    )
    return scenarios


def run(
    config: Optional[SimConfig] = None,
    model: str = "rm1",
    dataset: str = "low",
    platform: str = "csl",
    num_cores: int = 8,
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
    num_requests: int = 1500,
    detailed_cores: int = 2,
    offered_load: float = 0.55,
    bw_factors: Sequence[float] = (2.0, 4.0),
) -> ExperimentReport:
    """Fault sweep across serving modes for one model class.

    ``offered_load`` sets the no-fault utilization (arrival rate relative
    to baseline capacity); the bandwidth sweep multiplies the effective
    utilization by each factor, carrying the static server past
    saturation while the degraded modes stay inside it.
    """
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    wl = build_workload(
        model, dataset, scale=scale, batch_size=batch_size,
        num_batches=num_batches, config=config,
    )
    sla = sla_for_model(wl.model)
    service_ms: Dict[str, float] = {}
    for scheme in LADDER_SCHEMES:
        result = evaluate_scheme(
            scheme, wl.model, wl.trace, wl.amap, spec,
            num_cores=num_cores, detailed_cores=detailed_cores,
        )
        service_ms[scheme] = result.batch_ms

    base_ms = service_ms["baseline"]
    interarrival_ms = base_ms / (num_cores * offered_load)
    horizon_ms = num_requests * interarrival_ms
    arrivals = poisson_arrivals(
        interarrival_ms, num_requests, config.rng("resilience:arrivals")
    )
    accounting = ServingPolicy(deadline_ms=sla.sla_ms, shed_expired=False)
    shedding = ServingPolicy.for_sla(
        sla,
        max_retries=1,
        retry_backoff_ms=max(base_ms, 1e-6),
        max_queue_depth=20 * num_cores,
    )

    for scenario, plan in _scenarios(
        horizon_ms, interarrival_ms, num_cores, num_requests,
        bw_factors, config.seed,
    ):
        modes = (
            ("static", accounting, None),
            ("degraded", accounting, _controller(service_ms, sla.sla_ms)),
            ("degraded_shed", shedding, _controller(service_ms, sla.sla_ms)),
        )
        for mode, policy, controller in modes:
            server = simulate_server(
                arrivals,
                base_ms,
                num_cores,
                config.rng(f"resilience:{scenario}:{mode}"),
                fault_plan=plan,
                policy=policy,
                controller=controller,
                label=f"{scenario}:{mode}",
            )
            report.rows.append(
                {
                    "scenario": scenario,
                    "mode": mode,
                    "p95_ms": server.p95_ms,
                    "sla_ms": sla.sla_ms,
                    # A server that completed nothing has p95 == 0.0 by the
                    # degenerate-input convention; that must not read as
                    # meeting the SLA.
                    "meets_sla": (
                        server.outcome_count("completed") > 0
                        and server.p95_ms <= sla.sla_ms
                    ),
                    "goodput": server.goodput,
                    "completed": server.outcome_count("completed"),
                    "shed": server.outcome_count("shed"),
                    "timed_out": server.outcome_count("timed_out"),
                    "retries": server.retries_total,
                    "final_level": server.final_degradation_level,
                    "level_changes": len(server.degradation_events),
                }
            )
    report.notes.append(
        f"baseline service {base_ms:.3f} ms/batch on {num_cores} cores; "
        f"offered load {offered_load:.2f}; ladder scales "
        + ", ".join(f"{s}={service_ms[s] / base_ms:.2f}" for s in LADDER_SCHEMES)
    )
    report.notes.append(
        "p95 is over completed requests; goodput = completions within the "
        "SLA deadline / offered requests (injected burst requests included)"
    )
    return report
