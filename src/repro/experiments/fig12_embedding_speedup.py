"""Fig 12 — embedding-only speedups of the prefetching design points.

Per model (rm2_1..rm2_3) and dataset (High/Medium/Low): w/o HW-PF and
SW-PF speedups over the baseline, for (a) single-core and (b) multi-core.
The paper's ranges: SW-PF 1.25-1.47x single-core and 1.16-1.43x
multi-core, best on Low hot.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SimConfig
from ..core.schemes import evaluate_scheme
from ..cpu.platform import get_platform
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "fig12"
TITLE = "Embedding-only speedups (w/o HW-PF, SW-PF vs baseline)"
PAPER_REFERENCE = "Figure 12(a,b); SW-PF 1.25-1.47x single, 1.16-1.43x multi"

SCHEMES = ("hw_pf_off", "baseline", "sw_pf")


def run(
    config: Optional[SimConfig] = None,
    models: Sequence[str] = ("rm2_1", "rm2_2", "rm2_3"),
    datasets: Sequence[str] = ("high", "medium", "low"),
    platform: str = "csl",
    core_counts: Sequence[int] = (1, 24),
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
    detailed_cores: int = 2,
) -> ExperimentReport:
    """Evaluate the prefetching design points on the full model grid."""
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for model_name in models:
        for dataset in datasets:
            wl = build_workload(
                model_name, dataset, scale=scale, batch_size=batch_size,
                num_batches=num_batches, config=config,
            )
            for cores in core_counts:
                results = {
                    scheme: evaluate_scheme(
                        scheme, wl.model, wl.trace, wl.amap, spec,
                        num_cores=cores, detailed_cores=detailed_cores,
                    )
                    for scheme in SCHEMES
                }
                base = results["baseline"]
                report.rows.append(
                    {
                        "model": model_name,
                        "dataset": dataset,
                        "cores": cores,
                        "hw_pf_off_speedup": results[
                            "hw_pf_off"
                        ].embedding_speedup_over(base),
                        "sw_pf_speedup": results["sw_pf"].embedding_speedup_over(base),
                        "baseline_ms": base.embedding_ms,
                    }
                )
    report.notes.append(
        "speedups are embedding-stage-only, matching Fig 12's scope"
    )
    return report
