"""Fig 16 — speedups across five CPU platforms.

RM2_1 and RM1 on the Low-hot dataset across Skylake, Cascade Lake,
Ice Lake, Sapphire Rapids and Zen3, single- and multi-core.  The paper
re-tunes the prefetch amount per platform (2 for ICL/SPR, 4 for Zen3) and
finds the optimizations consistently help, with multi-core speedups capped
by shared-resource interference (bandwidth saturation on Zen3's 128
threads).
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SimConfig
from ..core.swpf import PAPER_SWPF, SWPrefetchConfig
from ..core.tuner import tune_prefetch
from ..core.schemes import evaluate_all_schemes
from ..cpu.platform import PLATFORM_NAMES, get_platform
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "fig16"
TITLE = "Speedups across CPU platforms (single- and multi-core)"
PAPER_REFERENCE = "Figure 16(a,b); tuned amounts: ICL=2, SPR=2, Zen3=4"

SCHEMES = ("baseline", "sw_pf", "mp_ht", "integrated")


def run(
    config: Optional[SimConfig] = None,
    models: Sequence[str] = ("rm2_1", "rm1"),
    dataset: str = "low",
    platforms: Sequence[str] = PLATFORM_NAMES,
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
    detailed_cores: int = 2,
    retune: bool = True,
) -> ExperimentReport:
    """Evaluate the schemes on every platform, re-tuning prefetch amount."""
    config = config or SimConfig()
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for platform_name in platforms:
        spec = get_platform(platform_name)
        for model_name in models:
            wl = build_workload(
                model_name, dataset, scale=scale, batch_size=batch_size,
                num_batches=num_batches, config=config,
            )
            swpf = PAPER_SWPF
            if retune:
                tuning = tune_prefetch(
                    wl.trace, wl.amap, spec, distances=(2, 4, 8), amounts=(2, 4, 8)
                )
                swpf = SWPrefetchConfig(
                    distance=tuning.best_distance, amount_lines=tuning.best_amount
                )
            for cores in (1, spec.total_cores):
                results = evaluate_all_schemes(
                    wl.model, wl.trace, wl.amap, spec,
                    num_cores=cores, schemes=SCHEMES, swpf=swpf,
                    detailed_cores=detailed_cores,
                )
                base = results["baseline"]
                report.rows.append(
                    {
                        "platform": platform_name,
                        "model": model_name,
                        "cores": cores,
                        "tuned_distance": swpf.distance,
                        "tuned_amount": swpf.amount_lines,
                        "sw_pf_speedup": results["sw_pf"].speedup_over(base),
                        "mp_ht_speedup": results["mp_ht"].speedup_over(base),
                        "integrated_speedup": results["integrated"].speedup_over(base),
                    }
                )
    report.notes.append(
        "multi-core rows use every core of the platform (both sockets where "
        "present), so bandwidth contention caps the speedups, as in the paper"
    )
    return report
