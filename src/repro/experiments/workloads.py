"""Workload construction shared by the experiment modules.

Each experiment needs the same triple: a (scaled) model config, a trace at
the requested hotness, and the address map laying that model's tables out
in memory.  Defaults here set the simulation scale every trace-driven
experiment uses unless overridden — small enough that the full suite runs
in minutes on a laptop, large enough that cache behaviour is stable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import SimConfig
from ..model.configs import ModelConfig, get_model
from ..trace.dataset import EmbeddingTrace
from ..trace.production import make_trace
from ..trace.stream import AddressMap

__all__ = ["Workload", "build_workload", "DEFAULT_SCALE", "DEFAULT_BATCH", "DEFAULT_NUM_BATCHES"]

#: Default shrink factor for trace-driven experiments.
DEFAULT_SCALE = 0.02

#: Default batch size for trace-driven experiments (paper uses 64; 16 keeps
#: the per-run access count tractable while preserving per-batch structure).
DEFAULT_BATCH = 16

#: Default batches per measurement.
DEFAULT_NUM_BATCHES = 2


@dataclass
class Workload:
    """A ready-to-run (model, trace, address map) triple."""

    model: ModelConfig
    dataset: str
    trace: EmbeddingTrace
    amap: AddressMap
    config: SimConfig

    @property
    def batch_size(self) -> int:
        """Samples per batch in the trace."""
        return self.trace.batch_size


def build_workload(
    model_name: str,
    dataset: str,
    scale: float = DEFAULT_SCALE,
    batch_size: int = DEFAULT_BATCH,
    num_batches: int = DEFAULT_NUM_BATCHES,
    config: Optional[SimConfig] = None,
) -> Workload:
    """Build the standard experiment workload for one model + dataset."""
    config = config or SimConfig()
    model = get_model(model_name).scaled(scale)
    trace = make_trace(
        dataset,
        num_tables=model.num_tables,
        rows_per_table=model.rows,
        batch_size=batch_size,
        num_batches=num_batches,
        lookups_per_sample=model.lookups_per_sample,
        config=config,
    )
    return Workload(
        model=model, dataset=dataset, trace=trace,
        amap=model.address_map(), config=config,
    )
