"""Fig 14 — end-to-end speedups on the mixed model (RM1).

RM1's larger bottom MLP gives hyperthreading more to overlap: the paper
reports MP-HT 1.25-1.37x (higher than on embedding-heavy models), SW-PF a
modest ~1.1x (less irregularity to hide), DP-HT ~0.60x, and an Integrated
1.37-1.54x "considerable non-linear speedup" from the synergy.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SimConfig
from ..core.schemes import SCHEME_NAMES, evaluate_all_schemes
from ..cpu.platform import get_platform
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "fig14"
TITLE = "End-to-end speedups, mixed model RM1"
PAPER_REFERENCE = "Figure 14; MP-HT 1.25-1.37x, Integrated 1.37-1.54x"


def run(
    config: Optional[SimConfig] = None,
    model: str = "rm1",
    datasets: Sequence[str] = ("high", "medium", "low"),
    platform: str = "csl",
    num_cores: int = 24,
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
    detailed_cores: int = 2,
    schemes: Sequence[str] = SCHEME_NAMES,
) -> ExperimentReport:
    """Evaluate every scheme on RM1 across the hotness datasets."""
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for dataset in datasets:
        wl = build_workload(
            model, dataset, scale=scale, batch_size=batch_size,
            num_batches=num_batches, config=config,
        )
        results = evaluate_all_schemes(
            wl.model, wl.trace, wl.amap, spec,
            num_cores=num_cores, schemes=schemes, detailed_cores=detailed_cores,
        )
        base = results["baseline"]
        row = {
            "dataset": dataset,
            "embedding_fraction": (
                base.stages.embedding_fraction if base.stages else None
            ),
            "baseline_ms": base.batch_ms,
        }
        for scheme in schemes:
            if scheme == "baseline":
                continue
            row[f"{scheme}_speedup"] = results[scheme].speedup_over(base)
        report.rows.append(row)
    report.notes.append(
        "RM1's bigger bottom MLP makes MP-HT the stronger lever (paper's point)"
    )
    return report
