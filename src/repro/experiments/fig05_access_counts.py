"""Fig 5 — hot-embedding access counts (sorted) in the three datasets.

The paper plots per-row access counts sorted descending for High, Medium
and Low hot traces — the power-law signature whose steepness *is* the
hotness.  We report a log-spaced sample of each curve plus the scalar
hotness metrics (unique fraction vs. the published 3% / 24% / 60%).
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from ..analysis.histogram import access_count_histogram, hotness_summary
from ..config import SimConfig
from ..trace.hotness import HOTNESS_PROFILES
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "fig5"
TITLE = "Hot embedding access counts (sorted) in 3 datasets"
PAPER_REFERENCE = "Figure 5; Section 5 unique fractions 3%/24%/60%"

#: Points per curve in the report (log-spaced ranks).
CURVE_POINTS = 12


def run(
    config: Optional[SimConfig] = None,
    model: str = "rm2_1",
    datasets: Sequence[str] = ("high", "medium", "low"),
    scale: float = 0.02,
    batch_size: int = 64,
    num_batches: int = 4,
) -> ExperimentReport:
    """Build each dataset's sorted access-count curve and hotness summary."""
    config = config or SimConfig()
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for dataset in datasets:
        wl = build_workload(
            model, dataset, scale=scale, batch_size=batch_size,
            num_batches=num_batches, config=config,
        )
        counts = access_count_histogram(wl.trace)
        summary = hotness_summary(wl.trace, dataset=dataset)
        ranks = np.unique(
            np.logspace(0, np.log10(max(counts.size, 2) - 1), CURVE_POINTS).astype(int)
        )
        curve = {f"rank_{int(r)}": int(counts[int(r)]) for r in ranks if r < counts.size}
        row = {
            "dataset": dataset,
            "unique_fraction": summary.unique_fraction,
            "target_unique_fraction": HOTNESS_PROFILES[dataset].unique_fraction,
            "top_1pct_share": summary.top_1pct_share,
            "max_count": summary.max_count,
            "accessed_rows": summary.accessed_rows,
        }
        row.update(curve)
        report.rows.append(row)
    report.notes.append(
        "unique fractions are calibrated at paper-scale access counts; the "
        "sampled trace's measured fraction is reported alongside the target"
    )
    return report
