"""Fig 1 — execution-time breakdown of different DLRMs.

The paper's opening figure: per model, the fraction of end-to-end
execution spent in each of the four stages, showing embedding dominance
for the RMC2 family and a mixed profile for RM1 (Table 2's Emb% column:
98 / 96 / 95 / 65).

Runs the analytic paper-scale path (reuse-model hit rates + roofline dense
stages), so no trace-driven simulation is needed and all four models run
at their full Table 2 size.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..analysis.breakdown import estimate_stage_breakdown
from ..config import SimConfig
from ..cpu.platform import get_platform
from ..model.configs import MODEL_NAMES, get_model
from .base import ExperimentReport

EXPERIMENT_ID = "fig1"
TITLE = "Execution time breakdown of different DLRMs"
PAPER_REFERENCE = "Figure 1; Table 2 Emb%% column: rm2_1=98, rm2_2=96, rm2_3=95, rm1=65"


def run(
    config: Optional[SimConfig] = None,
    models: Sequence[str] = MODEL_NAMES,
    dataset: str = "low",
    platform: str = "csl",
    batch_size: int = 64,
) -> ExperimentReport:
    """Compute the per-stage breakdown for every model."""
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for name in models:
        model = get_model(name)
        stages = estimate_stage_breakdown(
            model, dataset, spec, batch_size=batch_size, config=config
        )
        breakdown = stages.breakdown()
        report.rows.append(
            {
                "model": name,
                "bottom_mlp_pct": 100 * breakdown["bottom_mlp"],
                "embedding_pct": 100 * breakdown["embedding"],
                "interaction_pct": 100 * breakdown["interaction"],
                "top_mlp_pct": 100 * breakdown["top_mlp"],
                "paper_emb_pct": model.reference_emb_pct,
            }
        )
    report.notes.append(
        f"dataset={dataset}, batch={batch_size}, analytic paper-scale path"
    )
    return report
