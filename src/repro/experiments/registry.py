"""Experiment registry: id -> runner."""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..config import SimConfig
from ..errors import ConfigError
from ..mem.hierarchy import get_default_engine, set_default_engine
from ..obs import hooks as obs_hooks
from . import (
    cluster_resilience,
    critpath_observatory,
    hotness_sweep,
    noisy_neighbor,
    resilience,
    slo_observatory,
    synergy,
    fig01_breakdown,
    fig04_dataset_sweep,
    fig05_access_counts,
    fig07_reuse,
    fig08_multicore,
    fig10_prefetch_design,
    fig12_embedding_speedup,
    fig13_end_to_end,
    fig14_mixed_model,
    fig15_l1_characterization,
    fig16_platforms,
    fig17_tail_latency,
    table1_sla,
    table2_models,
    table3_platform,
    table4_batch_times,
)
from .base import ExperimentReport  # noqa: E402  (import order mirrors paper)

__all__ = ["EXPERIMENT_IDS", "get_experiment", "list_experiments", "run_experiment"]

_MODULES = (
    fig01_breakdown,
    fig04_dataset_sweep,
    fig05_access_counts,
    fig07_reuse,
    fig08_multicore,
    fig10_prefetch_design,
    fig12_embedding_speedup,
    fig13_end_to_end,
    fig14_mixed_model,
    fig15_l1_characterization,
    fig16_platforms,
    fig17_tail_latency,
    table1_sla,
    table2_models,
    table3_platform,
    table4_batch_times,
    synergy,
    hotness_sweep,
    resilience,
    cluster_resilience,
    slo_observatory,
    noisy_neighbor,
    critpath_observatory,
)

_REGISTRY: Dict[str, Callable[..., ExperimentReport]] = {
    module.EXPERIMENT_ID: module.run for module in _MODULES
}

#: All experiment ids in paper order.
EXPERIMENT_IDS: Tuple[str, ...] = tuple(_REGISTRY)


def get_experiment(experiment_id: str) -> Callable[..., ExperimentReport]:
    """The runner callable for one experiment id."""
    try:
        return _REGISTRY[experiment_id.lower()]
    except KeyError:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; available: {sorted(_REGISTRY)}"
        ) from None


def list_experiments() -> Dict[str, str]:
    """id -> title for every registered experiment."""
    return {module.EXPERIMENT_ID: module.TITLE for module in _MODULES}


def run_experiment(
    experiment_id: str, config: Optional[SimConfig] = None, **overrides: object
) -> ExperimentReport:
    """Run one experiment by id.

    ``config.engine`` selects the simulation engine for the duration of the
    run: every cache built while it executes (including shared L3s deep in
    the multicore engine) uses the chosen implementation.  The previous
    process default is restored afterwards, so nesting and library callers
    that manage the engine themselves are unaffected.
    """
    runner = get_experiment(experiment_id)
    cfg = config if config is not None else SimConfig()
    previous = get_default_engine()
    set_default_engine(cfg.engine)
    try:
        obs = obs_hooks.active()
        if obs is not None:
            with obs.tracer.span(
                f"experiment:{experiment_id.lower()}",
                "experiment",
                engine=cfg.engine,
            ):
                return runner(config=cfg, **overrides)
        return runner(config=cfg, **overrides)
    finally:
        set_default_engine(previous)
