"""Cluster resilience — fleet-level SLA and goodput under node faults.

The single-box ``resilience`` experiment asks what one server does when
its cores misbehave; this one asks what a *fleet* does when whole nodes
do.  A sharded, replicated cluster (:mod:`repro.serving.cluster`) serves
a seeded workload while the sweep crosses three axes:

* **replication factor** — 1 (each shard lives on one node) vs the
  configured factor (default 2);
* **fault intensity** — no faults, a node kill-and-repair covering a
  third of the run, and a chaos mix (network partition + persistently
  slow node);
* **routing policy** — round-robin, least-outstanding-requests, and
  least-outstanding + hedged stragglers.

The headline: with node kills active, a replication>=2 + hedging
configuration holds the Table 1 SLA (quality p95, where any request not
completed in full ranks as +inf) and keeps goodput within 5% of its
no-fault baseline, while the unreplicated cluster *fatally* violates the
SLA — its quality p95 is unbounded because every request that gathered
from the dead node's shards lost recall or failed outright.

Everything is seeded and deterministic across ``--jobs`` (arrivals from
the config stream, gather patterns and node service times from
``SeedSequence([seed, stream, ...])``), so cluster rows are byte-stable
and gate-able in the regression observatory.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..config import SimConfig
from ..core.schemes import evaluate_scheme
from ..cpu.platform import get_platform
from ..serving.cluster import ClusterConfig, ClusterSim
from ..serving.degradation import DegradationController, scheme_ladder
from ..serving.faults import (
    ClusterFaultPlan,
    NodeCrash,
    NodePartition,
    NodeSlow,
)
from ..serving.router import HedgePolicy
from ..serving.sla import sla_for_model
from ..serving.workload import poisson_arrivals
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "cluster_resilience"
TITLE = "Cluster SLA and goodput under node-scoped faults"
PAPER_REFERENCE = "Table 1 SLAs; at-scale serving under fleet faults"

#: Schemes measured to parameterize the per-node degradation ladders.
LADDER_SCHEMES = ("baseline", "sw_pf", "integrated")


def _scenarios(
    horizon_ms: float, num_nodes: int, seed: int
) -> List[Tuple[str, Optional[ClusterFaultPlan]]]:
    """The node-fault sweep, windows scaled to the run horizon."""
    kill = (0.25 * horizon_ms, 0.60 * horizon_ms)
    part = (0.20 * horizon_ms, 0.45 * horizon_ms)
    slow = (0.50 * horizon_ms, 0.80 * horizon_ms)
    scenarios: List[Tuple[str, Optional[ClusterFaultPlan]]] = [("none", None)]
    scenarios.append(
        (
            "node_kill",
            ClusterFaultPlan(
                [NodeCrash(1 % num_nodes, *kill)], seed=seed
            ),
        )
    )
    chaos = [NodeSlow(0, *slow, factor=4.0)]
    if num_nodes > 2:
        chaos.append(NodePartition(2, *part))
    scenarios.append(("chaos", ClusterFaultPlan(chaos, seed=seed)))
    return scenarios


def run(
    config: Optional[SimConfig] = None,
    model: str = "rm1",
    dataset: str = "low",
    platform: str = "csl",
    num_nodes: int = 4,
    cores_per_node: int = 4,
    replication: int = 2,
    num_shards: int = 8,
    gather_width: int = 2,
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
    num_requests: int = 20000,
    detailed_cores: int = 2,
    offered_load: float = 0.55,
    hop_ms: float = 0.1,
) -> ExperimentReport:
    """Replication x fault x routing sweep over a simulated cluster.

    ``num_requests`` scales the workload (the acceptance run uses a
    million); every cell replays the same seeded arrival process through
    an independently seeded cluster world, so cells are comparable and
    rows deterministic across ``--jobs``.
    """
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    wl = build_workload(
        model, dataset, scale=scale, batch_size=batch_size,
        num_batches=num_batches, config=config,
    )
    sla = sla_for_model(wl.model)
    service_ms: Dict[str, float] = {}
    for scheme in LADDER_SCHEMES:
        result = evaluate_scheme(
            scheme, wl.model, wl.trace, wl.amap, spec,
            num_cores=cores_per_node, detailed_cores=detailed_cores,
        )
        service_ms[scheme] = result.batch_ms

    base_ms = service_ms["baseline"]
    call_ms = base_ms / gather_width  # one shard's slice of a batch
    total_cores = num_nodes * cores_per_node
    interarrival_ms = base_ms / (total_cores * offered_load)
    horizon_ms = num_requests * interarrival_ms
    arrivals = poisson_arrivals(
        interarrival_ms, num_requests, config.rng("cluster:arrivals")
    )
    call_timeout_ms = max(4.0 * call_ms, sla.sla_ms / 4.0)
    # The floor keeps hedges aimed at genuine stragglers (a hedge storm
    # under healthy load would cost more capacity than it saves).
    hedge = HedgePolicy(
        quantile=95.0, min_ms=max(1.0, 3.0 * call_ms), window=128, max_hedges=1
    )
    ladder = scheme_ladder(service_ms, batch_scale=0.6)

    def controller_factory(node: int) -> DegradationController:
        # Per-node closed loop: the node's local latency budget is its
        # share of the SLA (the call timeout); windows are short because
        # shard calls are much more frequent than whole batches.
        return DegradationController(
            ladder,
            sla_ms=call_timeout_ms,
            window=48,
            min_samples=12,
            escalate_margin=0.75,
            recover_margin=0.4,
            cooldown=256,
        )

    policies: List[Tuple[str, str, Optional[HedgePolicy]]] = [
        ("round_robin", "round_robin", None),
        ("least_loaded", "least_loaded", None),
        ("least_loaded_hedge", "least_loaded", hedge),
    ]
    replications = sorted({1, max(1, min(replication, num_nodes))})
    baselines: Dict[Tuple[int, str], float] = {}

    for scenario, plan in _scenarios(horizon_ms, num_nodes, config.seed):
        for repl in replications:
            for policy_name, routing, hedge_policy in policies:
                cluster = ClusterSim(
                    ClusterConfig(
                        num_nodes=num_nodes,
                        cores_per_node=cores_per_node,
                        mean_service_ms=call_ms,
                        num_shards=num_shards,
                        replication=repl,
                        gather_width=gather_width,
                        hop_ms=hop_ms,
                        call_timeout_ms=call_timeout_ms,
                        deadline_ms=sla.sla_ms,
                        max_outstanding=50 * total_cores,
                        placement="hotness",
                        routing=routing,
                        hedge=hedge_policy,
                        faults=plan,
                        seed=config.seed,
                        controller_factory=controller_factory,
                        label=f"cluster:{scenario}:r{repl}:{policy_name}",
                    )
                )
                res = cluster.run(arrivals)
                quality_p95 = res.quality_percentile(95.0)
                if scenario == "none":
                    baselines[(repl, policy_name)] = res.goodput
                nofault = baselines.get((repl, policy_name), 0.0)
                report.rows.append(
                    {
                        "scenario": scenario,
                        "replication": repl,
                        "policy": policy_name,
                        "p50_ms": res.p50_ms,
                        "p99_ms": res.p99_ms,
                        "quality_p95_ms": quality_p95,
                        "sla_ms": sla.sla_ms,
                        "meets_sla": (
                            res.outcome_count("completed") > 0
                            and quality_p95 <= sla.sla_ms
                        ),
                        "goodput": res.goodput,
                        "goodput_vs_nofault": (
                            res.goodput / nofault if nofault > 0 else 0.0
                        ),
                        "completed": res.outcome_count("completed"),
                        "degraded": res.outcome_count("degraded"),
                        "shed": res.outcome_count("shed"),
                        "failed": res.outcome_count("failed"),
                        "failovers": res.failovers,
                        "hedges": res.hedges_issued,
                        "hedges_won": res.hedges_won,
                        "hedges_wasted": res.hedges_wasted,
                        "ejections": res.ejections,
                        "probes": res.probes,
                        "mean_util": res.mean_utilization,
                    }
                )
    report.notes.append(
        f"{num_nodes} nodes x {cores_per_node} cores, {num_shards} shards, "
        f"gather width {gather_width}, hotness placement; shard-call mean "
        f"{call_ms:.3f} ms, hop {hop_ms:g} ms, call timeout "
        f"{call_timeout_ms:.1f} ms; offered load {offered_load:.2f}"
    )
    report.notes.append(
        "quality_p95_ms ranks every request not completed in full as +inf "
        "(degraded partial results keep the service answering but do not "
        "count); goodput = full-quality completions within the Table 1 "
        "deadline / offered requests"
    )
    kill_rows = [r for r in report.rows if r["scenario"] == "node_kill"]
    weak = [r for r in kill_rows if r["replication"] == 1 and not r["meets_sla"]]
    strong = [
        r
        for r in kill_rows
        if r["replication"] >= 2
        and r["policy"] == "least_loaded_hedge"
        and r["meets_sla"]
        and r["goodput_vs_nofault"] >= 0.95
    ]
    if weak and strong:
        report.notes.append(
            "headline: replication>=2 + hedging holds the SLA through the "
            f"node kill at {strong[0]['goodput_vs_nofault']:.3f}x no-fault "
            "goodput; the unreplicated cluster fatally violates it "
            "(unbounded quality p95)"
        )
    return report
