"""Hotness sweep — the continuous axis behind Figs 4/12 (extension).

The paper samples hotness at three production points (3% / 24% / 60%
unique accesses).  This experiment sweeps the unique-access fraction
continuously and traces how baseline latency and the SW-PF gain grow with
irregularity — locating where prefetching starts paying and whether the
gain saturates.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SimConfig
from ..core.swpf import PAPER_SWPF
from ..cpu.platform import get_platform
from ..engine.embedding_exec import run_embedding_trace
from ..mem.hierarchy import build_hierarchy
from ..model.configs import get_model
from ..trace.production import make_zipf_trace
from ..units import cycles_to_ms
from .base import ExperimentReport

EXPERIMENT_ID = "hotness_sweep"
TITLE = "SW-PF gain vs unique-access fraction (continuous hotness)"
PAPER_REFERENCE = "extension of Figs 4/12; paper points at 0.03/0.24/0.60"


def run(
    config: Optional[SimConfig] = None,
    unique_fractions: Sequence[float] = (0.03, 0.10, 0.24, 0.40, 0.60, 0.85),
    model: str = "rm2_1",
    platform: str = "csl",
    scale: float = 0.015,
    batch_size: int = 8,
    num_batches: int = 2,
) -> ExperimentReport:
    """Sweep the hotness axis on one model."""
    config = config or SimConfig()
    spec = get_platform(platform)
    cfg = get_model(model).scaled(scale)
    amap = cfg.address_map()
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for fraction in unique_fractions:
        trace = make_zipf_trace(
            fraction, cfg.num_tables, cfg.rows, batch_size, num_batches,
            cfg.lookups_per_sample, config=config,
        )
        base = run_embedding_trace(
            trace, amap, spec.core, build_hierarchy(spec.hierarchy)
        )
        pf = run_embedding_trace(
            trace, amap, spec.core, build_hierarchy(spec.hierarchy),
            plan=PAPER_SWPF.plan(),
        )
        report.rows.append(
            {
                "unique_fraction": fraction,
                "baseline_ms": cycles_to_ms(base.total_cycles, spec.frequency_hz),
                "baseline_l1_hit": base.l1_hit_rate,
                "avg_load_latency_cycles": base.avg_load_latency,
                "sw_pf_speedup": base.total_cycles / pf.total_cycles,
            }
        )
    report.notes.append(
        "the paper's High/Medium/Low points sit at 0.03 / 0.24 / 0.60"
    )
    return report
