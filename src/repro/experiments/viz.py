"""Terminal visualization of experiment reports.

Dependency-free ASCII rendering so ``repro-experiment <id> --plot`` can
show the *shape* of a figure (bars per row, grouped bars, log sparklines)
next to the exact table.  Not a plotting library — just enough to eyeball
"who wins and by how much" in a terminal.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..errors import ConfigError
from .base import ExperimentReport

__all__ = ["bar_chart", "grouped_bars", "sparkline", "render_report_plot"]

#: Glyphs for the eighth-resolution sparkline.
_SPARK = "▁▂▃▄▅▆▇█"


def bar_chart(
    labels: Sequence[str],
    values: Sequence[float],
    width: int = 40,
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """Horizontal bars, one per (label, value).

    With ``baseline`` set, a ``|`` marks it on every bar's scale — handy
    for speedup charts where 1.0 is the reference.
    """
    if len(labels) != len(values):
        raise ConfigError("labels and values must align")
    if not values:
        return "(no data)"
    if width < 8:
        raise ConfigError("width must be at least 8")
    peak = max(max(values), baseline or 0.0)
    if peak <= 0:
        peak = 1.0
    label_width = max(len(str(label)) for label in labels)
    lines = []
    for label, value in zip(labels, values):
        filled = int(round(width * value / peak))
        bar = "█" * filled + " " * (width - filled)
        if baseline is not None:
            mark = min(width - 1, int(round(width * baseline / peak)))
            bar = bar[:mark] + "|" + bar[mark + 1 :]
        lines.append(f"{str(label):>{label_width}}  {bar} {value:.3g}{unit}")
    return "\n".join(lines)


def grouped_bars(
    groups: Dict[str, Dict[str, float]],
    width: int = 32,
    unit: str = "",
    baseline: Optional[float] = None,
) -> str:
    """Bars grouped by an outer key: {group: {series: value}}."""
    if not groups:
        return "(no data)"
    lines = []
    for group, series in groups.items():
        lines.append(f"{group}:")
        chart = bar_chart(
            list(series.keys()), list(series.values()),
            width=width, unit=unit, baseline=baseline,
        )
        lines.extend("  " + line for line in chart.splitlines())
    return "\n".join(lines)


def sparkline(values: Sequence[float], log: bool = False) -> str:
    """One-line trend glyph string (optionally on a log scale)."""
    if not values:
        return ""
    vals = [math.log10(max(v, 1e-12)) for v in values] if log else list(values)
    lo, hi = min(vals), max(vals)
    if hi == lo:
        return _SPARK[3] * len(vals)
    out = []
    for v in vals:
        idx = int((v - lo) / (hi - lo) * (len(_SPARK) - 1))
        out.append(_SPARK[idx])
    return "".join(out)


def render_report_plot(
    report: ExperimentReport,
    value_column: Optional[str] = None,
    label_columns: Optional[Sequence[str]] = None,
    width: int = 40,
) -> str:
    """Best-effort bar rendering of a report.

    Picks the first ``*_speedup`` column (baseline mark at 1.0), else the
    first numeric column; labels concatenate the leading string columns.
    """
    if not report.rows:
        return "(no rows)"
    columns = report.columns()
    if value_column is None:
        speedups = [c for c in columns if c.endswith("_speedup")]
        if speedups:
            value_column = speedups[0]
        else:
            for c in columns:
                if isinstance(report.rows[0].get(c), (int, float)):
                    value_column = c
                    break
    if value_column is None:
        return "(no numeric column to plot)"
    if label_columns is None:
        label_columns = [
            c for c in columns if isinstance(report.rows[0].get(c), str)
        ][:3]
    labels = []
    values = []
    for row in report.rows:
        if not isinstance(row.get(value_column), (int, float)):
            continue
        label = " ".join(str(row[c]) for c in label_columns if c in row) or "row"
        labels.append(label)
        values.append(float(row[value_column]))
    baseline = 1.0 if value_column.endswith("_speedup") else None
    header = f"[{value_column}]"
    return header + "\n" + bar_chart(labels, values, width=width, baseline=baseline)
