"""Shared experiment-report structure and text formatting.

A report is deliberately plain — a list of row dicts plus notes — so tests
can assert on values and the CLI can render a table without any plotting
dependency.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Sequence

import numpy as np

from ..errors import ConfigError

__all__ = [
    "ExperimentReport",
    "format_report",
    "format_table",
    "report_from_dict",
    "report_to_dict",
]


@dataclass
class ExperimentReport:
    """Outcome of one experiment (one paper table or figure)."""

    experiment_id: str
    title: str
    rows: List[Dict[str, object]] = field(default_factory=list)
    notes: List[str] = field(default_factory=list)
    paper_reference: str = ""

    def columns(self) -> List[str]:
        """Column names in first-appearance order across all rows."""
        seen: List[str] = []
        for row in self.rows:
            for key in row:
                if key not in seen:
                    seen.append(key)
        return seen

    def column(self, name: str) -> List[object]:
        """All values of one column (missing cells become None)."""
        if not self.rows:
            raise ConfigError("report has no rows")
        return [row.get(name) for row in self.rows]

    def filter_rows(self, **criteria: object) -> List[Dict[str, object]]:
        """Rows matching all the given column=value criteria."""
        return [
            row
            for row in self.rows
            if all(row.get(k) == v for k, v in criteria.items())
        ]


def _jsonify(value: object) -> object:
    """Recursively convert numpy scalars/arrays to plain Python values."""
    if isinstance(value, np.generic):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, dict):
        return {str(k): _jsonify(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonify(v) for v in value]
    return value


def report_to_dict(report: ExperimentReport) -> Dict[str, object]:
    """JSON-serializable form of a report (numpy values converted)."""
    return {
        "experiment_id": report.experiment_id,
        "title": report.title,
        "rows": _jsonify(report.rows),
        "notes": list(report.notes),
        "paper_reference": report.paper_reference,
    }


def report_from_dict(data: Dict[str, object]) -> ExperimentReport:
    """Inverse of :func:`report_to_dict` (used by the result cache)."""
    return ExperimentReport(
        experiment_id=str(data["experiment_id"]),
        title=str(data.get("title", "")),
        rows=list(data.get("rows", [])),  # type: ignore[arg-type]
        notes=list(data.get("notes", [])),  # type: ignore[arg-type]
        paper_reference=str(data.get("paper_reference", "")),
    )


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.1f}"
        if abs(value) >= 10:
            return f"{value:.2f}"
        return f"{value:.3f}"
    return str(value)


def format_table(rows: Sequence[Dict[str, object]], columns: Sequence[str]) -> str:
    """Render rows as an aligned text table."""
    if not rows:
        return "(no rows)"
    header = list(columns)
    body = [[_format_cell(row.get(col, "")) for col in header] for row in rows]
    widths = [
        max(len(header[i]), *(len(r[i]) for r in body)) for i in range(len(header))
    ]
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(header, widths)),
        "  ".join("-" * w for w in widths),
    ]
    lines.extend("  ".join(c.ljust(w) for c, w in zip(r, widths)) for r in body)
    return "\n".join(lines)


def format_report(report: ExperimentReport) -> str:
    """Human-readable rendering of a full report."""
    parts = [f"== {report.experiment_id}: {report.title} =="]
    if report.paper_reference:
        parts.append(f"(paper: {report.paper_reference})")
    parts.append(format_table(report.rows, report.columns()))
    for note in report.notes:
        parts.append(f"note: {note}")
    return "\n".join(parts)
