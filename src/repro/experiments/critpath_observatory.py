"""Critical-path observatory — latency attribution and what-if validation.

``slo_observatory`` grades whether the telemetry pipeline *notices*
faults; this experiment grades whether it can *explain* them and
*predict* the fix.  Two pinned cluster scenarios are replayed with full
request logging:

* **node_kill** — an unreplicated striped cluster loses a node mid-run;
  every lookup on its shards must fail over, so the tail's critical path
  is dominated by ``recovery`` time.
* **noisy** — a replicated, hedged cluster has one node slowed 6x by a
  noisy neighbor; the tail splits between the slowdown ``penalty`` and
  the ``hedge_wait`` the rescue hedges sat out.

For every logged request the critical path is extracted
(:mod:`repro.obs.critpath`) and the **conservation invariant** is
checked: the chronological segments must sum *exactly* (float sim-ms)
to the end-to-end latency.  Aggregated profiles ("where does p99 go")
are reported per scope and exported as schema-valid
``critpath_profile`` records.

Then the counterfactual engine (:mod:`repro.obs.whatif`) re-times the
logged runs under modified knobs — replication+1 and a narrower gather
on the node-kill scenario, a lower hedge floor and a CAT partition on
the noisy scenario — and every prediction is validated against an
**actual re-simulation** of the modified config, using the two-sided
noise-floored bounds of :mod:`repro.obs.regress`.  ``extra_cores`` is
reported as an estimate only (no gating re-run).

Fault windows and cluster seeds are pinned (the scenarios double as the
what-if accuracy regression suite); arrivals come from the experiment
config's seeded stream.  Everything is simulated-time only, so rows are
byte-stable across hosts and ``--jobs``.
"""

from __future__ import annotations

import json
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

from ..config import SimConfig
from ..obs import hooks as obs_hooks
from ..obs.critpath import (
    check_conservation,
    extract_paths,
    aggregate_profiles,
)
from ..obs.hooks import Observation
from ..obs.requests import RequestLog
from ..obs.whatif import percentile, predict, whatif_record, within_bounds
from ..serving.cluster import ClusterConfig, ClusterSim
from ..serving.faults import ClusterFaultPlan, NodeCrash, NodeSlow
from ..serving.router import HedgePolicy
from .base import ExperimentReport

EXPERIMENT_ID = "critpath_observatory"
TITLE = "Critical-path attribution and counterfactual what-if prediction"
PAPER_REFERENCE = "fig17 tail latency; Table 1 SLAs — explaining where p99 goes"

#: Knobs whose predictions are gated against an actual re-run
#: (``extra_cores`` is estimate-only and never gated).
GATED_KNOBS = ("replication_delta", "gather_width", "hedge_min_ms", "cat_partition")


def _scenarios(
    horizon_ms: float,
    mean_service_ms: float,
    num_nodes: int,
    cores_per_node: int,
    num_shards: int,
) -> List[Tuple[str, ClusterConfig, List[Tuple[str, float, Optional[ClusterConfig]]]]]:
    """The two pinned scenarios and their knob/actual-config lists.

    Seeds are fixed (77 / 78): these runs are the pinned what-if
    accuracy suite, so their dynamics must not drift when the outer
    experiment config changes.
    """
    base = dict(
        num_nodes=num_nodes,
        cores_per_node=cores_per_node,
        mean_service_ms=mean_service_ms,
        num_shards=num_shards,
        gather_width=2,
        hop_ms=0.1,
        deadline_ms=100.0,
        placement="striped",
        routing="least_loaded",
    )
    kill = ClusterConfig(
        replication=1,
        call_timeout_ms=25.0,
        faults=ClusterFaultPlan(
            [NodeCrash(1, 0.11 * horizon_ms, 0.27 * horizon_ms)], seed=77
        ),
        seed=77,
        label="critpath:node_kill",
        **base,
    )
    noisy = ClusterConfig(
        replication=2,
        call_timeout_ms=50.0,
        hedge=HedgePolicy(quantile=95.0, min_ms=12.0, window=128),
        faults=ClusterFaultPlan(
            [NodeSlow(0, 0.13 * horizon_ms, 0.40 * horizon_ms, factor=6.0)],
            seed=78,
        ),
        seed=78,
        label="critpath:noisy",
        **base,
    )
    return [
        (
            "node_kill",
            kill,
            [
                ("replication_delta", 1.0, replace(kill, replication=2)),
                ("gather_width", 1.0, replace(kill, gather_width=1)),
                ("extra_cores", 4.0, None),
            ],
        ),
        (
            "noisy",
            noisy,
            [
                (
                    "hedge_min_ms",
                    6.0,
                    replace(
                        noisy,
                        hedge=HedgePolicy(quantile=95.0, min_ms=6.0, window=128),
                    ),
                ),
                (
                    "cat_partition",
                    0.0,
                    replace(noisy, faults=ClusterFaultPlan([], seed=78)),
                ),
                ("extra_cores", 4.0, None),
            ],
        ),
    ]


def run(
    config: Optional[SimConfig] = None,
    num_requests: int = 10000,
    mean_interarrival_ms: float = 0.9,
    mean_service_ms: float = 2.0,
    num_nodes: int = 4,
    cores_per_node: int = 4,
    num_shards: int = 8,
    tail_quantile: float = 99.0,
    rel_threshold: float = 0.25,
    noise_frac: float = 0.15,
    critpath_log: Optional[str] = None,
) -> ExperimentReport:
    """Attribute every request's latency, then predict the knob fixes.

    ``rel_threshold`` / ``noise_frac`` set the prediction-accuracy gate
    (relative bound plus ``noise_frac * actual`` absolute floor);
    ``critpath_log`` optionally writes every profile and what-if record
    as schema-valid JSONL (validated in CI against
    ``$defs.critpath_record`` / ``$defs.whatif_record``).
    """
    config = config or SimConfig()
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    arrivals = config.rng("critpath:arrivals").exponential(
        mean_interarrival_ms, size=num_requests
    ).cumsum()
    horizon_ms = num_requests * mean_interarrival_ms

    def simulate(cluster_cfg: ClusterConfig):
        """One logged cluster run (private log if the session has none)."""
        cluster = ClusterSim(cluster_cfg)
        outer = obs_hooks.active()
        if outer is not None and outer.requests is not None:
            result = cluster.run(arrivals)
            return result, outer.requests.runs[-1].records
        inner = Observation(
            tracer=outer.tracer if outer is not None else None,
            metrics=outer.metrics if outer is not None else None,
            requests=RequestLog(),
        )
        with obs_hooks.session(inner):
            result = cluster.run(arrivals)
        return result, inner.requests.runs[-1].records

    log_lines: List[Dict[str, object]] = []
    conserved_ok = True
    gates_ok = True
    scenarios = _scenarios(
        horizon_ms, mean_service_ms, num_nodes, cores_per_node, num_shards
    )
    for scenario, cluster_cfg, knobs in scenarios:
        _result, records = simulate(cluster_cfg)
        paths = extract_paths(records)

        violations = sum(1 for p in paths if check_conservation(p) != 0.0)
        other_ms = sum(
            seg.dur_ms for p in paths for seg in p.segments if seg.kind == "other"
        )
        total_ms = sum(p.total_ms for p in paths)
        if violations:
            conserved_ok = False
        report.rows.append(
            {
                "scenario": scenario,
                "kind": "conservation",
                "requests": len(paths),
                "violations": violations,
                "total_ms": total_ms,
                "other_ms": other_ms,
                "other_frac": other_ms / total_ms if total_ms else 0.0,
            }
        )

        profiles = aggregate_profiles(
            paths, scenario=scenario, tail_quantile=tail_quantile
        )
        log_lines.extend(profiles)
        for prof in profiles:
            scope = str(prof["scope"])
            if not (scope == "overall" or scope.startswith("tail_")):
                continue  # node/shard scopes go to the log, not the table
            segments: Dict[str, float] = prof["segments"]  # type: ignore[assignment]
            top = prof["bottleneck"]
            top_ms = segments.get(str(top), 0.0) if top else 0.0
            report.rows.append(
                {
                    "scenario": scenario,
                    "kind": "profile",
                    "scope": scope,
                    "requests": prof["requests"],
                    "total_ms": prof["total_ms"],
                    "bottleneck": top,
                    "bottleneck_ms": top_ms,
                    "bottleneck_frac": (
                        top_ms / float(prof["total_ms"]) if prof["total_ms"] else 0.0
                    ),
                }
            )

        for knob, value, actual_cfg in knobs:
            prediction = predict(records, cluster_cfg, knob, value, q=tail_quantile)
            actual: Optional[float] = None
            in_bounds: Optional[bool] = None
            if actual_cfg is not None:
                actual_result, actual_records = simulate(actual_cfg)
                actual = percentile(
                    [
                        float(r["latency_ms"])
                        for r in actual_records
                        if r.get("latency_ms") is not None
                    ],
                    tail_quantile,
                )
                in_bounds = within_bounds(
                    f"{scenario}.{knob}",
                    actual,
                    prediction.predicted,
                    rel_threshold,
                    noise_frac * actual,
                )
                if knob in GATED_KNOBS and not in_bounds:
                    gates_ok = False
            report.rows.append(
                {
                    "scenario": scenario,
                    "kind": "whatif",
                    "knob": knob,
                    "value": value,
                    "baseline": prediction.baseline,
                    "predicted": prediction.predicted,
                    "actual": actual,
                    "delta_frac": (
                        (prediction.predicted - actual) / actual
                        if actual
                        else None
                    ),
                    "within_bounds": in_bounds,
                    "estimated": prediction.estimated,
                }
            )
            log_lines.append(
                whatif_record(
                    prediction, scenario=scenario, actual=actual, in_bounds=in_bounds
                )
            )

    if critpath_log is not None:
        with open(critpath_log, "w") as fh:
            fh.write(
                json.dumps(
                    {
                        "kind": "critpath_log_meta",
                        "schema_version": 1,
                        "scenarios": [name for name, _, _ in scenarios],
                        "lines": len(log_lines),
                    }
                )
                + "\n"
            )
            for line in log_lines:
                fh.write(json.dumps(line) + "\n")

    report.notes.append(
        f"{num_nodes} nodes x {cores_per_node} cores, {num_shards} shards, "
        f"{num_requests} requests at {mean_interarrival_ms:.2f} ms mean "
        f"interarrival; pinned fault scenarios (seeds 77/78); what-if gate "
        f"rel {rel_threshold:.2f} + noise floor {noise_frac:.2f}x actual "
        f"at p{tail_quantile:g}"
    )
    if conserved_ok:
        report.notes.append(
            "conservation: every request's critical-path segments sum "
            "exactly (float sim-ms) to its end-to-end latency"
        )
    if gates_ok:
        report.notes.append(
            "headline: every gated what-if prediction (replication+1, "
            "narrower gather, lower hedge floor, CAT partition) matched "
            "its actual re-run within the noise-floored bounds"
        )
    return report
