"""Fig 17 — p95 tail latency vs mean arrival time, per design.

The serving methodology of Section 6.5: Poisson arrivals into a multi-core
inference server; sweep the mean arrival time through the SLA-compliant
region into saturation; plot p95 latency per scheme against the model
class's SLA target (400 ms for RMC2, 100 ms for RMC1).  Faster schemes
both lower the tail inside the compliant region and tolerate faster
arrivals before saturating.
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..config import SimConfig
from ..core.schemes import evaluate_scheme
from ..cpu.platform import get_platform
from ..serving.latency import sla_compliant_region, sweep_arrival_times
from ..serving.sla import sla_for_model
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "fig17"
TITLE = "p95 tail latency vs arrival time per design"
PAPER_REFERENCE = "Figure 17(a,b); SLA 400ms (RM2_1) / 100ms (RM1)"

SCHEMES = ("baseline", "dp_ht", "sw_pf", "mp_ht", "integrated")


def _arrival_grid(mean_service_ms: float, num_cores: int) -> Sequence[float]:
    """Arrival times spanning saturation (<s/c) through comfort (>2 s/c)."""
    per_core = mean_service_ms / num_cores
    return [per_core * f for f in (0.7, 0.9, 1.0, 1.2, 1.5, 2.0, 3.0)]


def run(
    config: Optional[SimConfig] = None,
    models: Sequence[str] = ("rm2_1", "rm1"),
    dataset: str = "low",
    platform: str = "csl",
    num_cores: int = 24,
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
    num_requests: int = 1500,
    detailed_cores: int = 2,
) -> ExperimentReport:
    """Serving sweep for each model and scheme."""
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for model_name in models:
        wl = build_workload(
            model_name, dataset, scale=scale, batch_size=batch_size,
            num_batches=num_batches, config=config,
        )
        sla = sla_for_model(wl.model)
        service_ms: Dict[str, float] = {}
        for scheme in SCHEMES:
            result = evaluate_scheme(
                scheme, wl.model, wl.trace, wl.amap, spec,
                num_cores=num_cores, detailed_cores=detailed_cores,
            )
            service_ms[scheme] = result.batch_ms
        arrival_grid = _arrival_grid(service_ms["baseline"], num_cores)
        for scheme in SCHEMES:
            sweep = sweep_arrival_times(
                service_ms[scheme], arrival_grid, num_cores,
                num_requests=num_requests, config=config,
            )
            fastest_ok, _ = sla_compliant_region(sweep, sla.sla_ms)
            for arrival, server in sorted(sweep.items()):
                report.rows.append(
                    {
                        "model": model_name,
                        "scheme": scheme,
                        "arrival_ms": arrival,
                        "p95_ms": server.p95_ms,
                        "sla_ms": sla.sla_ms,
                        "meets_sla": server.p95_ms <= sla.sla_ms,
                        "fastest_compliant_arrival_ms": fastest_ok,
                    }
                )
    report.notes.append(
        "arrival grid is expressed relative to the baseline's per-core "
        "service time so every scheme is swept through its knee"
    )
    return report
