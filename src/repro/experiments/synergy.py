"""Synergy decomposition — Section 4.4's "better than the sum of parts".

The paper argues SW-PF and MP-HT compose super-multiplicatively: prefetching
frees pipeline resources (fewer full-window stalls) that the colocated
bottom-MLP thread absorbs.  This experiment measures all four design points
on one workload and reports the decomposition:

    synergy = integrated_speedup / (swpf_speedup * mpht_speedup)

A value >= 1 confirms the claim for that workload.
"""

from __future__ import annotations

from typing import Optional, Sequence

from ..config import SimConfig
from ..core.integrated import synergy_report
from ..core.schemes import evaluate_scheme
from ..core.swpf import PAPER_SWPF
from ..cpu.platform import get_platform
from ..engine.inference import time_inference_sequential
from ..mem.hierarchy import build_hierarchy
from ..engine.embedding_exec import run_embedding_trace
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "synergy"
TITLE = "SW-PF x MP-HT synergy decomposition (Section 4.4)"
PAPER_REFERENCE = "Section 4.4; 'benefits better than the sum of the parts'"


def run(
    config: Optional[SimConfig] = None,
    models: Sequence[str] = ("rm2_3", "rm1"),
    datasets: Sequence[str] = ("high", "low"),
    platform: str = "csl",
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
) -> ExperimentReport:
    """Measure the four-way decomposition per model and dataset."""
    config = config or SimConfig()
    spec = get_platform(platform)
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    for model_name in models:
        for dataset in datasets:
            wl = build_workload(
                model_name, dataset, scale=scale, batch_size=batch_size,
                num_batches=num_batches, config=config,
            )
            ratio = wl.model.paper_scale_ratio()
            base_emb = run_embedding_trace(
                wl.trace, wl.amap, spec.core, build_hierarchy(spec.hierarchy)
            )
            pf_emb = run_embedding_trace(
                wl.trace, wl.amap, spec.core, build_hierarchy(spec.hierarchy),
                plan=PAPER_SWPF.plan(),
            )
            base_emb.batch_cycles = [c * ratio for c in base_emb.batch_cycles]
            pf_emb.batch_cycles = [c * ratio for c in pf_emb.batch_cycles]
            timing_base = time_inference_sequential(
                wl.model, base_emb, spec.core, wl.batch_size
            )
            timing_pf = time_inference_sequential(
                wl.model, pf_emb, spec.core, wl.batch_size
            )
            decomposition = synergy_report(timing_base, timing_pf)
            report.rows.append(
                {
                    "model": model_name,
                    "dataset": dataset,
                    "swpf_speedup": decomposition.swpf_speedup,
                    "mpht_speedup": decomposition.mpht_speedup,
                    "integrated_speedup": decomposition.integrated_speedup,
                    "multiplicative_expectation": (
                        decomposition.multiplicative_expectation
                    ),
                    "synergy": decomposition.synergy,
                }
            )
    report.notes.append(
        "synergy >= 1 means the combination beats independent composition"
    )
    return report
