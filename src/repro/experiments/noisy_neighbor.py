"""Noisy neighbors — adversarial co-location, detection, and QoS defenses.

The paper's at-scale serving analysis (Table 1 SLAs, Fig 17) shares the
socket only between two threads of *our own* model.  Real fleets
co-schedule foreign tenants, and because embedding lookups are
bandwidth-bound, a bus-hogging neighbor destroys p99 while every fault
monitor stays green.  This extension experiment injects foreign
co-runners — a streaming pipeline, a compute-bound batch job, an
adversarial memory-bus locker in seeded on/off windows — through the
shared cache/DRAM models (:mod:`repro.tenants`), and sweeps four serving
modes per mix:

* ``static``    — undefended sharing (the paper's implicit baseline);
* ``partition`` — CAT way-partition + MBA throttle held statically for
  the whole run (defense without detection);
* ``qos``       — the closed loop: obs-signal detection (CPI memory-stall
  share mean shift, miss-level-mix drift) stepping the defenses, with
  hysteresis and probed release;
* ``qos_degraded`` — the QoS loop composed with the overload
  :class:`~repro.serving.degradation.DegradationController` and
  SLA-deadline admission control.

The headline: under the locker the static config violates the Table 1
SLA; the QoS loop detects every injected window from observable signals
alone (zero false positives when no tenant exists) and restores goodput
to >= 0.95x the no-tenant run.  A final cluster scenario scopes tenants
to a subset of nodes (:class:`~repro.serving.faults.NodeTenant`) and
shows load-aware routing shifting work off the contended hosts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.cache_model import analyze_trace_reuse
from ..config import SimConfig
from ..core.schemes import evaluate_scheme
from ..cpu.platform import get_platform
from ..errors import ConfigError
from ..obs.detect import DetectionEvent
from ..serving.cluster import ClusterConfig, ClusterSim
from ..serving.degradation import DegradationController, scheme_ladder
from ..serving.faults import ClusterFaultPlan
from ..serving.server import ServingPolicy, simulate_server
from ..serving.sla import sla_for_model
from ..serving.workload import poisson_arrivals
from ..tenants import (
    DEFAULT_DEFENSE_LADDER,
    ContentionModel,
    QoSController,
    TenantFaultPlan,
    TenantMix,
    TenantWorld,
    compute_tenant,
    locker_tenant,
    node_tenant_slowdowns,
    streaming_tenant,
)
from .base import ExperimentReport
from .workloads import build_workload

EXPERIMENT_ID = "noisy_neighbor"
TITLE = "Noisy-neighbor contention, detection, and QoS defenses"
PAPER_REFERENCE = (
    "Table 1 SLAs; Section 6.5 serving methodology; extension — "
    "multi-tenant co-location the paper never measured"
)

#: Schemes measured to parameterize the composed degradation ladder.
LADDER_SCHEMES = ("baseline", "sw_pf", "integrated")

#: Tenant mixes swept (subset-selectable via the ``tenants`` parameter).
TENANT_MIXES = ("none", "streaming", "compute", "locker", "mix")

#: Serving/defense modes swept (subset-selectable via ``defense``).
DEFENSE_MODES = ("static", "partition", "qos", "qos_degraded")

#: QoS probe windows per run horizon (warmup fits before the first
#: locker window at phase 0.25).
_WINDOWS_PER_HORIZON = 96


def _mix(name: str, seed: int) -> TenantMix:
    """The named tenant mix, windows seeded from the run seed."""
    if name == "none":
        return TenantMix((), seed=seed)
    if name == "streaming":
        return TenantMix((streaming_tenant(),), seed=seed)
    if name == "compute":
        return TenantMix((compute_tenant(),), seed=seed)
    if name == "locker":
        return TenantMix((locker_tenant(),), seed=seed)
    if name == "mix":
        return TenantMix(
            (streaming_tenant(), compute_tenant(), locker_tenant()), seed=seed
        )
    raise ConfigError(f"unknown tenant mix {name!r}; expected one of {TENANT_MIXES}")


def _subset(param: Optional[str], universe: Sequence[str], what: str) -> Tuple[str, ...]:
    """Parse a comma-separated subset parameter (None = the full sweep)."""
    if param is None:
        return tuple(universe)
    chosen = tuple(p.strip() for p in str(param).split(",") if p.strip())
    for name in chosen:
        if name not in universe:
            raise ConfigError(
                f"unknown {what} {name!r}; expected a subset of {tuple(universe)}"
            )
    if not chosen:
        raise ConfigError(f"{what} selection must name at least one entry")
    return chosen


def _firing_intervals(
    events: Sequence[DetectionEvent], horizon_ms: float
) -> List[Tuple[float, float]]:
    """[start, end) spans one detector spent firing."""
    out: List[Tuple[float, float]] = []
    start: Optional[float] = None
    for event in sorted(events, key=lambda e: e.t_ms):
        if event.firing and start is None:
            start = event.t_ms
        elif not event.firing and start is not None:
            out.append((start, event.t_ms))
            start = None
    if start is not None:
        out.append((start, horizon_ms))
    return out


def _score_detection(
    controller: QoSController,
    tenant_windows: Sequence[Tuple[str, str, float, float]],
    horizon_ms: float,
    grace_ms: float,
    warmup_end_ms: float,
) -> Dict[str, object]:
    """Recall / false positives / MTTD of the QoS detectors for one run.

    Windows are ``(name, kind, start, end)``.  Only *injectable* windows
    are scored for recall: those starting after detector warmup (an
    always-on tenant is the baseline the detectors calibrate against, not
    an event) and those whose tenant touches the memory system at all
    (a pure-SMT ``compute`` tenant is invisible to memory counters by
    design — and harmless to them).  A scoreable window counts as
    detected when any detector was firing at some point inside it (plus
    ``grace_ms`` of post-window slack for the last probe window).  MTTD
    is first-fire minus window start, 0.0 when the detector was still
    firing from a previous window.  Firing spans that overlap no
    (grace-extended) tenant window — of any kind — are false positives.
    """
    intervals = _firing_intervals(
        controller.mem_detector.events, horizon_ms
    ) + _firing_intervals(controller.mix_detector.events, horizon_ms)
    scoreable = [
        w for w in tenant_windows if w[2] >= warmup_end_ms and w[1] != "compute"
    ]
    detected = 0
    mttd: List[float] = []
    for _, _, start, end in scoreable:
        hits = [
            (fs, fe) for fs, fe in intervals if fs < end + grace_ms and fe > start
        ]
        if hits:
            detected += 1
            first = min(fs for fs, _ in hits)
            mttd.append(max(0.0, first - start))
    false_pos = sum(
        1
        for fs, fe in intervals
        if not any(
            fs < end + grace_ms and fe > start
            for _, _, start, end in tenant_windows
        )
    )
    return {
        "tenant_windows": len(scoreable),
        "windows_detected": detected,
        "false_positives": false_pos,
        "mttd_ms": (sum(mttd) / len(mttd)) if mttd else None,
    }


def run(
    config: Optional[SimConfig] = None,
    model: str = "rm2_1",
    dataset: str = "medium",
    platform: str = "csl",
    num_cores: int = 8,
    scale: float = 0.02,
    batch_size: int = 16,
    num_batches: int = 2,
    num_requests: int = 6000,
    detailed_cores: int = 2,
    offered_load: float = 0.70,
    tenants: Optional[str] = None,
    defense: Optional[str] = None,
    cluster_nodes: int = 4,
) -> ExperimentReport:
    """Tenant-mix x defense-mode sweep plus one node-scoped cluster scenario.

    ``tenants`` / ``defense`` select comma-separated subsets of
    :data:`TENANT_MIXES` / :data:`DEFENSE_MODES` (``None`` sweeps
    everything); the runner forwards them as ``--tenants``/``--defense``.
    """
    config = config or SimConfig()
    spec = get_platform(platform)
    mixes = _subset(tenants, TENANT_MIXES, "tenant mix")
    modes = _subset(defense, DEFENSE_MODES, "defense mode")
    report = ExperimentReport(
        experiment_id=EXPERIMENT_ID, title=TITLE, paper_reference=PAPER_REFERENCE
    )
    wl = build_workload(
        model, dataset, scale=scale, batch_size=batch_size,
        num_batches=num_batches, config=config,
    )
    sla = sla_for_model(wl.model)
    service_ms: Dict[str, float] = {}
    for scheme in LADDER_SCHEMES:
        result = evaluate_scheme(
            scheme, wl.model, wl.trace, wl.amap, spec,
            num_cores=num_cores, detailed_cores=detailed_cores,
        )
        service_ms[scheme] = result.batch_ms

    base_ms = service_ms["baseline"]
    interarrival_ms = base_ms / (num_cores * offered_load)
    horizon_ms = num_requests * interarrival_ms
    window_ms = horizon_ms / _WINDOWS_PER_HORIZON
    arrivals = poisson_arrivals(
        interarrival_ms, num_requests, config.rng("noisy:arrivals")
    )
    accounting = ServingPolicy(deadline_ms=sla.sla_ms, shed_expired=False)
    shedding = ServingPolicy.for_sla(
        sla,
        max_retries=1,
        retry_backoff_ms=max(base_ms, 1e-6),
        max_queue_depth=20 * num_cores,
    )
    reuse = analyze_trace_reuse(
        wl.trace, spec.hierarchy, wl.model.embedding_dim, dataset=dataset
    )
    contention = ContentionModel(wl.model, reuse.reuse, spec, batch_size)

    no_tenant_goodput: Optional[float] = None
    for mix_name in mixes:
        mix = _mix(mix_name, config.seed)
        for mode in modes:
            world = TenantWorld(
                mix,
                contention,
                horizon_ms,
                ladder=DEFAULT_DEFENSE_LADDER,
                initial_step=(len(DEFAULT_DEFENSE_LADDER) - 1)
                if mode == "partition"
                else 0,
            )
            plan = TenantFaultPlan(world, seed=config.seed)
            qos: Optional[QoSController] = None
            policy = accounting
            if mode in ("qos", "qos_degraded"):
                inner = None
                if mode == "qos_degraded":
                    inner = DegradationController(
                        scheme_ladder(service_ms, batch_scale=0.6),
                        sla_ms=sla.sla_ms,
                        window=48,
                        min_samples=12,
                        escalate_margin=0.75,
                        recover_margin=0.4,
                        cooldown=256,
                    )
                    policy = shedding
                qos = QoSController(
                    world, window_ms, inner=inner, seed=config.seed
                )
            server = simulate_server(
                arrivals,
                base_ms,
                num_cores,
                config.rng(f"noisy:{mix_name}:{mode}"),
                fault_plan=plan,
                policy=policy,
                controller=qos,
                label=f"noisy:{mix_name}:{mode}",
            )
            if mix_name == "none" and mode == "static":
                no_tenant_goodput = server.goodput
            row: Dict[str, object] = {
                "scenario": mix_name,
                "mode": mode,
                "p95_ms": server.p95_ms,
                "sla_ms": sla.sla_ms,
                "meets_sla": (
                    server.outcome_count("completed") > 0
                    and server.p95_ms <= sla.sla_ms
                ),
                "goodput": server.goodput,
                "goodput_vs_no_tenant": (
                    server.goodput / no_tenant_goodput
                    if no_tenant_goodput
                    else None
                ),
                "completed": server.outcome_count("completed"),
                "shed": server.outcome_count("shed"),
                "timed_out": server.outcome_count("timed_out"),
                "defense_changes": len(world.changes),
                "final_defense": DEFAULT_DEFENSE_LADDER[world.defense_step].name,
                "final_level": server.final_degradation_level,
            }
            if qos is not None:
                row.update(
                    _score_detection(
                        qos,
                        [
                            (n, a["kind"], s, e)
                            for n, s, e, a in world.tenant_windows()
                        ],
                        horizon_ms,
                        grace_ms=2.0 * window_ms,
                        warmup_end_ms=qos.warmup * window_ms,
                    )
                )
            report.rows.append(row)

    # The cluster scenario runs gentler: past ~0.6 offered load the
    # shard-blind round-robin baseline collapses on call timeouts with no
    # tenant at all, and with longer horizons the (horizon-fraction)
    # locker windows outlast the headroom of the contended shard's one
    # surviving replica — routing only helps while it can absorb the
    # diverted traffic.
    _cluster_scenario(
        report, config, spec, contention, base_ms, sla.sla_ms,
        num_cores, min(num_requests, 2000), min(offered_load, 0.55),
        cluster_nodes,
    )

    report.notes.append(
        f"baseline service {base_ms:.3f} ms/batch on {num_cores} cores; "
        f"offered load {offered_load:.2f}; QoS window {window_ms:.2f} ms; "
        "defense ladder "
        + " -> ".join(d.name for d in DEFAULT_DEFENSE_LADDER)
    )
    report.notes.append(
        "contention is mechanistic: tenant LLC footprints shrink our "
        "effective L3 ways, tenant channel load inflates DRAM latency "
        "through the shared queueing curve, SMT siblings inflate core "
        "time; the QoS loop sees only obs-layer signals (memory-stall "
        "share shift, miss-level-mix drift)"
    )
    return report


def _cluster_scenario(
    report: ExperimentReport,
    config: SimConfig,
    spec,
    contention: ContentionModel,
    base_ms: float,
    sla_ms: float,
    num_cores: int,
    num_requests: int,
    offered_load: float,
    cluster_nodes: int,
) -> None:
    """Tenants on a subset of nodes; routing shifts work off them.

    The locker lands on node 0 only (a realistic bin-packing accident);
    round-robin keeps sending it an equal share while least-loaded reads
    queue depth — an implicit noisy-neighbor detector — and routes
    around the contended host.
    """
    if cluster_nodes < 2:
        return
    cores_per_node = max(1, num_cores // 2)
    total_cores = cluster_nodes * cores_per_node
    interarrival_ms = base_ms / (total_cores * offered_load)
    horizon_ms = num_requests * interarrival_ms
    tenant_faults = node_tenant_slowdowns(
        TenantMix((locker_tenant(),), seed=config.seed),
        contention,
        horizon_ms,
        nodes=(0,),
    )
    scenarios = (
        ("cluster_none", None),
        ("cluster_locker_node0", ClusterFaultPlan(tenant_faults, seed=config.seed)),
    )
    goodput_none: Dict[str, float] = {}
    for scenario, faults in scenarios:
        for routing in ("round_robin", "least_loaded"):
            cluster = ClusterSim(
                ClusterConfig(
                    num_nodes=cluster_nodes,
                    cores_per_node=cores_per_node,
                    mean_service_ms=base_ms,
                    num_shards=cluster_nodes,
                    replication=2,
                    gather_width=1,
                    deadline_ms=sla_ms,
                    max_outstanding=50 * total_cores,
                    routing=routing,
                    faults=faults,
                    seed=config.seed,
                    label=f"noisy:{scenario}:{routing}",
                )
            )
            res = cluster.run(
                poisson_arrivals(
                    interarrival_ms, num_requests, config.rng("noisy:cluster")
                )
            )
            if faults is None:
                goodput_none[routing] = res.goodput
            nofault = goodput_none.get(routing, 0.0)
            report.rows.append(
                {
                    "scenario": scenario,
                    "mode": routing,
                    "p95_ms": res.quality_percentile(95.0),
                    "sla_ms": sla_ms,
                    "meets_sla": (
                        res.outcome_count("completed") > 0
                        and res.quality_percentile(95.0) <= sla_ms
                    ),
                    "goodput": res.goodput,
                    "goodput_vs_no_tenant": (
                        res.goodput / nofault if nofault > 0 else None
                    ),
                    "completed": res.outcome_count("completed"),
                }
            )
