"""Command-line entry point: ``repro-experiment <id> [options]``.

Examples::

    repro-experiment table2
    repro-experiment fig12 --scale 0.03
    repro-experiment all --out results/
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path
from typing import List, Optional

from ..config import SimConfig
from .base import format_report
from .registry import EXPERIMENT_IDS, list_experiments, run_experiment

__all__ = ["main"]

#: Numeric override flags forwarded to experiment runners when accepted.
_FORWARDED_FLOATS = ("scale",)
_FORWARDED_INTS = ("batch_size", "num_batches", "num_cores", "detailed_cores")


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate a table/figure of the ISCA'23 paper.",
    )
    parser.add_argument(
        "experiment",
        help="experiment id (fig1, fig4, ... table4), or 'all', or 'list'",
    )
    parser.add_argument("--seed", type=int, default=None, help="simulation seed")
    parser.add_argument("--scale", type=float, default=None, help="model shrink factor")
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--num-batches", type=int, default=None)
    parser.add_argument("--num-cores", type=int, default=None)
    parser.add_argument("--detailed-cores", type=int, default=None)
    parser.add_argument(
        "--out", type=Path, default=None, help="directory to write reports into"
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="also render an ASCII bar chart of the report",
    )
    return parser


def _overrides(args: argparse.Namespace, runner) -> dict:
    import inspect

    accepted = inspect.signature(runner).parameters
    out = {}
    for flag in _FORWARDED_FLOATS + _FORWARDED_INTS:
        value = getattr(args, flag, None)
        if value is not None and flag in accepted:
            out[flag] = value
    return out


def main(argv: Optional[List[str]] = None) -> int:
    """CLI main; returns a process exit code."""
    args = build_parser().parse_args(argv)
    if args.experiment == "list":
        for exp_id, title in list_experiments().items():
            print(f"{exp_id:8s} {title}")
        return 0
    config = SimConfig() if args.seed is None else SimConfig(seed=args.seed)
    targets = list(EXPERIMENT_IDS) if args.experiment == "all" else [args.experiment]
    from .registry import get_experiment

    for exp_id in targets:
        runner = get_experiment(exp_id)
        start = time.time()
        report = run_experiment(exp_id, config=config, **_overrides(args, runner))
        text = format_report(report)
        elapsed = time.time() - start
        print(text)
        if args.plot:
            from .viz import render_report_plot

            print(render_report_plot(report))
        print(f"[{exp_id} finished in {elapsed:.1f}s]\n")
        if args.out is not None:
            args.out.mkdir(parents=True, exist_ok=True)
            (args.out / f"{exp_id}.txt").write_text(text + "\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
