"""Command-line entry point: ``repro-experiment <id> [options]``.

Examples::

    repro-experiment table2
    repro-experiment fig12 --scale 0.03
    repro-experiment fig4,fig5 --engine reference
    repro-experiment all --out results/ --jobs 4

Multi-target runs (``all`` or a comma-separated id list) keep going past
failing experiments and report them at the end (nonzero exit code); they
also memoize finished reports under ``results/.cache/`` keyed by
(experiment id, config, overrides, package version), so re-runs skip
unchanged work.  Memo writes are atomic (temp file + rename) and corrupt
or truncated entries are treated as misses, so an interrupted run can
never poison later ones.  ``--jobs N`` fans independent experiments out
across processes; ``--timeout S`` bounds each experiment's wall clock and
``--retries N`` re-runs transient failures.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import hashlib
import json
import multiprocessing
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..config import SimConfig
from ..obs import Observation
from ..obs import hooks as obs_hooks
from ..obs.cpi import collect_cpi_stacks, format_cpi_table
from .base import format_report, report_from_dict, report_to_dict
from .registry import EXPERIMENT_IDS, get_experiment, list_experiments, run_experiment

__all__ = ["main"]

#: Numeric override flags forwarded to experiment runners when accepted.
_FORWARDED_FLOATS = ("scale",)
_FORWARDED_INTS = (
    "batch_size",
    "num_batches",
    "num_cores",
    "detailed_cores",
    "num_requests",
    "num_nodes",
    "replication",
)

#: Default location of the on-disk result cache (relative to the cwd).
CACHE_DIR = Path("results") / ".cache"


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate a table/figure of the ISCA'23 paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (fig1, fig4, ... table4), a comma-separated "
        "list of ids, 'all', or 'list'",
    )
    parser.add_argument(
        "--experiment",
        dest="experiment_flag",
        default=None,
        metavar="ID",
        help="alias for the positional experiment argument",
    )
    parser.add_argument("--seed", type=int, default=None, help="simulation seed")
    parser.add_argument("--scale", type=float, default=None, help="model shrink factor")
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--num-batches", type=int, default=None)
    parser.add_argument("--num-cores", type=int, default=None)
    parser.add_argument("--detailed-cores", type=int, default=None)
    parser.add_argument("--num-requests", type=int, default=None)
    parser.add_argument(
        "--num-nodes", type=int, default=None,
        help="cluster size for fleet-level experiments",
    )
    parser.add_argument(
        "--replication", type=int, default=None,
        help="shard replication factor for fleet-level experiments",
    )
    parser.add_argument(
        "--engine", choices=("fast", "reference"), default=None,
        help="simulation engine (default: SimConfig default, 'fast')",
    )
    parser.add_argument(
        "--mode", dest="model_mode", choices=("sim", "analytic"), default=None,
        help="hit-rate modeling mode for analytic paths: 'sim' replays a "
        "synthesized trace through the stack-distance counter (default), "
        "'analytic' uses the closed-form Che model (no trace synthesis)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run up to N experiments in parallel processes (multi-target runs)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="memoize reports under results/.cache/ (default for multi-target runs)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even for multi-target runs",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-experiment wall-clock budget; experiments exceeding it are "
        "reported as failures (runs in worker processes; ignored for "
        "observed runs, which must stay in-process)",
    )
    parser.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="re-run failed experiments up to N more times (transient-"
        "failure hardening for long multi-target runs)",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="directory to write reports into"
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="also render an ASCII bar chart of the report",
    )
    parser.add_argument(
        "--trace", type=Path, default=None, metavar="FILE",
        help="write a Chrome-trace JSON (chrome://tracing) of the run; "
        "forces serial in-process execution and bypasses the result cache",
    )
    parser.add_argument(
        "--metrics", type=Path, default=None, metavar="FILE",
        help="write the metrics registry as JSONL (one metric per line)",
    )
    parser.add_argument(
        "--cpi-stack", action="store_true",
        help="print the per-stage CPI stack table after the reports",
    )
    parser.add_argument(
        "--request-log", type=Path, default=None, metavar="FILE",
        help="write per-request serving lifecycles as JSONL (arrival, "
        "queueing, retries, faults, outcome + cause); like --trace this "
        "forces serial in-process execution and bypasses the result cache",
    )
    parser.add_argument(
        "--slo-log", type=Path, default=None, metavar="FILE",
        help="write windowed SLO states and burn/detector alerts as JSONL "
        "(experiments that accept an slo_log parameter, e.g. "
        "slo_observatory); forces serial in-process execution and "
        "bypasses the result cache",
    )
    parser.add_argument(
        "--critpath-log", type=Path, default=None, metavar="FILE",
        help="write critical-path profiles and what-if validation records "
        "as JSONL (experiments that accept a critpath_log parameter, e.g. "
        "critpath_observatory); forces serial in-process execution and "
        "bypasses the result cache",
    )
    parser.add_argument(
        "--tenants", default=None, metavar="MIXES",
        help="comma-separated tenant mixes for experiments that accept a "
        "tenants parameter (noisy_neighbor: none,streaming,compute,"
        "locker,mix; default sweeps all)",
    )
    parser.add_argument(
        "--defense", default=None, metavar="MODES",
        help="comma-separated defense modes for experiments that accept a "
        "defense parameter (noisy_neighbor: static,partition,qos,"
        "qos_degraded; default sweeps all)",
    )
    parser.add_argument(
        "--bench-record", type=Path, default=None, metavar="FILE",
        help="append per-experiment wall-clock records to a benchmark "
        "history JSONL (see tools/bench_all.py for the pinned suite)",
    )
    return parser


def _overrides(args: argparse.Namespace, runner) -> dict:
    import inspect

    accepted = inspect.signature(runner).parameters
    out = {}
    for flag in _FORWARDED_FLOATS + _FORWARDED_INTS:
        value = getattr(args, flag, None)
        if value is not None and flag in accepted:
            out[flag] = value
    for log_flag in ("slo_log", "critpath_log"):
        value = getattr(args, log_flag, None)
        if value is not None and log_flag in accepted:
            out[log_flag] = str(value)
    for flag in ("tenants", "defense"):
        value = getattr(args, flag, None)
        if value is not None and flag in accepted:
            out[flag] = str(value)
    return out


def _cache_key(exp_id: str, config: SimConfig, overrides: dict) -> str:
    """Content hash identifying one (experiment, inputs, version) result."""
    from .. import __version__

    payload = json.dumps(
        {
            "id": exp_id,
            "config": dataclasses.asdict(config),
            "overrides": overrides,
            "version": __version__,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def _load_cache_entry(path: Path) -> Optional[Tuple[float, dict]]:
    """Read one memo file; a corrupt or truncated entry is a miss.

    The bad file is removed (best-effort) so the fresh result can replace
    it; a concurrent writer racing the unlink is harmless because writes
    are atomic replaces.
    """
    try:
        entry = json.loads(path.read_text())
        report = entry["report"]
        if not isinstance(report, dict):
            raise ValueError("cache entry report is not a dict")
        return float(entry.get("elapsed", 0.0)), report
    except (OSError, ValueError, KeyError, TypeError):
        with contextlib.suppress(OSError):
            path.unlink()
        return None


def _write_cache_entry(path: Path, exp_id: str, elapsed: float, report: dict) -> None:
    """Atomically persist one memo (temp file + rename).

    A crash or timeout mid-write can therefore never leave a truncated
    entry behind, and concurrent ``--jobs`` writers cannot interleave.
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = json.dumps(
        {"experiment_id": exp_id, "elapsed": elapsed, "report": report}
    )
    tmp = path.with_name(f"{path.name}.tmp.{os.getpid()}")
    try:
        tmp.write_text(payload + "\n")
        os.replace(tmp, path)
    finally:
        with contextlib.suppress(OSError):
            tmp.unlink()


def _run_one(task: Tuple[str, SimConfig, dict]) -> Tuple[str, float, Optional[dict], Optional[str]]:
    """Worker: run one experiment; never raises (errors become strings)."""
    exp_id, config, overrides = task
    start = time.time()
    try:
        report = run_experiment(exp_id, config=config, **overrides)
        return exp_id, time.time() - start, report_to_dict(report), None
    except Exception as exc:  # noqa: BLE001 - failures summarized by caller
        return exp_id, time.time() - start, None, f"{type(exc).__name__}: {exc}"


def _emit(
    args: argparse.Namespace,
    exp_id: str,
    report_dict: dict,
    elapsed: float,
    cached: bool,
) -> None:
    """Print one finished report and write its --out artifacts."""
    report = report_from_dict(report_dict)
    text = format_report(report)
    print(text)
    if args.plot:
        from .viz import render_report_plot

        print(render_report_plot(report))
    status = "cached" if cached else f"finished in {elapsed:.1f}s"
    print(f"[{exp_id} {status}]\n")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / f"{exp_id}.txt").write_text(text + "\n")
        # No sort_keys: row-dict insertion order is the report's column
        # order, and must survive the JSON round-trip.
        (args.out / f"{exp_id}.json").write_text(
            json.dumps(report_dict, indent=2) + "\n"
        )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI main; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment is not None and args.experiment_flag is not None:
        parser.error(
            "give the experiment either positionally or via --experiment, not both"
        )
    if args.experiment is None:
        args.experiment = args.experiment_flag
    if args.experiment is None:
        parser.error("an experiment id is required (positional or --experiment)")
    if args.experiment == "list":
        for exp_id, title in list_experiments().items():
            print(f"{exp_id:8s} {title}")
        return 0
    cfg_kwargs: Dict[str, object] = {}
    if args.seed is not None:
        cfg_kwargs["seed"] = args.seed
    if args.engine is not None:
        cfg_kwargs["engine"] = args.engine
    if args.model_mode is not None:
        cfg_kwargs["mode"] = args.model_mode
    config = SimConfig(**cfg_kwargs)  # type: ignore[arg-type]
    if args.experiment == "all":
        targets = list(EXPERIMENT_IDS)
    else:
        targets = [t.strip() for t in args.experiment.split(",") if t.strip()]
    multi = args.experiment == "all" or len(targets) > 1
    # Telemetry lives in this process: observed runs bypass the result
    # cache (a cached report carries no spans/metrics) and run serially
    # in-process (a fork pool's telemetry would die with the workers).
    observing = (
        args.trace is not None
        or args.metrics is not None
        or args.cpi_stack
        or args.request_log is not None
        or args.slo_log is not None
        or args.critpath_log is not None
    )
    use_cache = (args.cache or multi) and not args.no_cache and not observing

    failures: List[Tuple[str, str]] = []
    # Resolve runners (and thus overrides) up front.  Unknown ids in a
    # multi-target run become failures; a single bad id raises, matching
    # the pre-batching behaviour.
    tasks: List[Tuple[str, SimConfig, dict]] = []
    for exp_id in targets:
        try:
            runner = get_experiment(exp_id)
        except Exception as exc:  # noqa: BLE001
            if not multi:
                raise
            failures.append((exp_id, f"{type(exc).__name__}: {exc}"))
            continue
        tasks.append((exp_id, config, _overrides(args, runner)))

    # Serve what the cache already has (corrupt entries count as misses).
    finished: Dict[str, Tuple[float, dict, bool]] = {}
    pending: List[Tuple[str, SimConfig, dict]] = []
    for task in tasks:
        exp_id = task[0]
        cache_path = CACHE_DIR / f"{_cache_key(exp_id, config, task[2])}.json"
        entry = (
            _load_cache_entry(cache_path)
            if use_cache and cache_path.exists()
            else None
        )
        if entry is not None:
            finished[exp_id] = (entry[0], entry[1], True)
        else:
            pending.append(task)

    if observing:
        from ..obs import RequestLog

        observation = Observation(
            requests=RequestLog() if args.request_log is not None else None
        )
    else:
        observation = None
    timeout = args.timeout if not observing else None
    if args.timeout is not None and observing:
        print("[--timeout ignored: observed runs stay in-process]", file=sys.stderr)

    def execute(batch: List[Tuple[str, SimConfig, dict]]) -> List[tuple]:
        """One execution round; failures become result tuples, not raises."""
        if not batch:
            return []
        jobs = max(1, min(args.jobs, len(batch)))
        if observing:
            jobs = 1
        if jobs > 1 or timeout is not None:
            # fork shares the loaded interpreter (cheap start) and keeps
            # SimConfig/overrides without pickling surprises; results are
            # plain JSON dicts either way.  Timeouts also route through
            # the pool so a stuck experiment can be abandoned: the with-
            # block terminates straggler workers on exit.
            try:
                ctx = multiprocessing.get_context("fork")
            except ValueError:  # pragma: no cover - non-POSIX fallback
                ctx = multiprocessing.get_context("spawn")
            results: List[tuple] = []
            with ctx.Pool(processes=jobs) as pool:
                handles = [pool.apply_async(_run_one, (task,)) for task in batch]
                for task, handle in zip(batch, handles):
                    try:
                        results.append(handle.get(timeout))
                    except multiprocessing.TimeoutError:
                        results.append(
                            (
                                task[0],
                                float(timeout),
                                None,
                                f"TimeoutError: exceeded --timeout {timeout:g}s",
                            )
                        )
            return results
        results = []
        session = (
            obs_hooks.session(observation)
            if observation is not None
            else contextlib.nullcontext()
        )
        with session:
            for task in batch:
                if not multi and args.retries == 0:
                    # Single target: run inline so exceptions propagate with
                    # their original type and traceback.
                    exp_id, config, overrides = task
                    start = time.time()
                    report = run_experiment(exp_id, config=config, **overrides)
                    results.append(
                        (exp_id, time.time() - start, report_to_dict(report), None)
                    )
                else:
                    results.append(_run_one(task))
        return results

    overrides_by_id = {t[0]: t[2] for t in tasks}
    remaining = pending
    attempts_left = max(0, args.retries)
    while True:
        failed_tasks: List[Tuple[str, SimConfig, dict]] = []
        errors: List[Tuple[str, str]] = []
        for exp_id, elapsed, report_dict, error in execute(remaining):
            if error is not None:
                errors.append((exp_id, error))
                continue
            finished[exp_id] = (elapsed, report_dict, False)
            if use_cache:
                key = _cache_key(exp_id, config, overrides_by_id[exp_id])
                _write_cache_entry(
                    CACHE_DIR / f"{key}.json", exp_id, elapsed, report_dict
                )
        if errors and attempts_left > 0:
            by_id = {t[0]: t for t in remaining}
            failed_tasks = [by_id[exp_id] for exp_id, _ in errors]
            print(
                f"[retrying {len(failed_tasks)} failed experiment(s); "
                f"{attempts_left} attempt(s) left]",
                file=sys.stderr,
            )
            attempts_left -= 1
            remaining = failed_tasks
            continue
        failures.extend(errors)
        break

    # Emit in the original target order.
    for exp_id in targets:
        if exp_id in finished:
            elapsed, report_dict, cached = finished[exp_id]
            _emit(args, exp_id, report_dict, elapsed, cached)

    if observation is not None:
        if args.cpi_stack:
            stacks = collect_cpi_stacks(observation.metrics)
            if stacks:
                print(format_cpi_table(stacks))
            else:
                print("[cpi-stack: no core cycles were recorded]")
            print()
        if args.trace is not None:
            args.trace.parent.mkdir(parents=True, exist_ok=True)
            observation.tracer.to_chrome(args.trace)
            n_events = len(observation.tracer.events)
            print(f"[trace: {n_events} events -> {args.trace}]")
        if args.metrics is not None:
            args.metrics.parent.mkdir(parents=True, exist_ok=True)
            observation.metrics.to_jsonl(args.metrics)
            n_metrics = len(observation.metrics.snapshot())
            print(f"[metrics: {n_metrics} series -> {args.metrics}]")
        if args.request_log is not None:
            args.request_log.parent.mkdir(parents=True, exist_ok=True)
            n_requests = observation.requests.to_jsonl(args.request_log)
            print(f"[request-log: {n_requests} requests -> {args.request_log}]")

    if args.bench_record is not None:
        from ..obs.regress import Benchmark, append_record, make_record

        fresh = [
            (exp_id, finished[exp_id][0])
            for exp_id in targets
            if exp_id in finished and not finished[exp_id][2]
        ]
        if fresh:
            record = make_record(
                mode="runner",
                repeats=1,
                benchmarks=[
                    Benchmark(
                        name=f"experiment.{exp_id}.wall_s",
                        value=elapsed,
                        unit="s",
                        direction="lower",
                        # Single-shot experiment wall clocks are noisy;
                        # only flag multi-fold blowups.
                        noise_floor=0.5 * elapsed,
                        kind="wall",
                    )
                    for exp_id, elapsed in fresh
                ],
            )
            append_record(args.bench_record, record)
            print(
                f"[bench-record: {len(fresh)} experiment(s) -> {args.bench_record}]"
            )
        else:
            print(
                "[bench-record: nothing recorded (all results were cached)]",
                file=sys.stderr,
            )

    if failures:
        print(f"{len(failures)} experiment(s) failed:", file=sys.stderr)
        for exp_id, error in failures:
            print(f"  {exp_id}: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
