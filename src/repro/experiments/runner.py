"""Command-line entry point: ``repro-experiment <id> [options]``.

Examples::

    repro-experiment table2
    repro-experiment fig12 --scale 0.03
    repro-experiment fig4,fig5 --engine reference
    repro-experiment all --out results/ --jobs 4

Multi-target runs (``all`` or a comma-separated id list) keep going past
failing experiments and report them at the end (nonzero exit code); they
also memoize finished reports under ``results/.cache/`` keyed by
(experiment id, config, overrides, package version), so re-runs skip
unchanged work.  ``--jobs N`` fans independent experiments out across
processes.
"""

from __future__ import annotations

import argparse
import contextlib
import dataclasses
import hashlib
import json
import multiprocessing
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from ..config import SimConfig
from ..obs import Observation
from ..obs import hooks as obs_hooks
from ..obs.cpi import collect_cpi_stacks, format_cpi_table
from .base import format_report, report_from_dict, report_to_dict
from .registry import EXPERIMENT_IDS, get_experiment, list_experiments, run_experiment

__all__ = ["main"]

#: Numeric override flags forwarded to experiment runners when accepted.
_FORWARDED_FLOATS = ("scale",)
_FORWARDED_INTS = ("batch_size", "num_batches", "num_cores", "detailed_cores")

#: Default location of the on-disk result cache (relative to the cwd).
CACHE_DIR = Path("results") / ".cache"


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-experiment",
        description="Regenerate a table/figure of the ISCA'23 paper.",
    )
    parser.add_argument(
        "experiment",
        nargs="?",
        default=None,
        help="experiment id (fig1, fig4, ... table4), a comma-separated "
        "list of ids, 'all', or 'list'",
    )
    parser.add_argument(
        "--experiment",
        dest="experiment_flag",
        default=None,
        metavar="ID",
        help="alias for the positional experiment argument",
    )
    parser.add_argument("--seed", type=int, default=None, help="simulation seed")
    parser.add_argument("--scale", type=float, default=None, help="model shrink factor")
    parser.add_argument("--batch-size", type=int, default=None)
    parser.add_argument("--num-batches", type=int, default=None)
    parser.add_argument("--num-cores", type=int, default=None)
    parser.add_argument("--detailed-cores", type=int, default=None)
    parser.add_argument(
        "--engine", choices=("fast", "reference"), default=None,
        help="simulation engine (default: SimConfig default, 'fast')",
    )
    parser.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="run up to N experiments in parallel processes (multi-target runs)",
    )
    parser.add_argument(
        "--cache", action="store_true",
        help="memoize reports under results/.cache/ (default for multi-target runs)",
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="disable the result cache even for multi-target runs",
    )
    parser.add_argument(
        "--out", type=Path, default=None, help="directory to write reports into"
    )
    parser.add_argument(
        "--plot", action="store_true",
        help="also render an ASCII bar chart of the report",
    )
    parser.add_argument(
        "--trace", type=Path, default=None, metavar="FILE",
        help="write a Chrome-trace JSON (chrome://tracing) of the run; "
        "forces serial in-process execution and bypasses the result cache",
    )
    parser.add_argument(
        "--metrics", type=Path, default=None, metavar="FILE",
        help="write the metrics registry as JSONL (one metric per line)",
    )
    parser.add_argument(
        "--cpi-stack", action="store_true",
        help="print the per-stage CPI stack table after the reports",
    )
    return parser


def _overrides(args: argparse.Namespace, runner) -> dict:
    import inspect

    accepted = inspect.signature(runner).parameters
    out = {}
    for flag in _FORWARDED_FLOATS + _FORWARDED_INTS:
        value = getattr(args, flag, None)
        if value is not None and flag in accepted:
            out[flag] = value
    return out


def _cache_key(exp_id: str, config: SimConfig, overrides: dict) -> str:
    """Content hash identifying one (experiment, inputs, version) result."""
    from .. import __version__

    payload = json.dumps(
        {
            "id": exp_id,
            "config": dataclasses.asdict(config),
            "overrides": overrides,
            "version": __version__,
        },
        sort_keys=True,
        default=str,
    )
    return hashlib.sha256(payload.encode()).hexdigest()[:32]


def _run_one(task: Tuple[str, SimConfig, dict]) -> Tuple[str, float, Optional[dict], Optional[str]]:
    """Worker: run one experiment; never raises (errors become strings)."""
    exp_id, config, overrides = task
    start = time.time()
    try:
        report = run_experiment(exp_id, config=config, **overrides)
        return exp_id, time.time() - start, report_to_dict(report), None
    except Exception as exc:  # noqa: BLE001 - failures summarized by caller
        return exp_id, time.time() - start, None, f"{type(exc).__name__}: {exc}"


def _emit(
    args: argparse.Namespace,
    exp_id: str,
    report_dict: dict,
    elapsed: float,
    cached: bool,
) -> None:
    """Print one finished report and write its --out artifacts."""
    report = report_from_dict(report_dict)
    text = format_report(report)
    print(text)
    if args.plot:
        from .viz import render_report_plot

        print(render_report_plot(report))
    status = "cached" if cached else f"finished in {elapsed:.1f}s"
    print(f"[{exp_id} {status}]\n")
    if args.out is not None:
        args.out.mkdir(parents=True, exist_ok=True)
        (args.out / f"{exp_id}.txt").write_text(text + "\n")
        # No sort_keys: row-dict insertion order is the report's column
        # order, and must survive the JSON round-trip.
        (args.out / f"{exp_id}.json").write_text(
            json.dumps(report_dict, indent=2) + "\n"
        )


def main(argv: Optional[List[str]] = None) -> int:
    """CLI main; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment is not None and args.experiment_flag is not None:
        parser.error(
            "give the experiment either positionally or via --experiment, not both"
        )
    if args.experiment is None:
        args.experiment = args.experiment_flag
    if args.experiment is None:
        parser.error("an experiment id is required (positional or --experiment)")
    if args.experiment == "list":
        for exp_id, title in list_experiments().items():
            print(f"{exp_id:8s} {title}")
        return 0
    cfg_kwargs: Dict[str, object] = {}
    if args.seed is not None:
        cfg_kwargs["seed"] = args.seed
    if args.engine is not None:
        cfg_kwargs["engine"] = args.engine
    config = SimConfig(**cfg_kwargs)  # type: ignore[arg-type]
    if args.experiment == "all":
        targets = list(EXPERIMENT_IDS)
    else:
        targets = [t.strip() for t in args.experiment.split(",") if t.strip()]
    multi = args.experiment == "all" or len(targets) > 1
    # Telemetry lives in this process: observed runs bypass the result
    # cache (a cached report carries no spans/metrics) and run serially
    # in-process (a fork pool's telemetry would die with the workers).
    observing = args.trace is not None or args.metrics is not None or args.cpi_stack
    use_cache = (args.cache or multi) and not args.no_cache and not observing

    failures: List[Tuple[str, str]] = []
    # Resolve runners (and thus overrides) up front.  Unknown ids in a
    # multi-target run become failures; a single bad id raises, matching
    # the pre-batching behaviour.
    tasks: List[Tuple[str, SimConfig, dict]] = []
    for exp_id in targets:
        try:
            runner = get_experiment(exp_id)
        except Exception as exc:  # noqa: BLE001
            if not multi:
                raise
            failures.append((exp_id, f"{type(exc).__name__}: {exc}"))
            continue
        tasks.append((exp_id, config, _overrides(args, runner)))

    # Serve what the cache already has.
    finished: Dict[str, Tuple[float, dict, bool]] = {}
    pending: List[Tuple[str, SimConfig, dict]] = []
    for task in tasks:
        exp_id = task[0]
        cache_path = CACHE_DIR / f"{_cache_key(exp_id, config, task[2])}.json"
        if use_cache and cache_path.exists():
            entry = json.loads(cache_path.read_text())
            finished[exp_id] = (float(entry.get("elapsed", 0.0)), entry["report"], True)
        else:
            pending.append(task)

    observation = Observation() if observing else None
    jobs = max(1, min(args.jobs, len(pending) or 1))
    if observing:
        jobs = 1
    if jobs > 1:
        # fork shares the loaded interpreter (cheap start) and keeps
        # SimConfig/overrides without pickling surprises; results are
        # plain JSON dicts either way.
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-POSIX fallback
            ctx = multiprocessing.get_context("spawn")
        with ctx.Pool(processes=jobs) as pool:
            results = pool.map(_run_one, pending)
    else:
        results = []
        session = (
            obs_hooks.session(observation)
            if observation is not None
            else contextlib.nullcontext()
        )
        with session:
            for task in pending:
                if not multi:
                    # Single target: run inline so exceptions propagate with
                    # their original type and traceback.
                    exp_id, config, overrides = task
                    start = time.time()
                    report = run_experiment(exp_id, config=config, **overrides)
                    results.append(
                        (exp_id, time.time() - start, report_to_dict(report), None)
                    )
                else:
                    results.append(_run_one(task))

    overrides_by_id = {t[0]: t[2] for t in tasks}
    for exp_id, elapsed, report_dict, error in results:
        if error is not None:
            failures.append((exp_id, error))
            continue
        finished[exp_id] = (elapsed, report_dict, False)
        if use_cache:
            CACHE_DIR.mkdir(parents=True, exist_ok=True)
            key = _cache_key(exp_id, config, overrides_by_id[exp_id])
            cache_path = CACHE_DIR / f"{key}.json"
            cache_path.write_text(
                json.dumps(
                    {
                        "experiment_id": exp_id,
                        "elapsed": elapsed,
                        "report": report_dict,
                    }
                )
                + "\n"
            )

    # Emit in the original target order.
    for exp_id in targets:
        if exp_id in finished:
            elapsed, report_dict, cached = finished[exp_id]
            _emit(args, exp_id, report_dict, elapsed, cached)

    if observation is not None:
        if args.cpi_stack:
            stacks = collect_cpi_stacks(observation.metrics)
            if stacks:
                print(format_cpi_table(stacks))
            else:
                print("[cpi-stack: no core cycles were recorded]")
            print()
        if args.trace is not None:
            args.trace.parent.mkdir(parents=True, exist_ok=True)
            observation.tracer.to_chrome(args.trace)
            n_events = len(observation.tracer.events)
            print(f"[trace: {n_events} events -> {args.trace}]")
        if args.metrics is not None:
            args.metrics.parent.mkdir(parents=True, exist_ok=True)
            observation.metrics.to_jsonl(args.metrics)
            n_metrics = len(observation.metrics.snapshot())
            print(f"[metrics: {n_metrics} series -> {args.metrics}]")

    if failures:
        print(f"{len(failures)} experiment(s) failed:", file=sys.stderr)
        for exp_id, error in failures:
            print(f"  {exp_id}: {error}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
