"""Unit helpers and hardware constants shared across the simulator.

Everything in the simulator is expressed in three base units:

* **bytes** for capacities and footprints,
* **cycles** for core-visible time,
* **seconds** for wall-clock quantities (derived from cycles / frequency).

The helpers here keep unit conversions explicit at call sites
(``units.mib(35.75)`` reads better than ``35.75 * 1048576``).
"""

from __future__ import annotations

import math

#: Size of one cache line in bytes on every modeled platform.
CACHE_LINE_BYTES = 64

#: Bytes per fp32 element (embedding tables and MLP weights are fp32).
FLOAT32_BYTES = 4


def kib(n: float) -> int:
    """Return ``n`` KiB expressed in bytes."""
    return int(n * 1024)


def mib(n: float) -> int:
    """Return ``n`` MiB expressed in bytes."""
    return int(n * 1024 * 1024)


def gib(n: float) -> int:
    """Return ``n`` GiB expressed in bytes."""
    return int(n * 1024 * 1024 * 1024)


def ghz(n: float) -> float:
    """Return ``n`` GHz expressed in Hz."""
    return n * 1e9


def gb_per_s(n: float) -> float:
    """Return ``n`` GB/s expressed in bytes per second (decimal GB)."""
    return n * 1e9


def cycles_to_ms(cycles: float, frequency_hz: float) -> float:
    """Convert a cycle count at ``frequency_hz`` to milliseconds."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    return cycles / frequency_hz * 1e3


def ms_to_cycles(ms: float, frequency_hz: float) -> float:
    """Convert milliseconds to cycles at ``frequency_hz``."""
    if frequency_hz <= 0:
        raise ValueError("frequency must be positive")
    return ms * 1e-3 * frequency_hz


def ns_to_cycles(ns: float, frequency_hz: float) -> float:
    """Convert nanoseconds to cycles at ``frequency_hz``."""
    return ns * 1e-9 * frequency_hz


def lines_for_bytes(n_bytes: int) -> int:
    """Number of cache lines needed to hold ``n_bytes`` (ceiling)."""
    if n_bytes < 0:
        raise ValueError("byte count must be non-negative")
    return math.ceil(n_bytes / CACHE_LINE_BYTES)


def embedding_row_bytes(embedding_dim: int, dtype_bytes: int = FLOAT32_BYTES) -> int:
    """Byte footprint of one embedding row vector."""
    if embedding_dim <= 0:
        raise ValueError("embedding_dim must be positive")
    return embedding_dim * dtype_bytes


def embedding_row_lines(embedding_dim: int, dtype_bytes: int = FLOAT32_BYTES) -> int:
    """Cache lines occupied by one embedding row vector.

    The paper's running example: ``dim=128`` fp32 rows are 512 B = 8 lines.
    """
    return lines_for_bytes(embedding_row_bytes(embedding_dim, dtype_bytes))


def pretty_bytes(n_bytes: float) -> str:
    """Human-readable byte count, e.g. ``'35.8 MiB'``."""
    value = float(n_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024 or suffix == "TiB":
            return f"{value:.1f} {suffix}" if suffix != "B" else f"{value:.0f} B"
        value /= 1024
    raise AssertionError("unreachable")
