"""Trace-driven memory-hierarchy simulator.

This subpackage models the parts of a server CPU's memory system that the
paper's characterization and optimizations depend on:

* set-associative caches with pluggable replacement (:mod:`repro.mem.cache`),
* hardware prefetchers — next-line, IP-stride, streamer
  (:mod:`repro.mem.prefetcher`),
* a DRAM latency / bandwidth-queueing model (:mod:`repro.mem.dram`),
* miss-status holding registers limiting memory-level parallelism
  (:mod:`repro.mem.mshr`),
* a three-level L1D / L2 / shared-L3 walk (:mod:`repro.mem.hierarchy`).

Latency and hit-rate numbers are *measured* from simulated accesses, playing
the role VTune plays in the paper's methodology.
"""

from .cache import Cache
from .cacheline import Address, line_of, lines_of_range
from .dram import DRAMModel
from .fastcache import FastCache
from .hierarchy import (
    ENGINE_NAMES,
    AccessResult,
    MemoryHierarchy,
    build_hierarchy,
    get_default_engine,
    make_cache,
    set_default_engine,
)
from .mshr import MSHRFile
from .policies import FIFOPolicy, LRUPolicy, PLRUTreePolicy, RandomPolicy, make_policy
from .prefetcher import (
    CompositePrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    StreamerPrefetcher,
    StridePrefetcher,
)
from .stats import CacheStats, HierarchyStats
from .tlb import TLBConfig, TLBModel

__all__ = [
    "Address",
    "AccessResult",
    "Cache",
    "CacheStats",
    "CompositePrefetcher",
    "DRAMModel",
    "ENGINE_NAMES",
    "FIFOPolicy",
    "FastCache",
    "HierarchyStats",
    "LRUPolicy",
    "MSHRFile",
    "MemoryHierarchy",
    "NextLinePrefetcher",
    "NullPrefetcher",
    "PLRUTreePolicy",
    "RandomPolicy",
    "StreamerPrefetcher",
    "StridePrefetcher",
    "TLBConfig",
    "TLBModel",
    "build_hierarchy",
    "get_default_engine",
    "line_of",
    "lines_of_range",
    "make_cache",
    "make_policy",
    "set_default_engine",
]
