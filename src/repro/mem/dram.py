"""DRAM latency and bandwidth model.

Two effects matter for the paper's results:

1. **Unloaded latency** — an LLC miss pays ~90-110 ns on the evaluated
   platforms.
2. **Bandwidth queueing** — Fig 8 shows 24 cores drive 15.5x the bandwidth
   of one core, and multi-core speedups in Figs 12/13/16 are capped by
   contention ("Zen3 ... severe contention in memory bandwidth with 128
   threads").  We model queueing with an M/D/1-style inflation of the
   unloaded latency as offered load approaches the channel peak.

An optional open-page row-buffer model gives consecutive same-row accesses
(the 8 lines of one embedding vector) a cheaper latency, mirroring real
DDR4/DDR5 behaviour.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigError
from ..units import CACHE_LINE_BYTES

__all__ = ["DRAMModel", "DRAMConfig"]

#: Queueing inflation is capped here to keep the model finite at saturation.
MAX_UTILIZATION = 0.95

#: Bytes in one DRAM row (page) for the row-buffer model.
ROW_BUFFER_BYTES = 8192


@dataclass(frozen=True)
class DRAMConfig:
    """Static DRAM channel parameters.

    Parameters
    ----------
    base_latency_cycles:
        Unloaded LLC-miss-to-data latency in core cycles.
    peak_bandwidth_bytes_per_cycle:
        Channel peak converted to bytes per core cycle
        (e.g. 140 GB/s at 2.4 GHz = ~58.3 B/cycle).
    banks:
        Number of independent banks for the row-buffer model.
    row_hit_latency_cycles:
        Latency when the access hits an open row buffer.
    """

    base_latency_cycles: float = 240.0
    peak_bandwidth_bytes_per_cycle: float = 58.3
    banks: int = 16
    row_hit_latency_cycles: float = 120.0

    def __post_init__(self) -> None:
        if self.base_latency_cycles <= 0:
            raise ConfigError("base latency must be positive")
        if self.peak_bandwidth_bytes_per_cycle <= 0:
            raise ConfigError("peak bandwidth must be positive")
        if self.banks <= 0:
            raise ConfigError("bank count must be positive")
        if self.row_hit_latency_cycles > self.base_latency_cycles:
            raise ConfigError("row-hit latency cannot exceed row-miss latency")


class DRAMModel:
    """Stateful DRAM channel shared by all cores of a socket."""

    def __init__(self, config: DRAMConfig = DRAMConfig()) -> None:
        self.config = config
        self.bytes_transferred = 0
        self.accesses = 0
        self.row_hits = 0
        self._open_rows = [-1] * config.banks
        self._utilization = 0.0
        self._tenant_utilization = 0.0
        self._tenant_cap: "float | None" = None

    # -- load-dependent latency -------------------------------------------

    def set_utilization(self, rho: float) -> None:
        """Set the channel's offered-load fraction (0 = idle, 1 = peak).

        The multicore engine computes aggregate demand across cores and
        pushes it here; subsequent accesses see inflated latency.
        """
        if rho < 0:
            raise ConfigError(f"utilization must be non-negative, got {rho}")
        self._utilization = min(rho, MAX_UTILIZATION)

    @property
    def utilization(self) -> float:
        """Current offered-load fraction, capped at :data:`MAX_UTILIZATION`."""
        return self._utilization

    # -- tenant pressure ----------------------------------------------------

    def set_tenant_utilization(self, rho: float) -> None:
        """Extra channel load from co-located foreign tenants.

        Added on top of our own offered load when computing the queueing
        factor (the combined load is capped at :data:`MAX_UTILIZATION`).
        With tenant load 0.0 (the default) the model is byte-identical to
        the single-tenant channel.
        """
        if rho < 0:
            raise ConfigError(
                f"tenant utilization must be non-negative, got {rho}"
            )
        self._tenant_utilization = float(rho)

    def set_tenant_throttle(self, cap: "float | None") -> None:
        """MBA-style per-tenant bandwidth throttle.

        ``cap`` bounds the channel fraction tenants may consume (their
        demand above it is delayed outside this channel's queue and does
        not inflate *our* latency); ``None`` removes the throttle.
        """
        if cap is not None and cap < 0:
            raise ConfigError(f"tenant bandwidth cap must be non-negative, got {cap}")
        self._tenant_cap = None if cap is None else float(cap)

    @property
    def tenant_utilization(self) -> float:
        """Offered tenant load (before throttling)."""
        return self._tenant_utilization

    @property
    def effective_tenant_utilization(self) -> float:
        """Tenant load that actually reaches the channel (after throttle)."""
        if self._tenant_cap is None:
            return self._tenant_utilization
        return min(self._tenant_utilization, self._tenant_cap)

    def total_utilization(self) -> float:
        """Combined own + effective tenant load the queueing model sees."""
        rho = self._utilization
        if self._tenant_utilization > 0.0:
            rho = min(rho + self.effective_tenant_utilization, MAX_UTILIZATION)
        return rho

    #: Linear and saturating coefficients of the queueing-delay curve.
    QUEUE_LINEAR = 0.15
    QUEUE_SATURATING = 0.30

    def queueing_factor(self) -> float:
        """Latency inflation from bandwidth queueing.

        ``1 + a*rho + b*rho^2 / (1 - rho)``: gentle at mid loads (Fig 8
        shows only +14% execution time at 24 cores / ~47% channel load)
        and sharply saturating near peak (the paper's Zen3 128-thread
        contention case).
        """
        rho = self.total_utilization()
        return 1.0 + self.QUEUE_LINEAR * rho + self.QUEUE_SATURATING * rho * rho / (
            1.0 - rho
        )

    # -- accesses ----------------------------------------------------------

    def access(self, line: int) -> float:
        """Fetch one cache line; return its latency in cycles."""
        self.accesses += 1
        self.bytes_transferred += CACHE_LINE_BYTES
        row = (line * CACHE_LINE_BYTES) // ROW_BUFFER_BYTES
        bank = row % self.config.banks
        if self._open_rows[bank] == row:
            self.row_hits += 1
            base = self.config.row_hit_latency_cycles
        else:
            self._open_rows[bank] = row
            base = self.config.base_latency_cycles
        return base * self.queueing_factor()

    def access_batch(self, lines: np.ndarray) -> np.ndarray:
        """Fetch many cache lines; return their latencies in access order.

        Exactly equivalent to calling :meth:`access` per line in order: an
        access row-hits iff the previous access *to the same bank* opened
        the same row, and per-bank access order is recovered with a stable
        sort by bank (equal banks keep their stream order).  The queueing
        factor is constant within a batch — utilization only changes
        between batches via :meth:`set_utilization` — so latency scaling
        is the same multiply the scalar path performs.
        """
        n = lines.size
        if not n:
            return np.empty(0, dtype=np.float64)
        cfg = self.config
        self.accesses += n
        self.bytes_transferred += CACHE_LINE_BYTES * n
        rows = (lines * CACHE_LINE_BYTES) // ROW_BUFFER_BYTES
        banks = rows % cfg.banks
        order = np.argsort(banks, kind="stable")
        rs, bs = rows[order], banks[order]
        first = np.empty(n, dtype=bool)
        first[0] = True
        np.not_equal(bs[1:], bs[:-1], out=first[1:])
        hit_sorted = np.empty(n, dtype=bool)
        np.equal(rs[1:], rs[:-1], out=hit_sorted[1:])
        hit_sorted[first] = rs[first] == np.asarray(self._open_rows)[bs[first]]
        hit = np.empty(n, dtype=bool)
        hit[order] = hit_sorted
        self.row_hits += int(np.count_nonzero(hit))
        # The last access per bank leaves its row open: group ends are one
        # before the next group's start (and the final element).
        last = np.empty(n, dtype=bool)
        last[-1] = True
        last[:-1] = first[1:]
        for b, r in zip(bs[last].tolist(), rs[last].tolist()):
            self._open_rows[b] = r
        return (
            np.where(hit, cfg.row_hit_latency_cycles, cfg.base_latency_cycles)
            * self.queueing_factor()
        )

    # -- reporting ---------------------------------------------------------

    @property
    def row_hit_rate(self) -> float:
        """Fraction of accesses that hit an open row buffer."""
        return self.row_hits / self.accesses if self.accesses else 0.0

    def bandwidth_gb_s(self, elapsed_cycles: float, frequency_hz: float) -> float:
        """Achieved bandwidth in GB/s over ``elapsed_cycles`` of execution."""
        if elapsed_cycles <= 0:
            return 0.0
        seconds = elapsed_cycles / frequency_hz
        return self.bytes_transferred / seconds / 1e9

    def publish_metrics(self, registry, **labels: str) -> None:
        """Accumulate channel counters into an obs metrics registry."""
        registry.counter("dram.accesses", **labels).inc(self.accesses)
        registry.counter("dram.row_hits", **labels).inc(self.row_hits)
        registry.counter("dram.bytes", **labels).inc(self.bytes_transferred)
        registry.gauge("dram.utilization", **labels).set(self._utilization)
        if self._tenant_utilization > 0.0 or self._tenant_cap is not None:
            registry.gauge("dram.tenant_utilization", **labels).set(
                self.effective_tenant_utilization
            )

    def reset(self) -> None:
        """Zero counters and close all row buffers; keep configuration."""
        self.bytes_transferred = 0
        self.accesses = 0
        self.row_hits = 0
        self._open_rows = [-1] * self.config.banks
        self._utilization = 0.0
        self._tenant_utilization = 0.0
        self._tenant_cap = None
