"""Miss-status holding registers (MSHRs).

MSHRs bound how many cache misses can be outstanding simultaneously, which
bounds the memory-level parallelism (MLP) an out-of-order core can extract.
The paper's Section 6.4 notes that Ice Lake / Sapphire Rapids widen the
instruction window which "implicitly improves the memory-level-parallelism" —
in this simulator that shows up through :class:`MSHRFile` capacity and the
core model's window term (:mod:`repro.cpu.core`).

The file also merges secondary misses to a line already being fetched
(a real MSHR's primary/secondary distinction), which matters for embedding
rows spanning 8 lines fetched back to back.
"""

from __future__ import annotations

from typing import Dict, List

from ..errors import ConfigError

__all__ = ["MSHRFile"]


class MSHRFile:
    """Tracks outstanding misses in simulated time.

    The embedding execution engine advances a cycle cursor as it issues
    loads; each miss allocates an entry with a completion time.  When the
    file is full, the issue stalls until the earliest entry retires — the
    returned stall is charged to the access.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise ConfigError(f"MSHR capacity must be positive, got {capacity}")
        self.capacity = capacity
        self._completion_times: List[float] = []
        self._line_of_entry: Dict[int, float] = {}
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0
        self.total_stall_cycles = 0.0

    def outstanding(self, now: float) -> int:
        """Number of entries still in flight at time ``now``."""
        self._retire(now)
        return len(self._completion_times)

    def _retire(self, now: float) -> None:
        alive = [t for t in self._completion_times if t > now]
        if len(alive) != len(self._completion_times):
            self._completion_times = alive
            self._line_of_entry = {
                line: t for line, t in self._line_of_entry.items() if t > now
            }

    def allocate(self, line: int, now: float, completion: float) -> float:
        """Allocate an entry for a miss on ``line``.

        Returns the stall (cycles) the issuing load suffers before the entry
        could be allocated: 0 when a slot was free, or the wait until the
        earliest in-flight miss retires when the file was full.  A miss to a
        line already in flight merges and returns 0 stall (the secondary
        miss completes with the primary).
        """
        self._retire(now)
        pending = self._line_of_entry.get(line)
        if pending is not None and pending > now:
            self.merges += 1
            return 0.0
        stall = 0.0
        if len(self._completion_times) >= self.capacity:
            earliest = min(self._completion_times)
            stall = max(0.0, earliest - now)
            self.full_stalls += 1
            self.total_stall_cycles += stall
            self._retire(now + stall)
        self._completion_times.append(completion + stall)
        self._line_of_entry[line] = completion + stall
        self.allocations += 1
        return stall

    def in_flight(self, line: int, now: float) -> bool:
        """True if a fetch of ``line`` is currently outstanding."""
        t = self._line_of_entry.get(line)
        return t is not None and t > now

    def completion_of(self, line: int) -> float:
        """Completion time of the in-flight fetch of ``line`` (0 if none)."""
        return self._line_of_entry.get(line, 0.0)

    def reset(self) -> None:
        """Drop all in-flight entries and zero counters."""
        self._completion_times.clear()
        self._line_of_entry.clear()
        self.allocations = 0
        self.merges = 0
        self.full_stalls = 0
        self.total_stall_cycles = 0.0
