"""Address arithmetic: byte addresses, cache lines, pages.

The simulator identifies memory by integer byte addresses and converts them
to line numbers (address // 64) before they touch any cache.  Keeping the
conversion in one module avoids scattering ``// 64`` magic through the code.
"""

from __future__ import annotations

from typing import Iterator, List

from ..units import CACHE_LINE_BYTES

#: Conventional 4 KiB page, used by the streamer prefetcher's page filter.
PAGE_BYTES = 4096

#: Alias clarifying intent in signatures: a byte address.
Address = int


def line_of(addr: Address) -> int:
    """Cache-line number containing byte address ``addr``."""
    if addr < 0:
        raise ValueError(f"negative address: {addr}")
    return addr // CACHE_LINE_BYTES


def line_base(line: int) -> Address:
    """First byte address of cache line ``line``."""
    return line * CACHE_LINE_BYTES


def page_of_line(line: int) -> int:
    """Page number containing cache line ``line``."""
    return (line * CACHE_LINE_BYTES) // PAGE_BYTES


def lines_of_range(addr: Address, n_bytes: int) -> List[int]:
    """All cache-line numbers touched by ``[addr, addr + n_bytes)``."""
    if n_bytes <= 0:
        raise ValueError(f"byte range must be positive, got {n_bytes}")
    first = line_of(addr)
    last = line_of(addr + n_bytes - 1)
    return list(range(first, last + 1))


def iter_lines(addr: Address, n_bytes: int) -> Iterator[int]:
    """Iterator form of :func:`lines_of_range` (avoids the list)."""
    first = line_of(addr)
    last = line_of(addr + n_bytes - 1)
    return iter(range(first, last + 1))
