"""Counters reported by caches and hierarchies.

These play the role of VTune's memory-access analysis in the paper: per-level
hit rates (Fig 4b, Fig 15), average load latency (Fig 4b, Fig 10c, Fig 15),
and prefetch accuracy for the prefetching ablations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict


@dataclass
class CacheStats:
    """Event counters for one cache level."""

    demand_hits: int = 0
    demand_misses: int = 0
    prefetch_hits: int = 0
    prefetch_fills: int = 0
    prefetch_useful: int = 0
    evictions: int = 0
    prefetch_evicted_unused: int = 0

    @property
    def demand_accesses(self) -> int:
        """Total demand (non-prefetch) lookups."""
        return self.demand_hits + self.demand_misses

    @property
    def hit_rate(self) -> float:
        """Demand hit rate in [0, 1]; 0.0 when there were no accesses."""
        total = self.demand_accesses
        return self.demand_hits / total if total else 0.0

    @property
    def miss_rate(self) -> float:
        """Demand miss rate in [0, 1]."""
        total = self.demand_accesses
        return self.demand_misses / total if total else 0.0

    @property
    def prefetch_accuracy(self) -> float:
        """Fraction of prefetch fills that served a later demand access."""
        return self.prefetch_useful / self.prefetch_fills if self.prefetch_fills else 0.0

    def merge(self, other: "CacheStats") -> "CacheStats":
        """Return the elementwise sum of two counters."""
        return CacheStats(
            demand_hits=self.demand_hits + other.demand_hits,
            demand_misses=self.demand_misses + other.demand_misses,
            prefetch_hits=self.prefetch_hits + other.prefetch_hits,
            prefetch_fills=self.prefetch_fills + other.prefetch_fills,
            prefetch_useful=self.prefetch_useful + other.prefetch_useful,
            evictions=self.evictions + other.evictions,
            prefetch_evicted_unused=(
                self.prefetch_evicted_unused + other.prefetch_evicted_unused
            ),
        )

    def reset(self) -> None:
        """Zero every counter in place."""
        self.demand_hits = 0
        self.demand_misses = 0
        self.prefetch_hits = 0
        self.prefetch_fills = 0
        self.prefetch_useful = 0
        self.evictions = 0
        self.prefetch_evicted_unused = 0

    def publish(self, registry, **labels: str) -> None:
        """Accumulate these counters into an obs metrics registry.

        ``registry`` is a :class:`repro.obs.metrics.MetricsRegistry` (typed
        loosely to keep this module free of an obs dependency).
        """
        for name in (
            "demand_hits",
            "demand_misses",
            "prefetch_hits",
            "prefetch_fills",
            "prefetch_useful",
            "evictions",
            "prefetch_evicted_unused",
        ):
            registry.counter(f"cache.{name}", **labels).inc(getattr(self, name))


@dataclass
class HierarchyStats:
    """Aggregated view over a full L1D/L2/L3/DRAM walk.

    ``level_hits`` counts where each *demand* access was served:
    keys ``"l1"``, ``"l2"``, ``"l3"``, ``"dram"``.
    """

    level_hits: Dict[str, int] = field(default_factory=dict)
    total_latency_cycles: float = 0.0
    demand_accesses: int = 0
    prefetch_requests: int = 0
    dram_bytes: int = 0

    def record(self, level: str, latency: float) -> None:
        """Account one demand access served at ``level`` with ``latency``."""
        self.level_hits[level] = self.level_hits.get(level, 0) + 1
        self.total_latency_cycles += latency
        self.demand_accesses += 1

    @property
    def avg_load_latency(self) -> float:
        """Average demand-load latency in cycles (the paper's key metric)."""
        if not self.demand_accesses:
            return 0.0
        return self.total_latency_cycles / self.demand_accesses

    def hit_fraction(self, level: str) -> float:
        """Fraction of demand accesses served at ``level``."""
        if not self.demand_accesses:
            return 0.0
        return self.level_hits.get(level, 0) / self.demand_accesses

    def merge(self, other: "HierarchyStats") -> "HierarchyStats":
        """Return the sum of two hierarchy-stat records.

        Symmetric in every field: ``a.merge(b) == b.merge(a)``.  Level
        keys are emitted in canonical walk order so even the dict
        iteration order of the result is operand-independent.
        """
        level_hits = {
            level: self.level_hits.get(level, 0) + other.level_hits.get(level, 0)
            for level in _canonical_levels(self.level_hits, other.level_hits)
        }
        return HierarchyStats(
            level_hits=level_hits,
            total_latency_cycles=self.total_latency_cycles + other.total_latency_cycles,
            demand_accesses=self.demand_accesses + other.demand_accesses,
            prefetch_requests=self.prefetch_requests + other.prefetch_requests,
            dram_bytes=self.dram_bytes + other.dram_bytes,
        )

    def reset(self) -> None:
        """Zero every counter in place (mirrors :meth:`CacheStats.reset`)."""
        self.level_hits = {}
        self.total_latency_cycles = 0.0
        self.demand_accesses = 0
        self.prefetch_requests = 0
        self.dram_bytes = 0

    def publish(self, registry, **labels: str) -> None:
        """Accumulate hierarchy-level counters into an obs metrics registry."""
        for level in _canonical_levels(self.level_hits):
            registry.counter("mem.level_hits", level=level, **labels).inc(
                self.level_hits[level]
            )
        registry.counter("mem.demand_accesses", **labels).inc(self.demand_accesses)
        registry.counter("mem.latency_cycles_total", **labels).inc(
            self.total_latency_cycles
        )
        registry.counter("mem.prefetch_requests", **labels).inc(self.prefetch_requests)
        registry.counter("mem.dram_bytes", **labels).inc(self.dram_bytes)


#: Memory levels in walk order, for canonical level_hits key ordering.
_LEVEL_ORDER = ("l1", "l2", "l3", "dram")


def _canonical_levels(*hit_dicts: Dict[str, int]) -> "list[str]":
    """Union of level keys, walk-order first, unknown levels sorted after."""
    present = set()
    for hits in hit_dicts:
        present.update(hits)
    ordered = [level for level in _LEVEL_ORDER if level in present]
    ordered.extend(sorted(present.difference(_LEVEL_ORDER)))
    return ordered
