"""Replacement policies for the set-associative cache.

Each policy manages the contents of *one* cache set.  The cache owns one
policy instance per set.  The interface is intentionally tiny and hot-path
friendly:

``lookup(tag)``
    True and update recency state if ``tag`` is resident.
``insert(tag)``
    Install ``tag``; return the evicted tag, or ``None`` if a way was free.
``peek(tag)``
    Residency test with no recency side effects (used by prefetch filters).

The paper's reuse-distance model assumes LRU ("caches employing LRU or its
variants"); :class:`LRUPolicy` is the default everywhere.  The alternatives
exist for the ablation benchmarks.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from ..errors import ConfigError

__all__ = [
    "SetPolicy",
    "LRUPolicy",
    "FIFOPolicy",
    "RandomPolicy",
    "PLRUTreePolicy",
    "make_policy",
    "POLICY_NAMES",
]


class SetPolicy:
    """Base class: a fixed-associativity set of tags."""

    __slots__ = ("ways",)

    def __init__(self, ways: int) -> None:
        if ways <= 0:
            raise ConfigError(f"associativity must be positive, got {ways}")
        self.ways = ways

    def lookup(self, tag: int) -> bool:
        raise NotImplementedError

    def insert(self, tag: int) -> Optional[int]:
        raise NotImplementedError

    def peek(self, tag: int) -> bool:
        raise NotImplementedError

    def invalidate(self, tag: int) -> bool:
        """Drop ``tag`` if resident; return whether it was resident."""
        raise NotImplementedError

    def resident_tags(self) -> List[int]:
        """Snapshot of resident tags (order unspecified)."""
        raise NotImplementedError

    def __len__(self) -> int:
        return len(self.resident_tags())


class LRUPolicy(SetPolicy):
    """True least-recently-used replacement.

    Tags are kept in a list ordered LRU-first.  Associativities are small
    (8-20 ways), so the O(ways) ``list.remove`` is cheaper in practice than
    an OrderedDict.
    """

    __slots__ = ("_order",)

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._order: List[int] = []

    def lookup(self, tag: int) -> bool:
        order = self._order
        if tag in order:
            order.remove(tag)
            order.append(tag)
            return True
        return False

    def insert(self, tag: int) -> Optional[int]:
        order = self._order
        if tag in order:
            order.remove(tag)
            order.append(tag)
            return None
        evicted = None
        if len(order) >= self.ways:
            evicted = order.pop(0)
        order.append(tag)
        return evicted

    def peek(self, tag: int) -> bool:
        return tag in self._order

    def invalidate(self, tag: int) -> bool:
        if tag in self._order:
            self._order.remove(tag)
            return True
        return False

    def resident_tags(self) -> List[int]:
        return list(self._order)


class FIFOPolicy(SetPolicy):
    """First-in first-out: evict the oldest fill, ignore hits."""

    __slots__ = ("_queue", "_resident")

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        self._queue: List[int] = []
        self._resident: Dict[int, bool] = {}

    def lookup(self, tag: int) -> bool:
        return tag in self._resident

    def insert(self, tag: int) -> Optional[int]:
        if tag in self._resident:
            return None
        evicted = None
        if len(self._queue) >= self.ways:
            evicted = self._queue.pop(0)
            del self._resident[evicted]
        self._queue.append(tag)
        self._resident[tag] = True
        return evicted

    def peek(self, tag: int) -> bool:
        return tag in self._resident

    def invalidate(self, tag: int) -> bool:
        if tag in self._resident:
            del self._resident[tag]
            self._queue.remove(tag)
            return True
        return False

    def resident_tags(self) -> List[int]:
        return list(self._queue)


class RandomPolicy(SetPolicy):
    """Random replacement with a per-set deterministic RNG."""

    __slots__ = ("_tags", "_rng")

    def __init__(self, ways: int, seed: int = 0) -> None:
        super().__init__(ways)
        self._tags: List[int] = []
        self._rng = random.Random(seed)

    def lookup(self, tag: int) -> bool:
        return tag in self._tags

    def insert(self, tag: int) -> Optional[int]:
        if tag in self._tags:
            return None
        evicted = None
        if len(self._tags) >= self.ways:
            victim = self._rng.randrange(len(self._tags))
            evicted = self._tags.pop(victim)
        self._tags.append(tag)
        return evicted

    def peek(self, tag: int) -> bool:
        return tag in self._tags

    def invalidate(self, tag: int) -> bool:
        if tag in self._tags:
            self._tags.remove(tag)
            return True
        return False

    def resident_tags(self) -> List[int]:
        return list(self._tags)


class PLRUTreePolicy(SetPolicy):
    """Tree pseudo-LRU, the approximation real L1/L2 caches implement.

    Requires a power-of-two associativity.  A binary tree of direction bits
    points away from recently used ways; the victim is found by following
    the bits from the root.
    """

    __slots__ = ("_slots", "_bits", "_tag_to_way", "_levels")

    def __init__(self, ways: int) -> None:
        super().__init__(ways)
        if ways & (ways - 1):
            raise ConfigError(f"PLRU requires power-of-two ways, got {ways}")
        self._slots: List[Optional[int]] = [None] * ways
        self._bits = [0] * max(ways - 1, 1)
        self._tag_to_way: Dict[int, int] = {}
        self._levels = ways.bit_length() - 1

    def _touch(self, way: int) -> None:
        """Flip tree bits so they point away from ``way``."""
        node = 0
        for level in range(self._levels):
            bit = (way >> (self._levels - 1 - level)) & 1
            self._bits[node] = 1 - bit
            node = 2 * node + 1 + bit

    def _victim_way(self) -> int:
        node = 0
        way = 0
        for _ in range(self._levels):
            bit = self._bits[node]
            way = (way << 1) | bit
            node = 2 * node + 1 + bit
        return way

    def lookup(self, tag: int) -> bool:
        way = self._tag_to_way.get(tag)
        if way is None:
            return False
        self._touch(way)
        return True

    def insert(self, tag: int) -> Optional[int]:
        if tag in self._tag_to_way:
            self._touch(self._tag_to_way[tag])
            return None
        for way, resident in enumerate(self._slots):
            if resident is None:
                self._slots[way] = tag
                self._tag_to_way[tag] = way
                self._touch(way)
                return None
        way = self._victim_way()
        evicted = self._slots[way]
        assert evicted is not None
        del self._tag_to_way[evicted]
        self._slots[way] = tag
        self._tag_to_way[tag] = way
        self._touch(way)
        return evicted

    def peek(self, tag: int) -> bool:
        return tag in self._tag_to_way

    def invalidate(self, tag: int) -> bool:
        way = self._tag_to_way.pop(tag, None)
        if way is None:
            return False
        self._slots[way] = None
        return True

    def resident_tags(self) -> List[int]:
        return [tag for tag in self._slots if tag is not None]


POLICY_NAMES = ("lru", "fifo", "random", "plru")


def make_policy(name: str, ways: int, seed: int = 0) -> SetPolicy:
    """Instantiate a per-set policy by name (see :data:`POLICY_NAMES`)."""
    lowered = name.lower()
    if lowered == "lru":
        return LRUPolicy(ways)
    if lowered == "fifo":
        return FIFOPolicy(ways)
    if lowered == "random":
        return RandomPolicy(ways, seed=seed)
    if lowered == "plru":
        return PLRUTreePolicy(ways)
    raise ConfigError(f"unknown replacement policy {name!r}; expected one of {POLICY_NAMES}")
