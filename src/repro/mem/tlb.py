"""TLB model (opt-in fidelity extension).

Multi-GB embedding tables stress address translation: with 4 KiB pages a
28 GB model needs 7M translations, and even the 2 MiB huge pages IPEX
requests leave ~14K pages — far beyond L1 TLB reach.  A TLB miss costs a
page walk (partially cached), adding tens of cycles to exactly the loads
that already miss the caches.

The model is a two-level TLB (L1 + shared STLB) with LRU replacement and a
fixed walk cost, operating on page numbers.  It is **off by default** in
the execution engine — the paper does not isolate translation effects and
the default calibration excludes them — and enabled via
``run_embedding_trace(..., tlb=TLBModel(...))`` or the ablation bench.
"""

from __future__ import annotations

from dataclasses import dataclass

from typing import Dict

from ..errors import ConfigError

__all__ = ["TLBConfig", "TLBModel"]


class _DictLRU:
    """O(1) fully-associative LRU over hashable keys (dict-ordered)."""

    __slots__ = ("capacity", "_entries")

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._entries: Dict[int, None] = {}

    def lookup(self, key: int) -> bool:
        entries = self._entries
        if key in entries:
            del entries[key]
            entries[key] = None  # move to MRU position
            return True
        return False

    def insert(self, key: int) -> None:
        entries = self._entries
        if key in entries:
            del entries[key]
        elif len(entries) >= self.capacity:
            del entries[next(iter(entries))]
        entries[key] = None


@dataclass(frozen=True)
class TLBConfig:
    """Two-level TLB geometry (defaults: Cascade-Lake-like, 2 MiB pages)."""

    page_bytes: int = 2 * 1024 * 1024
    l1_entries: int = 32
    stlb_entries: int = 1536
    l1_hit_cycles: float = 0.0
    stlb_hit_cycles: float = 7.0
    walk_cycles: float = 35.0

    def __post_init__(self) -> None:
        if self.page_bytes <= 0 or self.page_bytes & (self.page_bytes - 1):
            raise ConfigError("page size must be a positive power of two")
        if self.l1_entries <= 0 or self.stlb_entries <= 0:
            raise ConfigError("TLB entry counts must be positive")
        if self.l1_entries > self.stlb_entries:
            raise ConfigError("the STLB must be at least as large as the L1 TLB")
        if min(self.l1_hit_cycles, self.stlb_hit_cycles, self.walk_cycles) < 0:
            raise ConfigError("TLB latencies must be non-negative")


class TLBModel:
    """Fully-associative two-level TLB with LRU replacement."""

    def __init__(self, config: TLBConfig = TLBConfig()) -> None:
        self.config = config
        self._l1 = _DictLRU(config.l1_entries)
        self._stlb = _DictLRU(config.stlb_entries)
        self.l1_hits = 0
        self.stlb_hits = 0
        self.walks = 0

    def page_of_line(self, line: int) -> int:
        """Page number containing cache line ``line``."""
        return (line * 64) // self.config.page_bytes

    def translate_line(self, line: int) -> float:
        """Translate a cache-line access; return the added latency."""
        return self.translate(self.page_of_line(line))

    def translate(self, page: int) -> float:
        """Translate a page number; return the added latency in cycles."""
        if self._l1.lookup(page):
            self.l1_hits += 1
            return self.config.l1_hit_cycles
        if self._stlb.lookup(page):
            self.stlb_hits += 1
            self._l1.insert(page)
            return self.config.stlb_hit_cycles
        self.walks += 1
        self._stlb.insert(page)
        self._l1.insert(page)
        return self.config.walk_cycles

    @property
    def accesses(self) -> int:
        """Total translations performed."""
        return self.l1_hits + self.stlb_hits + self.walks

    @property
    def walk_rate(self) -> float:
        """Fraction of translations requiring a page walk."""
        return self.walks / self.accesses if self.accesses else 0.0

    def reach_bytes(self) -> int:
        """Bytes of address space the STLB can map at once."""
        return self.config.stlb_entries * self.config.page_bytes

    def reset(self) -> None:
        """Empty both levels and zero counters."""
        self._l1 = _DictLRU(self.config.l1_entries)
        self._stlb = _DictLRU(self.config.stlb_entries)
        self.l1_hits = 0
        self.stlb_hits = 0
        self.walks = 0
