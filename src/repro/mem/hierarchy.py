"""The three-level cache walk: private L1D/L2, shared L3, DRAM.

:class:`MemoryHierarchy` is what the execution engines talk to.  A demand
load probes L1D, L2, L3 in order, pays the latency of the level that serves
it (cumulative probe costs included), and fills the line into every level on
the way back (mostly-inclusive, like the modeled Xeons).  Hardware
prefetchers observe the demand stream at L1 and L2 and their candidate lines
are fetched off the critical path.

The L3 :class:`~repro.mem.cache.Cache` and :class:`~repro.mem.dram.DRAMModel`
instances may be shared between per-core hierarchies, which is how the
multi-core engine models constructive/destructive LLC sharing (Section 3.1
inter-core reuse class) and bandwidth contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigError
from ..units import kib, mib
from .cache import Cache
from .dram import DRAMConfig, DRAMModel
from .prefetcher import (
    CompositePrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    StreamerPrefetcher,
    StridePrefetcher,
)
from .stats import HierarchyStats

__all__ = ["AccessResult", "HierarchyConfig", "MemoryHierarchy", "build_hierarchy"]


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one load walking the hierarchy."""

    level: str
    latency: float
    line: int
    prefetch: bool = False

    @property
    def was_off_chip(self) -> bool:
        """True when the access had to go to DRAM."""
        return self.level == "dram"


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latency of one core's view of the memory system.

    Defaults follow the paper's Cascade Lake 6240R (Table 3) with L2/L3
    latencies from Intel's published figures.
    """

    l1_size: int = kib(32)
    l1_ways: int = 8
    l1_latency: float = 5.0
    l2_size: int = mib(1)
    l2_ways: int = 16
    l2_latency: float = 14.0
    l3_size: int = int(mib(35.75))
    l3_ways: int = 11
    l3_latency: float = 50.0
    policy: str = "lru"
    #: Override for the L3 (e.g. keep LRU there when the private levels run
    #: PLRU — real LLCs use different policies than L1/L2, and PLRU needs
    #: power-of-two associativity which 11-way LLCs don't have).
    l3_policy: Optional[str] = None
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    def __post_init__(self) -> None:
        if not self.l1_size < self.l2_size < self.l3_size:
            raise ConfigError("cache sizes must strictly increase L1 < L2 < L3")
        if not self.l1_latency < self.l2_latency < self.l3_latency:
            raise ConfigError("cache latencies must strictly increase L1 < L2 < L3")


class MemoryHierarchy:
    """One core's L1D + L2, wired to a (possibly shared) L3 and DRAM."""

    def __init__(
        self,
        l1: Cache,
        l2: Cache,
        l3: Cache,
        dram: DRAMModel,
        config: HierarchyConfig,
        hw_prefetch: bool = True,
    ) -> None:
        self.l1 = l1
        self.l2 = l2
        self.l3 = l3
        self.dram = dram
        self.config = config
        self.stats = HierarchyStats()
        self.hw_prefetch_enabled = hw_prefetch
        # Intel-style complement: next-line at L1, streamer + stride at L2.
        self.l1_prefetcher = NextLinePrefetcher(degree=1)
        self.l2_prefetcher = CompositePrefetcher(
            StreamerPrefetcher(degree=2), StridePrefetcher(degree=2)
        )
        if not hw_prefetch:
            self.l1_prefetcher = NullPrefetcher()
            self.l2_prefetcher = NullPrefetcher()

    # -- the walk ----------------------------------------------------------

    def load(self, line: int) -> AccessResult:
        """Demand-load one cache line; returns serving level and latency.

        Hardware-prefetch *candidates* triggered by this access are not
        fetched here — the execution engine asks for them via
        :meth:`hw_prefetch_candidates` and issues the ones that win a fill
        buffer, so their timeliness and MSHR occupancy are modeled like any
        other fetch.
        """
        cfg = self.config
        if self.l1.access(line):
            result = AccessResult("l1", cfg.l1_latency, line)
        elif self.l2.access(line):
            self.l1.fill(line)
            result = AccessResult("l2", cfg.l2_latency, line)
        elif self.l3.access(line):
            self.l2.fill(line)
            self.l1.fill(line)
            result = AccessResult("l3", cfg.l3_latency, line)
        else:
            dram_latency = self.dram.access(line)
            self.l3.fill(line)
            self.l2.fill(line)
            self.l1.fill(line)
            result = AccessResult("dram", cfg.l3_latency + dram_latency, line)
            self.stats.dram_bytes += 64
        self.stats.record(result.level, result.latency)
        return result

    def prefetch(self, line: int, target_level: str = "l1") -> AccessResult:
        """Fetch ``line`` off the critical path into ``target_level``.

        This is the mechanism behind both hardware prefetch candidates and
        the paper's ``_mm_prefetch``-based software prefetching.  The
        returned latency is the fetch's *completion* latency — the software
        prefetch timeliness model compares it to the prefetch distance.
        """
        self.stats.prefetch_requests += 1
        if target_level not in ("l1", "l2", "l3"):
            raise ConfigError(f"unknown prefetch target level {target_level!r}")
        cfg = self.config
        if self.l1.access(line, is_prefetch=True):
            return AccessResult("l1", cfg.l1_latency, line, prefetch=True)
        if self.l2.access(line, is_prefetch=True):
            latency, level = cfg.l2_latency, "l2"
        elif self.l3.access(line, is_prefetch=True):
            latency, level = cfg.l3_latency, "l3"
        else:
            latency, level = cfg.l3_latency + self.dram.access(line), "dram"
            self.l3.fill(line, from_prefetch=True)
            self.stats.dram_bytes += 64
        if target_level in ("l1", "l2"):
            self.l2.fill(line, from_prefetch=True)
        if target_level == "l1":
            self.l1.fill(line, from_prefetch=True)
        return AccessResult(level, latency, line, prefetch=True)

    def hw_prefetch_candidates(self, line: int, l1_hit: bool) -> List["tuple[int, str]"]:
        """``(line, target_level)`` pairs the HW prefetchers want fetched.

        The L1 next-line (DCU) prefetcher fills L1; the L2 streamer/stride
        prefetchers fill L2 only — real streamers never pollute the L1D.
        Already-resident and negative lines are filtered out.  Returns an
        empty list when hardware prefetching is disabled (the paper's
        "w/o HW-PF" design point via ``msr-tools``).
        """
        if not self.hw_prefetch_enabled:
            return []
        candidates: List["tuple[int, str]"] = [
            (c, "l1")
            for c in self.l1_prefetcher.observe(line, l1_hit)
            if c >= 0 and not self.l1.contains(c)
        ]
        if not l1_hit:
            candidates.extend(
                (c, "l2")
                for c in self.l2_prefetcher.observe(line, False)
                if c >= 0 and not self.l2.contains(c)
            )
        return candidates

    # -- probes and maintenance ---------------------------------------------

    def resident_level(self, line: int) -> Optional[str]:
        """Closest level currently holding ``line``; None if only in DRAM."""
        if self.l1.contains(line):
            return "l1"
        if self.l2.contains(line):
            return "l2"
        if self.l3.contains(line):
            return "l3"
        return None

    def latency_of_level(self, level: str) -> float:
        """Nominal load latency for a hit at ``level``."""
        cfg = self.config
        if level == "l1":
            return cfg.l1_latency
        if level == "l2":
            return cfg.l2_latency
        if level == "l3":
            return cfg.l3_latency
        if level == "dram":
            return cfg.l3_latency + cfg.dram.base_latency_cycles
        raise ConfigError(f"unknown level {level!r}")

    def flush(self) -> None:
        """Empty every private level (the shared L3 is flushed by its owner)."""
        self.l1.flush()
        self.l2.flush()

    def reset_stats(self) -> None:
        """Zero hierarchy and per-level statistics; keep contents."""
        self.stats = HierarchyStats()
        self.l1.reset_stats()
        self.l2.reset_stats()


def build_hierarchy(
    config: HierarchyConfig = HierarchyConfig(),
    shared_l3: Optional[Cache] = None,
    shared_dram: Optional[DRAMModel] = None,
    hw_prefetch: bool = True,
    seed: int = 0,
) -> MemoryHierarchy:
    """Construct one core's hierarchy.

    Pass the same ``shared_l3`` / ``shared_dram`` objects to several calls to
    model cores of one socket sharing their LLC and memory channels.
    """
    l1 = Cache("l1", config.l1_size, config.l1_ways, policy=config.policy, seed=seed)
    l2 = Cache("l2", config.l2_size, config.l2_ways, policy=config.policy, seed=seed + 1)
    l3 = shared_l3 or Cache(
        "l3",
        config.l3_size,
        config.l3_ways,
        policy=config.l3_policy or config.policy,
        seed=seed + 2,
    )
    dram = shared_dram or DRAMModel(config.dram)
    return MemoryHierarchy(l1, l2, l3, dram, config, hw_prefetch=hw_prefetch)
