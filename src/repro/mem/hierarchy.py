"""The three-level cache walk: private L1D/L2, shared L3, DRAM.

:class:`MemoryHierarchy` is what the execution engines talk to.  A demand
load probes L1D, L2, L3 in order, pays the latency of the level that serves
it (cumulative probe costs included), and fills the line into every level on
the way back (mostly-inclusive, like the modeled Xeons).  Hardware
prefetchers observe the demand stream at L1 and L2 and their candidate lines
are fetched off the critical path.

The L3 :class:`~repro.mem.cache.Cache` and :class:`~repro.mem.dram.DRAMModel`
instances may be shared between per-core hierarchies, which is how the
multi-core engine models constructive/destructive LLC sharing (Section 3.1
inter-core reuse class) and bandwidth contention.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

import numpy as np

from ..errors import ConfigError
from ..units import kib, mib
from .cache import Cache
from .dram import DRAMConfig, DRAMModel
from .fastcache import FastCache
from .prefetcher import (
    CompositePrefetcher,
    NextLinePrefetcher,
    NullPrefetcher,
    StreamerPrefetcher,
    StridePrefetcher,
)
from .stats import HierarchyStats

__all__ = [
    "AccessResult",
    "ENGINE_NAMES",
    "HierarchyConfig",
    "MemoryHierarchy",
    "build_hierarchy",
    "get_default_engine",
    "make_cache",
    "set_default_engine",
]

#: Recognized simulation engines: the per-set-object reference
#: implementation (the correctness oracle) and the array-backed fast path.
ENGINE_NAMES = ("reference", "fast")

#: Process-wide engine used when callers do not pass one explicitly.
#: Experiment entry points (:func:`repro.experiments.registry.run_experiment`)
#: set this from ``SimConfig.engine``; direct library users keep the
#: reference engine unless they opt in.
_DEFAULT_ENGINE = "reference"


def set_default_engine(engine: str) -> None:
    """Set the process-wide default simulation engine."""
    if engine not in ENGINE_NAMES:
        raise ConfigError(f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}")
    global _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine


def get_default_engine() -> str:
    """Current process-wide default simulation engine."""
    return _DEFAULT_ENGINE


def make_cache(
    name: str,
    size_bytes: int,
    ways: int,
    policy: str = "lru",
    seed: int = 0,
    engine: Optional[str] = None,
):
    """Construct one cache level under the selected engine.

    The fast engine only implements true LRU; non-LRU policies silently get
    the reference implementation (they are ablation-only paths), so both
    engines accept every policy name.
    """
    engine = engine or _DEFAULT_ENGINE
    if engine not in ENGINE_NAMES:
        raise ConfigError(f"unknown engine {engine!r}; expected one of {ENGINE_NAMES}")
    if engine == "fast" and policy.lower() == "lru":
        return FastCache(name, size_bytes, ways, policy=policy, seed=seed)
    return Cache(name, size_bytes, ways, policy=policy, seed=seed)


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one load walking the hierarchy."""

    level: str
    latency: float
    line: int
    prefetch: bool = False

    @property
    def was_off_chip(self) -> bool:
        """True when the access had to go to DRAM."""
        return self.level == "dram"


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry and latency of one core's view of the memory system.

    Defaults follow the paper's Cascade Lake 6240R (Table 3) with L2/L3
    latencies from Intel's published figures.
    """

    l1_size: int = kib(32)
    l1_ways: int = 8
    l1_latency: float = 5.0
    l2_size: int = mib(1)
    l2_ways: int = 16
    l2_latency: float = 14.0
    l3_size: int = int(mib(35.75))
    l3_ways: int = 11
    l3_latency: float = 50.0
    policy: str = "lru"
    #: Override for the L3 (e.g. keep LRU there when the private levels run
    #: PLRU — real LLCs use different policies than L1/L2, and PLRU needs
    #: power-of-two associativity which 11-way LLCs don't have).
    l3_policy: Optional[str] = None
    #: CAT-style LLC way allocation: when set, this core's workload may
    #: only fill this many of the L3's ways — the remaining ways belong to
    #: co-located tenants (Intel RDT/CAT semantics: same sets, a subset of
    #: the ways, so the LRU stack property makes hit rates monotone in the
    #: allocation).  ``None`` keeps the full LLC and is byte-identical to
    #: the pre-tenancy model.
    l3_allocated_ways: Optional[int] = None
    dram: DRAMConfig = field(default_factory=DRAMConfig)

    def __post_init__(self) -> None:
        if not self.l1_size < self.l2_size < self.l3_size:
            raise ConfigError("cache sizes must strictly increase L1 < L2 < L3")
        if not self.l1_latency < self.l2_latency < self.l3_latency:
            raise ConfigError("cache latencies must strictly increase L1 < L2 < L3")
        if self.l3_allocated_ways is not None:
            if not 1 <= self.l3_allocated_ways <= self.l3_ways:
                raise ConfigError(
                    f"l3_allocated_ways must be in [1, {self.l3_ways}], "
                    f"got {self.l3_allocated_ways}"
                )
            if self.effective_l3_size <= self.l2_size:
                raise ConfigError(
                    "L3 way allocation shrinks the effective LLC "
                    f"({self.effective_l3_size} B) to at or below the L2 "
                    f"({self.l2_size} B); allocate more ways"
                )

    @property
    def effective_l3_ways(self) -> int:
        """Ways of the L3 this workload may use (all of them without CAT)."""
        if self.l3_allocated_ways is None:
            return self.l3_ways
        return self.l3_allocated_ways

    @property
    def effective_l3_size(self) -> int:
        """Bytes of the L3 this workload may fill.

        Way-granular, like real CAT masks: the per-way capacity times the
        allocated way count.  Set count is unchanged (same index bits,
        fewer ways per set).
        """
        if self.l3_allocated_ways is None:
            return self.l3_size
        return (self.l3_size // self.l3_ways) * self.l3_allocated_ways


class MemoryHierarchy:
    """One core's L1D + L2, wired to a (possibly shared) L3 and DRAM."""

    def __init__(
        self,
        l1: Cache,
        l2: Cache,
        l3: Cache,
        dram: DRAMModel,
        config: HierarchyConfig,
        hw_prefetch: bool = True,
    ) -> None:
        self.l1 = l1
        self.l2 = l2
        self.l3 = l3
        self.dram = dram
        self.config = config
        self.stats = HierarchyStats()
        self.hw_prefetch_enabled = hw_prefetch
        # Intel-style complement: next-line at L1, streamer + stride at L2.
        self.l1_prefetcher = NextLinePrefetcher(degree=1)
        self.l2_prefetcher = CompositePrefetcher(
            StreamerPrefetcher(degree=2), StridePrefetcher(degree=2)
        )
        if not hw_prefetch:
            self.l1_prefetcher = NullPrefetcher()
            self.l2_prefetcher = NullPrefetcher()
        # Batched walks need every level to expose the vectorized cache API;
        # each level partitions its own stream into conflict-free waves by
        # its own set count, so no cross-level geometry condition is needed.
        self.batch_capable = all(
            hasattr(c, "demand_wave") for c in (l1, l2, l3)
        )

    # -- the walk ----------------------------------------------------------

    def load(self, line: int) -> AccessResult:
        """Demand-load one cache line; returns serving level and latency.

        Hardware-prefetch *candidates* triggered by this access are not
        fetched here — the execution engine asks for them via
        :meth:`hw_prefetch_candidates` and issues the ones that win a fill
        buffer, so their timeliness and MSHR occupancy are modeled like any
        other fetch.
        """
        latency, level = self.load_timing(line)
        return AccessResult(level, latency, line)

    def load_timing(self, line: int) -> "tuple[float, str]":
        """:meth:`load` without the :class:`AccessResult` allocation.

        Same walk, same stats, same fills — returns ``(latency, level)``
        as a plain tuple.  The execution engines call this once per cache
        line, where the frozen-dataclass construction cost of :meth:`load`
        is measurable; external callers should prefer :meth:`load`.
        """
        cfg = self.config
        if self.l1.access(line):
            level, latency = "l1", cfg.l1_latency
        elif self.l2.access(line):
            self.l1.fill(line)
            level, latency = "l2", cfg.l2_latency
        elif self.l3.access(line):
            self.l2.fill(line)
            self.l1.fill(line)
            level, latency = "l3", cfg.l3_latency
        else:
            dram_latency = self.dram.access(line)
            self.l3.fill(line)
            self.l2.fill(line)
            self.l1.fill(line)
            level, latency = "dram", cfg.l3_latency + dram_latency
            self.stats.dram_bytes += 64
        stats = self.stats
        hits = stats.level_hits
        hits[level] = hits.get(level, 0) + 1
        stats.total_latency_cycles += latency
        stats.demand_accesses += 1
        return latency, level

    # -- batched demand walk ------------------------------------------------

    #: Upper bound on one vectorized chunk (keeps temporaries cache-friendly).
    MAX_BATCH = 8192

    #: Below this average wave size the chunk is walked scalar — numpy
    #: dispatch overhead on tiny waves would lose to the per-line path
    #: (hit on pathological streams like one row repeated back-to-back).
    MIN_WAVE = 12

    def access_lines(self, lines: np.ndarray) -> np.ndarray:
        """Demand-load many lines; return their latencies in access order.

        Exactly equivalent — same per-level stats, same fill ordering, same
        eviction decisions, same DRAM access order — to::

            np.array([self.load(int(l)).latency for l in lines])

        but the walk is vectorized: each level partitions its slice of the
        stream into *occurrence-rank waves* (wave k holds the lines whose
        set already appeared k times in the chunk), so within a wave every
        set is touched at most once and the fused lookup+fill can run as
        array ops, while per-set event order — the only thing replacement
        state depends on — stays sequential.  DRAM accesses are issued in
        original stream order, so the open-row state also matches the
        scalar walk bit for bit.  Falls back to the scalar walk when a
        level lacks the batch API (reference engine).

        Hardware-prefetcher observation is *not* performed here, matching
        :meth:`load` — callers that model HW prefetching must use the
        scalar walk, since candidates depend on each line's serving level.
        """
        lines = np.ascontiguousarray(lines, dtype=np.int64)
        n = lines.size
        if n == 0:
            return np.empty(0, dtype=np.float64)
        if not self.batch_capable:
            return np.fromiter(
                (self.load_timing(l)[0] for l in lines.tolist()), np.float64, n
            )
        out = np.empty(n, dtype=np.float64)
        pos = 0
        while pos < n:
            end = min(pos + self.MAX_BATCH, n)
            out[pos:end] = self._access_chunk(lines[pos:end])
            pos = end
        return out

    def _access_chunk(self, chunk: np.ndarray) -> np.ndarray:
        """Walk one chunk of the batched demand stream through all levels."""
        cfg = self.config
        n = chunk.size
        order, bounds = _wave_partition(chunk % self.l1.num_sets)
        if n < bounds.size * self.MIN_WAVE:
            return np.fromiter(
                (self.load_timing(l)[0] for l in chunk.tolist()), np.float64, n
            )
        stats = self.stats
        lat = np.full(n, cfg.l1_latency, dtype=np.float64)
        hit1 = _run_waves(self.l1, chunk, order, bounds)
        m1_idx = np.nonzero(~hit1)[0]
        n_l2 = n_l3 = n_dram = 0
        if m1_idx.size:
            m1 = chunk[m1_idx]
            lat[m1_idx] = cfg.l2_latency
            m2_idx = m1_idx[~_demand_walk(self.l2, m1)]
            if m2_idx.size:
                m2 = chunk[m2_idx]
                lat[m2_idx] = cfg.l3_latency
                m3_idx = m2_idx[~_demand_walk(self.l3, m2)]
                if m3_idx.size:
                    m3 = chunk[m3_idx]
                    lat[m3_idx] = cfg.l3_latency + self.dram.access_batch(m3)
                    stats.dram_bytes += 64 * m3.size
                    n_dram = m3_idx.size
                n_l3 = m2_idx.size - n_dram
            n_l2 = m1_idx.size - n_l3 - n_dram
        hits = stats.level_hits
        for level, count in (
            ("l1", n - m1_idx.size),
            ("l2", n_l2),
            ("l3", n_l3),
            ("dram", n_dram),
        ):
            if count:
                hits[level] = hits.get(level, 0) + count
        stats.total_latency_cycles += float(lat.sum())
        stats.demand_accesses += n
        return lat

    def prefetch(self, line: int, target_level: str = "l1") -> AccessResult:
        """Fetch ``line`` off the critical path into ``target_level``.

        This is the mechanism behind both hardware prefetch candidates and
        the paper's ``_mm_prefetch``-based software prefetching.  The
        returned latency is the fetch's *completion* latency — the software
        prefetch timeliness model compares it to the prefetch distance.
        """
        latency, level = self.prefetch_timing(line, target_level)
        return AccessResult(level, latency, line, prefetch=True)

    def prefetch_timing(self, line: int, target_level: str = "l1") -> "tuple[float, str]":
        """:meth:`prefetch` without the :class:`AccessResult` allocation.

        Same fetch, fills, and stats — returns ``(latency, level)``; the
        engines' prefetch loops only consume the completion latency.
        """
        self.stats.prefetch_requests += 1
        if target_level not in ("l1", "l2", "l3"):
            raise ConfigError(f"unknown prefetch target level {target_level!r}")
        cfg = self.config
        if self.l1.access(line, is_prefetch=True):
            return cfg.l1_latency, "l1"
        if self.l2.access(line, is_prefetch=True):
            latency, level = cfg.l2_latency, "l2"
        elif self.l3.access(line, is_prefetch=True):
            latency, level = cfg.l3_latency, "l3"
        else:
            latency, level = cfg.l3_latency + self.dram.access(line), "dram"
            self.l3.fill(line, from_prefetch=True)
            self.stats.dram_bytes += 64
        if target_level in ("l1", "l2"):
            self.l2.fill(line, from_prefetch=True)
        if target_level == "l1":
            self.l1.fill(line, from_prefetch=True)
        return latency, level

    def hw_prefetch_candidates(self, line: int, l1_hit: bool) -> List["tuple[int, str]"]:
        """``(line, target_level)`` pairs the HW prefetchers want fetched.

        The L1 next-line (DCU) prefetcher fills L1; the L2 streamer/stride
        prefetchers fill L2 only — real streamers never pollute the L1D.
        Already-resident and negative lines are filtered out.  Returns an
        empty list when hardware prefetching is disabled (the paper's
        "w/o HW-PF" design point via ``msr-tools``).
        """
        if not self.hw_prefetch_enabled:
            return []
        candidates: List["tuple[int, str]"] = [
            (c, "l1")
            for c in self.l1_prefetcher.observe(line, l1_hit)
            if c >= 0 and not self.l1.contains(c)
        ]
        if not l1_hit:
            candidates.extend(
                (c, "l2")
                for c in self.l2_prefetcher.observe(line, False)
                if c >= 0 and not self.l2.contains(c)
            )
        return candidates

    # -- probes and maintenance ---------------------------------------------

    def resident_level(self, line: int) -> Optional[str]:
        """Closest level currently holding ``line``; None if only in DRAM."""
        if self.l1.contains(line):
            return "l1"
        if self.l2.contains(line):
            return "l2"
        if self.l3.contains(line):
            return "l3"
        return None

    def latency_of_level(self, level: str) -> float:
        """Nominal load latency for a hit at ``level``."""
        cfg = self.config
        if level == "l1":
            return cfg.l1_latency
        if level == "l2":
            return cfg.l2_latency
        if level == "l3":
            return cfg.l3_latency
        if level == "dram":
            return cfg.l3_latency + cfg.dram.base_latency_cycles
        raise ConfigError(f"unknown level {level!r}")

    def flush(self) -> None:
        """Empty every private level (the shared L3 is flushed by its owner)."""
        self.l1.flush()
        self.l2.flush()

    def reset_stats(self) -> None:
        """Zero hierarchy and per-level statistics; keep contents."""
        self.stats = HierarchyStats()
        self.l1.reset_stats()
        self.l2.reset_stats()

    def publish_metrics(self, registry, **labels: str) -> None:
        """Publish hierarchy, per-level, and DRAM counters into ``registry``.

        Called by the execution engines at end of run when an observation
        is active (:mod:`repro.obs.hooks`) — never from the per-line walk,
        so enabling observability cannot perturb simulation results or the
        fast engine's throughput.  Shared L3/DRAM instances are published
        by every owning hierarchy; callers who share levels across cores
        should publish through one hierarchy only or label per core.
        """
        self.stats.publish(registry, **labels)
        for level in (self.l1, self.l2, self.l3):
            level.publish_metrics(registry, **labels)
        self.dram.publish_metrics(registry, **labels)
        registry.gauge("mem.avg_load_latency_cycles", **labels).set(
            self.stats.avg_load_latency
        )


def _wave_partition(sets: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Partition indices of ``sets`` into conflict-free waves.

    Wave k contains the indices whose set value appeared exactly k times
    earlier in the array, in ascending index order.  Within a wave all set
    values are therefore pairwise distinct (safe to vectorize), and for any
    single set value its indices are spread across consecutive waves in
    their original order — so processing waves 0, 1, 2, ... is exactly
    equivalent, per set, to processing the array sequentially.

    Returns ``(order, bounds)``: ``order`` is a permutation of indices and
    ``bounds`` the cumulative wave end offsets, so wave k is
    ``order[bounds[k-1]:bounds[k]]`` (with ``bounds[-1] == 0`` implied).

    The occurrence rank is computed with one stable argsort: sorting groups
    equal set values with their indices ascending, and the position within
    each group is the rank.
    """
    n = sets.size
    order = np.argsort(sets, kind="stable")
    ss = sets[order]
    idx = np.arange(n, dtype=np.int64)
    newgrp = np.empty(n, dtype=bool)
    newgrp[0] = True
    np.not_equal(ss[1:], ss[:-1], out=newgrp[1:])
    rank_sorted = idx - np.maximum.accumulate(np.where(newgrp, idx, 0))
    max_rank = int(rank_sorted.max()) if n else 0
    if max_rank == 0:
        return idx, np.array([n], dtype=np.int64)
    rank = np.empty(n, dtype=np.int64)
    rank[order] = rank_sorted
    waves = np.argsort(rank, kind="stable")
    bounds = np.cumsum(np.bincount(rank, minlength=max_rank + 1))
    return waves, bounds


def _run_waves(cache, lines: np.ndarray, order: np.ndarray, bounds: np.ndarray) -> np.ndarray:
    """Feed a pre-partitioned stream through ``cache.demand_wave``."""
    if bounds.size == 1:
        return cache.demand_wave(lines)
    hit = np.empty(lines.size, dtype=bool)
    start = 0
    for end in bounds.tolist():
        idxs = order[start:end]
        hit[idxs] = cache.demand_wave(lines[idxs])
        start = end
    return hit


def _demand_walk(cache, lines: np.ndarray) -> np.ndarray:
    """Demand-access+fill ``lines`` at one level; returns hits in order."""
    order, bounds = _wave_partition(lines % cache.num_sets)
    return _run_waves(cache, lines, order, bounds)


def build_hierarchy(
    config: HierarchyConfig = HierarchyConfig(),
    shared_l3: Optional[Cache] = None,
    shared_dram: Optional[DRAMModel] = None,
    hw_prefetch: bool = True,
    seed: int = 0,
    engine: Optional[str] = None,
) -> MemoryHierarchy:
    """Construct one core's hierarchy.

    Pass the same ``shared_l3`` / ``shared_dram`` objects to several calls to
    model cores of one socket sharing their LLC and memory channels.
    ``engine`` selects the cache implementation (``"reference"`` or
    ``"fast"``); None uses the process default (:func:`get_default_engine`).
    """
    l1 = make_cache(
        "l1", config.l1_size, config.l1_ways, policy=config.policy, seed=seed,
        engine=engine,
    )
    l2 = make_cache(
        "l2", config.l2_size, config.l2_ways, policy=config.policy, seed=seed + 1,
        engine=engine,
    )
    l3 = shared_l3 or make_cache(
        "l3",
        config.effective_l3_size,
        config.effective_l3_ways,
        policy=config.l3_policy or config.policy,
        seed=seed + 2,
        engine=engine,
    )
    dram = shared_dram or DRAMModel(config.dram)
    return MemoryHierarchy(l1, l2, l3, dram, config, hw_prefetch=hw_prefetch)
