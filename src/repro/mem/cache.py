"""A single set-associative cache level.

The cache operates on cache-line numbers (see :mod:`repro.mem.cacheline`);
tags and set indices are derived from the line number.  Replacement is
delegated to one :class:`~repro.mem.policies.SetPolicy` instance per set.

The cache distinguishes demand accesses from prefetches so that prefetch
usefulness / pollution can be measured (Fig 10c's trade-off).
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..errors import ConfigError
from ..units import CACHE_LINE_BYTES
from .policies import SetPolicy, make_policy
from .stats import CacheStats

__all__ = ["Cache"]


class Cache:
    """One cache level (L1D, L2, or L3).

    Parameters
    ----------
    name:
        Human-readable level name (``"l1"``, ``"l2"``, ``"l3"``).
    size_bytes:
        Total capacity.
    ways:
        Associativity.  ``size_bytes`` must be divisible by
        ``ways * CACHE_LINE_BYTES``.
    policy:
        Replacement policy name, default ``"lru"``.
    """

    def __init__(
        self,
        name: str,
        size_bytes: int,
        ways: int,
        policy: str = "lru",
        seed: int = 0,
    ) -> None:
        if size_bytes <= 0:
            raise ConfigError(f"cache size must be positive, got {size_bytes}")
        lines = size_bytes // CACHE_LINE_BYTES
        if lines % ways:
            raise ConfigError(
                f"{name}: {size_bytes} bytes is not divisible into {ways}-way sets"
            )
        self.name = name
        self.size_bytes = size_bytes
        self.ways = ways
        self.num_sets = lines // ways
        self.policy_name = policy
        self.stats = CacheStats()
        self._seed = seed
        self._sets: List[SetPolicy] = [
            make_policy(policy, ways, seed=seed + i) for i in range(self.num_sets)
        ]
        # Lines filled by prefetch and not yet demanded: line -> True.
        self._pending_prefetched: Dict[int, bool] = {}

    # -- geometry ---------------------------------------------------------

    @property
    def capacity_lines(self) -> int:
        """Total number of lines the cache can hold."""
        return self.num_sets * self.ways

    def set_index(self, line: int) -> int:
        """Set that line ``line`` maps to."""
        return line % self.num_sets

    def tag_of(self, line: int) -> int:
        """Tag of line ``line`` within its set."""
        return line // self.num_sets

    # -- accesses ---------------------------------------------------------

    def access(self, line: int, is_prefetch: bool = False) -> bool:
        """Look up ``line``; return True on hit.

        A hit updates recency state.  A miss does **not** fill — callers
        (the hierarchy walk) fill explicitly via :meth:`fill` once the data
        has been fetched from below, which keeps multi-level fill ordering
        explicit.
        """
        hit = self._sets[self.set_index(line)].lookup(self.tag_of(line))
        if is_prefetch:
            if hit:
                self.stats.prefetch_hits += 1
        else:
            if hit:
                self.stats.demand_hits += 1
                if self._pending_prefetched.pop(line, None):
                    self.stats.prefetch_useful += 1
            else:
                self.stats.demand_misses += 1
        return hit

    def contains(self, line: int) -> bool:
        """Residency probe without recency or stats side effects."""
        return self._sets[self.set_index(line)].peek(self.tag_of(line))

    def fill(self, line: int, from_prefetch: bool = False) -> Optional[int]:
        """Install ``line``; return the evicted line number, if any."""
        set_idx = self.set_index(line)
        evicted_tag = self._sets[set_idx].insert(self.tag_of(line))
        if from_prefetch:
            self.stats.prefetch_fills += 1
            self._pending_prefetched[line] = True
        if evicted_tag is None:
            return None
        self.stats.evictions += 1
        evicted_line = evicted_tag * self.num_sets + set_idx
        if self._pending_prefetched.pop(evicted_line, None):
            self.stats.prefetch_evicted_unused += 1
        return evicted_line

    def invalidate(self, line: int) -> bool:
        """Drop ``line`` if resident; return whether it was resident."""
        self._pending_prefetched.pop(line, None)
        return self._sets[self.set_index(line)].invalidate(self.tag_of(line))

    # -- maintenance ------------------------------------------------------

    def flush(self) -> None:
        """Empty the cache, keeping statistics.

        Policies are rebuilt with the same per-set seeds the constructor
        used (``base seed + set index``), so a flushed Random/PLRU cache
        behaves identically to a freshly constructed one.
        """
        self._sets = [
            make_policy(self.policy_name, self.ways, seed=self._seed + i)
            for i in range(self.num_sets)
        ]
        self._pending_prefetched.clear()

    def reset_stats(self) -> None:
        """Zero statistics, keeping contents (for warmup/measure splits)."""
        self.stats.reset()

    def publish_metrics(self, registry, **labels: str) -> None:
        """Accumulate this level's counters into an obs metrics registry."""
        self.stats.publish(registry, cache=self.name, **labels)

    def occupancy(self) -> int:
        """Number of currently resident lines."""
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Cache({self.name}, {self.size_bytes}B, {self.ways}-way, "
            f"{self.num_sets} sets, {self.policy_name})"
        )
