"""Hardware prefetcher models.

Intel cores carry four prefetchers — two at L1D (next-line "DCU", IP-stride)
and two at L2 (streamer, adjacent-line) [Intel SDM].  The paper's Section 4.1
observes that these help the regular MLP stages but are nearly useless (or
mildly harmful through pollution and bandwidth waste) for the irregular,
data-dependent embedding lookups.  The models here let the simulator
reproduce that: each prefetcher observes the demand stream of its level and
proposes candidate lines, which the hierarchy fetches and fills.

The interface is deliberately narrow::

    candidates = prefetcher.observe(line, hit)

returning the lines to prefetch (possibly empty).
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from ..errors import ConfigError
from .cacheline import page_of_line

__all__ = [
    "NullPrefetcher",
    "NextLinePrefetcher",
    "StridePrefetcher",
    "StreamerPrefetcher",
    "CompositePrefetcher",
]


class NullPrefetcher:
    """Prefetching disabled (the paper's "w/o HW-PF" design point)."""

    def observe(self, line: int, hit: bool) -> List[int]:
        return []

    def reset(self) -> None:
        """Nothing to reset."""


class NextLinePrefetcher:
    """Fetch the ``degree`` lines following every demand miss.

    Models the DCU next-line / L2 adjacent-line prefetchers.  For streaming
    MLP weight reads this is nearly perfect; for embedding rows it usefully
    covers the 8 sequential lines of one row but then overshoots into the
    next (unrelated) row.
    """

    def __init__(self, degree: int = 1) -> None:
        if degree <= 0:
            raise ConfigError(f"degree must be positive, got {degree}")
        self.degree = degree
        self.issued = 0

    def observe(self, line: int, hit: bool) -> List[int]:
        if hit:
            return []
        self.issued += self.degree
        return [line + d for d in range(1, self.degree + 1)]

    def reset(self) -> None:
        self.issued = 0


class StridePrefetcher:
    """Classic per-stream stride detector (IP-stride analogue).

    We have no program counters in a trace-driven simulator, so streams are
    keyed by a caller-supplied stream id via :meth:`observe_stream`; plain
    :meth:`observe` uses a single anonymous stream.  A stride must repeat
    ``confidence_threshold`` times before prefetches launch ``degree``
    strides ahead.
    """

    def __init__(self, degree: int = 2, confidence_threshold: int = 2) -> None:
        if degree <= 0:
            raise ConfigError(f"degree must be positive, got {degree}")
        if confidence_threshold <= 0:
            raise ConfigError("confidence threshold must be positive")
        self.degree = degree
        self.confidence_threshold = confidence_threshold
        # stream id -> (last line, last stride, confidence)
        self._streams: Dict[int, Tuple[int, int, int]] = {}
        self.issued = 0

    def observe(self, line: int, hit: bool) -> List[int]:
        return self.observe_stream(0, line, hit)

    def observe_stream(self, stream: int, line: int, hit: bool) -> List[int]:
        last, stride, confidence = self._streams.get(stream, (line, 0, 0))
        new_stride = line - last
        if new_stride == stride and new_stride != 0:
            confidence = min(confidence + 1, self.confidence_threshold)
        else:
            stride = new_stride
            confidence = 1 if new_stride != 0 else 0
        self._streams[stream] = (line, stride, confidence)
        if confidence >= self.confidence_threshold and stride != 0:
            self.issued += self.degree
            return [line + stride * d for d in range(1, self.degree + 1)]
        return []

    def reset(self) -> None:
        self._streams.clear()
        self.issued = 0


class StreamerPrefetcher:
    """L2 streamer: detects ascending/descending runs within a 4 KiB page.

    Tracks the last few accessed lines per page; two successive accesses in
    the same direction within a page trigger a run of ``degree`` prefetches
    in that direction, stopping at the page boundary (real streamers do not
    cross pages).
    """

    LINES_PER_PAGE = 64  # 4096 / 64

    def __init__(self, degree: int = 4) -> None:
        if degree <= 0:
            raise ConfigError(f"degree must be positive, got {degree}")
        self.degree = degree
        self._last_in_page: Dict[int, int] = {}
        self.issued = 0

    def observe(self, line: int, hit: bool) -> List[int]:
        page = page_of_line(line)
        last = self._last_in_page.get(page)
        self._last_in_page[page] = line
        if last is None:
            return []
        direction = 1 if line > last else -1 if line < last else 0
        if direction == 0:
            return []
        page_first = page * self.LINES_PER_PAGE
        page_last = page_first + self.LINES_PER_PAGE - 1
        candidates = []
        for d in range(1, self.degree + 1):
            target = line + direction * d
            if page_first <= target <= page_last:
                candidates.append(target)
        self.issued += len(candidates)
        if len(self._last_in_page) > 4096:
            # Bound tracker memory like a real finite stream table.
            self._last_in_page.clear()
            self._last_in_page[page] = line
        return candidates

    def reset(self) -> None:
        self._last_in_page.clear()
        self.issued = 0


class CompositePrefetcher:
    """Union of several prefetchers observing the same stream."""

    def __init__(self, *prefetchers: object) -> None:
        self.prefetchers = list(prefetchers)

    def observe(self, line: int, hit: bool) -> List[int]:
        candidates: List[int] = []
        seen = set()
        for pf in self.prefetchers:
            for c in pf.observe(line, hit):  # type: ignore[attr-defined]
                if c not in seen:
                    seen.add(c)
                    candidates.append(c)
        return candidates

    def reset(self) -> None:
        for pf in self.prefetchers:
            pf.reset()  # type: ignore[attr-defined]
